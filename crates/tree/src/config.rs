//! Index configuration.

use dsidx_isax::{IsaxError, Quantizer};

/// Configuration shared by every engine building or querying an index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeConfig {
    quantizer: Quantizer,
    leaf_capacity: usize,
}

impl TreeConfig {
    /// Validates a configuration.
    ///
    /// # Errors
    /// Propagates [`Quantizer::new`] errors; `leaf_capacity` must be
    /// non-zero (reported as a `BadSegmentCount`-free panic-less error via
    /// `IsaxError` is wrong domain — we use a panic for this programmer
    /// error instead).
    ///
    /// # Panics
    /// Panics if `leaf_capacity == 0`.
    pub fn new(
        series_len: usize,
        segments: usize,
        leaf_capacity: usize,
    ) -> Result<Self, IsaxError> {
        assert!(leaf_capacity > 0, "leaf capacity must be non-zero");
        Ok(Self {
            quantizer: Quantizer::new(series_len, segments)?,
            leaf_capacity,
        })
    }

    /// The quantizer (series length, segmentation, conversion routines).
    #[inline]
    #[must_use]
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// Series length.
    #[inline]
    #[must_use]
    pub fn series_len(&self) -> usize {
        self.quantizer.series_len()
    }

    /// Number of iSAX segments (`w`).
    #[inline]
    #[must_use]
    pub fn segments(&self) -> usize {
        self.quantizer.segments()
    }

    /// Maximum entries a leaf holds before splitting.
    #[inline]
    #[must_use]
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// Number of root slots (`2^w`).
    #[inline]
    #[must_use]
    pub fn root_count(&self) -> usize {
        self.quantizer.root_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let c = TreeConfig::new(256, 16, 100).unwrap();
        assert_eq!(c.series_len(), 256);
        assert_eq!(c.segments(), 16);
        assert_eq!(c.leaf_capacity(), 100);
        assert_eq!(c.root_count(), 65536);
        assert_eq!(c.quantizer().segment_lens().len(), 16);
    }

    #[test]
    fn propagates_quantizer_errors() {
        assert!(TreeConfig::new(4, 16, 10).is_err());
        assert!(TreeConfig::new(16, 0, 10).is_err());
    }

    #[test]
    #[should_panic(expected = "leaf capacity")]
    fn zero_capacity_panics() {
        let _ = TreeConfig::new(64, 8, 0);
    }
}
