//! Leaf entries: what the index stores per series.

use dsidx_isax::Word;

/// One indexed series: its full-cardinality iSAX word and its position in
/// the raw data (file or in-memory array).
///
/// 24 bytes, `Copy` — receiving buffers, leaves and candidate lists store
/// these in flat `Vec`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafEntry {
    /// Full-cardinality iSAX summary of the series.
    pub word: Word,
    /// Position of the series in its raw source.
    pub pos: u32,
}

impl LeafEntry {
    /// Bundles a word and a position.
    #[inline]
    #[must_use]
    pub fn new(word: Word, pos: u32) -> Self {
        Self { word, pos }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_is_compact() {
        assert!(std::mem::size_of::<LeafEntry>() <= 24);
    }

    #[test]
    fn construction() {
        let w = Word::new(&[1, 2, 3]);
        let e = LeafEntry::new(w, 42);
        assert_eq!(e.pos, 42);
        assert_eq!(e.word.symbol(1), 2);
    }
}
