//! A cache-conscious flattened view of a built index.
//!
//! The boxed [`Node`] graph is ideal for construction
//! (independent subtrees, in-place splits) but miserable for traversal:
//! every node visit is a pointer chase. Query answering in MESSI touches
//! tens of thousands of nodes per query, so after construction the tree is
//! *flattened* once into three dense arrays — nodes (depth-first), leaf
//! entries (leaf-contiguous), and occupied roots — and queries walk those.
//! The paper's C implementation gets the same effect for free by storing
//! nodes in preallocated arrays.

use crate::entry::LeafEntry;
use crate::index::Index;
use crate::node::Node;
use dsidx_isax::{NodeMindistTable, MAX_SEGMENTS};

/// A node in the flattened tree.
///
/// Children are laid out depth-first, so an inner node's zero child sits
/// at `self_index + 1` and only the one child's index is stored. The
/// depth-first layout also makes every *subtree's* entries contiguous, so
/// each node records its subtree's entry range — leaves use it as their
/// content, inner nodes use it for O(1) emptiness checks during guided
/// descents.
#[derive(Debug, Clone, Copy)]
pub struct FlatNode {
    prefixes: [u8; MAX_SEGMENTS],
    bits: [u8; MAX_SEGMENTS],
    /// Start of this subtree's entry range.
    entry_start: u32,
    /// End of this subtree's entry range.
    entry_end: u32,
    /// Index of the one-child; `NO_CHILD` for leaves.
    one_child: u32,
}

const NO_CHILD: u32 = u32::MAX;

impl FlatNode {
    /// `true` if this is a leaf.
    #[inline]
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.one_child == NO_CHILD
    }

    /// The subtree's entry range within the flat entry array (for leaves:
    /// exactly their own entries).
    #[inline]
    #[must_use]
    pub fn entry_range(&self) -> std::ops::Range<usize> {
        self.entry_start as usize..self.entry_end as usize
    }

    /// Number of entries below this node.
    #[inline]
    #[must_use]
    pub fn subtree_len(&self) -> usize {
        (self.entry_end - self.entry_start) as usize
    }

    /// An inner node's children: `(zero_child, one_child)` node indices.
    /// The zero child always directly follows its parent (depth-first
    /// layout), so descents towards it stay sequential in memory.
    #[inline]
    #[must_use]
    pub fn children(&self, self_index: u32) -> (u32, u32) {
        debug_assert!(!self.is_leaf());
        (self_index + 1, self.one_child)
    }

    /// Looks up this node's lower bound in a per-query table.
    #[inline]
    #[must_use]
    pub fn mindist_sq(&self, table: &NodeMindistTable) -> f32 {
        table.lookup_parts(&self.bits, &self.prefixes)
    }
}

/// The flattened index: dense arrays for traversal.
#[derive(Debug, Clone, Default)]
pub struct FlatTree {
    /// All nodes, subtree by subtree, each subtree depth-first
    /// (zero-child-adjacent).
    nodes: Vec<FlatNode>,
    /// `(root key, node index)` for every occupied root, key-ascending.
    roots: Vec<(u16, u32)>,
    /// Every leaf's entries, leaf-contiguous.
    entries: Vec<LeafEntry>,
    segments: usize,
}

impl FlatTree {
    /// Flattens a built index (O(nodes + entries)).
    #[must_use]
    pub fn from_index(index: &Index) -> Self {
        let mut flat = FlatTree {
            nodes: Vec::new(),
            roots: Vec::with_capacity(index.occupied_roots().len()),
            entries: Vec::with_capacity(index.len()),
            segments: index.config().segments(),
        };
        for &key in index.occupied_roots() {
            let root = index.root(key).expect("occupied root exists");
            let idx = flat.push_subtree(root);
            flat.roots.push((key, idx));
        }
        flat
    }

    fn push_subtree(&mut self, node: &Node) -> u32 {
        let my_index = self.nodes.len() as u32;
        let word = node.word();
        let mut prefixes = [0u8; MAX_SEGMENTS];
        let mut bits = [0u8; MAX_SEGMENTS];
        for seg in 0..word.segments() {
            prefixes[seg] = word.prefix(seg);
            bits[seg] = word.bits(seg);
        }
        let entry_start = self.entries.len() as u32;
        self.nodes.push(FlatNode {
            prefixes,
            bits,
            entry_start,
            entry_end: entry_start,
            one_child: NO_CHILD,
        });
        if let Some((_, zero, one)) = node.children() {
            let zero_idx = self.push_subtree(zero);
            debug_assert_eq!(zero_idx, my_index + 1, "zero child is adjacent");
            let one_idx = self.push_subtree(one);
            self.nodes[my_index as usize].one_child = one_idx;
        } else {
            self.entries
                .extend_from_slice(node.entries().expect("resident leaf"));
        }
        self.nodes[my_index as usize].entry_end = self.entries.len() as u32;
        my_index
    }

    /// Occupied `(root key, node index)` pairs, key-ascending.
    #[inline]
    #[must_use]
    pub fn roots(&self) -> &[(u16, u32)] {
        &self.roots
    }

    /// The node at `idx`.
    #[inline]
    #[must_use]
    pub fn node(&self, idx: u32) -> &FlatNode {
        &self.nodes[idx as usize]
    }

    /// All nodes.
    #[inline]
    #[must_use]
    pub fn nodes(&self) -> &[FlatNode] {
        &self.nodes
    }

    /// A leaf's entries.
    ///
    /// # Panics
    /// Debug-asserts the node is a leaf (an inner node's range spans its
    /// whole subtree).
    #[inline]
    #[must_use]
    pub fn leaf_entries(&self, node: &FlatNode) -> &[LeafEntry] {
        debug_assert!(node.is_leaf());
        &self.entries[node.entry_range()]
    }

    /// Total number of entries.
    #[inline]
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of iSAX segments.
    #[inline]
    #[must_use]
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Descends from node `idx` towards `word`, returning the leaf index.
    #[must_use]
    pub fn descend(&self, mut idx: u32, word: &dsidx_isax::Word) -> u32 {
        loop {
            let node = self.node(idx);
            if node.is_leaf() {
                return idx;
            }
            // The split segment is the one where the children carry one
            // more bit; recover the branch from the word's next bit.
            let (zero, one) = node.children(idx);
            let zero_node = self.node(zero);
            let seg = (0..self.segments)
                .find(|&s| zero_node.bits[s] == node.bits[s] + 1)
                .expect("inner node has a refined segment");
            let bit = (word.symbol(seg) >> (dsidx_isax::MAX_BITS - node.bits[seg] - 1)) & 1;
            idx = if bit == 1 { one } else { zero };
        }
    }

    /// Like [`FlatTree::descend`], but detours around empty subtrees so
    /// the returned leaf always holds at least one entry. Returns `None`
    /// when the subtree at `idx` is entirely empty.
    #[must_use]
    pub fn descend_non_empty(&self, mut idx: u32, word: &dsidx_isax::Word) -> Option<u32> {
        if self.node(idx).subtree_len() == 0 {
            return None;
        }
        loop {
            let node = self.node(idx);
            if node.is_leaf() {
                return Some(idx);
            }
            let (zero, one) = node.children(idx);
            let zero_node = self.node(zero);
            let seg = (0..self.segments)
                .find(|&s| zero_node.bits[s] == node.bits[s] + 1)
                .expect("inner node has a refined segment");
            let bit = (word.symbol(seg) >> (dsidx_isax::MAX_BITS - node.bits[seg] - 1)) & 1;
            let (matching, sibling) = if bit == 1 { (one, zero) } else { (zero, one) };
            idx = if self.node(matching).subtree_len() > 0 {
                matching
            } else {
                sibling
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeConfig;
    use dsidx_isax::Quantizer;

    fn build_index(n: u64, cap: usize) -> (TreeConfig, Index, Vec<LeafEntry>) {
        let cfg = TreeConfig::new(64, 8, cap).unwrap();
        let mut idx = Index::new(cfg.clone());
        let mut entries = Vec::new();
        for seed in 0..n {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let s: Vec<f32> = (0..64)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    ((state >> 40) as f32 / 16_777_216.0) * 4.0 - 2.0
                })
                .collect();
            let e = LeafEntry::new(cfg.quantizer().word(&s), seed as u32);
            idx.insert(e);
            entries.push(e);
        }
        (cfg, idx, entries)
    }

    #[test]
    fn flattening_preserves_every_entry() {
        let (_, idx, entries) = build_index(500, 8);
        let flat = FlatTree::from_index(&idx);
        assert_eq!(flat.entry_count(), 500);
        assert_eq!(flat.roots().len(), idx.occupied_roots().len());
        let mut seen: Vec<u32> = flat
            .nodes()
            .iter()
            .filter(|n| n.is_leaf())
            .flat_map(|n| flat.leaf_entries(n).iter().map(|e| e.pos))
            .collect();
        seen.sort_unstable();
        let mut want: Vec<u32> = entries.iter().map(|e| e.pos).collect();
        want.sort_unstable();
        assert_eq!(seen, want);
    }

    #[test]
    fn flat_structure_mirrors_boxed_structure() {
        let (_, idx, _) = build_index(400, 4);
        let flat = FlatTree::from_index(&idx);
        // Walk both trees in lockstep.
        fn check(flat: &FlatTree, fidx: u32, node: &Node) {
            let fnode = flat.node(fidx);
            assert_eq!(fnode.is_leaf(), node.is_leaf());
            if let Some((_, zero, one)) = node.children() {
                let (fz, fo) = fnode.children(fidx);
                check(flat, fz, zero);
                check(flat, fo, one);
            } else {
                let want: Vec<u32> = node.entries().unwrap().iter().map(|e| e.pos).collect();
                let got: Vec<u32> = flat.leaf_entries(fnode).iter().map(|e| e.pos).collect();
                assert_eq!(got, want);
            }
        }
        for (i, &key) in idx.occupied_roots().iter().enumerate() {
            let (fkey, fidx) = flat.roots()[i];
            assert_eq!(fkey, key);
            check(&flat, fidx, idx.root(key).unwrap());
        }
    }

    #[test]
    fn descend_agrees_with_boxed_descend() {
        let (cfg, idx, entries) = build_index(600, 4);
        let flat = FlatTree::from_index(&idx);
        let q = Quantizer::new(64, 8).unwrap();
        assert_eq!(q.segments(), cfg.segments());
        for e in entries.iter().step_by(7) {
            let boxed_leaf = idx.leaf_for(&e.word).unwrap();
            let root_pos = idx
                .occupied_roots()
                .binary_search(&e.word.root_key())
                .unwrap();
            let (_, root_idx) = flat.roots()[root_pos];
            let flat_leaf = flat.node(flat.descend(root_idx, &e.word));
            let want: Vec<u32> = boxed_leaf
                .entries()
                .unwrap()
                .iter()
                .map(|x| x.pos)
                .collect();
            let got: Vec<u32> = flat.leaf_entries(flat_leaf).iter().map(|x| x.pos).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn mindist_matches_node_word_lookup() {
        let (cfg, idx, _) = build_index(300, 4);
        let flat = FlatTree::from_index(&idx);
        let q = cfg.quantizer();
        let paa: Vec<f32> = (0..8).map(|i| i as f32 * 0.2 - 0.8).collect();
        let table = NodeMindistTable::new_point(&paa, q.segment_lens());
        fn check(flat: &FlatTree, fidx: u32, node: &Node, table: &NodeMindistTable) {
            let direct = table.lookup(node.word());
            let got = flat.node(fidx).mindist_sq(table);
            assert!((direct - got).abs() <= direct.abs() * 1e-6 + 1e-7);
            if let Some((_, zero, one)) = node.children() {
                let (fz, fo) = flat.node(fidx).children(fidx);
                check(flat, fz, zero, table);
                check(flat, fo, one, table);
            }
        }
        for (i, &key) in idx.occupied_roots().iter().enumerate() {
            let (_, fidx) = flat.roots()[i];
            check(&flat, fidx, idx.root(key).unwrap(), &table);
        }
    }

    #[test]
    fn empty_index_flattens_empty() {
        let cfg = TreeConfig::new(64, 8, 4).unwrap();
        let idx = Index::new(cfg);
        let flat = FlatTree::from_index(&idx);
        assert_eq!(flat.entry_count(), 0);
        assert!(flat.roots().is_empty());
        assert!(flat.nodes().is_empty());
    }
}
