//! Fixed-layout wire codec for the iSAX tree: turns an [`Index`] (and its
//! [`SaxArray`]) into flat little-endian record arrays and back.
//!
//! This crate owns only the *record layouts*; the surrounding container —
//! magic, format version, fingerprint, per-section checksums — lives in
//! `dsidx-storage::snapshot`, which treats these arrays as opaque section
//! payloads. Keeping the codec here lets it see the private tree internals
//! it round-trips without `dsidx-tree` growing a storage dependency.
//!
//! # Layouts (all integers little-endian)
//!
//! * **node record** (48 B): `prefixes[16]`, `bits[16]`, `entry_start: u32`
//!   (running entry-record cursor at encode time — redundant, checked on
//!   decode), `entry_count: u32`, `flushed: u32`, `chunk_count: u16`,
//!   `split_seg: u8`, `flags: u8` (bit 0 = leaf). Nodes are written
//!   depth-first, zero child first, subtrees in ascending root-key order —
//!   the same deterministic order every engine builds in — so decode needs
//!   no child pointers: an inner record is always immediately followed by
//!   its zero subtree, then its one subtree.
//! * **root record** (8 B): `key: u16`, `reserved: u16`, `node_count: u32`.
//! * **chunk record** (12 B): `offset: u64`, `count: u32` — one per
//!   [`LeafChunk`], consumed in leaf order.
//! * **entry record** (`segments + 4` B): the entry word's symbols, then
//!   `pos: u32`.
//! * **SAX record** (`segments` B): one full-cardinality word, in position
//!   order.
//!
//! The decoder trusts nothing: every structural invariant the builders
//! maintain (words partition on split, entry words fall under their leaf,
//! positions form a permutation of `0..count`, flush bookkeeping adds up)
//! is re-checked against the bytes, so a corrupt file that slips past the
//! container checksums still yields an error — never a silently wrong
//! index.

use crate::config::TreeConfig;
use crate::entry::LeafEntry;
use crate::index::Index;
use crate::node::{LeafChunk, LeafPayload, Node};
use crate::sax::SaxArray;
use dsidx_isax::{NodeWord, Word, MAX_SEGMENTS};

/// Size of one serialized tree node.
pub const NODE_RECORD_LEN: usize = 48;
/// Size of one root-subtree directory record.
pub const ROOT_RECORD_LEN: usize = 8;
/// Size of one leaf-store chunk record.
pub const CHUNK_RECORD_LEN: usize = 12;

/// Size of one leaf-entry record for a given segment count.
#[must_use]
pub fn entry_record_len(segments: usize) -> usize {
    segments + 4
}

const FLAG_LEAF: u8 = 1;

/// A malformed or internally inconsistent serialized tree.
///
/// The storage layer wraps this in its own corruption error; the message
/// always names the offending record kind.
#[derive(Debug)]
pub struct CodecError(String);

impl CodecError {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// The human-readable description.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CodecError {}

/// The four flat record arrays a serialized tree consists of.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TreeSections {
    /// Node records, DFS order (see module docs).
    pub nodes: Vec<u8>,
    /// Root directory records, ascending key order.
    pub roots: Vec<u8>,
    /// Leaf-store chunk records, leaf order.
    pub chunks: Vec<u8>,
    /// Leaf entry records, leaf order.
    pub entries: Vec<u8>,
}

/// Serializes an index's full structure into flat record arrays.
#[must_use]
pub fn encode_tree(index: &Index) -> TreeSections {
    let segments = index.config().segments();
    let mut out = TreeSections::default();
    let mut entry_cursor: u32 = 0;
    for &key in index.occupied_roots() {
        let node = index.root(key).expect("occupied root has a node");
        let before = out.nodes.len();
        encode_node(node, segments, &mut out, &mut entry_cursor);
        let node_count = ((out.nodes.len() - before) / NODE_RECORD_LEN) as u32;
        out.roots.extend_from_slice(&key.to_le_bytes());
        out.roots.extend_from_slice(&0u16.to_le_bytes());
        out.roots.extend_from_slice(&node_count.to_le_bytes());
    }
    out
}

fn encode_node(node: &Node, segments: usize, out: &mut TreeSections, entry_cursor: &mut u32) {
    let word = node.word();
    let mut rec = [0u8; NODE_RECORD_LEN];
    for seg in 0..segments {
        rec[seg] = word.prefix(seg);
        rec[MAX_SEGMENTS + seg] = word.bits(seg);
    }
    rec[32..36].copy_from_slice(&entry_cursor.to_le_bytes());
    if let Some(payload) = node.payload() {
        let count = u32::try_from(payload.entries.len()).expect("leaf entry count fits u32");
        let chunk_count = u16::try_from(payload.chunks.len()).expect("leaf chunk count fits u16");
        rec[36..40].copy_from_slice(&count.to_le_bytes());
        rec[40..44].copy_from_slice(&payload.flushed.to_le_bytes());
        rec[44..46].copy_from_slice(&chunk_count.to_le_bytes());
        rec[47] = FLAG_LEAF;
        out.nodes.extend_from_slice(&rec);
        for chunk in &payload.chunks {
            out.chunks.extend_from_slice(&chunk.offset.to_le_bytes());
            out.chunks.extend_from_slice(&chunk.count.to_le_bytes());
        }
        for entry in &payload.entries {
            out.entries.extend_from_slice(entry.word.symbols());
            out.entries.extend_from_slice(&entry.pos.to_le_bytes());
        }
        *entry_cursor += count;
    } else {
        let (split_seg, zero, one) = node.children().expect("non-leaf has children");
        rec[46] = split_seg as u8;
        out.nodes.extend_from_slice(&rec);
        encode_node(zero, segments, out, entry_cursor);
        encode_node(one, segments, out, entry_cursor);
    }
}

/// Serializes a SAX array (position order, `segments` bytes per word).
#[must_use]
pub fn encode_sax(sax: &SaxArray) -> Vec<u8> {
    let mut out = Vec::with_capacity(sax.len() * sax.words().first().map_or(0, Word::segments));
    for word in sax.words() {
        out.extend_from_slice(word.symbols());
    }
    out
}

/// Deserializes a SAX array of exactly `count` words of `segments` symbols.
pub fn decode_sax(bytes: &[u8], segments: usize, count: usize) -> Result<SaxArray, CodecError> {
    if bytes.len() != count * segments {
        return Err(CodecError::new(format!(
            "SAX section is {} bytes; expected {} ({count} words x {segments} segments)",
            bytes.len(),
            count * segments,
        )));
    }
    let words = bytes.chunks_exact(segments).map(Word::new).collect();
    Ok(SaxArray::new(words))
}

/// Rebuilds an [`Index`] from its serialized record arrays.
///
/// `count` is the dataset size the index must cover: the decoder verifies
/// the leaf positions form a permutation of `0..count`.
pub fn decode_tree(
    config: TreeConfig,
    count: usize,
    sections: &TreeSections,
) -> Result<Index, CodecError> {
    let segments = config.segments();
    let mut nodes = Reader::new(&sections.nodes, "node", NODE_RECORD_LEN)?;
    let roots = Reader::new(&sections.roots, "root", ROOT_RECORD_LEN)?;
    let mut chunks = Reader::new(&sections.chunks, "chunk", CHUNK_RECORD_LEN)?;
    let mut entries = Reader::new(&sections.entries, "entry", entry_record_len(segments))?;

    let mut slots: Vec<Option<Box<Node>>> = vec![None; config.root_count()];
    let mut state = DecodeState {
        config: &config,
        entries_read: 0,
        seen: vec![false; count],
    };
    let mut prev_key: Option<u16> = None;
    for rec in roots.buf.chunks_exact(ROOT_RECORD_LEN) {
        let key = u16::from_le_bytes(rec[0..2].try_into().expect("slice of 2"));
        let reserved = u16::from_le_bytes(rec[2..4].try_into().expect("slice of 2"));
        let node_count = u32::from_le_bytes(rec[4..8].try_into().expect("slice of 4"));
        if reserved != 0 {
            return Err(CodecError::new(format!(
                "root record for key {key} has nonzero reserved field {reserved}"
            )));
        }
        if usize::from(key) >= config.root_count() {
            return Err(CodecError::new(format!(
                "root key {key} out of range (root count {})",
                config.root_count()
            )));
        }
        if prev_key.is_some_and(|p| p >= key) {
            return Err(CodecError::new(format!(
                "root keys not strictly ascending at key {key}"
            )));
        }
        prev_key = Some(key);
        let mut budget = node_count as usize;
        let subtree = decode_node(
            NodeWord::root(key, segments),
            &mut state,
            &mut nodes,
            &mut chunks,
            &mut entries,
            &mut budget,
        )?;
        if budget != 0 {
            return Err(CodecError::new(format!(
                "root {key} declared {node_count} nodes but its subtree used fewer"
            )));
        }
        slots[usize::from(key)] = Some(subtree);
    }
    nodes.finish()?;
    chunks.finish()?;
    entries.finish()?;
    if state.entries_read as usize != count {
        return Err(CodecError::new(format!(
            "tree holds {} entries but the dataset has {count} series",
            state.entries_read
        )));
    }
    Ok(Index::from_roots(config, slots))
}

struct DecodeState<'a> {
    config: &'a TreeConfig,
    entries_read: u32,
    /// Which dataset positions have appeared in a leaf so far — together
    /// with the final count check this proves the positions are a
    /// permutation of `0..count`.
    seen: Vec<bool>,
}

fn decode_node(
    expect: NodeWord,
    state: &mut DecodeState<'_>,
    nodes: &mut Reader<'_>,
    chunks: &mut Reader<'_>,
    entries: &mut Reader<'_>,
    budget: &mut usize,
) -> Result<Box<Node>, CodecError> {
    let Some(rest) = budget.checked_sub(1) else {
        return Err(CodecError::new(
            "subtree holds more nodes than its root record declared",
        ));
    };
    *budget = rest;
    let segments = state.config.segments();
    let rec = nodes.take()?;
    let word = NodeWord::from_parts(
        &rec[..segments],
        &rec[MAX_SEGMENTS..MAX_SEGMENTS + segments],
    )
    .ok_or_else(|| CodecError::new("node record holds an unrepresentable iSAX word"))?;
    if word != expect {
        return Err(CodecError::new(format!(
            "node word `{word}` does not match its tree position (expected `{expect}`)"
        )));
    }
    let entry_start = u32::from_le_bytes(rec[32..36].try_into().expect("slice of 4"));
    if entry_start != state.entries_read {
        return Err(CodecError::new(format!(
            "node entry cursor {entry_start} disagrees with the {} entries decoded so far",
            state.entries_read
        )));
    }
    let entry_count = u32::from_le_bytes(rec[36..40].try_into().expect("slice of 4"));
    let flushed = u32::from_le_bytes(rec[40..44].try_into().expect("slice of 4"));
    let chunk_count = u16::from_le_bytes(rec[44..46].try_into().expect("slice of 2"));
    let split_seg = rec[46];
    match rec[47] {
        FLAG_LEAF => {
            if split_seg != 0 {
                return Err(CodecError::new("leaf record has nonzero split segment"));
            }
            if flushed > entry_count {
                return Err(CodecError::new(format!(
                    "leaf flush bookkeeping corrupt: {flushed} flushed of {entry_count} entries"
                )));
            }
            if entry_count as usize > state.seen.len() - state.entries_read as usize {
                return Err(CodecError::new(format!(
                    "leaf claims {entry_count} entries; only {} remain unaccounted",
                    state.seen.len() - state.entries_read as usize
                )));
            }
            let mut leaf_chunks = Vec::with_capacity(usize::from(chunk_count));
            let mut flushed_sum = 0u64;
            for _ in 0..chunk_count {
                let rec = chunks.take()?;
                let offset = u64::from_le_bytes(rec[0..8].try_into().expect("slice of 8"));
                let count = u32::from_le_bytes(rec[8..12].try_into().expect("slice of 4"));
                if count == 0 {
                    return Err(CodecError::new("leaf chunk record with zero entries"));
                }
                flushed_sum += u64::from(count);
                leaf_chunks.push(LeafChunk { offset, count });
            }
            if flushed_sum != u64::from(flushed) {
                return Err(CodecError::new(format!(
                    "leaf chunk counts sum to {flushed_sum}, flushed prefix is {flushed}"
                )));
            }
            let mut leaf_entries = Vec::with_capacity(entry_count as usize);
            let matcher = word.matcher();
            for _ in 0..entry_count {
                let rec = entries.take()?;
                let entry_word = Word::new(&rec[..segments]);
                if !matcher.contains(&entry_word) {
                    return Err(CodecError::new(
                        "leaf entry word falls outside the leaf's region",
                    ));
                }
                let pos =
                    u32::from_le_bytes(rec[segments..segments + 4].try_into().expect("slice of 4"));
                match state.seen.get_mut(pos as usize) {
                    Some(seen @ false) => *seen = true,
                    Some(true) => {
                        return Err(CodecError::new(format!(
                            "dataset position {pos} appears twice in the tree"
                        )));
                    }
                    None => {
                        return Err(CodecError::new(format!(
                            "entry position {pos} out of range for {} series",
                            state.seen.len()
                        )));
                    }
                }
                leaf_entries.push(LeafEntry::new(entry_word, pos));
            }
            state.entries_read += entry_count;
            Ok(Box::new(Node::from_payload(
                word,
                LeafPayload {
                    entries: leaf_entries,
                    flushed,
                    chunks: leaf_chunks,
                },
            )))
        }
        0 => {
            if entry_count != 0 || flushed != 0 || chunk_count != 0 {
                return Err(CodecError::new(
                    "inner node record carries leaf-only fields",
                ));
            }
            let seg = usize::from(split_seg);
            if seg >= segments || !word.can_split(seg) {
                return Err(CodecError::new(format!(
                    "inner node splits on invalid segment {seg}"
                )));
            }
            let (zero_word, one_word) = word.split(seg);
            let zero = decode_node(zero_word, state, nodes, chunks, entries, budget)?;
            let one = decode_node(one_word, state, nodes, chunks, entries, budget)?;
            Ok(Box::new(Node::from_children(word, split_seg, zero, one)))
        }
        flags => Err(CodecError::new(format!(
            "unknown node flags {flags:#04x} (file from a future format?)"
        ))),
    }
}

/// Sequential record reader over one section's bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
    record_len: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], what: &'static str, record_len: usize) -> Result<Self, CodecError> {
        if buf.len() % record_len != 0 {
            return Err(CodecError::new(format!(
                "{what} section is {} bytes, not a multiple of the {record_len}-byte record",
                buf.len()
            )));
        }
        Ok(Self {
            buf,
            pos: 0,
            what,
            record_len,
        })
    }

    fn take(&mut self) -> Result<&'a [u8], CodecError> {
        let end = self.pos + self.record_len;
        if end > self.buf.len() {
            return Err(CodecError::new(format!(
                "{} section exhausted: tree structure references more records than stored",
                self.what
            )));
        }
        let rec = &self.buf[self.pos..end];
        self.pos = end;
        Ok(rec)
    }

    fn finish(&self) -> Result<(), CodecError> {
        if self.pos != self.buf.len() {
            return Err(CodecError::new(format!(
                "{} section has {} trailing bytes the tree never referenced",
                self.what,
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_isax::Quantizer;

    fn config() -> TreeConfig {
        TreeConfig::new(32, 4, 8).unwrap()
    }

    fn series(seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..32)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / 16_777_216.0) * 4.0 - 2.0
            })
            .collect()
    }

    fn build(count: usize) -> (Index, SaxArray) {
        let cfg = config();
        let q: &Quantizer = cfg.quantizer();
        let mut idx = Index::new(cfg.clone());
        let mut words = Vec::with_capacity(count);
        for pos in 0..count {
            let w = q.word(&series(pos as u64));
            idx.insert(LeafEntry::new(w, pos as u32));
            words.push(w);
        }
        (idx, SaxArray::new(words))
    }

    #[test]
    fn tree_round_trips_bit_identically() {
        for count in [0usize, 1, 7, 400] {
            let (idx, _) = build(count);
            let sections = encode_tree(&idx);
            let back = decode_tree(config(), count, &sections).expect("decode");
            assert_eq!(back, idx, "count={count}");
        }
    }

    #[test]
    fn flush_bookkeeping_round_trips() {
        let (mut idx, _) = build(60);
        // Simulate a ParIS materialization pass: flush every leaf.
        let mut offset = 0u64;
        for key in idx.occupied_roots().to_vec() {
            idx.root_mut(key).unwrap().for_each_leaf_mut(&mut |leaf| {
                let count = leaf.unflushed_entries().len() as u32;
                leaf.mark_flushed(LeafChunk { offset, count });
                offset += u64::from(count) * 36;
            });
        }
        let sections = encode_tree(&idx);
        assert!(!sections.chunks.is_empty());
        let back = decode_tree(config(), 60, &sections).expect("decode");
        assert_eq!(back, idx);
    }

    #[test]
    fn sax_round_trips() {
        let (_, sax) = build(50);
        let bytes = encode_sax(&sax);
        assert_eq!(bytes.len(), 50 * 4);
        let back = decode_sax(&bytes, 4, 50).expect("decode");
        assert_eq!(back, sax);
    }

    #[test]
    fn sax_length_mismatch_is_an_error() {
        let err = decode_sax(&[0u8; 41], 4, 10).unwrap_err();
        assert!(err.to_string().contains("SAX section"), "{err}");
    }

    #[test]
    fn decode_rejects_wrong_count() {
        let (idx, _) = build(30);
        let sections = encode_tree(&idx);
        assert!(decode_tree(config(), 31, &sections).is_err());
        assert!(decode_tree(config(), 29, &sections).is_err());
    }

    #[test]
    fn decode_rejects_truncated_sections() {
        let (idx, _) = build(120);
        let good = encode_tree(&idx);
        for cut in ["nodes", "roots", "entries"] {
            let mut s = good.clone();
            match cut {
                "nodes" => s.nodes.truncate(s.nodes.len() - NODE_RECORD_LEN),
                "roots" => s.roots.truncate(s.roots.len() - ROOT_RECORD_LEN),
                _ => s.entries.truncate(s.entries.len() - entry_record_len(4)),
            }
            assert!(decode_tree(config(), 120, &s).is_err(), "cut {cut}");
        }
        // A non-record-multiple truncation fails before any decoding.
        let mut s = good;
        s.nodes.truncate(s.nodes.len() - 1);
        let err = decode_tree(config(), 120, &s).unwrap_err();
        assert!(err.to_string().contains("multiple"), "{err}");
    }

    #[test]
    fn decode_rejects_flipped_structure_bytes() {
        let (idx, _) = build(150);
        let good = encode_tree(&idx);
        // Flip one byte at a time through the node section: every single
        // flip must be caught (word mismatch, cursor mismatch, bad flags,
        // count imbalance, ...) — never accepted into a wrong tree.
        let mut undetected = Vec::new();
        for i in 0..good.nodes.len() {
            let mut s = good.clone();
            s.nodes[i] ^= 0x40;
            match decode_tree(config(), 150, &s) {
                Err(_) => {}
                // A flip that decodes *identically* is impossible (the byte
                // differs); any Ok must therefore be a wrong tree.
                Ok(back) => {
                    if back != idx {
                        undetected.push(i);
                    }
                }
            }
        }
        assert!(
            undetected.is_empty(),
            "byte flips at {undetected:?} produced silently wrong trees"
        );
    }

    #[test]
    fn decode_rejects_duplicate_positions() {
        let cfg = config();
        let q = cfg.quantizer();
        let mut idx = Index::new(cfg.clone());
        let w = q.word(&series(3));
        idx.insert(LeafEntry::new(w, 0));
        idx.insert(LeafEntry::new(w, 0)); // same position twice
        let sections = encode_tree(&idx);
        let err = decode_tree(cfg, 2, &sections).unwrap_err();
        assert!(err.to_string().contains("twice"), "{err}");
    }

    #[test]
    fn empty_index_encodes_to_empty_sections() {
        let idx = Index::new(config());
        let s = encode_tree(&idx);
        assert!(s.nodes.is_empty() && s.roots.is_empty() && s.entries.is_empty());
        let back = decode_tree(config(), 0, &s).expect("decode");
        assert_eq!(back, idx);
    }
}
