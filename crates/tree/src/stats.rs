//! Index shape statistics and structural validation.

use crate::index::Index;
use crate::node::Node;

/// Structural statistics of a built index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of non-empty root subtrees.
    pub root_subtrees: usize,
    /// Total leaves (including empty ones created by splits).
    pub leaf_count: usize,
    /// Total inner nodes.
    pub inner_count: usize,
    /// Total entries across leaves.
    pub entry_count: usize,
    /// Deepest leaf, counted in edges from its subtree root.
    pub max_depth: usize,
    /// Entries in the fullest leaf.
    pub max_leaf_len: usize,
}

/// Computes shape statistics for an index.
#[must_use]
pub fn index_stats(index: &Index) -> IndexStats {
    let mut stats = IndexStats {
        root_subtrees: index.occupied_roots().len(),
        ..Default::default()
    };
    for &key in index.occupied_roots() {
        if let Some(node) = index.root(key) {
            visit(node, 0, &mut stats);
        }
    }
    stats
}

fn visit(node: &Node, depth: usize, stats: &mut IndexStats) {
    if let Some((_, zero, one)) = node.children() {
        stats.inner_count += 1;
        visit(zero, depth + 1, stats);
        visit(one, depth + 1, stats);
    } else {
        stats.leaf_count += 1;
        stats.max_depth = stats.max_depth.max(depth);
        let n = node.entry_count();
        stats.entry_count += n;
        stats.max_leaf_len = stats.max_leaf_len.max(n);
    }
}

/// Exhaustively checks the structural invariants of an index; panics with a
/// description on the first violation. Test-and-debug helper.
///
/// Invariants:
/// 1. every resident entry's word is contained in its leaf's node word;
/// 2. resident leaves never exceed capacity unless their word is fully
///    refined (no splittable segment remains);
/// 3. children's words refine their parent's word by exactly one bit on the
///    recorded split segment;
/// 4. `index.len()` equals the number of entries found.
///
/// # Panics
/// Panics when any invariant is violated.
pub fn validate(index: &Index) {
    let cfg = index.config();
    let mut found = 0usize;
    for &key in index.occupied_roots() {
        let node = index.root(key).expect("occupied root must exist");
        validate_node(node, cfg, &mut found);
    }
    assert_eq!(
        found,
        index.len(),
        "index.len() disagrees with leaf contents"
    );
}

fn validate_node(node: &Node, cfg: &crate::config::TreeConfig, found: &mut usize) {
    if let Some((seg, zero, one)) = node.children() {
        assert_eq!(
            zero.word().bits(seg),
            node.word().bits(seg) + 1,
            "zero child bit count"
        );
        assert_eq!(
            one.word().bits(seg),
            node.word().bits(seg) + 1,
            "one child bit count"
        );
        assert_eq!(
            zero.word().prefix(seg) >> 1,
            node.word().prefix(seg),
            "zero child prefix"
        );
        assert_eq!(
            one.word().prefix(seg) >> 1,
            node.word().prefix(seg),
            "one child prefix"
        );
        assert_eq!(zero.word().prefix(seg) & 1, 0, "zero child last bit");
        assert_eq!(one.word().prefix(seg) & 1, 1, "one child last bit");
        validate_node(zero, cfg, found);
        validate_node(one, cfg, found);
        return;
    }
    *found += node.entry_count();
    if let Some(entries) = node.entries() {
        let splittable = (0..cfg.segments()).any(|s| node.word().can_split(s));
        if splittable {
            assert!(
                entries.len() <= cfg.leaf_capacity(),
                "resident splittable leaf over capacity: {} > {}",
                entries.len(),
                cfg.leaf_capacity()
            );
        }
        for e in entries {
            assert!(
                node.word().contains(&e.word),
                "entry outside its leaf's region"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeConfig;
    use crate::entry::LeafEntry;

    fn build(n: u64, cap: usize) -> Index {
        let cfg = TreeConfig::new(64, 8, cap).unwrap();
        let mut idx = Index::new(cfg.clone());
        for seed in 0..n {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let s: Vec<f32> = (0..64)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    ((state >> 40) as f32 / 16_777_216.0) * 4.0 - 2.0
                })
                .collect();
            idx.insert(LeafEntry::new(cfg.quantizer().word(&s), seed as u32));
        }
        idx
    }

    #[test]
    fn stats_count_consistently() {
        let idx = build(400, 4);
        let st = index_stats(&idx);
        assert_eq!(st.entry_count, 400);
        assert_eq!(st.root_subtrees, idx.occupied_roots().len());
        // A binary tree with L leaves has L-1 inner nodes per subtree; in a
        // forest: leaves - inners == subtrees.
        assert_eq!(st.leaf_count - st.inner_count, st.root_subtrees);
        assert!(st.max_leaf_len <= 4 || st.max_depth > 0);
    }

    #[test]
    fn validate_accepts_well_formed_index() {
        validate(&build(500, 7));
        validate(&build(1, 1));
        validate(&build(0, 5));
    }

    #[test]
    fn stats_on_empty_index() {
        let st = index_stats(&build(0, 3));
        assert_eq!(st, IndexStats::default());
    }
}
