//! Tree nodes: leaves, inner nodes, splitting, leaf materialization
//! bookkeeping.

use crate::config::TreeConfig;
use crate::entry::LeafEntry;
use dsidx_isax::split::choose_split_segment;
use dsidx_isax::NodeWord;

/// A chunk of leaf entries materialized to the leaf store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafChunk {
    /// Byte offset in the leaf store.
    pub offset: u64,
    /// Number of entries in the chunk.
    pub count: u32,
}

/// A leaf's contents.
///
/// Entries always stay resident (the split policy needs their words); the
/// `flushed` prefix and `chunks` record which of them ParIS/ParIS+ have
/// already materialized to the leaf store. The paper flushes leaves "to
/// free space in main memory" — at this reproduction's laptop scale the
/// summaries fit comfortably, so we model the *I/O cost* of materialization
/// (every flush is charged to the device) while keeping the bytes resident;
/// see DESIGN.md §3.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LeafPayload {
    /// All entries of this leaf.
    pub entries: Vec<LeafEntry>,
    /// How many of `entries` (as a prefix) are already on disk.
    pub flushed: u32,
    /// Where the flushed prefix lives in the leaf store.
    pub chunks: Vec<LeafChunk>,
}

/// A subtree node. Roots of subtrees are `Node`s owned by
/// [`crate::Index`]'s slot table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    word: NodeWord,
    kind: NodeKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeKind {
    Leaf(LeafPayload),
    Inner {
        split_seg: u8,
        zero: Box<Node>,
        one: Box<Node>,
    },
}

impl Node {
    /// A fresh empty leaf with the given word.
    #[must_use]
    pub fn new_leaf(word: NodeWord) -> Self {
        Self {
            word,
            kind: NodeKind::Leaf(LeafPayload::default()),
        }
    }

    /// Rebuilds a leaf from a persisted payload (snapshot decode path).
    ///
    /// The payload is taken as-is; the caller is responsible for its
    /// invariants (`flushed <= entries.len()`, chunk counts summing to
    /// `flushed`, every entry word under `word`) — the snapshot decoder
    /// validates them against the file before calling this.
    #[must_use]
    pub fn from_payload(word: NodeWord, payload: LeafPayload) -> Self {
        Self {
            word,
            kind: NodeKind::Leaf(payload),
        }
    }

    /// Rebuilds an inner node from its persisted children (snapshot decode
    /// path).
    ///
    /// # Panics
    /// Panics if the children's words are not the split of `word` on
    /// `split_seg` — a structurally impossible tree must never come into
    /// existence, whatever the bytes said.
    #[must_use]
    pub fn from_children(word: NodeWord, split_seg: u8, zero: Box<Node>, one: Box<Node>) -> Self {
        let (zero_word, one_word) = word.split(split_seg as usize);
        assert!(
            *zero.word() == zero_word && *one.word() == one_word,
            "children do not partition the parent word on segment {split_seg}"
        );
        Self {
            word,
            kind: NodeKind::Inner {
                split_seg,
                zero,
                one,
            },
        }
    }

    /// The node's variable-cardinality word.
    #[inline]
    #[must_use]
    pub fn word(&self) -> &NodeWord {
        &self.word
    }

    /// `true` for leaves.
    #[inline]
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf(_))
    }

    /// The leaf payload, if this is a leaf.
    #[must_use]
    pub fn payload(&self) -> Option<&LeafPayload> {
        match &self.kind {
            NodeKind::Leaf(p) => Some(p),
            NodeKind::Inner { .. } => None,
        }
    }

    /// Leaf entries, if this is a leaf.
    #[must_use]
    pub fn entries(&self) -> Option<&[LeafEntry]> {
        self.payload().map(|p| p.entries.as_slice())
    }

    /// The two children and the split segment, if this is an inner node.
    #[must_use]
    pub fn children(&self) -> Option<(usize, &Node, &Node)> {
        match &self.kind {
            NodeKind::Inner {
                split_seg,
                zero,
                one,
            } => Some((*split_seg as usize, zero, one)),
            NodeKind::Leaf(_) => None,
        }
    }

    /// Inserts an entry, splitting overflowing leaves.
    ///
    /// # Panics
    /// In debug builds, panics if the entry does not belong under this node.
    pub fn insert(&mut self, entry: LeafEntry, config: &TreeConfig) {
        debug_assert!(
            self.word.contains(&entry.word),
            "entry routed to wrong subtree"
        );
        match &mut self.kind {
            NodeKind::Leaf(payload) => {
                payload.entries.push(entry);
                if payload.entries.len() > config.leaf_capacity() {
                    self.split(config);
                }
            }
            NodeKind::Inner {
                split_seg,
                zero,
                one,
            } => {
                let child = if self.word.split_bit(&entry.word, *split_seg as usize) {
                    one
                } else {
                    zero
                };
                child.insert(entry, config);
            }
        }
    }

    /// Splits a leaf into two children (recursively while a child still
    /// overflows). No-op if no segment can be refined further.
    ///
    /// Splitting discards the leaf's flush bookkeeping: the children are
    /// new leaves whose contents have not been materialized (real systems
    /// rewrite leaf files on split, and so do we — the next flush re-writes
    /// both children in full).
    fn split(&mut self, config: &TreeConfig) {
        let NodeKind::Leaf(payload) = &mut self.kind else {
            unreachable!("split called on inner node");
        };
        let Some(seg) = choose_split_segment(payload.entries.iter().map(|e| &e.word), &self.word)
        else {
            // Every segment at max cardinality: the leaf may exceed its
            // capacity (identical words are inseparable).
            return;
        };
        let taken = std::mem::take(&mut payload.entries);
        let (zero_word, one_word) = self.word.split(seg);
        let mut zero = Box::new(Node::new_leaf(zero_word));
        let mut one = Box::new(Node::new_leaf(one_word));
        let mut zero_entries = Vec::with_capacity(taken.len());
        let mut one_entries = Vec::with_capacity(taken.len());
        for e in taken {
            if self.word.split_bit(&e.word, seg) {
                one_entries.push(e);
            } else {
                zero_entries.push(e);
            }
        }
        zero.kind = NodeKind::Leaf(LeafPayload {
            entries: zero_entries,
            ..Default::default()
        });
        one.kind = NodeKind::Leaf(LeafPayload {
            entries: one_entries,
            ..Default::default()
        });
        if zero.entries().map_or(0, <[LeafEntry]>::len) > config.leaf_capacity() {
            zero.split(config);
        }
        if one.entries().map_or(0, <[LeafEntry]>::len) > config.leaf_capacity() {
            one.split(config);
        }
        self.kind = NodeKind::Inner {
            split_seg: seg as u8,
            zero,
            one,
        };
    }

    /// Descends towards `word`, returning the leaf it would land in.
    #[must_use]
    pub fn descend(&self, word: &dsidx_isax::Word) -> &Node {
        let mut node = self;
        loop {
            match &node.kind {
                NodeKind::Leaf(_) => return node,
                NodeKind::Inner {
                    split_seg,
                    zero,
                    one,
                } => {
                    node = if node.word.split_bit(word, *split_seg as usize) {
                        one
                    } else {
                        zero
                    };
                }
            }
        }
    }

    /// Descends towards `word` but never into an empty subtree (splits can
    /// leave empty siblings, and an approximate answer seeded from an empty
    /// or arbitrary leaf gives a uselessly weak best-so-far).
    ///
    /// Returns `None` when this whole subtree is empty.
    #[must_use]
    pub fn descend_non_empty(&self, word: &dsidx_isax::Word) -> Option<&Node> {
        if self.entry_count() == 0 {
            return None;
        }
        let mut node = self;
        loop {
            match &node.kind {
                NodeKind::Leaf(_) => return Some(node),
                NodeKind::Inner {
                    split_seg,
                    zero,
                    one,
                } => {
                    let (matching, sibling) = if node.word.split_bit(word, *split_seg as usize) {
                        (one, zero)
                    } else {
                        (zero, one)
                    };
                    node = if matching.entry_count() > 0 {
                        matching
                    } else {
                        sibling
                    };
                }
            }
        }
    }

    /// Visits every leaf below this node (depth-first, zero child first).
    pub fn for_each_leaf<'a>(&'a self, f: &mut impl FnMut(&'a Node)) {
        match &self.kind {
            NodeKind::Leaf(_) => f(self),
            NodeKind::Inner { zero, one, .. } => {
                zero.for_each_leaf(f);
                one.for_each_leaf(f);
            }
        }
    }

    /// Visits every leaf mutably (used by the flush path).
    pub fn for_each_leaf_mut(&mut self, f: &mut impl FnMut(&mut Node)) {
        match &mut self.kind {
            NodeKind::Leaf(_) => f(self),
            NodeKind::Inner { zero, one, .. } => {
                zero.for_each_leaf_mut(f);
                one.for_each_leaf_mut(f);
            }
        }
    }

    /// Entries appended since the last flush (the suffix to materialize).
    ///
    /// # Panics
    /// Panics on inner nodes.
    #[must_use]
    pub fn unflushed_entries(&self) -> &[LeafEntry] {
        let payload = self.payload().expect("unflushed_entries on inner node");
        &payload.entries[payload.flushed as usize..]
    }

    /// Records that the previously unflushed suffix now lives at `chunk`.
    ///
    /// # Panics
    /// Panics on inner nodes, or if `chunk.count` disagrees with the
    /// unflushed suffix length.
    pub fn mark_flushed(&mut self, chunk: LeafChunk) {
        let NodeKind::Leaf(payload) = &mut self.kind else {
            panic!("mark_flushed on inner node");
        };
        assert_eq!(
            chunk.count as usize,
            payload.entries.len() - payload.flushed as usize,
            "flush chunk size mismatch"
        );
        if chunk.count > 0 {
            payload.chunks.push(chunk);
            payload.flushed = payload.entries.len() as u32;
        }
    }

    /// Number of entries below this node.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(p) => p.entries.len(),
            NodeKind::Inner { zero, one, .. } => zero.entry_count() + one.entry_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_isax::{Quantizer, Word};

    fn config(cap: usize) -> TreeConfig {
        TreeConfig::new(32, 4, cap).unwrap()
    }

    fn entry(q: &Quantizer, seed: u64) -> LeafEntry {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let s: Vec<f32> = (0..32)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / 16_777_216.0) * 4.0 - 2.0
            })
            .collect();
        LeafEntry::new(q.word(&s), seed as u32)
    }

    fn entries_for_root(cfg: &TreeConfig, key: u16, n: usize) -> Vec<LeafEntry> {
        let q = cfg.quantizer();
        let mut out = Vec::new();
        let mut seed = 0u64;
        while out.len() < n {
            let e = entry(q, seed);
            if e.word.root_key() == key {
                out.push(e);
            }
            seed += 1;
        }
        out
    }

    fn any_key(cfg: &TreeConfig) -> u16 {
        entry(cfg.quantizer(), 0).word.root_key()
    }

    #[test]
    fn leaf_holds_until_capacity() {
        let cfg = config(4);
        let key = any_key(&cfg);
        let es = entries_for_root(&cfg, key, 4);
        let mut node = Node::new_leaf(NodeWord::root(key, 4));
        for e in &es {
            node.insert(*e, &cfg);
        }
        assert!(node.is_leaf());
        assert_eq!(node.entries().unwrap().len(), 4);
        assert_eq!(node.entry_count(), 4);
    }

    #[test]
    fn overflow_splits_and_partitions() {
        let cfg = config(4);
        let key = any_key(&cfg);
        let es = entries_for_root(&cfg, key, 20);
        let mut node = Node::new_leaf(NodeWord::root(key, 4));
        for e in &es {
            node.insert(*e, &cfg);
        }
        assert!(!node.is_leaf(), "20 entries with capacity 4 must split");
        assert_eq!(node.entry_count(), 20);
        let mut total = 0;
        node.for_each_leaf(&mut |leaf| {
            let entries = leaf.entries().unwrap();
            total += entries.len();
            assert!(entries.len() <= cfg.leaf_capacity());
            for e in entries {
                assert!(leaf.word().contains(&e.word));
            }
        });
        assert_eq!(total, 20);
    }

    #[test]
    fn descend_finds_containing_leaf() {
        let cfg = config(2);
        let key = any_key(&cfg);
        let es = entries_for_root(&cfg, key, 12);
        let mut node = Node::new_leaf(NodeWord::root(key, 4));
        for e in &es {
            node.insert(*e, &cfg);
        }
        for e in &es {
            let leaf = node.descend(&e.word);
            assert!(leaf.is_leaf());
            assert!(leaf.word().contains(&e.word));
            assert!(leaf.entries().unwrap().iter().any(|x| x.pos == e.pos));
        }
    }

    #[test]
    fn identical_words_overflow_gracefully() {
        let cfg = config(2);
        let w = Word::new(&[5, 9, 200, 31]);
        let mut node = Node::new_leaf(NodeWord::root(w.root_key(), 4));
        for pos in 0..10 {
            node.insert(LeafEntry::new(w, pos), &cfg);
        }
        assert_eq!(node.entry_count(), 10);
        let mut leaves = 0;
        node.for_each_leaf(&mut |_| leaves += 1);
        assert!(leaves >= 1);
    }

    #[test]
    fn flush_bookkeeping_tracks_suffixes() {
        let cfg = config(10);
        let key = any_key(&cfg);
        let es = entries_for_root(&cfg, key, 6);
        let mut node = Node::new_leaf(NodeWord::root(key, 4));
        for e in &es[..4] {
            node.insert(*e, &cfg);
        }
        assert_eq!(node.unflushed_entries().len(), 4);
        node.mark_flushed(LeafChunk {
            offset: 16,
            count: 4,
        });
        assert_eq!(node.unflushed_entries().len(), 0);
        // Two more entries arrive in the next generation.
        for e in &es[4..] {
            node.insert(*e, &cfg);
        }
        assert_eq!(node.unflushed_entries(), &es[4..]);
        node.mark_flushed(LeafChunk {
            offset: 128,
            count: 2,
        });
        let p = node.payload().unwrap();
        assert_eq!(p.chunks.len(), 2);
        assert_eq!(p.flushed, 6);
    }

    #[test]
    fn flush_of_empty_suffix_adds_no_chunk() {
        let cfg = config(4);
        let key = any_key(&cfg);
        let mut node = Node::new_leaf(NodeWord::root(key, 4));
        node.mark_flushed(LeafChunk {
            offset: 0,
            count: 0,
        });
        assert!(node.payload().unwrap().chunks.is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk size mismatch")]
    fn flush_with_wrong_count_panics() {
        let cfg = config(4);
        let key = any_key(&cfg);
        let es = entries_for_root(&cfg, key, 2);
        let mut node = Node::new_leaf(NodeWord::root(key, 4));
        for e in &es {
            node.insert(*e, &cfg);
        }
        node.mark_flushed(LeafChunk {
            offset: 0,
            count: 5,
        });
    }

    #[test]
    fn split_resets_flush_state() {
        let cfg = config(4);
        let key = any_key(&cfg);
        let es = entries_for_root(&cfg, key, 5);
        let mut node = Node::new_leaf(NodeWord::root(key, 4));
        for e in &es[..4] {
            node.insert(*e, &cfg);
        }
        node.mark_flushed(LeafChunk {
            offset: 0,
            count: 4,
        });
        node.insert(es[4], &cfg); // overflow -> split
        assert!(!node.is_leaf());
        node.for_each_leaf(&mut |leaf| {
            let p = leaf.payload().unwrap();
            assert_eq!(p.flushed, 0, "children start unflushed");
            assert!(p.chunks.is_empty());
        });
    }

    #[test]
    fn children_accessor() {
        let cfg = config(1);
        let key = any_key(&cfg);
        let es = entries_for_root(&cfg, key, 6);
        let mut node = Node::new_leaf(NodeWord::root(key, 4));
        for e in &es {
            node.insert(*e, &cfg);
        }
        let (seg, zero, one) = node.children().expect("must have split");
        assert!(seg < 4);
        assert_eq!(zero.word().bits(seg), node.word().bits(seg) + 1);
        assert_eq!(one.word().bits(seg), node.word().bits(seg) + 1);
    }
}
