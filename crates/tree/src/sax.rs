//! The SAX array: the iSAX summary of every series, in position order.
//!
//! ParIS/ParIS+ keep this array in memory and answer queries by scanning it
//! with SIMD lower-bound computations ("the iSAX summarizations are also
//! stored in the array SAX (used during query answering)", §III).

use dsidx_isax::Word;

/// Position-indexed iSAX words for an entire collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaxArray {
    words: Vec<Word>,
}

impl SaxArray {
    /// Wraps a fully populated word vector (index `i` = series `i`).
    #[must_use]
    pub fn new(words: Vec<Word>) -> Self {
        Self { words }
    }

    /// Number of summarized series.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The word of series `pos`.
    #[inline]
    #[must_use]
    pub fn word(&self, pos: usize) -> &Word {
        &self.words[pos]
    }

    /// All words, position-ordered.
    #[inline]
    #[must_use]
    pub fn words(&self) -> &[Word] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_indexes() {
        let words = vec![Word::new(&[1, 2]), Word::new(&[3, 4])];
        let sax = SaxArray::new(words.clone());
        assert_eq!(sax.len(), 2);
        assert!(!sax.is_empty());
        assert_eq!(sax.word(1), &words[1]);
        assert_eq!(sax.words(), &words[..]);
    }

    #[test]
    fn empty() {
        let sax = SaxArray::new(Vec::new());
        assert!(sax.is_empty());
    }
}
