//! The iSAX tree index structure shared by ADS+, ParIS, ParIS+ and MESSI.
//!
//! The structure follows §II of the paper exactly:
//!
//! * the **root** fans out to up to `2^w` subtrees, one per combination of
//!   the first bit of each of the `w` segments (the *root key*);
//! * **inner nodes** carry a variable-cardinality [`NodeWord`] and exactly
//!   two children, distinguished by one extra bit on one segment;
//! * **leaf nodes** hold `(iSAX word, raw-series position)` entries up to a
//!   capacity; an overflowing leaf splits on the segment that yields the
//!   most balanced partition of its contents.
//!
//! The engines differ only in *how* they fill this structure (serially,
//! via receiving buffers, via per-thread buffer parts) and *how* they walk
//! it at query time — which is the paper's point, and why they share this
//! crate.

pub mod config;
pub mod entry;
pub mod flat;
pub mod index;
pub mod node;
pub mod sax;
pub mod snapshot;
pub mod stats;

pub use config::TreeConfig;
pub use entry::LeafEntry;
pub use flat::{FlatNode, FlatTree};
pub use index::Index;
pub use node::{LeafChunk, LeafPayload, Node};
pub use sax::SaxArray;

pub use dsidx_isax::{NodeWord, Quantizer, Word};
