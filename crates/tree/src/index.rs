//! The index: root slot table + configuration.

use crate::config::TreeConfig;
use crate::entry::LeafEntry;
use crate::node::Node;
use dsidx_isax::{NodeWord, Word};

/// An iSAX tree index over a raw data source.
///
/// Holds one optional subtree per root key. Engines build the subtrees —
/// serially ([`Index::insert`]) or in parallel (building `Node`s for
/// disjoint keys and assembling with [`Index::from_roots`]) — and queries
/// read them through [`Index::root`]/[`Index::occupied_roots`].
///
/// `PartialEq` compares full structure (configuration, every node, every
/// leaf's entries in order) — what build-determinism tests assert.
#[derive(Debug, PartialEq, Eq)]
pub struct Index {
    config: TreeConfig,
    roots: Vec<Option<Box<Node>>>,
    /// Keys of non-empty root slots, ascending.
    occupied: Vec<u16>,
    len: usize,
}

impl Index {
    /// An empty index.
    #[must_use]
    pub fn new(config: TreeConfig) -> Self {
        let roots = (0..config.root_count()).map(|_| None).collect();
        Self {
            config,
            roots,
            occupied: Vec::new(),
            len: 0,
        }
    }

    /// Assembles an index from subtrees built in parallel.
    ///
    /// `roots` must have exactly `config.root_count()` slots.
    ///
    /// # Panics
    /// Panics on a slot-count mismatch.
    #[must_use]
    pub fn from_roots(config: TreeConfig, roots: Vec<Option<Box<Node>>>) -> Self {
        assert_eq!(roots.len(), config.root_count(), "root slot count mismatch");
        let occupied: Vec<u16> = roots
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_some())
            .map(|(k, _)| k as u16)
            .collect();
        let len = occupied
            .iter()
            .map(|&k| roots[k as usize].as_ref().map_or(0, |n| n.entry_count()))
            .sum();
        Self {
            config,
            roots,
            occupied,
            len,
        }
    }

    /// Decomposes the index into its root slots (for staged parallel
    /// builds that grow subtrees across generations).
    #[must_use]
    pub fn into_roots(self) -> (TreeConfig, Vec<Option<Box<Node>>>) {
        (self.config, self.roots)
    }

    /// The configuration.
    #[inline]
    #[must_use]
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Total number of indexed entries.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing has been indexed.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts one entry (serial engines).
    pub fn insert(&mut self, entry: LeafEntry) {
        let key = entry.word.root_key();
        let slot = &mut self.roots[key as usize];
        match slot {
            Some(node) => node.insert(entry, &self.config),
            None => {
                let mut node =
                    Box::new(Node::new_leaf(NodeWord::root(key, self.config.segments())));
                node.insert(entry, &self.config);
                *slot = Some(node);
                let at = self.occupied.partition_point(|&k| k < key);
                self.occupied.insert(at, key);
            }
        }
        self.len += 1;
    }

    /// The subtree for a root key, if any.
    #[inline]
    #[must_use]
    pub fn root(&self, key: u16) -> Option<&Node> {
        self.roots[key as usize].as_deref()
    }

    /// Mutable access to a subtree slot (serial maintenance paths, e.g.
    /// leaf flushing).
    #[inline]
    pub fn root_mut(&mut self, key: u16) -> Option<&mut Node> {
        self.roots[key as usize].as_deref_mut()
    }

    /// Keys of the non-empty root subtrees, ascending.
    #[inline]
    #[must_use]
    pub fn occupied_roots(&self) -> &[u16] {
        &self.occupied
    }

    /// Descends to the leaf whose word region contains `word`.
    ///
    /// Returns `None` when the word's root subtree does not exist (the
    /// caller falls back to another subtree for its approximate answer).
    #[must_use]
    pub fn leaf_for(&self, word: &Word) -> Option<&Node> {
        self.root(word.root_key()).map(|n| n.descend(word))
    }

    /// Like [`Index::leaf_for`], but detours around empty subtrees so the
    /// result (if any) always holds at least one entry — what engines seed
    /// their approximate answers from.
    #[must_use]
    pub fn non_empty_leaf_for(&self, word: &Word) -> Option<&Node> {
        self.root(word.root_key())
            .and_then(|n| n.descend_non_empty(word))
    }

    /// Some non-empty leaf, when the index is non-empty (fallback for
    /// approximate answers on missing root subtrees).
    #[must_use]
    pub fn any_leaf(&self) -> Option<&Node> {
        for &key in &self.occupied {
            let mut found = None;
            self.root(key)?.for_each_leaf(&mut |leaf| {
                if found.is_none() && leaf.entry_count() > 0 {
                    found = Some(leaf);
                }
            });
            if found.is_some() {
                return found;
            }
        }
        None
    }

    /// Visits every leaf in the index.
    pub fn for_each_leaf<'a>(&'a self, f: &mut impl FnMut(&'a Node)) {
        for &key in &self.occupied {
            if let Some(node) = self.root(key) {
                node.for_each_leaf(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_isax::Quantizer;

    fn config() -> TreeConfig {
        TreeConfig::new(32, 4, 8).unwrap()
    }

    fn entry(q: &Quantizer, seed: u64) -> LeafEntry {
        let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        let s: Vec<f32> = (0..32)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / 16_777_216.0) * 4.0 - 2.0
            })
            .collect();
        LeafEntry::new(q.word(&s), seed as u32)
    }

    #[test]
    fn empty_index() {
        let idx = Index::new(config());
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        assert!(idx.occupied_roots().is_empty());
        assert!(idx.any_leaf().is_none());
    }

    #[test]
    fn serial_inserts_are_all_findable() {
        let cfg = config();
        let mut idx = Index::new(cfg.clone());
        let entries: Vec<LeafEntry> = (0..500).map(|i| entry(cfg.quantizer(), i)).collect();
        for e in &entries {
            idx.insert(*e);
        }
        assert_eq!(idx.len(), 500);
        for e in &entries {
            let leaf = idx.leaf_for(&e.word).expect("subtree exists");
            assert!(leaf.entries().unwrap().iter().any(|x| x.pos == e.pos));
        }
        // occupied_roots is sorted and deduplicated.
        let occ = idx.occupied_roots();
        assert!(occ.windows(2).all(|w| w[0] < w[1]));
        // Total across leaves equals len.
        let mut total = 0;
        idx.for_each_leaf(&mut |leaf| total += leaf.entry_count());
        assert_eq!(total, 500);
    }

    #[test]
    fn from_roots_matches_serial_build() {
        let cfg = config();
        let entries: Vec<LeafEntry> = (0..300).map(|i| entry(cfg.quantizer(), i)).collect();
        // Serial reference.
        let mut serial = Index::new(cfg.clone());
        for e in &entries {
            serial.insert(*e);
        }
        // Partitioned build.
        let mut slots: Vec<Option<Box<Node>>> = (0..cfg.root_count()).map(|_| None).collect();
        for e in &entries {
            let key = e.word.root_key() as usize;
            let node = slots[key].get_or_insert_with(|| {
                Box::new(Node::new_leaf(NodeWord::root(key as u16, cfg.segments())))
            });
            node.insert(*e, &cfg);
        }
        let built = Index::from_roots(cfg, slots);
        assert_eq!(built.len(), serial.len());
        assert_eq!(built.occupied_roots(), serial.occupied_roots());
    }

    #[test]
    fn leaf_for_missing_root_is_none() {
        let cfg = config();
        let mut idx = Index::new(cfg.clone());
        let e = entry(cfg.quantizer(), 1);
        idx.insert(e);
        // A word with a different root key than anything inserted.
        let mut symbols = [0u8; 4];
        for (i, s) in symbols.iter_mut().enumerate() {
            *s = if e.word.symbol(i) >= 128 { 0 } else { 255 };
        }
        let other = Word::new(&symbols);
        assert_ne!(other.root_key(), e.word.root_key());
        assert!(idx.leaf_for(&other).is_none());
        assert!(idx.any_leaf().is_some());
    }

    #[test]
    #[should_panic(expected = "slot count mismatch")]
    fn from_roots_validates_slot_count() {
        let _ = Index::from_roots(config(), vec![]);
    }

    #[test]
    fn into_roots_round_trips() {
        let cfg = config();
        let mut idx = Index::new(cfg.clone());
        for i in 0..50 {
            idx.insert(entry(cfg.quantizer(), i));
        }
        let (cfg2, roots) = idx.into_roots();
        let idx2 = Index::from_roots(cfg2, roots);
        assert_eq!(idx2.len(), 50);
    }
}
