//! The shared best-so-far (BSF) variable.

use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free minimum over `(squared distance, position)` pairs.
///
/// Packs `f32::to_bits(dist)` into the high 32 bits and the series position
/// into the low 32 bits of one `AtomicU64`. Distances are non-negative, and
/// for non-negative IEEE-754 floats the bit pattern order equals numeric
/// order, so an integer `fetch_min`-style CAS loop implements the float
/// minimum — including a consistent winner for exact ties (lowest
/// position).
#[derive(Debug)]
pub struct AtomicBest {
    packed: AtomicU64,
}

/// Position stored before any real candidate is recorded.
pub const NO_POSITION: u32 = u32::MAX;

#[inline]
pub(crate) fn pack(dist_sq: f32, pos: u32) -> u64 {
    debug_assert!(dist_sq >= 0.0, "distances are non-negative");
    (u64::from(dist_sq.to_bits()) << 32) | u64::from(pos)
}

impl AtomicBest {
    /// Creates a BSF holding `+inf` and no position.
    #[must_use]
    pub fn new() -> Self {
        Self {
            packed: AtomicU64::new(pack(f32::INFINITY, NO_POSITION)),
        }
    }

    /// Creates a BSF seeded with an initial candidate.
    #[must_use]
    pub fn with_initial(dist_sq: f32, pos: u32) -> Self {
        Self {
            packed: AtomicU64::new(pack(dist_sq, pos)),
        }
    }

    /// Current best squared distance (cheap; used as the pruning threshold).
    #[inline]
    #[must_use]
    pub fn dist_sq(&self) -> f32 {
        f32::from_bits((self.packed.load(Ordering::Acquire) >> 32) as u32)
    }

    /// Current `(squared distance, position)`.
    #[inline]
    #[must_use]
    pub fn get(&self) -> (f32, u32) {
        let v = self.packed.load(Ordering::Acquire);
        (f32::from_bits((v >> 32) as u32), v as u32)
    }

    /// Records a candidate; keeps the minimum. Returns `true` if this call
    /// improved the BSF.
    ///
    /// Ties on distance prefer the lower position, so concurrent executions
    /// converge to a deterministic answer.
    pub fn update(&self, dist_sq: f32, pos: u32) -> bool {
        let new = pack(dist_sq, pos);
        // ORDERING: the relaxed load and relaxed CAS-failure read are only
        // hints that seed/refresh the next CAS attempt; the successful
        // exchange is AcqRel, which is what publishes the new BSF.
        let mut cur = self.packed.load(Ordering::Relaxed);
        loop {
            if new >= cur {
                return false;
            }
            match self
                .packed
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl Default for AtomicBest {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_infinity() {
        let b = AtomicBest::new();
        assert_eq!(b.dist_sq(), f32::INFINITY);
        assert_eq!(b.get().1, NO_POSITION);
    }

    #[test]
    fn update_keeps_minimum() {
        let b = AtomicBest::new();
        assert!(b.update(5.0, 1));
        assert!(!b.update(6.0, 2));
        assert!(b.update(2.5, 3));
        assert_eq!(b.get(), (2.5, 3));
    }

    #[test]
    fn tie_prefers_lower_position() {
        let b = AtomicBest::with_initial(1.0, 10);
        assert!(b.update(1.0, 4), "same distance, lower pos wins");
        assert!(!b.update(1.0, 7));
        assert_eq!(b.get(), (1.0, 4));
    }

    #[test]
    fn zero_distance_works() {
        let b = AtomicBest::new();
        assert!(b.update(0.0, 9));
        assert_eq!(b.get(), (0.0, 9));
        assert!(!b.update(0.5, 1));
    }

    #[test]
    fn concurrent_updates_converge_to_global_min() {
        let b = AtomicBest::new();
        let threads = 8;
        let per_thread = 10_000u32;
        std::thread::scope(|s| {
            for t in 0..threads {
                let b = &b;
                s.spawn(move || {
                    // Deterministic pseudo-random distances per thread.
                    let mut state = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    for i in 0..per_thread {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        let d = ((state >> 40) as f32 / 16_777_216.0) * 100.0;
                        b.update(d, t as u32 * per_thread + i);
                    }
                });
            }
        });
        // Recompute the expected global minimum sequentially.
        let mut best = (f32::INFINITY, NO_POSITION);
        for t in 0..threads {
            let mut state = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for i in 0..per_thread {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let d = ((state >> 40) as f32 / 16_777_216.0) * 100.0;
                let pos = t as u32 * per_thread + i;
                if d < best.0 || (d == best.0 && pos < best.1) {
                    best = (d, pos);
                }
            }
        }
        assert_eq!(b.get(), best);
    }
}
