//! A persistent worker pool with scoped broadcasts.
//!
//! The paper's engines create their worker threads once and reuse them for
//! every query; spawning OS threads per query would dominate millisecond
//! query times (on some sandboxed kernels a single spawn costs ~0.5 ms).
//! [`WorkerPool::broadcast`] runs one closure on every worker and returns
//! when all of them finish — the moral equivalent of `std::thread::scope`,
//! but against long-lived threads.
//!
//! Jobs are published through one shared slot guarded by a generation
//! counter, and parked workers are woken by a **single** `notify_all` —
//! not one wake syscall per worker. Waking a parked thread costs tens of
//! microseconds here, so per-worker wakes would stagger the start of every
//! broadcast by `workers × wake`; with one shared condition variable the
//! whole pool starts on one notification, and the batched query schedules
//! (`dsidx-query::batch`) amortize even that single wake over B queries.

use dsidx_obs::registry::{Counter, Histogram};
use dsidx_obs::trace;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Process-wide pool metrics, registered once in the obs registry.
struct PoolMetrics {
    broadcasts: &'static Counter,
    broadcast_nanos: &'static Histogram,
    busy: &'static Counter,
    idle: &'static Counter,
    parked: &'static Counter,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        use dsidx_obs::registry::{counter, exponential_bounds, histogram};
        PoolMetrics {
            broadcasts: counter(
                crate::metrics::POOL_BROADCASTS_TOTAL,
                "Pool broadcasts issued across all pools",
            ),
            broadcast_nanos: histogram(
                crate::metrics::POOL_BROADCAST_NANOS,
                "Wall nanoseconds per pool broadcast, publish to join",
                // 1us .. ~4s in 4x steps.
                &exponential_bounds(1_000, 4, 12),
            ),
            busy: counter(
                crate::metrics::POOL_WORKER_BUSY_NANOS_TOTAL,
                "Nanoseconds workers spent executing broadcast tasks",
            ),
            idle: counter(
                crate::metrics::POOL_WORKER_IDLE_NANOS_TOTAL,
                "Nanoseconds workers spent spinning for the next broadcast",
            ),
            parked: counter(
                crate::metrics::POOL_WORKER_PARKED_NANOS_TOTAL,
                "Nanoseconds workers spent parked on the pool condvar",
            ),
        }
    })
}

fn nanos(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Per-worker running utilization totals, written by the worker itself at
/// each state transition (spin → park → run). Whole nanosecond intervals,
/// disjoint by construction, so `busy + idle + parked` tracks the
/// worker's lifetime.
#[derive(Debug, Default)]
struct WorkerAccounting {
    busy: AtomicU64,
    idle: AtomicU64,
    parked: AtomicU64,
    broadcasts: AtomicU64,
}

/// A point-in-time snapshot of one worker's utilization counters (see
/// [`WorkerPool::worker_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Nanoseconds spent executing broadcast tasks.
    pub busy_nanos: u64,
    /// Nanoseconds spent in the post-job spin window (polling, not
    /// parked).
    pub idle_nanos: u64,
    /// Nanoseconds spent parked on the pool condvar.
    pub parked_nanos: u64,
    /// Broadcast tasks this worker has completed.
    pub broadcasts_served: u64,
}

/// A lifetime-erased `Fn(usize worker_id)` pointer plus completion state.
struct Job {
    /// Type- and lifetime-erased pointer to the caller's closure. Valid for
    /// the duration of the broadcast because `broadcast` blocks until
    /// `remaining == 0`.
    task: *const (dyn Fn(usize) + Sync),
    remaining: AtomicUsize,
    panicked: AtomicBool,
    done: Mutex<bool>,
    cv: Condvar,
}

// SAFETY: the raw pointer is only dereferenced while the owning `broadcast`
// call is blocked, and the pointee is `Sync`.
unsafe impl Send for Job {}
// SAFETY: as above — all shared access to the pointee is `&`-only and the
// pointee is `Sync`; every other field is itself `Sync`.
unsafe impl Sync for Job {}

/// The published-job slot every worker watches.
struct Slot {
    /// Generation of the job currently in `job` (0 = none yet). A worker
    /// runs a job exactly once by comparing against the last generation it
    /// executed.
    seq: u64,
    /// The current job; cleared by the broadcaster once complete, so the
    /// erased closure pointer never outlives its broadcast.
    job: Option<Arc<Job>>,
}

/// State shared between the broadcaster and every worker.
struct PoolShared {
    /// Mirror of `slot.seq`, readable without the lock — what the workers'
    /// spin fast-path polls between jobs.
    seq: AtomicU64,
    slot: Mutex<Slot>,
    /// Workers park here; one `notify_all` per broadcast wakes all of them.
    cv: Condvar,
    shutdown: AtomicBool,
    /// One accounting slot per worker, index-aligned with worker ids.
    workers: Vec<WorkerAccounting>,
}

/// A fixed-size pool of persistent worker threads.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    created: Instant,
    /// Serializes broadcasts: tasks may contain cross-worker phase barriers
    /// (see `SpinBarrier`), and two interleaved broadcasts would then each
    /// hold some workers at their own barrier — a deadlock. One broadcast
    /// at a time makes every worker run the same task to completion.
    run_lock: Mutex<()>,
}

impl WorkerPool {
    /// Spawns `threads` workers (`threads >= 1`).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "pool needs at least one worker");
        let shared = Arc::new(PoolShared {
            seq: AtomicU64::new(0),
            slot: Mutex::new(Slot { seq: 0, job: None }),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers: (0..threads).map(|_| WorkerAccounting::default()).collect(),
        });
        let mut handles = Vec::with_capacity(threads);
        for worker_id in 0..threads {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                let mut last_seq = 0u64;
                let me = &shared.workers[worker_id];
                loop {
                    // Fast path: after finishing a job, poll the published
                    // generation briefly before parking. Re-waking a parked
                    // thread costs tens of microseconds, which would
                    // dominate back-to-back sub-millisecond queries.
                    // Utilization accounting: the spin window is *idle*
                    // time, the condvar wait below is *parked* time, the
                    // task run is *busy* time — disjoint intervals flushed
                    // at each transition, so their sum tracks the worker's
                    // wall-clock lifetime.
                    let spin_start = Instant::now();
                    for spin in 0..4096u32 {
                        if shared.seq.load(Ordering::Acquire) != last_seq
                            || shared.shutdown.load(Ordering::Acquire)
                        {
                            break;
                        }
                        if spin % 64 == 63 {
                            std::thread::yield_now();
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    let idle = nanos(spin_start.elapsed());
                    // ORDERING: relaxed — per-worker stat cell written only
                    // by its owner thread; readers accept lag (see
                    // `worker_stats`).
                    me.idle.fetch_add(idle, Ordering::Relaxed);
                    // Slow path: park on the shared condvar until a new
                    // generation is published (or shutdown).
                    let park_start = Instant::now();
                    let job = {
                        let mut slot = shared.slot.lock();
                        while slot.seq == last_seq && !shared.shutdown.load(Ordering::Acquire) {
                            shared.cv.wait(&mut slot);
                        }
                        if slot.seq == last_seq {
                            return; // shutdown with no new job
                        }
                        last_seq = slot.seq;
                        Arc::clone(slot.job.as_ref().expect("published generation has a job"))
                    };
                    let parked = nanos(park_start.elapsed());
                    // ORDERING: relaxed — owner-thread stat cell, as above.
                    me.parked.fetch_add(parked, Ordering::Relaxed);
                    // SAFETY: see `Job.task` — the broadcaster keeps the
                    // closure alive until every worker is done.
                    let task = unsafe { &*job.task };
                    let busy_start = Instant::now();
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(worker_id)));
                    let busy = nanos(busy_start.elapsed());
                    // ORDERING: relaxed — owner-thread stat cells, as above.
                    me.busy.fetch_add(busy, Ordering::Relaxed);
                    me.broadcasts.fetch_add(1, Ordering::Relaxed);
                    if dsidx_obs::enabled() {
                        let m = pool_metrics();
                        m.busy.add(busy);
                        m.idle.add(idle);
                        m.parked.add(parked);
                    }
                    if result.is_err() {
                        job.panicked.store(true, Ordering::Release);
                    }
                    if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        *job.done.lock() = true;
                        job.cv.notify_all();
                    }
                }
            }));
        }
        Self {
            shared,
            handles,
            created: Instant::now(),
            run_lock: Mutex::new(()),
        }
    }

    /// Number of workers.
    #[must_use]
    pub fn size(&self) -> usize {
        self.handles.len()
    }

    /// Nanoseconds since the pool's threads were spawned.
    #[must_use]
    pub fn uptime_nanos(&self) -> u64 {
        nanos(self.created.elapsed())
    }

    /// Per-worker utilization snapshots, index-aligned with worker ids.
    ///
    /// Each worker's `busy + idle + parked` covers its completed
    /// state intervals; immediately after a broadcast joins, that sum
    /// approximates the pool's [`uptime_nanos`](Self::uptime_nanos) (the
    /// in-progress interval — the spin window or condvar wait the worker
    /// is currently inside — is not yet flushed).
    #[must_use]
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.shared
            .workers
            .iter()
            .map(|w| WorkerStats {
                // ORDERING: relaxed — monotone stat reads; the docs above
                // already promise snapshots may trail in-progress work.
                busy_nanos: w.busy.load(Ordering::Relaxed),
                idle_nanos: w.idle.load(Ordering::Relaxed),
                parked_nanos: w.parked.load(Ordering::Relaxed),
                broadcasts_served: w.broadcasts.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Runs `task(worker_id)` on every worker and returns when all have
    /// finished. `task` may borrow from the caller's stack.
    ///
    /// Broadcasts serialize: concurrent callers queue behind each other.
    /// Never call `broadcast` from inside a task running on the same pool —
    /// that self-deadlocks (the task would wait for its own pool).
    ///
    /// # Panics
    /// Panics if any worker's task panicked (after all workers finished).
    pub fn broadcast(&self, task: &(dyn Fn(usize) + Sync)) {
        let _serial = self.run_lock.lock();
        let t0 = dsidx_obs::enabled().then(Instant::now);
        let n = self.handles.len();
        // SAFETY: lifetime erasure is sound because this call blocks below
        // until every worker has dropped its use of the pointer.
        let erased: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        };
        let job = Arc::new(Job {
            task: erased,
            remaining: AtomicUsize::new(n),
            panicked: AtomicBool::new(false),
            done: Mutex::new(false),
            cv: Condvar::new(),
        });
        {
            let mut slot = self.shared.slot.lock();
            slot.seq += 1;
            slot.job = Some(Arc::clone(&job));
            // Publish under the lock so a worker checking the predicate
            // before parking cannot miss the generation bump.
            self.shared.seq.store(slot.seq, Ordering::Release);
        }
        // One wake for the whole pool (spinning workers never reach the
        // condvar and pick the job up from the atomic generation alone).
        self.shared.cv.notify_all();
        let mut done = job.done.lock();
        while !*done {
            job.cv.wait(&mut done);
        }
        drop(done);
        // Drop the slot's reference so the erased closure pointer does not
        // outlive this call.
        self.shared.slot.lock().job = None;
        if let Some(t0) = t0 {
            let elapsed = nanos(t0.elapsed());
            let m = pool_metrics();
            m.broadcasts.inc();
            m.broadcast_nanos.observe(elapsed);
            if trace::enabled() {
                trace::emit(
                    "broadcast",
                    &[
                        ("workers", trace::Value::U64(n as u64)),
                        ("nanos", trace::Value::U64(elapsed)),
                    ],
                );
            }
        }
        assert!(
            !job.panicked.load(Ordering::Acquire),
            "a worker task panicked during broadcast"
        );
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let _slot = self.shared.slot.lock();
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Returns the process-wide pool with exactly `threads` workers, creating
/// it on first use. Pools are cached per size (queries sweeping core
/// counts, as in the paper's figures, reuse them).
#[must_use]
pub fn global(threads: usize) -> Arc<WorkerPool> {
    let mut pools = pool_cache().lock();
    if let Some((_, pool)) = pools.iter().find(|(n, _)| *n == threads) {
        return Arc::clone(pool);
    }
    let pool = Arc::new(WorkerPool::new(threads));
    pools.push((threads, Arc::clone(&pool)));
    pool
}

type PoolCache = Mutex<Vec<(usize, Arc<WorkerPool>)>>;

fn pool_cache() -> &'static PoolCache {
    static POOLS: OnceLock<PoolCache> = OnceLock::new();
    POOLS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Total worker threads alive across every cached [`global`] pool.
///
/// The oversubscription guard for sharded indexes: N shards built or
/// searched at the same thread count must route through *one* cached pool,
/// so this total stays flat as shards multiply (rather than growing by
/// `N × available_parallelism()`).
#[must_use]
pub fn cached_worker_total() -> usize {
    pool_cache().lock().iter().map(|(n, _)| *n).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn broadcast_runs_every_worker_once() {
        let pool = WorkerPool::new(8);
        let seen = [const { AtomicU64::new(0) }; 8];
        pool.broadcast(&|id| {
            seen[id].fetch_add(1, Ordering::Relaxed);
        });
        for s in &seen {
            assert_eq!(s.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn broadcast_can_borrow_stack_data() {
        let pool = WorkerPool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let total = AtomicU64::new(0);
        pool.broadcast(&|id| {
            let part: u64 = data.iter().skip(id).step_by(4).sum();
            total.fetch_add(part, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 1000 * 999 / 2);
    }

    #[test]
    fn sequential_broadcasts_reuse_workers() {
        let pool = WorkerPool::new(6);
        let counter = AtomicU64::new(0);
        for _ in 0..50 {
            pool.broadcast(&|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn sequential_broadcasts_reuse_parked_workers() {
        // The micro-test behind the single-wake design: let the spin
        // window expire so every worker actually parks on the condvar,
        // then broadcast again — the same OS threads (no respawn, no lost
        // worker) must all pick the job up from one notify_all.
        let pool = WorkerPool::new(4);
        let ids: Mutex<std::collections::HashSet<std::thread::ThreadId>> =
            Mutex::new(std::collections::HashSet::new());
        pool.broadcast(&|_| {
            ids.lock().insert(std::thread::current().id());
        });
        let first: std::collections::HashSet<_> = ids.lock().clone();
        assert_eq!(first.len(), 4);
        for _ in 0..3 {
            // Far longer than the 4096-iteration spin window at any clock.
            std::thread::sleep(std::time::Duration::from_millis(50));
            let hits = AtomicU64::new(0);
            pool.broadcast(&|_| {
                let id = std::thread::current().id();
                assert!(ids.lock().contains(&id), "job ran on a non-pool thread");
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 4, "a parked worker was lost");
        }
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = WorkerPool::new(1);
        let hit = AtomicU64::new(0);
        pool.broadcast(&|id| {
            assert_eq!(id, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_broadcasts_with_internal_barriers_do_not_deadlock() {
        // Regression test: interleaved broadcasts once deadlocked tasks
        // that synchronize across workers (each broadcast held a subset of
        // workers at its own barrier). Broadcast serialization fixes it.
        let pool = WorkerPool::new(4);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let pool = &pool;
                s.spawn(move || {
                    for _ in 0..20 {
                        let barrier = crate::SpinBarrier::new(4);
                        let after = AtomicU64::new(0);
                        pool.broadcast(&|_| {
                            barrier.wait();
                            after.fetch_add(1, Ordering::Relaxed);
                        });
                        assert_eq!(after.load(Ordering::Relaxed), 4);
                    }
                });
            }
        });
    }

    #[test]
    fn global_pools_are_cached_per_size() {
        let a = global(3);
        let b = global(3);
        assert!(Arc::ptr_eq(&a, &b));
        let c = global(5);
        assert_eq!(c.size(), 5);
        assert!(!Arc::ptr_eq(&a, &c));
        // Repeated lookups at cached sizes never grow the worker census.
        let before = cached_worker_total();
        assert!(before >= 8, "3- and 5-worker pools are cached: {before}");
        for _ in 0..16 {
            let _ = global(3);
            let _ = global(5);
        }
        assert_eq!(cached_worker_total(), before);
    }

    #[test]
    #[should_panic(expected = "worker task panicked")]
    fn worker_panic_propagates() {
        let pool = WorkerPool::new(4);
        pool.broadcast(&|id| {
            assert!(id != 2, "boom");
        });
    }

    #[test]
    fn pool_survives_a_panicked_broadcast() {
        let pool = WorkerPool::new(4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(&|_| panic!("first broadcast fails"));
        }));
        assert!(r.is_err());
        // Workers are still alive and usable.
        let counter = AtomicU64::new(0);
        pool.broadcast(&|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_time_accounting_covers_pool_lifetime() {
        let pool = WorkerPool::new(4);
        // A few broadcasts with measurable busy time...
        for _ in 0..3 {
            pool.broadcast(&|_| {
                std::thread::sleep(std::time::Duration::from_millis(5));
            });
        }
        // ...then let every worker fall past the spin window and park...
        std::thread::sleep(std::time::Duration::from_millis(60));
        // ...and flush the parked intervals with one final broadcast.
        pool.broadcast(&|_| {});
        let uptime = pool.uptime_nanos();
        let stats = pool.worker_stats();
        assert_eq!(stats.len(), 4);
        for (id, w) in stats.iter().enumerate() {
            assert_eq!(w.broadcasts_served, 4, "worker {id} missed a broadcast");
            // 3 broadcasts slept 5 ms each; allow for coarse clocks.
            assert!(
                w.busy_nanos >= 10_000_000,
                "worker {id} busy time implausibly low: {} ns",
                w.busy_nanos
            );
            assert!(
                w.parked_nanos >= 30_000_000,
                "worker {id} never parked through the 60 ms gap: {} ns",
                w.parked_nanos
            );
            // The three states are disjoint intervals of the worker's
            // lifetime; right after a broadcast joins, their sum must
            // approximate the pool's wall-clock uptime. Slack covers the
            // unflushed in-progress spin window and spawn stagger.
            let sum = w.busy_nanos + w.idle_nanos + w.parked_nanos;
            assert!(
                sum <= uptime + uptime / 4,
                "worker {id} accounted more time than the pool lived: {sum} > {uptime} ns"
            );
            assert!(
                sum >= uptime * 7 / 10,
                "worker {id} accounting leaks time: {sum} < 70% of {uptime} ns"
            );
        }
    }

    #[test]
    fn drop_joins_parked_workers() {
        let pool = WorkerPool::new(3);
        pool.broadcast(&|_| {});
        // Give workers time to fall past the spin window and park, then
        // drop: shutdown must wake and join all of them promptly.
        std::thread::sleep(std::time::Duration::from_millis(30));
        drop(pool);
    }
}
