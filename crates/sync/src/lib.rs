//! Concurrency substrate for the parallel engines.
//!
//! The paper's algorithms rest on three tiny synchronization devices, all
//! implemented (and stress-tested) here:
//!
//! * [`AtomicBest`] — the shared BSF ("best-so-far") variable: a lock-free
//!   minimum over `(squared distance, position)` pairs, updated by every
//!   worker that finds a closer candidate.
//! * [`WorkQueue`] — Fetch&Inc work claiming: "chunks are assigned to index
//!   workers one after the other (using Fetch&Inc)" (§III).
//! * [`SyncSlice`] — a shared slice written at *disjoint* indices by many
//!   threads without locks, used for the SAX array whose entry `i` is owned
//!   by whichever worker summarizes series `i`.
//!
//! On top of these, [`topk`] generalizes the BSF to exact k-NN: the
//! [`Pruner`] trait abstracts "threshold read + candidate insert" (both
//! [`AtomicBest`] and [`SharedTopK`] implement it), so the query kernels
//! answer 1-NN and k-NN with the same code.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod barrier;
pub mod best;
pub mod metrics;
pub mod pool;
pub mod queue;
pub mod slice;
pub mod topk;

pub use barrier::SpinBarrier;
pub use best::AtomicBest;
pub use pool::WorkerPool;
pub use queue::WorkQueue;
pub use slice::SyncSlice;
pub use topk::{OffsetTopK, Pruner, SharedTopK};
