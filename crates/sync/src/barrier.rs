//! A reusable spin barrier for short phase hand-offs inside one broadcast.
//!
//! Query phases are sub-millisecond; parking threads on an OS barrier
//! between them costs more than the phases themselves on slow-wakeup
//! kernels. This barrier spins — only use it between phases that are both
//! short and CPU-bound, with at most one waiter per core.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A cyclic spin barrier for exactly `size` participants.
#[derive(Debug)]
pub struct SpinBarrier {
    size: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier for `size` participants (`size >= 1`).
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "barrier needs at least one participant");
        Self {
            size,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until all `size` participants have called `wait`. Returns
    /// `true` for exactly one participant per cycle (the leader).
    ///
    /// Spins briefly, then yields: on machines where logical cores share
    /// execution units (or the sandbox oversubscribes vCPUs), a hot spin
    /// by finished workers measurably slows the stragglers it waits for.
    pub fn wait(&self) -> bool {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.size {
            // Last to arrive: reset and release the others.
            // ORDERING: relaxed reset is safe — waiters cannot touch
            // `arrived` again until they observe the generation bump, and
            // that Release store (with their Acquire load) orders the
            // reset before any next-cycle arrival.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                if spins < 64 {
                    std::hint::spin_loop();
                    spins += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_participant_never_blocks() {
        let b = SpinBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn phases_are_totally_ordered() {
        let threads = 8;
        let b = SpinBarrier::new(threads);
        let phase_a = AtomicU64::new(0);
        let phase_b = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    phase_a.fetch_add(1, Ordering::Relaxed);
                    b.wait();
                    // Every A increment must be visible before any B runs.
                    assert_eq!(phase_a.load(Ordering::Relaxed), threads as u64);
                    phase_b.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(phase_b.load(Ordering::Relaxed), threads as u64);
    }

    #[test]
    fn exactly_one_leader_per_cycle() {
        let threads = 6;
        let cycles = 50;
        let b = SpinBarrier::new(threads);
        let leaders = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..cycles {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), cycles as u64);
    }
}
