//! The concurrent bounded top-k collector and the [`Pruner`] abstraction.
//!
//! Exact k-NN generalizes 1-NN in exactly one place: the pruning threshold
//! is the *k-th* best distance instead of the single best. [`Pruner`]
//! captures that contract — a cheap threshold read for the hot
//! early-abandon checks plus a candidate insert — so every query kernel
//! loop is written once and answers both query shapes. [`AtomicBest`]
//! implements it for k = 1 (lock-free, unchanged semantics);
//! [`SharedTopK`] implements it for general k.

use crate::best::{pack, AtomicBest};
use parking_lot::Mutex;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A shared, concurrently updatable pruning target for exact NN queries.
///
/// Workers read [`threshold_sq`](Pruner::threshold_sq) to skip candidates
/// whose lower bound cannot improve the result set, and feed survivors'
/// real distances through [`insert`](Pruner::insert). Implementations
/// guarantee a *deterministic* final result: whatever the insertion order
/// or thread interleaving, equal inputs produce equal outputs (distance
/// ties prefer the lowest position).
pub trait Pruner: Sync {
    /// Current pruning threshold: a candidate whose (lower-bound or real)
    /// squared distance is `>= threshold_sq()` cannot improve the result
    /// set, so scans skip it and real-distance kernels abandon at it. The
    /// threshold only decreases over a query's lifetime, so a stale read
    /// is always sound (it merely prunes less).
    fn threshold_sq(&self) -> f32;

    /// Records a candidate's fully computed squared distance. Returns
    /// `true` iff the result set improved.
    fn insert(&self, dist_sq: f32, pos: u32) -> bool;
}

impl Pruner for AtomicBest {
    #[inline]
    fn threshold_sq(&self) -> f32 {
        self.dist_sq()
    }

    #[inline]
    fn insert(&self, dist_sq: f32, pos: u32) -> bool {
        self.update(dist_sq, pos)
    }
}

/// A thread-safe bounded collector of the k smallest `(squared distance,
/// position)` pairs.
///
/// Internally a mutex'd max-heap of packed `(dist bits, position)` words
/// (the same packing as [`AtomicBest`], so ordering — including the
/// lowest-position tie-break — is identical), plus a lock-free mirror of
/// the current k-th distance in an `AtomicU32` of `f32` bits. The hot
/// early-abandon read ([`Pruner::threshold_sq`]) is a single atomic load;
/// the mutex is only touched by inserts that might change the set, which
/// become rare as the threshold tightens.
///
/// # Determinism
///
/// The exposed threshold is one ulp *above* the k-th distance once k
/// candidates are held. A candidate tying the k-th distance therefore
/// still reaches [`insert`](Pruner::insert), where the packed comparison
/// lets a lower position replace the incumbent — so concurrent executions
/// converge to the brute-force answer (k smallest by `(dist, pos)`),
/// independent of processing order. At k = 1 this degenerates to
/// [`AtomicBest`]-equivalent behavior with the same tie-break.
///
/// Positions are unique: re-inserting a position already in the set is a
/// no-op (the first recorded distance wins), so callers may freely
/// re-verify positions already paid for during BSF seeding.
#[derive(Debug)]
pub struct SharedTopK {
    k: usize,
    /// Max-heap over packed words: the root is the *worst* held pair.
    heap: Mutex<BinaryHeap<u64>>,
    /// Bits of the k-th smallest distance; `+inf` until k pairs are held.
    threshold_bits: AtomicU32,
}

impl SharedTopK {
    /// Creates a collector for the `k` nearest candidates.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be non-zero");
        Self {
            k,
            heap: Mutex::new(BinaryHeap::with_capacity(k + 1)),
            threshold_bits: AtomicU32::new(f32::INFINITY.to_bits()),
        }
    }

    /// The `k` this collector was created with.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of pairs currently held (at most `k`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.lock().len()
    }

    /// `true` while no pair has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current k-th smallest squared distance; `+inf` until `k` pairs
    /// are held. This is the exact boundary value — the pruning threshold
    /// exposed through [`Pruner::threshold_sq`] sits one ulp above it so
    /// boundary ties stay reachable (see the type docs).
    #[must_use]
    pub fn kth_dist_sq(&self) -> f32 {
        f32::from_bits(self.threshold_bits.load(Ordering::Acquire))
    }

    /// The held pairs as `(squared distance, position)`, sorted ascending
    /// by `(dist, pos)` — the final k-NN answer once the query finishes.
    #[must_use]
    pub fn matches(&self) -> Vec<(f32, u32)> {
        let mut packed: Vec<u64> = self.heap.lock().iter().copied().collect();
        packed.sort_unstable();
        packed
            .into_iter()
            .map(|w| (f32::from_bits((w >> 32) as u32), w as u32))
            .collect()
    }
}

impl Pruner for SharedTopK {
    #[inline]
    fn threshold_sq(&self) -> f32 {
        let bits = self.threshold_bits.load(Ordering::Acquire);
        if bits == f32::INFINITY.to_bits() {
            f32::INFINITY
        } else {
            // One ulp above the k-th distance: distances are non-negative,
            // so bit-incrementing is `next_up` (cheap, branch-free).
            f32::from_bits(bits + 1)
        }
    }

    fn insert(&self, dist_sq: f32, pos: u32) -> bool {
        debug_assert!(
            dist_sq >= 0.0 && dist_sq.is_finite(),
            "distances are finite and non-negative"
        );
        // Lock-free reject: distances are finite, so a finite threshold
        // means the heap is full; strictly worse candidates cannot improve
        // the set. Ties fall through — a lower position may still win.
        if dist_sq.to_bits() > self.threshold_bits.load(Ordering::Acquire) {
            return false;
        }
        let new = pack(dist_sq, pos);
        let mut heap = self.heap.lock();
        // Positions are unique; the first recorded distance wins (seeding
        // and scanning may compute the same series with different
        // accumulation orders, differing in the last ulp).
        if heap.iter().any(|&w| w as u32 == pos) {
            return false;
        }
        if heap.len() < self.k {
            heap.push(new);
            if heap.len() == self.k {
                let worst = *heap.peek().expect("non-empty");
                self.threshold_bits
                    .store((worst >> 32) as u32, Ordering::Release);
            }
            return true;
        }
        let worst = *heap.peek().expect("k > 0");
        if new >= worst {
            return false;
        }
        heap.pop();
        heap.push(new);
        let worst = *heap.peek().expect("non-empty");
        self.threshold_bits
            .store((worst >> 32) as u32, Ordering::Release);
        true
    }
}

/// A position-offsetting view over a shared [`SharedTopK`].
///
/// Scatter-gather search partitions one dataset across shards, each of
/// which runs the ordinary query kernels over *local* positions
/// `0..shard_len`. To share one best-so-far across shards mid-flight, every
/// shard's kernel must feed the *same* collector — but with **global**
/// positions, or the collector's position-dedup and lowest-position
/// tie-break would conflate series from different shards. `OffsetTopK`
/// wraps an `Arc<SharedTopK>` plus the shard's global base offset: inserts
/// rebase `pos → base + pos` on the way in, threshold reads pass straight
/// through. A standalone (non-sharded) query uses [`OffsetTopK::fresh`],
/// which is a plain `SharedTopK` at base 0.
#[derive(Debug, Clone)]
pub struct OffsetTopK {
    inner: Arc<SharedTopK>,
    base: u32,
}

impl OffsetTopK {
    /// A fresh, unshared collector at base 0 — behaviorally identical to
    /// `SharedTopK::new(k)`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn fresh(k: usize) -> Self {
        Self::shared(Arc::new(SharedTopK::new(k)), 0)
    }

    /// A view over `inner` that rebases inserted positions by `base`
    /// (the owning shard's first global position).
    #[must_use]
    pub fn shared(inner: Arc<SharedTopK>, base: u32) -> Self {
        Self { inner, base }
    }

    /// The underlying shared collector (positions in it are global).
    #[must_use]
    pub fn inner(&self) -> &SharedTopK {
        &self.inner
    }

    /// The global position this view's local position 0 maps to.
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// See [`Pruner::threshold_sq`].
    #[inline]
    #[must_use]
    pub fn threshold_sq(&self) -> f32 {
        Pruner::threshold_sq(self.inner.as_ref())
    }

    /// Records a candidate at *local* position `pos`; see
    /// [`Pruner::insert`].
    #[inline]
    pub fn insert(&self, dist_sq: f32, pos: u32) -> bool {
        Pruner::insert(self.inner.as_ref(), dist_sq, self.base + pos)
    }

    /// See [`SharedTopK::k`].
    #[must_use]
    pub fn k(&self) -> usize {
        self.inner.k()
    }

    /// See [`SharedTopK::len`].
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// See [`SharedTopK::is_empty`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// See [`SharedTopK::kth_dist_sq`].
    #[must_use]
    pub fn kth_dist_sq(&self) -> f32 {
        self.inner.kth_dist_sq()
    }

    /// The held pairs with **global** positions; see
    /// [`SharedTopK::matches`].
    #[must_use]
    pub fn matches(&self) -> Vec<(f32, u32)> {
        self.inner.matches()
    }
}

impl Pruner for OffsetTopK {
    #[inline]
    fn threshold_sq(&self) -> f32 {
        OffsetTopK::threshold_sq(self)
    }

    #[inline]
    fn insert(&self, dist_sq: f32, pos: u32) -> bool {
        OffsetTopK::insert(self, dist_sq, pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(t: &SharedTopK) -> Vec<(f32, u32)> {
        t.matches()
    }

    #[test]
    fn below_k_everything_is_kept_and_threshold_stays_infinite() {
        let t = SharedTopK::new(3);
        assert!(t.is_empty());
        assert!(t.insert(5.0, 1));
        assert!(t.insert(2.0, 2));
        assert_eq!(t.kth_dist_sq(), f32::INFINITY);
        assert_eq!(t.threshold_sq(), f32::INFINITY);
        assert_eq!(collect(&t), vec![(2.0, 2), (5.0, 1)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.k(), 3);
    }

    #[test]
    fn threshold_tracks_the_kth_distance() {
        let t = SharedTopK::new(2);
        t.insert(5.0, 1);
        t.insert(2.0, 2);
        assert_eq!(t.kth_dist_sq(), 5.0);
        // Threshold is one ulp above the boundary.
        assert!(t.threshold_sq() > 5.0);
        assert_eq!(t.threshold_sq(), f32::from_bits(5.0f32.to_bits() + 1));
        // An improvement evicts the worst and tightens the threshold.
        assert!(t.insert(3.0, 7));
        assert_eq!(t.kth_dist_sq(), 3.0);
        assert_eq!(collect(&t), vec![(2.0, 2), (3.0, 7)]);
        // Strictly worse candidates are rejected without effect.
        assert!(!t.insert(4.0, 9));
        assert_eq!(collect(&t), vec![(2.0, 2), (3.0, 7)]);
    }

    #[test]
    fn boundary_tie_prefers_lower_position() {
        let t = SharedTopK::new(2);
        t.insert(1.0, 5);
        t.insert(3.0, 9);
        // Same distance as the current worst, lower position: replaces.
        assert!(t.insert(3.0, 4));
        assert_eq!(collect(&t), vec![(1.0, 5), (3.0, 4)]);
        // Same distance, higher position: rejected.
        assert!(!t.insert(3.0, 6));
        assert_eq!(collect(&t), vec![(1.0, 5), (3.0, 4)]);
    }

    #[test]
    fn duplicate_positions_are_not_double_counted() {
        let t = SharedTopK::new(3);
        assert!(t.insert(2.0, 1));
        assert!(!t.insert(2.0, 1), "same position is a no-op");
        // Even with a (rounding-) different distance, first record wins.
        assert!(!t.insert(1.9999999, 1));
        assert_eq!(collect(&t), vec![(2.0, 1)]);
    }

    #[test]
    fn k1_matches_atomic_best_including_ties() {
        let updates = [(4.0f32, 9u32), (4.0, 3), (2.0, 8), (2.0, 1), (7.0, 0)];
        let best = AtomicBest::new();
        let topk = SharedTopK::new(1);
        for &(d, p) in &updates {
            best.update(d, p);
            topk.insert(d, p);
        }
        let (d, p) = best.get();
        assert_eq!(collect(&topk), vec![(d, p)]);
        assert_eq!((d, p), (2.0, 1));
    }

    #[test]
    fn k_larger_than_inserts_returns_everything_sorted() {
        let t = SharedTopK::new(100);
        t.insert(3.0, 3);
        t.insert(1.0, 1);
        t.insert(2.0, 2);
        assert_eq!(collect(&t), vec![(1.0, 1), (2.0, 2), (3.0, 3)]);
        assert_eq!(t.kth_dist_sq(), f32::INFINITY);
    }

    #[test]
    #[should_panic(expected = "k must be non-zero")]
    fn zero_k_panics() {
        let _ = SharedTopK::new(0);
    }

    #[test]
    fn concurrent_inserts_equal_sequential_sort_truncate() {
        let k = 10;
        let threads = 8;
        let per_thread = 5_000u32;
        let t = SharedTopK::new(k);
        let dist_of = |pos: u32| -> f32 {
            // Deterministic, tie-heavy (many positions share a distance).
            ((pos.wrapping_mul(2_654_435_761) >> 24) % 64) as f32 * 0.25
        };
        std::thread::scope(|s| {
            for w in 0..threads {
                let t = &t;
                s.spawn(move || {
                    for i in 0..per_thread {
                        let pos = w as u32 * per_thread + i;
                        t.insert(dist_of(pos), pos);
                    }
                });
            }
        });
        let mut reference: Vec<(f32, u32)> = (0..threads as u32 * per_thread)
            .map(|pos| (dist_of(pos), pos))
            .collect();
        reference.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        reference.truncate(k);
        assert_eq!(collect(&t), reference);
    }

    #[test]
    fn offset_views_rebase_positions_into_one_collector() {
        // Two "shards" of 10 series each share one collector; local
        // position 3 in the second shard is global 13.
        let shared = Arc::new(SharedTopK::new(2));
        let s0 = OffsetTopK::shared(Arc::clone(&shared), 0);
        let s1 = OffsetTopK::shared(Arc::clone(&shared), 10);
        assert!(s0.insert(4.0, 3));
        assert!(s1.insert(1.0, 3));
        assert_eq!(shared.matches(), vec![(1.0, 13), (4.0, 3)]);
        assert_eq!(s0.matches(), s1.matches());
        // A find in one shard tightens the threshold the other reads.
        assert!(s1.insert(2.0, 0));
        assert!(s0.threshold_sq() < 4.0);
        assert_eq!(s0.kth_dist_sq(), 2.0);
        assert_eq!(s1.base(), 10);
        assert_eq!(s0.k(), 2);
        assert_eq!(s0.len(), 2);
        assert!(!s0.is_empty());
    }

    #[test]
    fn offset_dedup_is_global_not_local() {
        // The same *local* position in two different shards is two
        // different series — both must be admissible.
        let shared = Arc::new(SharedTopK::new(3));
        let s0 = OffsetTopK::shared(Arc::clone(&shared), 0);
        let s1 = OffsetTopK::shared(Arc::clone(&shared), 100);
        assert!(s0.insert(1.0, 7));
        assert!(s1.insert(2.0, 7));
        assert_eq!(shared.matches(), vec![(1.0, 7), (2.0, 107)]);
        // Re-inserting the same global series is still a no-op.
        assert!(!s1.insert(2.5, 7));
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn fresh_offset_topk_matches_plain_shared_topk() {
        let plain = SharedTopK::new(2);
        let fresh = OffsetTopK::fresh(2);
        for &(d, p) in &[(4.0f32, 9u32), (4.0, 3), (2.0, 8), (2.0, 1)] {
            assert_eq!(plain.insert(d, p), fresh.insert(d, p));
        }
        assert_eq!(plain.matches(), fresh.matches());
        assert_eq!(
            Pruner::threshold_sq(&plain),
            Pruner::threshold_sq(&fresh.clone())
        );
        assert_eq!(fresh.inner().matches(), plain.matches());
    }
}
