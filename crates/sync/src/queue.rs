//! Fetch&Inc work claiming.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

fn drain_depth_histogram() -> &'static dsidx_obs::registry::Histogram {
    static HIST: OnceLock<&'static dsidx_obs::registry::Histogram> = OnceLock::new();
    HIST.get_or_init(|| {
        dsidx_obs::registry::histogram(
            crate::metrics::QUEUE_DRAIN_DEPTH,
            "Items a Fetch&Inc work queue held when drained to exhaustion",
            // 16 .. ~268M items in 4x steps.
            &dsidx_obs::registry::exponential_bounds(16, 4, 13),
        )
    })
}

/// A counter over `0..total` from which workers claim items or chunks with
/// a single atomic `fetch_add` — the paper's Fetch&Inc idiom for assigning
/// raw-data chunks, iSAX buffers and priority queues to workers.
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicUsize,
    total: usize,
    /// Set by the first claim that finds the queue exhausted, which is
    /// when the drain-depth histogram records `total` — off the claiming
    /// fast path (each worker hits exhaustion at most once per drain).
    drained: AtomicBool,
}

impl WorkQueue {
    /// A queue over `0..total`.
    #[must_use]
    pub fn new(total: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            total,
            drained: AtomicBool::new(false),
        }
    }

    /// Total number of items.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Claims the next single item, or `None` when exhausted.
    #[inline]
    pub fn claim(&self) -> Option<usize> {
        // ORDERING: relaxed — Fetch&Inc claim: the index is the entire
        // payload; the data it indexes was published before the workers
        // started (pool broadcast / scope spawn).
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i < self.total {
            Some(i)
        } else {
            self.observe_drained();
            None
        }
    }

    /// Claims the next chunk of up to `chunk` items, or `None` when
    /// exhausted. `chunk` must be non-zero.
    #[inline]
    pub fn claim_chunk(&self, chunk: usize) -> Option<Range<usize>> {
        assert!(chunk > 0, "chunk size must be non-zero");
        // ORDERING: relaxed — same Fetch&Inc contract as `claim`.
        let start = self.next.fetch_add(chunk, Ordering::Relaxed);
        if start >= self.total {
            self.observe_drained();
            return None;
        }
        Some(start..(start + chunk).min(self.total))
    }

    /// Records the completed drain in the depth histogram, once per drain.
    #[cold]
    fn observe_drained(&self) {
        // ORDERING: relaxed — once-only latch for the depth histogram; a
        // lost race costs at most a duplicate observation attempt.
        if dsidx_obs::enabled() && !self.drained.swap(true, Ordering::Relaxed) {
            drain_depth_histogram().observe(self.total as u64);
        }
    }

    /// Resets the queue for reuse (callers must ensure no concurrent claims).
    pub fn reset(&self) {
        // ORDERING: relaxed — the caller guarantees quiescence; the
        // Release store on `next` below is what re-publishes the queue.
        self.drained.store(false, Ordering::Relaxed);
        self.next.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn claims_every_item_exactly_once() {
        let q = WorkQueue::new(10);
        let mut got = Vec::new();
        while let Some(i) = q.claim() {
            got.push(i);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(q.claim(), None);
    }

    #[test]
    fn chunk_claims_cover_range_without_overlap() {
        let q = WorkQueue::new(100);
        let mut covered = Vec::new();
        while let Some(r) = q.claim_chunk(7) {
            covered.extend(r);
        }
        assert_eq!(covered, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zero_total_yields_nothing() {
        let q = WorkQueue::new(0);
        assert_eq!(q.claim(), None);
        assert_eq!(q.claim_chunk(5), None);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_chunk_panics() {
        let q = WorkQueue::new(5);
        let _ = q.claim_chunk(0);
    }

    #[test]
    fn reset_allows_reuse() {
        let q = WorkQueue::new(3);
        while q.claim().is_some() {}
        q.reset();
        assert_eq!(q.claim(), Some(0));
    }

    #[test]
    fn concurrent_claims_partition_the_work() {
        let q = WorkQueue::new(100_000);
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    while let Some(r) = q.claim_chunk(13) {
                        local.extend(r);
                    }
                    let mut set = seen.lock().unwrap();
                    for i in local {
                        assert!(set.insert(i), "item {i} claimed twice");
                    }
                });
            }
        });
        assert_eq!(seen.into_inner().unwrap().len(), 100_000);
    }
}
