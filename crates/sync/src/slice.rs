//! Lock-free disjoint writes into a shared slice.

use std::cell::UnsafeCell;

/// A slice that multiple threads may write concurrently, **provided no two
/// threads ever touch the same index**.
///
/// This is how the SAX array is filled: series positions are partitioned
/// among workers (statically or via [`crate::WorkQueue`] chunks), and worker
/// that owns position `i` writes entry `i` exactly once. The type merely
/// encodes that contract; violating it is a data race, which is why the
/// writing method is `unsafe` and the contract is spelled out there.
///
/// After all writers join (e.g. `std::thread::scope` ends), the owner gets
/// the buffer back with [`SyncSlice::into_inner`].
#[derive(Debug)]
pub struct SyncSlice<T> {
    cells: Box<[UnsafeCell<T>]>,
}

// SAFETY: sharing &SyncSlice<T> across threads only permits `write`, whose
// contract requires index-disjointness; with that contract upheld there are
// no concurrent accesses to any single element. T: Send because elements
// move across threads.
unsafe impl<T: Send> Sync for SyncSlice<T> {}

impl<T> SyncSlice<T> {
    /// Takes ownership of a buffer to be filled by disjoint writers.
    #[must_use]
    pub fn new(buf: Vec<T>) -> Self {
        // Vec<T> -> Vec<UnsafeCell<T>> is a layout-compatible wrap, but do
        // it safely element by element (no unsafe transmute needed; this is
        // a one-time O(n) move that the optimizer lowers to a memcpy).
        let cells: Box<[UnsafeCell<T>]> = buf.into_iter().map(UnsafeCell::new).collect();
        Self { cells }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// For the whole lifetime of this `SyncSlice`, no other thread may read
    /// or write `index` concurrently with this call (each index must have
    /// exactly one writing owner at a time).
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        let cell = &self.cells[index];
        // SAFETY: disjointness contract gives us exclusive access.
        unsafe { *cell.get() = value };
    }

    /// Returns a mutable reference to the element at `index`.
    ///
    /// # Safety
    /// Same contract as [`SyncSlice::write`]: while the returned reference
    /// lives, no other thread may access `index`. The caller must also not
    /// obtain two references to the same index on one thread.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, index: usize) -> &mut T {
        let cell = &self.cells[index];
        // SAFETY: disjointness contract gives us exclusive access.
        unsafe { &mut *cell.get() }
    }

    /// Reclaims the buffer after all writers have finished.
    #[must_use]
    pub fn into_inner(self) -> Vec<T> {
        let mut cells: Vec<UnsafeCell<T>> = self.cells.into_vec();
        // Move values out of their cells without cloning.
        cells.drain(..).map(UnsafeCell::into_inner).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_round_trip() {
        let s = SyncSlice::new(vec![0u32; 5]);
        for i in 0..5 {
            // SAFETY: single thread, each index written once.
            unsafe { s.write(i, i as u32 * 10) };
        }
        assert_eq!(s.into_inner(), vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn len_and_empty() {
        let s = SyncSlice::new(Vec::<u8>::new());
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        let s = SyncSlice::new(vec![1u8; 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        let s = SyncSlice::new(vec![0u8; 2]);
        // SAFETY: single thread.
        unsafe { s.write(2, 1) };
    }

    #[test]
    fn parallel_disjoint_writes_land_correctly() {
        let n = 100_000;
        let s = SyncSlice::new(vec![0u64; n]);
        let threads = 8;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let s = &s;
                scope.spawn(move || {
                    // Strided ownership: thread t owns indices ≡ t (mod threads).
                    let mut i = t;
                    while i < n {
                        // SAFETY: strided partition is disjoint.
                        unsafe { s.write(i, (i as u64) * 3 + 1) };
                        i += threads;
                    }
                });
            }
        });
        let out = s.into_inner();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 3 + 1);
        }
    }

    #[test]
    fn get_mut_allows_in_place_growth() {
        let s = SyncSlice::new(vec![Vec::<u32>::new(), Vec::new(), Vec::new()]);
        std::thread::scope(|scope| {
            for t in 0..3usize {
                let s = &s;
                scope.spawn(move || {
                    for round in 0..4u32 {
                        // SAFETY: thread t exclusively owns index t.
                        let v = unsafe { s.get_mut(t) };
                        v.push(t as u32 * 10 + round);
                    }
                });
            }
        });
        let out = s.into_inner();
        for (t, v) in out.iter().enumerate() {
            assert_eq!(
                v,
                &vec![
                    t as u32 * 10,
                    t as u32 * 10 + 1,
                    t as u32 * 10 + 2,
                    t as u32 * 10 + 3
                ]
            );
        }
    }

    #[test]
    fn works_with_non_copy_types() {
        let s = SyncSlice::new(vec![String::new(), String::new()]);
        std::thread::scope(|scope| {
            let s = &s;
            scope.spawn(move || {
                // SAFETY: this thread owns index 0 exclusively.
                unsafe { s.write(0, "alpha".to_owned()) };
            });
            scope.spawn(move || {
                // SAFETY: this thread owns index 1 exclusively.
                unsafe { s.write(1, "beta".to_owned()) };
            });
        });
        assert_eq!(s.into_inner(), vec!["alpha".to_owned(), "beta".to_owned()]);
    }
}
