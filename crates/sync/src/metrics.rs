//! Metric names exported by the concurrency substrate.
//!
//! All are registered in the process-wide [`dsidx_obs::registry`] on
//! first pool/queue use; scrape them via
//! [`dsidx_obs::registry::prometheus_text`] or
//! [`dsidx_obs::registry::json_snapshot`].

/// Counter: pool broadcasts issued (every engine schedule step that woke
/// the pool), summed across all pools in the process.
pub const POOL_BROADCASTS_TOTAL: &str = "dsidx_pool_broadcasts_total";

/// Histogram: wall nanoseconds per pool broadcast, publish to join, as
/// seen by the coordinating thread.
pub const POOL_BROADCAST_NANOS: &str = "dsidx_pool_broadcast_nanos";

/// Counter: nanoseconds workers spent executing broadcast tasks.
pub const POOL_WORKER_BUSY_NANOS_TOTAL: &str = "dsidx_pool_worker_busy_nanos_total";

/// Counter: nanoseconds workers spent in the post-job spin window,
/// polling for the next broadcast without parking.
pub const POOL_WORKER_IDLE_NANOS_TOTAL: &str = "dsidx_pool_worker_idle_nanos_total";

/// Counter: nanoseconds workers spent parked on the pool condvar (spin
/// window expired, no work published).
pub const POOL_WORKER_PARKED_NANOS_TOTAL: &str = "dsidx_pool_worker_parked_nanos_total";

/// Histogram: items a [`WorkQueue`](crate::WorkQueue) held when it was
/// drained to exhaustion (the Fetch&Inc queue-drain depth).
pub const QUEUE_DRAIN_DEPTH: &str = "dsidx_queue_drain_depth";
