//! Property tests for the concurrency substrate — centered on the
//! determinism contract of [`AtomicBest`]: whatever the update order or
//! thread interleaving, the final `(distance, position)` is the global
//! minimum with the *lowest position winning exact distance ties*. Every
//! engine's "deterministic answer across runs and threads" behaviour rests
//! on this.

use dsidx_sync::AtomicBest;
use proptest::prelude::*;

/// Reference semantics: minimum by `(dist, pos)` lexicographic order.
fn reference_best(updates: &[(f32, u32)]) -> (f32, u32) {
    let mut best = (f32::INFINITY, u32::MAX);
    for &(d, p) in updates {
        if d < best.0 || (d == best.0 && p < best.1) {
            best = (d, p);
        }
    }
    best
}

/// Distances drawn from a tiny set of magnitudes so exact ties are common
/// (quantizing to a step of 0.25 makes equal f32 values routine).
fn tie_heavy_updates() -> impl Strategy<Value = Vec<(f32, u32)>> {
    collection::vec((0usize..8, 0u32..64), 1..200).prop_map(|raw| {
        raw.into_iter()
            .map(|(step, pos)| (step as f32 * 0.25, pos))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sequential updates in any order converge to the reference minimum,
    /// with the lowest position winning every exact tie.
    #[test]
    fn lowest_position_wins_ties_sequentially(updates in tie_heavy_updates()) {
        let best = AtomicBest::new();
        for &(d, p) in &updates {
            best.update(d, p);
        }
        prop_assert_eq!(best.get(), reference_best(&updates));
    }

    /// The same holds under concurrent updates: the winner is independent
    /// of thread interleaving.
    #[test]
    fn lowest_position_wins_ties_concurrently(updates in tie_heavy_updates(), threads in 2usize..6) {
        let best = AtomicBest::new();
        std::thread::scope(|s| {
            for t in 0..threads {
                let best = &best;
                let updates = &updates;
                s.spawn(move || {
                    // Each thread replays a strided slice of the updates.
                    for (d, p) in updates.iter().skip(t).step_by(threads) {
                        best.update(*d, *p);
                    }
                });
            }
        });
        prop_assert_eq!(best.get(), reference_best(&updates));
    }

    /// `update` reports an improvement iff the packed order strictly
    /// decreased — the invariant the engines' `real_computed` accounting
    /// and BSF refresh logic rely on.
    #[test]
    fn update_returns_true_iff_it_improved(updates in tie_heavy_updates()) {
        let best = AtomicBest::new();
        let mut current = (f32::INFINITY, u32::MAX);
        for &(d, p) in &updates {
            let improved = best.update(d, p);
            let should = d < current.0 || (d == current.0 && p < current.1);
            prop_assert_eq!(improved, should, "update ({}, {}) against {:?}", d, p, current);
            if should {
                current = (d, p);
            }
            prop_assert_eq!(best.get(), current);
        }
    }
}
