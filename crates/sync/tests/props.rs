//! Property tests for the concurrency substrate — centered on the
//! determinism contract of [`AtomicBest`] and [`SharedTopK`]: whatever the
//! update order or thread interleaving, the final answer is the global
//! minimum (or the k smallest pairs) with the *lowest position winning
//! exact distance ties*. Every engine's "deterministic answer across runs
//! and threads" behaviour rests on this.

use dsidx_sync::{AtomicBest, Pruner, SharedTopK};
use proptest::prelude::*;

/// Reference semantics: minimum by `(dist, pos)` lexicographic order.
fn reference_best(updates: &[(f32, u32)]) -> (f32, u32) {
    let mut best = (f32::INFINITY, u32::MAX);
    for &(d, p) in updates {
        if d < best.0 || (d == best.0 && p < best.1) {
            best = (d, p);
        }
    }
    best
}

/// Reference top-k semantics: unique positions sorted ascending by
/// `(dist, pos)`, truncated to `k` — plain sequential sort-and-truncate.
fn reference_topk(updates: &[(f32, u32)], k: usize) -> Vec<(f32, u32)> {
    let mut seen = std::collections::HashSet::new();
    let mut unique: Vec<(f32, u32)> = updates
        .iter()
        .copied()
        .filter(|&(_, p)| seen.insert(p))
        .collect();
    unique.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    unique.truncate(k);
    unique
}

/// Distances drawn from a tiny set of magnitudes so exact ties are common
/// (quantizing to a step of 0.25 makes equal f32 values routine).
fn tie_heavy_updates() -> impl Strategy<Value = Vec<(f32, u32)>> {
    collection::vec((0usize..8, 0u32..64), 1..200).prop_map(|raw| {
        raw.into_iter()
            .map(|(step, pos)| (step as f32 * 0.25, pos))
            .collect()
    })
}

/// Like [`tie_heavy_updates`], but the distance is a function of the
/// position — repeated positions always carry the same distance, matching
/// how the query kernels re-verify already-seeded positions.
fn tie_heavy_keyed_updates() -> impl Strategy<Value = Vec<(f32, u32)>> {
    collection::vec(0u32..96, 1..250).prop_map(|raw| {
        raw.into_iter()
            .map(|pos| {
                (
                    ((pos.wrapping_mul(2_654_435_761) >> 13) % 8) as f32 * 0.25,
                    pos,
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sequential updates in any order converge to the reference minimum,
    /// with the lowest position winning every exact tie.
    #[test]
    fn lowest_position_wins_ties_sequentially(updates in tie_heavy_updates()) {
        let best = AtomicBest::new();
        for &(d, p) in &updates {
            best.update(d, p);
        }
        prop_assert_eq!(best.get(), reference_best(&updates));
    }

    /// The same holds under concurrent updates: the winner is independent
    /// of thread interleaving.
    #[test]
    fn lowest_position_wins_ties_concurrently(updates in tie_heavy_updates(), threads in 2usize..6) {
        let best = AtomicBest::new();
        std::thread::scope(|s| {
            for t in 0..threads {
                let best = &best;
                let updates = &updates;
                s.spawn(move || {
                    // Each thread replays a strided slice of the updates.
                    for (d, p) in updates.iter().skip(t).step_by(threads) {
                        best.update(*d, *p);
                    }
                });
            }
        });
        prop_assert_eq!(best.get(), reference_best(&updates));
    }

    /// `update` reports an improvement iff the packed order strictly
    /// decreased — the invariant the engines' `real_computed` accounting
    /// and BSF refresh logic rely on.
    #[test]
    fn update_returns_true_iff_it_improved(updates in tie_heavy_updates()) {
        let best = AtomicBest::new();
        let mut current = (f32::INFINITY, u32::MAX);
        for &(d, p) in &updates {
            let improved = best.update(d, p);
            let should = d < current.0 || (d == current.0 && p < current.1);
            prop_assert_eq!(improved, should, "update ({}, {}) against {:?}", d, p, current);
            if should {
                current = (d, p);
            }
            prop_assert_eq!(best.get(), current);
        }
    }

    /// Sequential `SharedTopK` insertion equals the sequential
    /// sort-and-truncate reference, ties and duplicate positions included.
    #[test]
    fn topk_equals_sort_truncate_sequentially(updates in tie_heavy_keyed_updates(), k in 1usize..12) {
        let topk = SharedTopK::new(k);
        for &(d, p) in &updates {
            topk.insert(d, p);
        }
        prop_assert_eq!(topk.matches(), reference_topk(&updates, k));
    }

    /// The same holds under concurrent insertion: whatever the thread
    /// interleaving, the collected set is the k smallest by `(dist, pos)`.
    #[test]
    fn topk_equals_sort_truncate_concurrently(
        updates in tie_heavy_keyed_updates(),
        k in 1usize..12,
        threads in 2usize..6,
    ) {
        let topk = SharedTopK::new(k);
        std::thread::scope(|s| {
            for t in 0..threads {
                let topk = &topk;
                let updates = &updates;
                s.spawn(move || {
                    // Each thread replays a strided slice of the updates.
                    for (d, p) in updates.iter().skip(t).step_by(threads) {
                        topk.insert(*d, *p);
                    }
                });
            }
        });
        prop_assert_eq!(topk.matches(), reference_topk(&updates, k));
    }

    /// k = 1 degenerates to `AtomicBest` exactly, tie-breaks included, and
    /// the exposed thresholds agree to within the documented one ulp.
    #[test]
    fn topk_at_k1_matches_atomic_best(updates in tie_heavy_keyed_updates()) {
        let best = AtomicBest::new();
        let topk = SharedTopK::new(1);
        for &(d, p) in &updates {
            best.update(d, p);
            topk.insert(d, p);
        }
        let (d, p) = best.get();
        prop_assert_eq!(topk.matches(), vec![(d, p)]);
        prop_assert_eq!(topk.kth_dist_sq(), best.dist_sq());
        // The top-k pruning threshold sits exactly one ulp above the
        // AtomicBest one, keeping boundary ties reachable.
        prop_assert_eq!(
            Pruner::threshold_sq(&topk).to_bits(),
            Pruner::threshold_sq(&best).to_bits() + 1
        );
    }
}
