//! # dsidx-obs — the observability substrate
//!
//! Everything the rest of the workspace reports through lives here, with
//! zero dependencies so any crate (the sync primitives included) can
//! instrument itself:
//!
//! * [`registry`] — a process-wide, lock-free metrics registry: monotonic
//!   [`Counter`](registry::Counter)s and fixed-bucket
//!   [`Histogram`](registry::Histogram)s behind `&'static` handles
//!   (register once, then pure atomics on the hot path), exported as
//!   Prometheus text exposition or a JSON snapshot.
//! * [`phase`] — wall-clock time per query phase: the [`Phase`](phase::Phase)
//!   vocabulary (prepare, seed, sax-scan, collect, verify, traversal,
//!   dtw-cascade), a [`PhaseBreakdown`](phase::PhaseBreakdown) of
//!   accumulated nanoseconds carried on `QueryStats`/`BatchStats`, and the
//!   [`PhaseClock`](phase::PhaseClock)/[`PhaseTimer`](phase::PhaseTimer)
//!   instruments the engines record with.
//! * [`trace`] — an env-gated structured trace stream
//!   (`DSIDX_TRACE=<path|stderr>`): JSON-lines events for build phases,
//!   pool broadcasts and error-slot trips. Costs one relaxed atomic load
//!   when off.
//!
//! ## The kill switch
//!
//! [`enabled`] gates every timing capture: with `DSIDX_NO_OBS=1` (or after
//! [`set_enabled`]`(false)`) the phase clocks never read the OS clock and
//! metric updates are skipped, leaving only a relaxed load per
//! would-be capture. The `obs` bench experiment measures exactly this
//! delta (enabled vs. disabled on the same binary) and holds it under 2%
//! of end-to-end k-NN time.

pub mod phase;
pub mod registry;
pub mod trace;

use std::sync::atomic::{AtomicU8, Ordering};

/// `0` = not yet initialized from the environment, `1` = off, `2` = on.
static OBS_STATE: AtomicU8 = AtomicU8::new(0);

#[cold]
fn init_from_env() -> bool {
    let off = std::env::var("DSIDX_NO_OBS").is_ok_and(|v| !v.is_empty() && v != "0");
    OBS_STATE.store(if off { 1 } else { 2 }, Ordering::Relaxed);
    !off
}

/// `true` when observability capture (phase clocks, metric updates) is on.
///
/// On by default; `DSIDX_NO_OBS=1` in the environment or
/// [`set_enabled`]`(false)` turns it off. One relaxed atomic load on the
/// hot path.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    match OBS_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

/// Overrides the observability switch at runtime (wins over the
/// environment). The `obs` overhead benchmark uses this to A/B the same
/// binary with capture on and off.
pub fn set_enabled(on: bool) {
    OBS_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}
