//! The process-wide metrics registry.
//!
//! Metrics are registered once — by name, optionally with a single
//! `key="value"` label — and come back as `&'static` handles backed by
//! plain atomics. Registration takes a mutex; every update after that is
//! a relaxed `fetch_add`, so instrumented hot paths never contend on
//! registry state. Registering the same `(name, label)` again returns the
//! existing handle, which is how per-instance call sites (one `Device` per
//! index, say) share one series per profile.
//!
//! Two exporters walk the registry: [`prometheus_text`] renders the
//! Prometheus text exposition format, [`json_snapshot`] a JSON document
//! with the same information (per-bucket counts non-cumulative). Both are
//! point-in-time reads of live atomics — counters may advance between two
//! reads of the same export, never backwards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram of `u64` observations.
///
/// Bucket upper bounds are set at registration and never change; an
/// observation lands in the first bucket whose bound is `>= value`, or in
/// the implicit overflow bucket past the last bound. `sum`/`count` track
/// the running total and number of observations.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last one is the `+Inf` overflow.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The configured bucket upper bounds (exclusive of the `+Inf`
    /// overflow bucket).
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts; one longer than
    /// [`Histogram::bounds`], the final entry being the overflow bucket.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// Strictly increasing bounds `first, first*factor, ...` (`count` of
/// them) — the usual shape for latency/bytes histograms.
///
/// # Panics
/// Panics if `first == 0`, `factor < 2`, or the sequence overflows `u64`.
#[must_use]
pub fn exponential_bounds(first: u64, factor: u64, count: usize) -> Vec<u64> {
    assert!(first > 0 && factor >= 2, "bounds must strictly increase");
    let mut bounds = Vec::with_capacity(count);
    let mut b = first;
    for _ in 0..count {
        bounds.push(b);
        b = b.checked_mul(factor).expect("histogram bound overflow");
    }
    bounds
}

/// A registered metric: a copyable `&'static` handle to the leaked
/// atomics (stable addresses — the registry Vec may reallocate, the
/// metrics never move).
#[derive(Clone, Copy)]
enum Metric {
    Counter(&'static Counter),
    Histogram(&'static Histogram),
}

struct Entry {
    name: &'static str,
    help: &'static str,
    /// At most one `key="value"` label pair.
    label: Option<(&'static str, String)>,
    metric: Metric,
}

fn registry() -> &'static Mutex<Vec<Entry>> {
    static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn register(
    name: &'static str,
    help: &'static str,
    label: Option<(&'static str, &str)>,
    make: impl FnOnce() -> Metric,
) -> Metric {
    let mut entries = registry().lock().expect("metrics registry poisoned");
    let found = entries
        .iter()
        .find(|e| e.name == name && e.label.as_ref().map(|(k, v)| (*k, v.as_str())) == label);
    if let Some(e) = found {
        return e.metric;
    }
    let metric = make();
    entries.push(Entry {
        name,
        help,
        label: label.map(|(k, v)| (k, v.to_owned())),
        metric,
    });
    metric
}

/// Registers (or finds) the counter `name` and returns its handle.
///
/// `help` is the Prometheus HELP line; the first registration's help text
/// wins. Counter names should end in `_total` per Prometheus convention.
pub fn counter(name: &'static str, help: &'static str) -> &'static Counter {
    counter_entry(name, help, None)
}

/// Registers (or finds) the counter `name{key="value"}`.
pub fn labeled_counter(
    name: &'static str,
    help: &'static str,
    key: &'static str,
    value: &str,
) -> &'static Counter {
    counter_entry(name, help, Some((key, value)))
}

fn counter_entry(
    name: &'static str,
    help: &'static str,
    label: Option<(&'static str, &str)>,
) -> &'static Counter {
    let metric = register(name, help, label, || {
        Metric::Counter(Box::leak(Box::new(Counter::default())))
    });
    match metric {
        Metric::Counter(c) => c,
        Metric::Histogram(_) => panic!("metric `{name}` already registered as a histogram"),
    }
}

/// Registers (or finds) the histogram `name` with the given bucket upper
/// bounds (strictly increasing; an `+Inf` overflow bucket is implicit).
///
/// A second registration under the same name returns the existing
/// histogram; its original bounds win.
pub fn histogram(name: &'static str, help: &'static str, bounds: &[u64]) -> &'static Histogram {
    histogram_entry(name, help, None, bounds)
}

/// Registers (or finds) the histogram `name{key="value"}`.
pub fn labeled_histogram(
    name: &'static str,
    help: &'static str,
    key: &'static str,
    value: &str,
    bounds: &[u64],
) -> &'static Histogram {
    histogram_entry(name, help, Some((key, value)), bounds)
}

fn histogram_entry(
    name: &'static str,
    help: &'static str,
    label: Option<(&'static str, &str)>,
    bounds: &[u64],
) -> &'static Histogram {
    let metric = register(name, help, label, || {
        Metric::Histogram(Box::leak(Box::new(Histogram::new(bounds))))
    });
    match metric {
        Metric::Histogram(h) => h,
        Metric::Counter(_) => panic!("metric `{name}` already registered as a counter"),
    }
}

/// Zeroes every registered metric (handles stay valid). For benchmarks and
/// tests that want per-run deltas; racy against concurrent updates in the
/// usual point-in-time sense.
pub fn reset_all() {
    let entries = registry().lock().expect("metrics registry poisoned");
    for e in entries.iter() {
        match e.metric {
            Metric::Counter(c) => c.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

fn escape_label(value: &str, out: &mut String) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn label_block(label: &Option<(&'static str, String)>, extra: Option<(&str, &str)>) -> String {
    let mut parts = Vec::new();
    if let Some((k, v)) = label {
        let mut escaped = String::new();
        escape_label(v, &mut escaped);
        parts.push(format!("{k}=\"{escaped}\""));
    }
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders every registered metric in the Prometheus text exposition
/// format (HELP/TYPE headers once per metric name, histograms as
/// cumulative `_bucket{le=...}` series plus `_sum`/`_count`).
#[must_use]
pub fn prometheus_text() -> String {
    let entries = registry().lock().expect("metrics registry poisoned");
    let mut out = String::new();
    let mut seen: Vec<&str> = Vec::new();
    for e in entries.iter() {
        if !seen.contains(&e.name) {
            seen.push(e.name);
            let mut help = String::new();
            for ch in e.help.chars() {
                match ch {
                    '\\' => help.push_str("\\\\"),
                    '\n' => help.push_str("\\n"),
                    c => help.push(c),
                }
            }
            let kind = match e.metric {
                Metric::Counter(_) => "counter",
                Metric::Histogram(_) => "histogram",
            };
            out.push_str(&format!(
                "# HELP {} {}\n# TYPE {} {}\n",
                e.name, help, e.name, kind
            ));
            // Emit every same-named entry (one per label value) under one
            // header block.
            for series in entries.iter().filter(|s| s.name == e.name) {
                render_series(series, &mut out);
            }
        }
    }
    out
}

fn render_series(e: &Entry, out: &mut String) {
    match e.metric {
        Metric::Counter(c) => {
            let labels = label_block(&e.label, None);
            out.push_str(&format!("{}{} {}\n", e.name, labels, c.get()));
        }
        Metric::Histogram(h) => {
            let counts = h.bucket_counts();
            let mut cumulative = 0u64;
            for (i, n) in counts.iter().enumerate() {
                cumulative += n;
                let le = h
                    .bounds()
                    .get(i)
                    .map_or_else(|| "+Inf".to_owned(), ToString::to_string);
                let labels = label_block(&e.label, Some(("le", &le)));
                out.push_str(&format!("{}_bucket{} {}\n", e.name, labels, cumulative));
            }
            let labels = label_block(&e.label, None);
            out.push_str(&format!("{}_sum{} {}\n", e.name, labels, h.sum()));
            out.push_str(&format!("{}_count{} {}\n", e.name, labels, h.count()));
        }
    }
}

fn json_escape(value: &str, out: &mut String) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn json_labels(label: &Option<(&'static str, String)>) -> String {
    match label {
        None => "{}".to_owned(),
        Some((k, v)) => {
            let mut escaped = String::new();
            json_escape(v, &mut escaped);
            format!("{{\"{k}\":\"{escaped}\"}}")
        }
    }
}

/// Renders every registered metric as one JSON document:
/// `{"counters":[...],"histograms":[...]}` with non-cumulative per-bucket
/// counts (the final bucket is the `+Inf` overflow).
#[must_use]
pub fn json_snapshot() -> String {
    let entries = registry().lock().expect("metrics registry poisoned");
    let mut counters = Vec::new();
    let mut histograms = Vec::new();
    for e in entries.iter() {
        let labels = json_labels(&e.label);
        match e.metric {
            Metric::Counter(c) => counters.push(format!(
                "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                e.name,
                labels,
                c.get()
            )),
            Metric::Histogram(h) => {
                let bounds: Vec<String> = h.bounds().iter().map(ToString::to_string).collect();
                let counts: Vec<String> =
                    h.bucket_counts().iter().map(ToString::to_string).collect();
                histograms.push(format!(
                    "{{\"name\":\"{}\",\"labels\":{},\"bounds\":[{}],\"buckets\":[{}],\"sum\":{},\"count\":{}}}",
                    e.name,
                    labels,
                    bounds.join(","),
                    counts.join(","),
                    h.sum(),
                    h.count()
                ));
            }
        }
    }
    format!(
        "{{\"counters\":[{}],\"histograms\":[{}]}}",
        counters.join(","),
        histograms.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registration_dedups_by_name_and_label() {
        let a = counter("obs_test_dedup_total", "dedup test");
        let b = counter("obs_test_dedup_total", "dedup test");
        assert!(std::ptr::eq(a, b));
        let ssd = labeled_counter("obs_test_labeled_total", "labeled", "profile", "ssd");
        let hdd = labeled_counter("obs_test_labeled_total", "labeled", "profile", "hdd");
        let ssd2 = labeled_counter("obs_test_labeled_total", "labeled", "profile", "ssd");
        assert!(std::ptr::eq(ssd, ssd2));
        assert!(!std::ptr::eq(ssd, hdd));
    }

    #[test]
    fn histogram_buckets_place_observations_at_bounds_inclusively() {
        let h = histogram("obs_test_hist_bounds", "bucket placement", &[10, 100]);
        h.observe(10); // lands in le=10
        h.observe(11); // lands in le=100
        h.observe(1000); // overflow
        assert_eq!(h.bucket_counts(), vec![1, 1, 1]);
        assert_eq!(h.sum(), 1021);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn exponential_bounds_are_strictly_increasing() {
        assert_eq!(
            exponential_bounds(100, 10, 4),
            vec![100, 1000, 10_000, 100_000]
        );
    }

    #[test]
    fn prometheus_text_pins_the_exposition_format() {
        let c = counter("obs_test_prom_total", "a pinned counter");
        c.add(7);
        let h = labeled_histogram(
            "obs_test_prom_nanos",
            "a pinned histogram",
            "profile",
            "ssd",
            &[5, 50],
        );
        h.observe(3);
        h.observe(60);
        let text = prometheus_text();
        let own: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("obs_test_prom"))
            .collect();
        assert_eq!(
            own,
            vec![
                "# HELP obs_test_prom_total a pinned counter",
                "# TYPE obs_test_prom_total counter",
                "obs_test_prom_total 7",
                "# HELP obs_test_prom_nanos a pinned histogram",
                "# TYPE obs_test_prom_nanos histogram",
                "obs_test_prom_nanos_bucket{profile=\"ssd\",le=\"5\"} 1",
                "obs_test_prom_nanos_bucket{profile=\"ssd\",le=\"50\"} 1",
                "obs_test_prom_nanos_bucket{profile=\"ssd\",le=\"+Inf\"} 2",
                "obs_test_prom_nanos_sum{profile=\"ssd\"} 63",
                "obs_test_prom_nanos_count{profile=\"ssd\"} 2",
            ]
        );
    }

    #[test]
    fn json_snapshot_round_trips_handle_values() {
        let c = counter("obs_test_json_total", "json counter");
        c.add(42);
        let h = histogram("obs_test_json_nanos", "json histogram", &[8]);
        h.observe(6);
        h.observe(9);
        let json = json_snapshot();
        assert!(json.starts_with("{\"counters\":["));
        assert!(json.contains("{\"name\":\"obs_test_json_total\",\"labels\":{},\"value\":42}"));
        assert!(json.contains(
            "{\"name\":\"obs_test_json_nanos\",\"labels\":{},\"bounds\":[8],\"buckets\":[1,1],\"sum\":15,\"count\":2}"
        ));
    }

    #[test]
    fn mismatched_kind_reregistration_panics() {
        counter("obs_test_kind_total", "a counter");
        let r = std::panic::catch_unwind(|| {
            histogram("obs_test_kind_total", "not a counter", &[1]);
        });
        assert!(r.is_err());
    }
}
