//! Wall-clock time per query phase.
//!
//! The paper's evaluation reasons about *phase breakdowns* — where a
//! query's milliseconds went, not just how many bounds were computed.
//! [`Phase`] is the cross-engine phase vocabulary, [`PhaseBreakdown`] the
//! accumulated nanoseconds that ride on `QueryStats`/`BatchStats`, and
//! [`PhaseClock`]/[`PhaseTimer`]/[`PhaseAcc`] the instruments the engines
//! record with.
//!
//! Phases are measured on the *coordinating* thread as disjoint,
//! contiguous intervals (a [`PhaseClock`] lap ends exactly where the next
//! begins), so a breakdown's [`total_nanos`](PhaseBreakdown::total_nanos)
//! approximates the query's wall time — the `obs` bench experiment holds
//! the two within 10% of each other. A parallel phase (a pool broadcast)
//! is charged as one interval: the coordinator's wait *is* the phase's
//! wall time.
//!
//! All capture is gated on [`crate::enabled`]: with observability off the
//! clocks never read the OS timer and every recorded duration is zero.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One phase of a query's execution schedule, uniform across engines.
///
/// Engines record the phases their schedule has: the scan-based engines
/// (ADS+, ParIS) use seed/sax-scan or seed/collect/verify; MESSI uses
/// seed/traversal (its single broadcast covers tree traversal *and* the
/// best-bound-first queue drain); DTW queries charge their LB_Keogh →
/// early-abandoned-DTW work to the dtw-cascade phase. Every engine pays
/// prepare (PAA, SAX words, per-query tables, batch setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Query preparation: z-checks, PAA, iSAX words, MINDIST tables,
    /// batch construction.
    Prepare,
    /// BSF seeding from the query's own (approximate) leaf, including the
    /// series reads it pays for.
    Seed,
    /// Serial scan over the SAX array with interleaved verification
    /// (ADS+), or the sketch scan behind approximate answers.
    SaxScan,
    /// Lower-bound candidate collection broadcast (ParIS/ParIS+).
    Collect,
    /// Real-distance verification of collected candidates (ParIS/ParIS+).
    Verify,
    /// The MESSI broadcast: cooperative tree traversal plus the
    /// best-bound-first priority-queue drain.
    Traversal,
    /// The DTW lower-bound cascade: LB_Keogh filtering and banded,
    /// early-abandoned DTW evaluation.
    DtwCascade,
}

impl Phase {
    /// Number of phases (the length of [`Phase::ALL`]).
    pub const COUNT: usize = 7;

    /// Every phase, in schedule order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Prepare,
        Phase::Seed,
        Phase::SaxScan,
        Phase::Collect,
        Phase::Verify,
        Phase::Traversal,
        Phase::DtwCascade,
    ];

    /// The phase's stable snake_case name, used in trace events, bench
    /// columns and metric labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Prepare => "prepare",
            Phase::Seed => "seed",
            Phase::SaxScan => "sax_scan",
            Phase::Collect => "collect",
            Phase::Verify => "verify",
            Phase::Traversal => "traversal",
            Phase::DtwCascade => "dtw_cascade",
        }
    }
}

/// Accumulated nanoseconds per [`Phase`] for one query or one batch.
///
/// A plain `Copy` value that rides on `QueryStats`; merging stats sums
/// breakdowns field-wise like every other counter. Equality compares the
/// recorded nanoseconds — two runs of the same query will generally *not*
/// be equal (wall time is not deterministic), which is why determinism
/// tests compare matches, not stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    nanos: [u64; Phase::COUNT],
}

impl PhaseBreakdown {
    /// A breakdown with every phase at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Nanoseconds recorded for `phase`.
    #[must_use]
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase as usize]
    }

    /// Adds `nanos` to `phase`.
    pub fn record(&mut self, phase: Phase, nanos: u64) {
        self.nanos[phase as usize] += nanos;
    }

    /// Sum over all phases — approximately the query's wall time when the
    /// phases were recorded as contiguous coordinator-side intervals.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// `(phase, nanos)` pairs in schedule order, zero phases included.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL.iter().map(|&p| (p, self.nanos(p)))
    }

    /// Field-wise sum.
    #[must_use]
    pub fn merged(&self, other: &PhaseBreakdown) -> PhaseBreakdown {
        let mut out = *self;
        for (i, n) in other.nanos.iter().enumerate() {
            out.nanos[i] += n;
        }
        out
    }

    /// `true` when no phase recorded any time.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.nanos.iter().all(|&n| n == 0)
    }
}

/// Shared-counter form of [`PhaseBreakdown`] for recording through `&self`
/// (a `QueryBatch` is shared with worker closures while the coordinator
/// laps its clock between broadcasts).
#[derive(Debug, Default)]
pub struct PhaseAcc {
    nanos: [AtomicU64; Phase::COUNT],
}

impl PhaseAcc {
    /// Zeroed accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `nanos` to `phase`.
    pub fn record(&self, phase: Phase, nanos: u64) {
        self.nanos[phase as usize].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Adds a whole [`PhaseBreakdown`] (a worker-local tally, say).
    pub fn add(&self, breakdown: &PhaseBreakdown) {
        for (phase, nanos) in breakdown.iter() {
            if nanos > 0 {
                self.record(phase, nanos);
            }
        }
    }

    /// Reads the accumulator out as a plain [`PhaseBreakdown`].
    #[must_use]
    pub fn snapshot(&self) -> PhaseBreakdown {
        let mut out = PhaseBreakdown::new();
        for (i, n) in self.nanos.iter().enumerate() {
            out.nanos[i] = n.load(Ordering::Relaxed);
        }
        out
    }
}

/// A lap timer for contiguous phase intervals on the coordinating thread.
///
/// `start` it at the top of the query function, then [`lap`](Self::lap)
/// at each phase boundary: every nanosecond between start and the final
/// lap is charged to exactly one phase, so the breakdown's total tracks
/// wall time. When observability is [disabled](crate::enabled) the clock
/// is inert and laps return zero.
#[derive(Debug)]
pub struct PhaseClock {
    last: Option<Instant>,
}

impl PhaseClock {
    /// Starts the clock (inert when observability is off).
    #[must_use]
    pub fn start() -> Self {
        Self {
            last: crate::enabled().then(Instant::now),
        }
    }

    /// Nanoseconds since the previous lap (or since `start`), advancing
    /// the lap marker. Zero when observability is off.
    #[must_use]
    pub fn lap(&mut self) -> u64 {
        match self.last {
            None => 0,
            Some(prev) => {
                let now = Instant::now();
                self.last = Some(now);
                u64::try_from((now - prev).as_nanos()).unwrap_or(u64::MAX)
            }
        }
    }

    /// Laps the clock and records the interval against `phase` in `acc`.
    pub fn lap_into(&mut self, acc: &PhaseAcc, phase: Phase) {
        let n = self.lap();
        if n > 0 {
            acc.record(phase, n);
        }
    }
}

/// A drop-guard span: charges the time between construction and drop to
/// one phase of a [`PhaseAcc`]. For call sites where a scope, not a lap
/// boundary, is the natural shape.
#[derive(Debug)]
pub struct PhaseTimer<'a> {
    acc: &'a PhaseAcc,
    phase: Phase,
    start: Option<Instant>,
}

impl<'a> PhaseTimer<'a> {
    /// Starts a span over `phase` (inert when observability is off).
    #[must_use]
    pub fn new(acc: &'a PhaseAcc, phase: Phase) -> Self {
        Self {
            acc,
            phase,
            start: crate::enabled().then(Instant::now),
        }
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.acc.record(self.phase, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_records_and_merges_per_phase() {
        let mut a = PhaseBreakdown::new();
        a.record(Phase::Seed, 10);
        a.record(Phase::Seed, 5);
        a.record(Phase::Verify, 7);
        let mut b = PhaseBreakdown::new();
        b.record(Phase::Verify, 3);
        b.record(Phase::Prepare, 1);
        let m = a.merged(&b);
        assert_eq!(m.nanos(Phase::Seed), 15);
        assert_eq!(m.nanos(Phase::Verify), 10);
        assert_eq!(m.nanos(Phase::Prepare), 1);
        assert_eq!(m.total_nanos(), 26);
        assert!(!m.is_zero());
        assert!(PhaseBreakdown::default().is_zero());
    }

    #[test]
    fn phase_names_are_unique_and_stable() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "prepare",
                "seed",
                "sax_scan",
                "collect",
                "verify",
                "traversal",
                "dtw_cascade"
            ]
        );
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), Phase::COUNT);
    }

    #[test]
    fn clock_laps_are_contiguous_and_cover_elapsed_time() {
        crate::set_enabled(true);
        let t0 = Instant::now();
        let mut clock = PhaseClock::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let acc = PhaseAcc::new();
        clock.lap_into(&acc, Phase::Seed);
        std::thread::sleep(std::time::Duration::from_millis(2));
        clock.lap_into(&acc, Phase::Traversal);
        let wall = u64::try_from(t0.elapsed().as_nanos()).unwrap();
        let got = acc.snapshot();
        assert!(got.nanos(Phase::Seed) >= 1_000_000);
        assert!(got.nanos(Phase::Traversal) >= 1_000_000);
        // Laps are contiguous: their sum can't exceed the enclosing wall
        // time measured from before the clock started.
        assert!(got.total_nanos() <= wall);
    }

    #[test]
    fn timer_guard_records_on_drop() {
        crate::set_enabled(true);
        let acc = PhaseAcc::new();
        {
            let _t = PhaseTimer::new(&acc, Phase::DtwCascade);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(acc.snapshot().nanos(Phase::DtwCascade) >= 500_000);
    }
}
