//! The env-gated structured trace stream.
//!
//! Set `DSIDX_TRACE=<path>` to append JSON-lines events to a file, or
//! `DSIDX_TRACE=stderr` to write them to standard error. Unset (or set to
//! the empty string or `0`), tracing is off and every call site pays one
//! relaxed atomic load — the `obs` bench experiment pins that fast path.
//!
//! Each line is one JSON object with two fixed fields and any number of
//! event-specific ones:
//!
//! ```json
//! {"ts_us":1234,"event":"broadcast","pool_size":8,"nanos":51234}
//! ```
//!
//! * `ts_us` — microseconds since the trace stream was initialized
//!   (monotonic within a process).
//! * `event` — the event kind (`build_phase`, `broadcast`,
//!   `error_slot`, `query`, ...).
//!
//! Tests and benchmarks can [`route_to_file`]/[`disable`] the stream
//! programmatically; the environment variable is read once, on first use.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static TRACE_STATE: AtomicU8 = AtomicU8::new(UNINIT);

enum Sink {
    Stderr,
    // Each event is written unbuffered in one `write_all` — a buffered
    // writer would strand its tail when a short-lived process exits (the
    // global stream is never dropped), and one small write per event is
    // the cost profile JSON-lines tracing promises anyway.
    File(std::fs::File),
}

struct Stream {
    sink: Sink,
    epoch: Instant,
}

fn stream() -> &'static Mutex<Option<Stream>> {
    static STREAM: OnceLock<Mutex<Option<Stream>>> = OnceLock::new();
    STREAM.get_or_init(|| Mutex::new(None))
}

#[cold]
fn init_from_env() -> bool {
    let target = std::env::var("DSIDX_TRACE").unwrap_or_default();
    match target.as_str() {
        "" | "0" => {
            set_state(None);
            false
        }
        "stderr" | "-" => {
            set_state(Some(Sink::Stderr));
            true
        }
        path => match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            Ok(f) => {
                set_state(Some(Sink::File(f)));
                true
            }
            Err(e) => {
                eprintln!("dsidx-obs: cannot open DSIDX_TRACE={path}: {e}; tracing disabled");
                set_state(None);
                false
            }
        },
    }
}

fn set_state(sink: Option<Sink>) {
    let mut guard = stream().lock().expect("trace stream poisoned");
    let on = sink.is_some();
    *guard = sink.map(|sink| Stream {
        sink,
        epoch: Instant::now(),
    });
    // Publish the flag only after the sink is in place so an `emit` racing
    // with initialization never observes ON with an empty stream (it would
    // silently drop the event, which is also acceptable).
    TRACE_STATE.store(if on { ON } else { OFF }, Ordering::Release);
}

/// `true` when the trace stream is on. One relaxed atomic load once
/// initialized — the whole cost of a disabled trace point.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    match TRACE_STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

/// Routes the trace stream to `path` (append), overriding the
/// environment. Returns an error if the file cannot be opened.
///
/// # Errors
/// Propagates the `open` failure.
pub fn route_to_file(path: &std::path::Path) -> std::io::Result<()> {
    let f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    set_state(Some(Sink::File(f)));
    Ok(())
}

/// Routes the trace stream to standard error, overriding the environment.
pub fn route_to_stderr() {
    set_state(Some(Sink::Stderr));
}

/// Turns the trace stream off (flushing first), overriding the
/// environment.
pub fn disable() {
    flush();
    set_state(None);
}

/// Flushes the trace sink. Events are written unbuffered, so this only
/// asks the OS to sync file sinks; callers that just need every emitted
/// line visible to readers need not call it.
pub fn flush() {
    if let Some(stream) = stream().lock().expect("trace stream poisoned").as_mut() {
        if let Sink::File(f) = &mut stream.sink {
            let _ = f.sync_data();
        }
    }
}

/// One field value in a trace event.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// An unsigned integer, rendered as a JSON number.
    U64(u64),
    /// A float, rendered as a JSON number (`null` if non-finite).
    F64(f64),
    /// A string, rendered JSON-escaped.
    Str(&'a str),
    /// A boolean.
    Bool(bool),
}

fn push_json_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Emits one JSON-lines event with the given kind and fields. A no-op
/// (one relaxed load) when tracing is off; call sites that must format
/// field values should guard on [`enabled`] first so the formatting cost
/// is only paid when the stream is live.
pub fn emit(event: &str, fields: &[(&str, Value<'_>)]) {
    if !enabled() {
        return;
    }
    let mut guard = stream().lock().expect("trace stream poisoned");
    let Some(stream) = guard.as_mut() else {
        return;
    };
    let ts_us = u64::try_from(stream.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
    let mut line = String::with_capacity(64);
    line.push_str("{\"ts_us\":");
    line.push_str(&ts_us.to_string());
    line.push_str(",\"event\":");
    push_json_str(event, &mut line);
    for (key, value) in fields {
        line.push(',');
        push_json_str(key, &mut line);
        line.push(':');
        match value {
            Value::U64(n) => line.push_str(&n.to_string()),
            Value::F64(f) if f.is_finite() => line.push_str(&format!("{f}")),
            Value::F64(_) => line.push_str("null"),
            Value::Str(s) => push_json_str(s, &mut line),
            Value::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
        }
    }
    line.push_str("}\n");
    match &mut stream.sink {
        Sink::Stderr => {
            let _ = std::io::stderr().lock().write_all(line.as_bytes());
        }
        Sink::File(w) => {
            let _ = w.write_all(line.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trace stream is process-global, so every routing test lives in
    // this one serialized test (Rust runs tests in threads within one
    // binary; two tests re-routing the stream would race).
    #[test]
    fn trace_stream_routing_and_format() {
        let dir = std::env::temp_dir().join(format!("dsidx_obs_trace_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let _ = std::fs::remove_file(&path);

        route_to_file(&path).unwrap();
        assert!(enabled());
        emit(
            "unit_test",
            &[
                ("n", Value::U64(7)),
                ("ratio", Value::F64(0.5)),
                ("name", Value::Str("he\"llo\n")),
                ("ok", Value::Bool(true)),
                ("bad", Value::F64(f64::NAN)),
            ],
        );
        emit("second", &[]);
        disable();
        assert!(!enabled());
        // Off fast path: emitting with the stream disabled writes nothing.
        emit("dropped", &[("n", Value::U64(1))]);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ts_us\":"));
        assert!(lines[0].ends_with(
            ",\"event\":\"unit_test\",\"n\":7,\"ratio\":0.5,\"name\":\"he\\\"llo\\n\",\"ok\":true,\"bad\":null}"
        ));
        assert!(lines[1].contains("\"event\":\"second\"}"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
