//! Property-based tests for the iSAX substrate — centered on the soundness
//! invariant that makes every engine's pruning exact.

use dsidx_isax::breakpoints::breakpoints;
use dsidx_isax::mindist::{
    mindist_envelope_node_sq, mindist_paa_node_sq, mindist_paa_word_sq, MindistTable,
};
use dsidx_isax::paa::{envelope_paa_bounds, paa};
use dsidx_isax::word::{NodeWord, MAX_BITS};
use dsidx_isax::Quantizer;
use dsidx_series::distance::{dtw, euclidean_sq};
use dsidx_series::znorm::znormalize;
use proptest::prelude::*;

/// A pair of z-normalized series of equal length plus a segment count.
fn config_and_pair() -> impl Strategy<Value = (usize, Vec<f32>, Vec<f32>)> {
    (1usize..=16).prop_flat_map(|w| {
        (w..=256usize).prop_flat_map(move |n| {
            (
                Just(w),
                prop::collection::vec(-5.0f32..5.0, n).prop_map(|mut v| {
                    znormalize(&mut v);
                    v
                }),
                prop::collection::vec(-5.0f32..5.0, n).prop_map(|mut v| {
                    znormalize(&mut v);
                    v
                }),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// THE invariant: MINDIST(PAA(q), word(c)) <= ED(q, c)^2.
    #[test]
    fn word_mindist_lower_bounds_euclidean((w, q, c) in config_and_pair()) {
        let quant = Quantizer::new(q.len(), w).unwrap();
        let word_c = quant.word(&c);
        let paa_q = paa(&q, w);
        let ed = euclidean_sq(&q, &c);
        let md = mindist_paa_word_sq(&paa_q, &word_c, quant.segment_lens());
        prop_assert!(md <= ed + ed.abs() * 1e-3 + 1e-3, "mindist {md} > ed {ed}");
    }

    /// Node-level bound is looser than (or equal to) the word-level bound,
    /// and still lower-bounds ED — at every refinement level along the path.
    #[test]
    fn node_mindist_chain((w, q, c) in config_and_pair(), splits in 0usize..20) {
        let quant = Quantizer::new(q.len(), w).unwrap();
        let word_c = quant.word(&c);
        let paa_q = paa(&q, w);
        let ed = euclidean_sq(&q, &c);
        let wd = mindist_paa_word_sq(&paa_q, &word_c, quant.segment_lens());

        let mut node = NodeWord::root(word_c.root_key(), w);
        let mut prev = mindist_paa_node_sq(&paa_q, &node, quant.segment_lens());
        prop_assert!(prev <= ed + ed.abs() * 1e-3 + 1e-3);
        // Refine along c's path; the bound must be monotone non-decreasing.
        for k in 0..splits {
            let seg = k % w;
            if !node.can_split(seg) {
                continue;
            }
            let (zero, one) = node.split(seg);
            node = if node.split_bit(&word_c, seg) { one } else { zero };
            prop_assert!(node.contains(&word_c), "containment along path");
            let cur = mindist_paa_node_sq(&paa_q, &node, quant.segment_lens());
            prop_assert!(cur + 1e-5 >= prev, "refinement loosened the bound");
            prop_assert!(cur <= wd + wd.abs() * 1e-5 + 1e-5, "node bound above word bound");
            prev = cur;
        }
    }

    /// The per-query lookup table is exactly the direct computation.
    #[test]
    fn table_lookup_equals_direct((w, q, c) in config_and_pair()) {
        let quant = Quantizer::new(q.len(), w).unwrap();
        let word_c = quant.word(&c);
        let paa_q = paa(&q, w);
        let table = MindistTable::new_point(&paa_q, quant.segment_lens());
        let direct = mindist_paa_word_sq(&paa_q, &word_c, quant.segment_lens());
        let looked = table.lookup(&word_c);
        prop_assert!((direct - looked).abs() <= direct.abs() * 1e-5 + 1e-6);
    }

    /// The table's scalar lookup is a reassociation-free sum of the same
    /// per-segment terms as the branchy computation, so it must reproduce
    /// `mindist_paa_word_sq` with identical f32 bits.
    #[test]
    fn table_lookup_scalar_is_bit_identical_to_branchy((w, q, c) in config_and_pair()) {
        let quant = Quantizer::new(q.len(), w).unwrap();
        let word_c = quant.word(&c);
        let paa_q = paa(&q, w);
        let table = MindistTable::new_point(&paa_q, quant.segment_lens());
        let direct = mindist_paa_word_sq(&paa_q, &word_c, quant.segment_lens());
        prop_assert_eq!(table.lookup_scalar(&word_c).to_bits(), direct.to_bits());
    }

    /// Batched lookup must match the per-word scalar loop bit-for-bit —
    /// with SIMD on the batch-8 kernel accumulates each lane in the same
    /// segment order as the scalar sum, with it off both sides are the
    /// same loop. Either way, scans prune identically in both modes.
    #[test]
    fn table_lookup_many_is_bit_identical_to_scalar(
        (w, q, c) in config_and_pair(),
        count in 0usize..24,
        pad in 0usize..12,
    ) {
        let quant = Quantizer::new(q.len(), w).unwrap();
        let paa_q = paa(&q, w);
        let table = MindistTable::new_point(&paa_q, quant.segment_lens());
        // Derive `count` distinct-ish words by scaling the candidate.
        let words: Vec<_> = (0..count)
            .map(|i| {
                let scaled: Vec<f32> =
                    c.iter().map(|&v| v * (0.5 + 0.1 * i as f32)).collect();
                quant.word(&scaled)
            })
            .collect();
        // Oversized poison-filled buffer: scan callers reuse fixed-size
        // block buffers, so every word's slot must be written even when
        // `out` is longer than `words` — and the tail must stay untouched.
        let mut out = vec![f32::NAN; words.len() + pad];
        table.lookup_many(&words, &mut out);
        for (word, &got) in words.iter().zip(&out) {
            prop_assert_eq!(got.to_bits(), table.lookup_scalar(word).to_bits());
        }
        prop_assert!(out[words.len()..].iter().all(|v| v.is_nan()));
    }

    /// DTW envelope MINDIST lower-bounds the true banded DTW.
    #[test]
    fn envelope_mindist_lower_bounds_dtw((w, q, c) in config_and_pair(), band_frac in 0.0f64..0.2) {
        let band = ((q.len() as f64) * band_frac) as usize;
        let quant = Quantizer::new(q.len(), w).unwrap();
        let word_c = quant.word(&c);
        let node = NodeWord::root(word_c.root_key(), w);

        let mut lo_env = Vec::new();
        let mut hi_env = Vec::new();
        dtw::envelope(&q, band, &mut lo_env, &mut hi_env);
        let mut lo_paa = vec![0.0; w];
        let mut hi_paa = vec![0.0; w];
        envelope_paa_bounds(&lo_env, &hi_env, &mut lo_paa, &mut hi_paa);

        let d = dtw::dtw_sq(&q, &c, band);
        let md_node = mindist_envelope_node_sq(&lo_paa, &hi_paa, &node, quant.segment_lens());
        prop_assert!(md_node <= d + d.abs() * 1e-3 + 1e-3, "node dtw bound {md_node} > dtw {d}");
        let table = MindistTable::new_interval(&lo_paa, &hi_paa, quant.segment_lens());
        let md_word = table.lookup(&word_c);
        prop_assert!(md_word <= d + d.abs() * 1e-3 + 1e-3, "word dtw bound {md_word} > dtw {d}");
    }

    /// Quantization/prefix coherence for arbitrary values.
    #[test]
    fn symbol_prefix_coherence(v in -10.0f32..10.0) {
        let t = breakpoints();
        let full = t.symbol(v, MAX_BITS);
        for bits in 1..MAX_BITS {
            prop_assert_eq!(t.symbol(v, bits), full >> (MAX_BITS - bits));
        }
        // Value lies in its region at every cardinality.
        for bits in 1..=MAX_BITS {
            let s = t.symbol(v, bits);
            let (lo, hi) = t.region(s, bits);
            prop_assert!(lo <= v && v < hi);
        }
    }

    /// After a split, a contained word lands in exactly one child.
    #[test]
    fn split_is_a_partition((w, q, _c) in config_and_pair(), seg_pick in 0usize..16) {
        let quant = Quantizer::new(q.len(), w).unwrap();
        let word = quant.word(&q);
        let node = NodeWord::root(word.root_key(), w);
        let seg = seg_pick % w;
        if node.can_split(seg) {
            let (zero, one) = node.split(seg);
            let in_zero = zero.contains(&word);
            let in_one = one.contains(&word);
            prop_assert!(in_zero ^ in_one, "must land in exactly one child");
            prop_assert_eq!(in_one, node.split_bit(&word, seg));
        }
    }
}
