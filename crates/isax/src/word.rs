//! iSAX words: full-cardinality summaries and variable-cardinality node
//! words.
//!
//! A [`Word`] is the summary stored per series (in leaves and in the SAX
//! array): every segment quantized at the maximum cardinality
//! (`2^MAX_BITS = 256`). A [`NodeWord`] describes an index node: each
//! segment keeps only a *prefix* of `bits[i]` bits, so a node covers every
//! word whose symbols start with those prefixes.

/// Maximum number of segments a word can hold (the paper uses exactly 16).
pub const MAX_SEGMENTS: usize = 16;
/// Maximum cardinality in bits per segment.
pub const MAX_BITS: u8 = 8;
/// Maximum cardinality (`2^MAX_BITS`).
pub const MAX_CARDINALITY: usize = 1 << MAX_BITS;

/// A full-cardinality iSAX word: one 8-bit symbol per segment.
///
/// `Copy` and 17 bytes — the tree and the SAX array store these by value in
/// flat arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Word {
    symbols: [u8; MAX_SEGMENTS],
    segments: u8,
}

impl Word {
    /// Builds a word from one symbol per segment.
    ///
    /// # Panics
    /// Panics if `symbols` is empty or longer than [`MAX_SEGMENTS`].
    #[must_use]
    pub fn new(symbols: &[u8]) -> Self {
        assert!(
            !symbols.is_empty() && symbols.len() <= MAX_SEGMENTS,
            "segment count must be in 1..={MAX_SEGMENTS}"
        );
        let mut arr = [0u8; MAX_SEGMENTS];
        arr[..symbols.len()].copy_from_slice(symbols);
        Self {
            symbols: arr,
            segments: symbols.len() as u8,
        }
    }

    /// Number of segments.
    #[inline]
    #[must_use]
    pub fn segments(&self) -> usize {
        self.segments as usize
    }

    /// The full-cardinality symbol of segment `seg`.
    #[inline]
    #[must_use]
    pub fn symbol(&self, seg: usize) -> u8 {
        debug_assert!(seg < self.segments());
        self.symbols[seg]
    }

    /// The symbols as a slice (`segments` bytes).
    #[inline]
    #[must_use]
    pub fn symbols(&self) -> &[u8] {
        &self.symbols[..self.segments()]
    }

    /// The full backing array (entries past `segments` are zero) — for the
    /// SIMD table-gather path, which always loads all 16 lanes.
    #[inline]
    pub(crate) fn symbols_raw(&self) -> &[u8; MAX_SEGMENTS] {
        &self.symbols
    }

    /// The `bits`-bit prefix of segment `seg`'s symbol — i.e. the symbol at
    /// cardinality `2^bits`.
    #[inline]
    #[must_use]
    pub fn prefix(&self, seg: usize, bits: u8) -> u8 {
        debug_assert!((1..=MAX_BITS).contains(&bits));
        self.symbol(seg) >> (MAX_BITS - bits)
    }

    /// The root key: the most significant bit of every segment, packed with
    /// segment 0 at the most significant position.
    ///
    /// This is what Stage 1/2 of the pipelines use to route a series to its
    /// root subtree (and its receiving buffer).
    #[inline]
    #[must_use]
    pub fn root_key(&self) -> u16 {
        let mut key = 0u16;
        for seg in 0..self.segments() {
            key = (key << 1) | u16::from(self.symbols[seg] >> (MAX_BITS - 1));
        }
        key
    }
}

/// A variable-cardinality word describing an index node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeWord {
    /// Per-segment prefix, stored right-aligned (the symbol at `2^bits[i]`).
    prefixes: [u8; MAX_SEGMENTS],
    /// Per-segment cardinality in bits, each in `1..=MAX_BITS`.
    bits: [u8; MAX_SEGMENTS],
    segments: u8,
}

impl NodeWord {
    /// The word of a root subtree: one bit per segment, taken from `key`
    /// (as produced by [`Word::root_key`]).
    #[must_use]
    pub fn root(key: u16, segments: usize) -> Self {
        assert!((1..=MAX_SEGMENTS).contains(&segments));
        let mut prefixes = [0u8; MAX_SEGMENTS];
        for (seg, prefix) in prefixes.iter_mut().enumerate().take(segments) {
            *prefix = ((key >> (segments - 1 - seg)) & 1) as u8;
        }
        Self {
            prefixes,
            bits: [1; MAX_SEGMENTS],
            segments: segments as u8,
        }
    }

    /// Rebuilds a node word from raw per-segment `(prefix, bits)` pairs, as
    /// stored in a persisted snapshot.
    ///
    /// Returns `None` unless the parts describe a word [`Self::root`] +
    /// [`Self::split`] could have produced: equal slice lengths in
    /// `1..=MAX_SEGMENTS`, every cardinality in `1..=MAX_BITS`, and every
    /// prefix representable in its cardinality. Callers reading untrusted
    /// bytes map `None` to their corruption error.
    #[must_use]
    pub fn from_parts(prefixes: &[u8], bits: &[u8]) -> Option<Self> {
        if prefixes.len() != bits.len() || !(1..=MAX_SEGMENTS).contains(&prefixes.len()) {
            return None;
        }
        for (&prefix, &b) in prefixes.iter().zip(bits) {
            if !(1..=MAX_BITS).contains(&b) || (b < MAX_BITS && prefix >> b != 0) {
                return None;
            }
        }
        let mut p = [0u8; MAX_SEGMENTS];
        p[..prefixes.len()].copy_from_slice(prefixes);
        // Unused trailing slots hold 1, matching `root`'s initial array (the
        // SIMD gather path loads all 16 lanes and shifts by each one).
        let mut bs = [1u8; MAX_SEGMENTS];
        bs[..bits.len()].copy_from_slice(bits);
        Some(Self {
            prefixes: p,
            bits: bs,
            segments: prefixes.len() as u8,
        })
    }

    /// Number of segments.
    #[inline]
    #[must_use]
    pub fn segments(&self) -> usize {
        self.segments as usize
    }

    /// Cardinality (in bits) of segment `seg`.
    #[inline]
    #[must_use]
    pub fn bits(&self, seg: usize) -> u8 {
        debug_assert!(seg < self.segments());
        self.bits[seg]
    }

    /// Prefix (symbol at this node's cardinality) of segment `seg`.
    #[inline]
    #[must_use]
    pub fn prefix(&self, seg: usize) -> u8 {
        debug_assert!(seg < self.segments());
        self.prefixes[seg]
    }

    /// The full bits array (entries past `segments` stay at their initial
    /// `1`) — for the SIMD table-gather path.
    #[inline]
    pub(crate) fn bits_raw(&self) -> &[u8; MAX_SEGMENTS] {
        &self.bits
    }

    /// The full prefixes array (entries past `segments` are zero) — for the
    /// SIMD table-gather path.
    #[inline]
    pub(crate) fn prefixes_raw(&self) -> &[u8; MAX_SEGMENTS] {
        &self.prefixes
    }

    /// `true` iff `word` falls under this node (every segment's symbol
    /// starts with the node's prefix).
    #[inline]
    #[must_use]
    pub fn contains(&self, word: &Word) -> bool {
        debug_assert_eq!(self.segments(), word.segments());
        for seg in 0..self.segments() {
            if word.prefix(seg, self.bits[seg]) != self.prefixes[seg] {
                return false;
            }
        }
        true
    }

    /// Precomputes a [`WordMatcher`] for containment tests against many
    /// candidate words — the snapshot decoder checks every leaf entry
    /// against its leaf's word, and one masked `u128` compare per entry
    /// beats [`contains`](Self::contains)'s per-segment loop ~20×.
    #[must_use]
    pub fn matcher(&self) -> WordMatcher {
        let mut mask = [0u8; MAX_SEGMENTS];
        let mut want = [0u8; MAX_SEGMENTS];
        for seg in 0..self.segments() {
            let shift = MAX_BITS - self.bits[seg];
            mask[seg] = 0xFFu8 << shift;
            want[seg] = self.prefixes[seg] << shift;
        }
        WordMatcher {
            mask: u128::from_le_bytes(mask),
            want: u128::from_le_bytes(want),
        }
    }

    /// `true` if segment `seg` can still be refined.
    #[inline]
    #[must_use]
    pub fn can_split(&self, seg: usize) -> bool {
        self.bits(seg) < MAX_BITS
    }

    /// The two child words obtained by refining segment `seg` with one more
    /// bit (`0` child first).
    ///
    /// # Panics
    /// Panics if the segment is already at maximum cardinality.
    #[must_use]
    pub fn split(&self, seg: usize) -> (NodeWord, NodeWord) {
        assert!(
            self.can_split(seg),
            "segment {seg} already at max cardinality"
        );
        let mut zero = *self;
        zero.bits[seg] += 1;
        zero.prefixes[seg] <<= 1;
        let mut one = zero;
        one.prefixes[seg] |= 1;
        (zero, one)
    }

    /// Which child of a split on `seg` the given word belongs to
    /// (`false` = zero child).
    #[inline]
    #[must_use]
    pub fn split_bit(&self, word: &Word, seg: usize) -> bool {
        debug_assert!(self.can_split(seg));
        // The bit right below the current prefix.
        (word.symbol(seg) >> (MAX_BITS - self.bits(seg) - 1)) & 1 == 1
    }

    /// Sum of all segment cardinalities in bits (a depth measure).
    #[must_use]
    pub fn total_bits(&self) -> u32 {
        (0..self.segments()).map(|s| u32::from(self.bits[s])).sum()
    }
}

/// A precomputed [`NodeWord`] containment test: the per-segment
/// `symbol >> (MAX_BITS - bits) == prefix` checks collapse into one
/// masked compare over all [`MAX_SEGMENTS`] symbol bytes at once
/// (`MAX_SEGMENTS` bytes fit exactly in a `u128`). Unused trailing
/// segments get a zero mask, and a [`Word`]'s trailing symbol bytes are
/// zero, so equal-segment-count pairs compare exactly like
/// [`NodeWord::contains`].
#[derive(Debug, Clone, Copy)]
pub struct WordMatcher {
    mask: u128,
    want: u128,
}

impl WordMatcher {
    /// `true` iff `word` falls under the node word this was built from.
    #[inline]
    #[must_use]
    pub fn contains(&self, word: &Word) -> bool {
        u128::from_le_bytes(*word.symbols_raw()) & self.mask == self.want
    }
}

impl std::fmt::Display for NodeWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Formats like the literature: 10_2 01_2 1_1 ... (prefix_bits).
        for seg in 0..self.segments() {
            if seg > 0 {
                write!(f, " ")?;
            }
            let bits = self.bits(seg);
            write!(f, "{:0width$b}", self.prefix(seg), width = bits as usize)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matcher_agrees_with_contains_across_random_splits() {
        // Walk random split chains at several segment counts; at every
        // node, the packed matcher and the per-segment loop must agree on
        // a batch of pseudorandom words.
        let mut state = 0x1234_5678_9ABC_DEFFu64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for segments in [1usize, 3, 8, 16] {
            let key_mask = ((1u32 << segments) - 1) as u16;
            for key in [0u16, 1, key_mask] {
                let mut node = NodeWord::root(key & key_mask, segments);
                for _ in 0..24 {
                    let matcher = node.matcher();
                    for _ in 0..32 {
                        let bytes: Vec<u8> = (0..segments).map(|_| (rand() >> 32) as u8).collect();
                        let w = Word::new(&bytes);
                        assert_eq!(matcher.contains(&w), node.contains(&w), "{node} vs {w:?}");
                    }
                    let seg = (rand() as usize) % segments;
                    if !node.can_split(seg) {
                        continue;
                    }
                    let (zero, one) = node.split(seg);
                    node = if rand() & 1 == 0 { zero } else { one };
                }
            }
        }
    }

    #[test]
    fn word_basics() {
        let w = Word::new(&[1, 2, 3, 255]);
        assert_eq!(w.segments(), 4);
        assert_eq!(w.symbol(3), 255);
        assert_eq!(w.symbols(), &[1, 2, 3, 255]);
    }

    #[test]
    #[should_panic(expected = "segment count")]
    fn word_rejects_empty() {
        let _ = Word::new(&[]);
    }

    #[test]
    #[should_panic(expected = "segment count")]
    fn word_rejects_too_many_segments() {
        let _ = Word::new(&[0u8; 17]);
    }

    #[test]
    fn prefix_extraction() {
        let w = Word::new(&[0b1011_0110]);
        assert_eq!(w.prefix(0, 1), 0b1);
        assert_eq!(w.prefix(0, 3), 0b101);
        assert_eq!(w.prefix(0, 8), 0b1011_0110);
    }

    #[test]
    fn root_key_packs_msbs() {
        let w = Word::new(&[0b1000_0000, 0b0111_1111, 0b1100_0000]);
        assert_eq!(w.root_key(), 0b101);
    }

    #[test]
    fn root_word_round_trips_key() {
        for segments in [1usize, 3, 8, 16] {
            let max_key = (1u32 << segments) - 1;
            for key in [0u32, 1, max_key / 2, max_key] {
                let node = NodeWord::root(key as u16, segments);
                for seg in 0..segments {
                    assert_eq!(node.bits(seg), 1);
                    let expect = ((key >> (segments - 1 - seg)) & 1) as u8;
                    assert_eq!(node.prefix(seg), expect);
                }
            }
        }
    }

    #[test]
    fn root_contains_words_with_matching_msbs() {
        let w = Word::new(&[0b1010_1010, 0b0101_0101]);
        let node = NodeWord::root(w.root_key(), 2);
        assert!(node.contains(&w));
        let other = Word::new(&[0b0010_1010, 0b0101_0101]); // first MSB differs
        assert!(!node.contains(&other));
    }

    #[test]
    fn split_partitions_containment() {
        let w0 = Word::new(&[0b1000_0000, 0b0100_0000]);
        let w1 = Word::new(&[0b1100_0000, 0b0100_0000]);
        let node = NodeWord::root(w0.root_key(), 2);
        assert!(node.contains(&w0) && node.contains(&w1));
        let (zero, one) = node.split(0);
        assert!(zero.contains(&w0) && !zero.contains(&w1));
        assert!(!one.contains(&w0) && one.contains(&w1));
        assert_eq!(zero.bits(0), 2);
        assert_eq!(zero.bits(1), 1);
        // split_bit agrees with child containment.
        assert!(!node.split_bit(&w0, 0));
        assert!(node.split_bit(&w1, 0));
    }

    #[test]
    fn split_to_max_bits_then_refuses() {
        let mut node = NodeWord::root(0, 1);
        for _ in 1..MAX_BITS {
            let (zero, _) = node.split(0);
            node = zero;
        }
        assert_eq!(node.bits(0), MAX_BITS);
        assert!(!node.can_split(0));
    }

    #[test]
    #[should_panic(expected = "max cardinality")]
    fn split_at_max_panics() {
        let mut node = NodeWord::root(0, 1);
        for _ in 1..MAX_BITS {
            node = node.split(0).0;
        }
        let _ = node.split(0);
    }

    #[test]
    fn total_bits_counts() {
        let node = NodeWord::root(0, 4);
        assert_eq!(node.total_bits(), 4);
        let (zero, _) = node.split(2);
        assert_eq!(zero.total_bits(), 5);
    }

    #[test]
    fn display_formats_prefix_bits() {
        let node = NodeWord::root(0b10, 2);
        let (zero, one) = node.split(1);
        assert_eq!(format!("{node}"), "1 0");
        assert_eq!(format!("{zero}"), "1 00");
        assert_eq!(format!("{one}"), "1 01");
    }

    #[test]
    fn from_parts_round_trips_split_words() {
        let node = NodeWord::root(0b10, 2);
        let (zero, one) = node.split(1);
        for w in [node, zero, one] {
            let prefixes: Vec<u8> = (0..w.segments()).map(|s| w.prefix(s)).collect();
            let bits: Vec<u8> = (0..w.segments()).map(|s| w.bits(s)).collect();
            // Bit-for-bit equal, trailing array slots included — snapshot
            // round-trip equality depends on this.
            assert_eq!(NodeWord::from_parts(&prefixes, &bits), Some(w));
        }
    }

    #[test]
    fn from_parts_rejects_malformed_inputs() {
        assert_eq!(NodeWord::from_parts(&[], &[]), None, "empty");
        assert_eq!(NodeWord::from_parts(&[0; 17], &[1; 17]), None, "too long");
        assert_eq!(NodeWord::from_parts(&[0, 0], &[1]), None, "length mismatch");
        assert_eq!(NodeWord::from_parts(&[0], &[0]), None, "zero bits");
        assert_eq!(NodeWord::from_parts(&[0], &[9]), None, "bits past max");
        assert_eq!(
            NodeWord::from_parts(&[0b100], &[2]),
            None,
            "prefix wider than cardinality"
        );
        // Full-cardinality prefixes may use all 8 bits.
        assert!(NodeWord::from_parts(&[255], &[8]).is_some());
    }

    #[test]
    fn words_are_small() {
        // The SAX array stores millions of these; keep them compact.
        assert!(std::mem::size_of::<Word>() <= 20);
        assert!(std::mem::size_of::<NodeWord>() <= 36);
    }
}
