//! The [`Quantizer`]: a validated `(series_len, segments)` configuration
//! with the conversion routines every engine shares.

use crate::breakpoints::breakpoints;
use crate::error::IsaxError;
use crate::paa::{paa_into, segment_bounds};
use crate::word::{Word, MAX_BITS, MAX_SEGMENTS};

/// Converts raw series into PAA summaries and full-cardinality iSAX words.
///
/// Cloneable and cheap; engines typically keep one per build/query and a
/// per-worker PAA scratch buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quantizer {
    series_len: usize,
    segments: usize,
    /// Per-segment lengths (differ by at most one).
    seg_lens: Vec<u32>,
}

impl Quantizer {
    /// Validates the configuration.
    ///
    /// # Errors
    /// [`IsaxError::BadSegmentCount`] unless `1 <= segments <= 16`;
    /// [`IsaxError::SeriesTooShort`] unless `series_len >= segments`.
    pub fn new(series_len: usize, segments: usize) -> Result<Self, IsaxError> {
        if segments == 0 || segments > MAX_SEGMENTS {
            return Err(IsaxError::BadSegmentCount {
                requested: segments,
            });
        }
        if series_len < segments {
            return Err(IsaxError::SeriesTooShort {
                series_len,
                segments,
            });
        }
        let bounds = segment_bounds(series_len, segments);
        let seg_lens = bounds.windows(2).map(|w| (w[1] - w[0]) as u32).collect();
        Ok(Self {
            series_len,
            segments,
            seg_lens,
        })
    }

    /// Series length this quantizer was configured for.
    #[inline]
    #[must_use]
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Number of PAA/iSAX segments.
    #[inline]
    #[must_use]
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Number of points in each segment.
    #[inline]
    #[must_use]
    pub fn segment_lens(&self) -> &[u32] {
        &self.seg_lens
    }

    /// Number of distinct root keys (`2^segments`).
    #[inline]
    #[must_use]
    pub fn root_count(&self) -> usize {
        1usize << self.segments
    }

    /// Computes the PAA of `series` into `paa_out`.
    ///
    /// # Panics
    /// Panics if `series.len() != self.series_len()` or
    /// `paa_out.len() != self.segments()`.
    #[inline]
    pub fn paa_into(&self, series: &[f32], paa_out: &mut [f32]) {
        assert_eq!(series.len(), self.series_len, "series length mismatch");
        assert_eq!(paa_out.len(), self.segments, "paa buffer length mismatch");
        paa_into(series, paa_out);
    }

    /// Quantizes a PAA vector into a full-cardinality word.
    #[inline]
    #[must_use]
    pub fn word_from_paa(&self, paa: &[f32]) -> Word {
        assert_eq!(paa.len(), self.segments, "paa length mismatch");
        let table = breakpoints();
        let mut symbols = [0u8; MAX_SEGMENTS];
        for (i, &v) in paa.iter().enumerate() {
            symbols[i] = table.symbol(v, MAX_BITS);
        }
        Word::new(&symbols[..self.segments])
    }

    /// Summarizes a raw series into its word, using `paa_scratch` as the
    /// intermediate buffer (no allocation).
    #[inline]
    #[must_use]
    pub fn word_into(&self, series: &[f32], paa_scratch: &mut [f32]) -> Word {
        self.paa_into(series, paa_scratch);
        self.word_from_paa(paa_scratch)
    }

    /// Allocating convenience: summarize a raw series into its word.
    #[must_use]
    pub fn word(&self, series: &[f32]) -> Word {
        let mut scratch = vec![0.0; self.segments];
        self.word_into(series, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Quantizer::new(256, 16).is_ok());
        assert!(matches!(
            Quantizer::new(256, 0),
            Err(IsaxError::BadSegmentCount { requested: 0 })
        ));
        assert!(matches!(
            Quantizer::new(256, 17),
            Err(IsaxError::BadSegmentCount { requested: 17 })
        ));
        assert!(matches!(
            Quantizer::new(8, 16),
            Err(IsaxError::SeriesTooShort {
                series_len: 8,
                segments: 16
            })
        ));
        // Equal lengths are allowed (each point its own segment).
        assert!(Quantizer::new(16, 16).is_ok());
    }

    #[test]
    fn segment_lens_sum_to_series_len() {
        for (n, w) in [(256, 16), (128, 16), (10, 3), (7, 7), (100, 13)] {
            let q = Quantizer::new(n, w).unwrap();
            assert_eq!(q.segment_lens().len(), w);
            assert_eq!(q.segment_lens().iter().sum::<u32>() as usize, n);
        }
    }

    #[test]
    fn word_reflects_paa_signs() {
        let q = Quantizer::new(8, 2).unwrap();
        // First half strongly negative, second strongly positive.
        let s = [-2.0f32, -2.0, -2.0, -2.0, 2.0, 2.0, 2.0, 2.0];
        let w = q.word(&s);
        assert!(w.symbol(0) < 128, "negative segment quantizes below median");
        assert!(
            w.symbol(1) >= 128,
            "positive segment quantizes above median"
        );
        assert_eq!(w.root_key(), 0b01);
    }

    #[test]
    fn word_into_matches_word() {
        let q = Quantizer::new(32, 8).unwrap();
        let s: Vec<f32> = (0..32).map(|i| ((i as f32) * 0.7).sin() * 2.0).collect();
        let mut scratch = vec![0.0; 8];
        assert_eq!(q.word_into(&s, &mut scratch), q.word(&s));
    }

    #[test]
    #[should_panic(expected = "series length mismatch")]
    fn wrong_series_len_panics() {
        let q = Quantizer::new(16, 4).unwrap();
        let mut out = [0.0f32; 4];
        q.paa_into(&[0.0; 8], &mut out);
    }

    #[test]
    fn root_count() {
        assert_eq!(Quantizer::new(256, 16).unwrap().root_count(), 65536);
        assert_eq!(Quantizer::new(256, 4).unwrap().root_count(), 16);
    }
}
