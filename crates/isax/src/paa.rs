//! Piecewise Aggregate Approximation.
//!
//! A series of length `n` is cut into `w` contiguous segments; segment `i`
//! covers positions `[i*n/w, (i+1)*n/w)` (integer division), so lengths
//! differ by at most one when `w` does not divide `n`. Each segment is
//! summarized by its mean.

/// Returns the start offsets of each segment plus the final end offset
/// (`w + 1` entries).
#[must_use]
pub fn segment_bounds(series_len: usize, segments: usize) -> Vec<usize> {
    assert!(
        segments > 0 && segments <= series_len,
        "invalid segmentation"
    );
    (0..=segments).map(|i| i * series_len / segments).collect()
}

/// Computes the PAA of `series` into `out` (`out.len()` segments).
///
/// # Panics
/// Panics if `out` is empty or longer than `series`.
pub fn paa_into(series: &[f32], out: &mut [f32]) {
    let w = out.len();
    assert!(w > 0 && w <= series.len(), "invalid segmentation");
    let n = series.len();
    let mut start = 0;
    for (i, o) in out.iter_mut().enumerate() {
        let end = (i + 1) * n / w;
        let seg = &series[start..end];
        let sum: f32 = seg.iter().sum();
        *o = sum / seg.len() as f32;
        start = end;
    }
}

/// Allocating convenience wrapper around [`paa_into`].
#[must_use]
pub fn paa(series: &[f32], segments: usize) -> Vec<f32> {
    let mut out = vec![0.0; segments];
    paa_into(series, &mut out);
    out
}

/// Per-segment PAA bounds of a DTW envelope: segment-max of the upper
/// envelope and segment-min of the lower envelope.
///
/// Using max/min (rather than means) keeps the PAA-level DTW lower bound
/// sound: every warped alignment of the query stays inside
/// `[lower_out[i], upper_out[i]]` for each candidate point of segment `i`.
pub fn envelope_paa_bounds(
    lower_env: &[f32],
    upper_env: &[f32],
    lower_out: &mut [f32],
    upper_out: &mut [f32],
) {
    assert_eq!(lower_env.len(), upper_env.len(), "envelope length mismatch");
    assert_eq!(lower_out.len(), upper_out.len(), "output length mismatch");
    let w = lower_out.len();
    let n = lower_env.len();
    assert!(w > 0 && w <= n, "invalid segmentation");
    let mut start = 0;
    for i in 0..w {
        let end = (i + 1) * n / w;
        lower_out[i] = lower_env[start..end]
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min);
        upper_out[i] = upper_env[start..end]
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let s = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0];
        assert_eq!(paa(&s, 4), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn single_segment_is_mean() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(paa(&s, 1), vec![2.5]);
    }

    #[test]
    fn segments_equal_length_is_identity() {
        let s = [3.0, -1.0, 2.0];
        assert_eq!(paa(&s, 3), s.to_vec());
    }

    #[test]
    fn uneven_division_covers_everything() {
        // n=10, w=3 -> bounds 0,3,6,10 -> segments of 3,3,4.
        let bounds = segment_bounds(10, 3);
        assert_eq!(bounds, vec![0, 3, 6, 10]);
        let s: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let p = paa(&s, 3);
        assert_eq!(p, vec![1.0, 4.0, 7.5]);
    }

    #[test]
    fn paa_preserves_global_mean_when_even() {
        let s: Vec<f32> = (0..64).map(|i| ((i * 37) % 13) as f32).collect();
        let p = paa(&s, 16);
        let series_mean: f32 = s.iter().sum::<f32>() / 64.0;
        let paa_mean: f32 = p.iter().sum::<f32>() / 16.0;
        assert!((series_mean - paa_mean).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "invalid segmentation")]
    fn more_segments_than_points_panics() {
        let _ = paa(&[1.0, 2.0], 3);
    }

    #[test]
    fn envelope_paa_bounds_bracket_paa() {
        let s: Vec<f32> = (0..32).map(|i| (i as f32 * 0.3).sin()).collect();
        // Degenerate envelope (radius 0) -> bounds bracket the PAA means.
        let mut lo = vec![0.0; 8];
        let mut hi = vec![0.0; 8];
        envelope_paa_bounds(&s, &s, &mut lo, &mut hi);
        let p = paa(&s, 8);
        for i in 0..8 {
            assert!(lo[i] <= p[i] && p[i] <= hi[i]);
        }
    }
}
