//! Leaf-split policy: which segment's cardinality to refine.
//!
//! Per ADS+/iSAX 2.0, an overflowing leaf splits on the segment whose next
//! bit partitions the leaf's entries most evenly ("the one that will result
//! in the most balanced split", §II). Ties prefer the segment with the
//! lowest current cardinality (keeping words shallow), then the lowest
//! index.

use crate::word::{NodeWord, Word};

/// Picks the split segment for a leaf with word `node` holding `words`.
///
/// Returns `None` when every segment is already at maximum cardinality —
/// the caller must then let the leaf overflow (identical full-cardinality
/// words cannot be separated).
pub fn choose_split_segment<'a>(
    words: impl IntoIterator<Item = &'a Word>,
    node: &NodeWord,
) -> Option<usize> {
    let segments = node.segments();
    let mut ones = vec![0u32; segments];
    let mut total = 0u32;
    for w in words {
        debug_assert!(
            node.contains(w),
            "word outside node cannot vote on its split"
        );
        for (seg, count) in ones.iter_mut().enumerate() {
            if node.can_split(seg) && node.split_bit(w, seg) {
                *count += 1;
            }
        }
        total += 1;
    }
    let mut best: Option<(u32, u8, usize)> = None; // (imbalance, bits, seg)
    for (seg, &seg_ones) in ones.iter().enumerate() {
        if !node.can_split(seg) {
            continue;
        }
        let imbalance = (2 * seg_ones).abs_diff(total);
        let key = (imbalance, node.bits(seg), seg);
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    best.map(|(_, _, seg)| seg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::MAX_BITS;

    #[test]
    fn picks_most_balanced_segment() {
        // Root node over 2 segments; both prefixes are 1.
        let node = NodeWord::root(0b11, 2);
        // Segment 0 next bits: 0,0,0,0 (imbalance 4).
        // Segment 1 next bits: 0,0,1,1 (imbalance 0) -> pick 1.
        let words = [
            Word::new(&[0b1000_0000, 0b1000_0000]),
            Word::new(&[0b1000_0000, 0b1010_0000]),
            Word::new(&[0b1011_0000, 0b1100_0000]),
            Word::new(&[0b1001_0000, 0b1110_0000]),
        ];
        assert_eq!(choose_split_segment(words.iter(), &node), Some(1));
    }

    #[test]
    fn tie_breaks_on_lower_cardinality_then_index() {
        let node = NodeWord::root(0b00, 2);
        // Both segments perfectly balanced.
        let words = [
            Word::new(&[0b0000_0000, 0b0000_0000]),
            Word::new(&[0b0100_0000, 0b0100_0000]),
        ];
        assert_eq!(choose_split_segment(words.iter(), &node), Some(0));
        // Refine segment 0 once; now segment 1 has fewer bits and wins ties.
        let (zero, _) = node.split(0);
        let words = [
            Word::new(&[0b0000_0000, 0b0000_0000]),
            Word::new(&[0b0010_0000, 0b0100_0000]),
        ];
        assert_eq!(choose_split_segment(words.iter(), &zero), Some(1));
    }

    #[test]
    fn returns_none_at_max_cardinality() {
        let mut node = NodeWord::root(0, 1);
        for _ in 1..MAX_BITS {
            node = node.split(0).0;
        }
        let words = [Word::new(&[0]), Word::new(&[0])];
        assert_eq!(choose_split_segment(words.iter(), &node), None);
    }

    #[test]
    fn empty_leaf_still_picks_a_segment() {
        let node = NodeWord::root(0, 4);
        // No entries: every splittable segment has imbalance 0; lowest index.
        assert_eq!(choose_split_segment([].iter(), &node), Some(0));
    }

    #[test]
    fn split_actually_separates_on_chosen_segment() {
        let node = NodeWord::root(0b0, 1);
        let words = [
            Word::new(&[0b0000_0000]),
            Word::new(&[0b0111_1111]),
            Word::new(&[0b0100_0000]),
        ];
        let seg = choose_split_segment(words.iter(), &node).unwrap();
        let (zero, one) = node.split(seg);
        let zeros = words.iter().filter(|w| zero.contains(w)).count();
        let ones = words.iter().filter(|w| one.contains(w)).count();
        assert_eq!(zeros + ones, words.len());
        assert!(zeros > 0 && ones > 0, "split should separate these words");
    }
}
