//! MINDIST lower-bound distances between query summaries and iSAX words.
//!
//! Soundness requirement (the index is exact only because of this): for any
//! query `q` and candidate series `c`,
//!
//! ```text
//! mindist_paa_node_sq(PAA(q), node_word(c)) <= ED(q, c)^2
//! ```
//!
//! The per-segment argument: all points of `c` in segment `i` average to a
//! value inside the region `[lo_i, hi_i)` encoded by the word, and
//! `sum_{j in seg}(q_j - c_j)^2 >= len_i * (paa(q)_i - paa(c)_i)^2 >=
//! len_i * d(paa(q)_i, [lo_i, hi_i))^2`.
//!
//! For query scans over the SAX array (ParIS stage 4), [`MindistTable`]
//! precomputes the per-(segment, symbol) contribution once per query, so
//! each array entry costs `w` table lookups and adds — the Rust counterpart
//! of the paper's SIMD lower-bound kernel.

use crate::breakpoints::breakpoints;
use crate::word::{NodeWord, Word, MAX_BITS, MAX_CARDINALITY};

/// Squared distance from a point to an interval (0 inside).
#[inline]
fn interval_dist_sq(v: f32, lo: f32, hi: f32) -> f32 {
    if v < lo {
        let d = lo - v;
        d * d
    } else if v > hi {
        let d = v - hi;
        d * d
    } else {
        0.0
    }
}

/// Squared distance between two intervals (0 if they overlap).
#[inline]
fn interval_gap_sq(alo: f32, ahi: f32, blo: f32, bhi: f32) -> f32 {
    if alo > bhi {
        let d = alo - bhi;
        d * d
    } else if bhi >= alo && blo <= ahi {
        0.0
    } else {
        let d = blo - ahi;
        d * d
    }
}

/// Squared MINDIST between a query PAA and a node's variable-cardinality
/// word.
///
/// `seg_lens[i]` is the number of raw points in segment `i` (from
/// [`crate::Quantizer::segment_lens`]).
#[must_use]
pub fn mindist_paa_node_sq(paa: &[f32], node: &NodeWord, seg_lens: &[u32]) -> f32 {
    debug_assert_eq!(paa.len(), node.segments());
    debug_assert_eq!(paa.len(), seg_lens.len());
    let table = breakpoints();
    let mut sum = 0.0f32;
    for seg in 0..node.segments() {
        let (lo, hi) = table.region(node.prefix(seg), node.bits(seg));
        sum += seg_lens[seg] as f32 * interval_dist_sq(paa[seg], lo, hi);
    }
    sum
}

/// Squared MINDIST between a query PAA and a full-cardinality word (a SAX
/// array entry or leaf entry).
#[must_use]
pub fn mindist_paa_word_sq(paa: &[f32], word: &Word, seg_lens: &[u32]) -> f32 {
    debug_assert_eq!(paa.len(), word.segments());
    debug_assert_eq!(paa.len(), seg_lens.len());
    let table = breakpoints();
    let mut sum = 0.0f32;
    for seg in 0..word.segments() {
        let (lo, hi) = table.region(word.symbol(seg), MAX_BITS);
        sum += seg_lens[seg] as f32 * interval_dist_sq(paa[seg], lo, hi);
    }
    sum
}

/// Squared DTW MINDIST between a query's PAA envelope bounds
/// (see [`crate::paa::envelope_paa_bounds`]) and a node word.
///
/// Lower-bounds `DTW(q, c)` for every `c` under the node, because every
/// warped query point aligned with segment `i` lies within
/// `[env_lo[i], env_hi[i]]`.
#[must_use]
pub fn mindist_envelope_node_sq(
    env_lo: &[f32],
    env_hi: &[f32],
    node: &NodeWord,
    seg_lens: &[u32],
) -> f32 {
    debug_assert_eq!(env_lo.len(), node.segments());
    let table = breakpoints();
    let mut sum = 0.0f32;
    for seg in 0..node.segments() {
        let (lo, hi) = table.region(node.prefix(seg), node.bits(seg));
        sum += seg_lens[seg] as f32 * interval_gap_sq(env_lo[seg], env_hi[seg], lo, hi);
    }
    sum
}

/// A per-query lookup table for full-cardinality MINDIST evaluations.
///
/// `table[seg * 256 + symbol]` holds that segment's weighted squared
/// contribution, so `lookup` is `w` gathers and adds per word.
#[derive(Debug, Clone)]
pub struct MindistTable {
    table: Vec<f32>,
    segments: usize,
}

impl MindistTable {
    /// Builds the table for an ED query with PAA `paa`.
    #[must_use]
    pub fn new_point(paa: &[f32], seg_lens: &[u32]) -> Self {
        Self::build(paa.len(), seg_lens, |seg, lo, hi| {
            interval_dist_sq(paa[seg], lo, hi)
        })
    }

    /// Builds the table for a DTW query with PAA envelope bounds.
    #[must_use]
    pub fn new_interval(env_lo: &[f32], env_hi: &[f32], seg_lens: &[u32]) -> Self {
        Self::build(env_lo.len(), seg_lens, |seg, lo, hi| {
            interval_gap_sq(env_lo[seg], env_hi[seg], lo, hi)
        })
    }

    fn build(segments: usize, seg_lens: &[u32], dist: impl Fn(usize, f32, f32) -> f32) -> Self {
        assert_eq!(segments, seg_lens.len());
        let bp = breakpoints();
        let mut table = vec![0.0f32; segments * MAX_CARDINALITY];
        for (seg, &seg_len) in seg_lens.iter().enumerate() {
            let weight = seg_len as f32;
            let row = &mut table[seg * MAX_CARDINALITY..(seg + 1) * MAX_CARDINALITY];
            for (symbol, slot) in row.iter_mut().enumerate() {
                let (lo, hi) = bp.region(symbol as u8, MAX_BITS);
                *slot = weight * dist(seg, lo, hi);
            }
        }
        Self { table, segments }
    }

    /// Squared MINDIST to a full-cardinality word.
    ///
    /// Dispatches to an AVX2 two-gather kernel at the default 16 segments
    /// (unless `DSIDX_NO_SIMD` disables it); the SIMD sum may differ from
    /// [`Self::lookup_scalar`] in the last bits (lane-parallel vs
    /// sequential accumulation) but both are sound lower bounds built from
    /// the same table entries.
    #[inline]
    #[must_use]
    pub fn lookup(&self, word: &Word) -> f32 {
        debug_assert_eq!(word.segments(), self.segments);
        #[cfg(target_arch = "x86_64")]
        if self.segments == crate::word::MAX_SEGMENTS && dsidx_series::distance::simd_enabled() {
            // SAFETY: `simd_enabled` implies AVX2; segments == 16 means the
            // table holds the full 16 * 256 entries every index lands in.
            return unsafe { crate::simd::word_table_lookup_avx2(&self.table, word.symbols_raw()) };
        }
        self.lookup_scalar(word)
    }

    /// The scalar lookup: sums the per-segment contributions sequentially,
    /// which makes it bit-identical to [`mindist_paa_word_sq`] /
    /// [`mindist_envelope_node_sq`]'s full-cardinality analogue (same
    /// precomputed terms, same order). The reassociation-free reference the
    /// proptests pin against.
    #[inline]
    #[must_use]
    pub fn lookup_scalar(&self, word: &Word) -> f32 {
        debug_assert_eq!(word.segments(), self.segments);
        let mut sum = 0.0f32;
        for seg in 0..self.segments {
            // SAFETY-free indexing: symbol is u8, rows are 256 wide.
            sum += self.table[seg * MAX_CARDINALITY + word.symbol(seg) as usize];
        }
        sum
    }

    /// Lower-bounds a run of words, one result per word — the primitive
    /// behind the SAX-array scans (ADS+'s serial scan, ParIS's collect
    /// phase), which bound millions of contiguous words per query.
    ///
    /// Dispatches to an AVX2 kernel that transposes eight words in-register
    /// and gathers each segment's entries vertically; its per-lane
    /// accumulation order matches [`Self::lookup_scalar`] exactly, so every
    /// result is **bit-identical** whether SIMD is on or off (unlike the
    /// single-word [`Self::lookup`], whose horizontal sum reassociates).
    ///
    /// Only the first `words.len()` slots of `out` are written; any excess
    /// capacity is left untouched.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `words`.
    pub fn lookup_many(&self, words: &[Word], out: &mut [f32]) {
        assert!(out.len() >= words.len(), "output buffer too short");
        // Trim `out` to the words actually bounded: the SIMD path below
        // walks `words` and `out` with separate `chunks_exact` iterators,
        // and their remainders only line up when the lengths match (callers
        // pass fixed-size block buffers longer than the final short block).
        let out = &mut out[..words.len()];
        #[cfg(target_arch = "x86_64")]
        if self.segments == crate::word::MAX_SEGMENTS && dsidx_series::distance::simd_enabled() {
            let mut word_blocks = words.chunks_exact(8);
            let mut out_blocks = out.chunks_exact_mut(8);
            for (wb, ob) in (&mut word_blocks).zip(&mut out_blocks) {
                let wb: &[Word; 8] = wb.try_into().expect("chunk is 8 wide");
                let ob: &mut [f32; 8] = ob.try_into().expect("chunk is 8 wide");
                // SAFETY: `simd_enabled` implies AVX2; segments == 16 means
                // the table holds the full 16 * 256 entries.
                unsafe { crate::simd::word_table_lookup_batch8_avx2(&self.table, wb, ob) };
            }
            for (w, o) in word_blocks
                .remainder()
                .iter()
                .zip(out_blocks.into_remainder())
            {
                *o = self.lookup_scalar(w);
            }
            return;
        }
        for (w, o) in words.iter().zip(out) {
            *o = self.lookup_scalar(w);
        }
    }
}

/// A per-query lookup table for *node-level* MINDIST evaluations at every
/// cardinality.
///
/// `table[seg][bits-1][prefix]` holds the weighted squared contribution of
/// segment `seg` when its region is the `prefix` region at `2^bits`
/// cardinality. Tree traversal (MESSI) evaluates tens of thousands of node
/// bounds per query; this reduces each to `w` lookups and adds, like
/// [`MindistTable`] does for full-cardinality words.
#[derive(Debug, Clone)]
pub struct NodeMindistTable {
    /// Flat layout: `seg * (MAX_BITS * MAX_CARDINALITY) + (bits-1) * MAX_CARDINALITY + prefix`.
    table: Vec<f32>,
    segments: usize,
}

impl NodeMindistTable {
    /// Builds the table for an ED query with PAA `paa`.
    #[must_use]
    pub fn new_point(paa: &[f32], seg_lens: &[u32]) -> Self {
        Self::build(paa.len(), seg_lens, |seg, lo, hi| {
            interval_dist_sq(paa[seg], lo, hi)
        })
    }

    /// Builds the table for a DTW query with PAA envelope bounds.
    #[must_use]
    pub fn new_interval(env_lo: &[f32], env_hi: &[f32], seg_lens: &[u32]) -> Self {
        Self::build(env_lo.len(), seg_lens, |seg, lo, hi| {
            interval_gap_sq(env_lo[seg], env_hi[seg], lo, hi)
        })
    }

    fn build(segments: usize, seg_lens: &[u32], dist: impl Fn(usize, f32, f32) -> f32) -> Self {
        assert_eq!(segments, seg_lens.len());
        let bp = breakpoints();
        let stride_seg = MAX_BITS as usize * MAX_CARDINALITY;
        let mut table = vec![0.0f32; segments * stride_seg];
        for (seg, &seg_len) in seg_lens.iter().enumerate() {
            let weight = seg_len as f32;
            for bits in 1..=MAX_BITS {
                let row_base = seg * stride_seg + (bits as usize - 1) * MAX_CARDINALITY;
                for prefix in 0..(1usize << bits) {
                    let (lo, hi) = bp.region(prefix as u8, bits);
                    table[row_base + prefix] = weight * dist(seg, lo, hi);
                }
            }
        }
        Self { table, segments }
    }

    /// The contribution of segment `seg` at one-bit cardinality, for both
    /// prefixes `(bit 0, bit 1)`.
    ///
    /// Root subtrees all have one-bit words derived from their key, so the
    /// engines scan root keys with these 2-entry rows instead of touching
    /// tree nodes — the root level is by far the widest.
    #[inline]
    #[must_use]
    pub fn root_pair(&self, seg: usize) -> (f32, f32) {
        debug_assert!(seg < self.segments);
        let base = seg * MAX_BITS as usize * MAX_CARDINALITY;
        (self.table[base], self.table[base + 1])
    }

    /// Squared MINDIST to a variable-cardinality node word.
    ///
    /// Dispatches to an AVX2 two-gather kernel at the default 16 segments;
    /// see [`MindistTable::lookup`] for the accumulation-order caveat.
    #[inline]
    #[must_use]
    pub fn lookup(&self, node: &NodeWord) -> f32 {
        debug_assert_eq!(node.segments(), self.segments);
        #[cfg(target_arch = "x86_64")]
        if self.segments == crate::word::MAX_SEGMENTS && dsidx_series::distance::simd_enabled() {
            // SAFETY: `simd_enabled` implies AVX2; segments == 16 means the
            // table holds all 16 * 8 * 256 entries, and `NodeWord`
            // maintains every bits entry in 1..=MAX_BITS.
            return unsafe {
                crate::simd::node_table_lookup_avx2(
                    &self.table,
                    node.bits_raw(),
                    node.prefixes_raw(),
                )
            };
        }
        self.lookup_scalar(node)
    }

    /// The scalar node lookup: sequential accumulation, bit-identical to
    /// [`mindist_paa_node_sq`] over the same table entries.
    #[inline]
    #[must_use]
    pub fn lookup_scalar(&self, node: &NodeWord) -> f32 {
        debug_assert_eq!(node.segments(), self.segments);
        let stride_seg = MAX_BITS as usize * MAX_CARDINALITY;
        let mut sum = 0.0f32;
        for seg in 0..self.segments {
            let idx = seg * stride_seg
                + (node.bits(seg) as usize - 1) * MAX_CARDINALITY
                + node.prefix(seg) as usize;
            sum += self.table[idx];
        }
        sum
    }

    /// Squared MINDIST from raw `(bits, prefix)` arrays (used by the
    /// flattened tree, which stores node words as plain byte arrays).
    ///
    /// Only the first `segments` entries of each slice are read. The SIMD
    /// path additionally requires every `bits[seg]` to be in
    /// `1..=MAX_BITS` (always true for bytes written by the flattened
    /// tree); rather than trust callers, out-of-range bits fall back to the
    /// scalar loop, which panics on the resulting out-of-bounds index.
    #[inline]
    #[must_use]
    pub fn lookup_parts(&self, bits: &[u8], prefixes: &[u8]) -> f32 {
        debug_assert!(bits.len() >= self.segments && prefixes.len() >= self.segments);
        #[cfg(target_arch = "x86_64")]
        if self.segments == crate::word::MAX_SEGMENTS
            && bits.len() >= crate::word::MAX_SEGMENTS
            && prefixes.len() >= crate::word::MAX_SEGMENTS
            && dsidx_series::distance::simd_enabled()
        {
            let bits_arr: &[u8; crate::word::MAX_SEGMENTS] =
                bits[..crate::word::MAX_SEGMENTS].try_into().unwrap();
            let pref_arr: &[u8; crate::word::MAX_SEGMENTS] =
                prefixes[..crate::word::MAX_SEGMENTS].try_into().unwrap();
            if bits_arr.iter().all(|b| (1..=MAX_BITS).contains(b)) {
                // SAFETY: `simd_enabled` implies AVX2; segments == 16 means
                // the table holds all 16 * 8 * 256 entries, and every bits
                // lane was just validated to be in 1..=MAX_BITS.
                return unsafe {
                    crate::simd::node_table_lookup_avx2(&self.table, bits_arr, pref_arr)
                };
            }
        }
        let stride_seg = MAX_BITS as usize * MAX_CARDINALITY;
        let mut sum = 0.0f32;
        for seg in 0..self.segments {
            let idx = seg * stride_seg
                + (bits[seg] as usize - 1) * MAX_CARDINALITY
                + prefixes[seg] as usize;
            sum += self.table[idx];
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantizer::Quantizer;

    fn series(seed: u64, n: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut v: Vec<f32> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / 16_777_216.0) * 4.0 - 2.0
            })
            .collect();
        // z-normalize so values sit in breakpoint territory
        let mean = v.iter().sum::<f32>() / n as f32;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        let inv = 1.0 / var.sqrt().max(1e-6);
        for x in &mut v {
            *x = (*x - mean) * inv;
        }
        v
    }

    fn euclidean_sq(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn interval_dist_behaviour() {
        assert_eq!(interval_dist_sq(0.5, 0.0, 1.0), 0.0);
        assert_eq!(interval_dist_sq(-1.0, 0.0, 1.0), 1.0);
        assert_eq!(interval_dist_sq(3.0, 0.0, 1.0), 4.0);
        assert_eq!(interval_dist_sq(0.0, f32::NEG_INFINITY, 0.5), 0.0);
    }

    #[test]
    fn interval_gap_behaviour() {
        assert_eq!(interval_gap_sq(0.0, 1.0, 0.5, 2.0), 0.0, "overlap");
        assert_eq!(interval_gap_sq(2.0, 3.0, 0.0, 1.0), 1.0, "a above b");
        assert_eq!(interval_gap_sq(0.0, 1.0, 3.0, 4.0), 4.0, "a below b");
        assert_eq!(interval_gap_sq(1.0, 2.0, 2.0, 3.0), 0.0, "touching");
    }

    #[test]
    fn mindist_lower_bounds_euclidean() {
        // The crate's central invariant, exercised over many random pairs.
        let n = 64;
        let q = Quantizer::new(n, 16).unwrap();
        for seed in 0..200u64 {
            let a = series(seed * 2 + 1, n);
            let b = series(seed * 2 + 2, n);
            let word_b = q.word(&b);
            let paa_a = crate::paa::paa(&a, 16);
            let ed = euclidean_sq(&a, &b);
            let md = mindist_paa_word_sq(&paa_a, &word_b, q.segment_lens());
            assert!(
                md <= ed + ed.abs() * 1e-4 + 1e-4,
                "seed={seed}: mindist {md} > ed {ed}"
            );
        }
    }

    #[test]
    fn node_mindist_never_exceeds_word_mindist() {
        // Coarser cardinality -> wider regions -> smaller (or equal) bound.
        let n = 32;
        let q = Quantizer::new(n, 8).unwrap();
        for seed in 0..50u64 {
            let a = series(seed + 1000, n);
            let b = series(seed + 2000, n);
            let word_b = q.word(&b);
            let paa_a = crate::paa::paa(&a, 8);
            let wd = mindist_paa_word_sq(&paa_a, &word_b, q.segment_lens());
            // Build node words of decreasing precision containing b.
            let root = NodeWord::root(word_b.root_key(), 8);
            let nd = mindist_paa_node_sq(&paa_a, &root, q.segment_lens());
            assert!(
                nd <= wd + wd.abs() * 1e-5 + 1e-6,
                "node bound must be looser"
            );
        }
    }

    #[test]
    fn mindist_of_own_word_is_zero() {
        let n = 64;
        let q = Quantizer::new(n, 16).unwrap();
        let a = series(77, n);
        let w = q.word(&a);
        let paa_a = crate::paa::paa(&a, 16);
        assert_eq!(mindist_paa_word_sq(&paa_a, &w, q.segment_lens()), 0.0);
        let root = NodeWord::root(w.root_key(), 16);
        assert_eq!(mindist_paa_node_sq(&paa_a, &root, q.segment_lens()), 0.0);
    }

    #[test]
    fn table_matches_direct_computation() {
        let n = 128;
        let q = Quantizer::new(n, 16).unwrap();
        let a = series(5, n);
        let paa_a = crate::paa::paa(&a, 16);
        let table = MindistTable::new_point(&paa_a, q.segment_lens());
        for seed in 0..50u64 {
            let b = series(seed + 1, n);
            let w = q.word(&b);
            let direct = mindist_paa_word_sq(&paa_a, &w, q.segment_lens());
            let looked = table.lookup(&w);
            assert!(
                (direct - looked).abs() <= direct.abs() * 1e-5 + 1e-6,
                "direct {direct} vs table {looked}"
            );
        }
    }

    #[test]
    fn envelope_mindist_is_zero_when_regions_overlap() {
        let n = 32;
        let q = Quantizer::new(n, 8).unwrap();
        let a = series(9, n);
        let w = q.word(&a);
        let node = NodeWord::root(w.root_key(), 8);
        let paa_a = crate::paa::paa(&a, 8);
        // Envelope that covers the PAA exactly: bound must be <= point bound.
        let env_md = mindist_envelope_node_sq(&paa_a, &paa_a, &node, q.segment_lens());
        let pt_md = mindist_paa_node_sq(&paa_a, &node, q.segment_lens());
        assert!(env_md <= pt_md + 1e-6);
        // A wider envelope can only shrink the bound.
        let lo: Vec<f32> = paa_a.iter().map(|v| v - 0.5).collect();
        let hi: Vec<f32> = paa_a.iter().map(|v| v + 0.5).collect();
        let wide = mindist_envelope_node_sq(&lo, &hi, &node, q.segment_lens());
        assert!(wide <= env_md + 1e-6);
    }

    #[test]
    fn node_table_matches_direct_node_mindist() {
        let n = 64;
        let q = Quantizer::new(n, 16).unwrap();
        let a = series(21, n);
        let paa_a = crate::paa::paa(&a, 16);
        let table = NodeMindistTable::new_point(&paa_a, q.segment_lens());
        for seed in 0..40u64 {
            let b = series(seed + 300, n);
            let word_b = q.word(&b);
            // Walk a refinement path, checking the table at every level.
            let mut node = NodeWord::root(word_b.root_key(), 16);
            for k in 0..24 {
                let direct = mindist_paa_node_sq(&paa_a, &node, q.segment_lens());
                let looked = table.lookup(&node);
                assert!(
                    (direct - looked).abs() <= direct.abs() * 1e-5 + 1e-6,
                    "seed={seed} k={k}: direct {direct} vs table {looked}"
                );
                let seg = k % 16;
                if !node.can_split(seg) {
                    continue;
                }
                let (zero, one) = node.split(seg);
                node = if node.split_bit(&word_b, seg) {
                    one
                } else {
                    zero
                };
            }
        }
    }

    #[test]
    fn node_interval_table_matches_direct() {
        let n = 64;
        let q = Quantizer::new(n, 8).unwrap();
        let a = series(33, n);
        let paa_a = crate::paa::paa(&a, 8);
        let lo: Vec<f32> = paa_a.iter().map(|v| v - 0.4).collect();
        let hi: Vec<f32> = paa_a.iter().map(|v| v + 0.4).collect();
        let table = NodeMindistTable::new_interval(&lo, &hi, q.segment_lens());
        for seed in 0..30u64 {
            let b = series(seed + 900, n);
            let word_b = q.word(&b);
            let node = NodeWord::root(word_b.root_key(), 8);
            let direct = mindist_envelope_node_sq(&lo, &hi, &node, q.segment_lens());
            assert!((direct - table.lookup(&node)).abs() <= direct.abs() * 1e-5 + 1e-6);
        }
    }

    #[test]
    fn scalar_lookup_is_bit_identical_to_branchy_mindist() {
        // `lookup_scalar` sums the same precomputed terms in the same
        // order as `mindist_paa_word_sq` evaluates them: exact equality.
        let n = 128;
        let q = Quantizer::new(n, 16).unwrap();
        let a = series(51, n);
        let paa_a = crate::paa::paa(&a, 16);
        let table = MindistTable::new_point(&paa_a, q.segment_lens());
        for seed in 0..50u64 {
            let b = series(seed + 700, n);
            let w = q.word(&b);
            let direct = mindist_paa_word_sq(&paa_a, &w, q.segment_lens());
            assert_eq!(direct.to_bits(), table.lookup_scalar(&w).to_bits());
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_word_lookup_matches_scalar() {
        if !dsidx_series::distance::hardware_simd_available() {
            eprintln!("skipping: no AVX2 on this host");
            return;
        }
        let n = 128;
        let q = Quantizer::new(n, 16).unwrap();
        let a = series(61, n);
        let paa_a = crate::paa::paa(&a, 16);
        for table in [
            MindistTable::new_point(&paa_a, q.segment_lens()),
            MindistTable::new_interval(
                &paa_a.iter().map(|v| v - 0.3).collect::<Vec<_>>(),
                &paa_a.iter().map(|v| v + 0.3).collect::<Vec<_>>(),
                q.segment_lens(),
            ),
        ] {
            for seed in 0..50u64 {
                let w = q.word(&series(seed + 800, n));
                let scalar = table.lookup_scalar(&w);
                // SAFETY: AVX2 checked above; 16-segment table is full-size.
                let simd =
                    unsafe { crate::simd::word_table_lookup_avx2(&table.table, w.symbols_raw()) };
                assert!(
                    (scalar - simd).abs() <= scalar.abs() * 1e-4 + 1e-5,
                    "seed={seed}: scalar {scalar} vs simd {simd}"
                );
            }
        }
    }

    #[test]
    fn lookup_many_is_bit_identical_to_scalar() {
        // Holds with SIMD on or off: the batch kernel's vertical
        // accumulation replays lookup_scalar's add order per lane. Odd
        // lengths exercise the scalar remainder path too.
        let n = 128;
        let q = Quantizer::new(n, 16).unwrap();
        let a = series(81, n);
        let paa_a = crate::paa::paa(&a, 16);
        let table = MindistTable::new_point(&paa_a, q.segment_lens());
        // `pad` oversizes the output buffer relative to `words`: the scan
        // callers reuse a fixed block buffer whose tail must still receive
        // every word's bound (a padded buffer once desynchronized the SIMD
        // path's chunk remainders, leaving the last `count % 8` slots stale).
        for count in [0usize, 1, 7, 8, 9, 13, 16, 61] {
            for pad in [0usize, 1, 3, 8, 11] {
                let words: Vec<Word> = (0..count)
                    .map(|i| q.word(&series(i as u64 + 1100, n)))
                    .collect();
                let mut out = vec![f32::NAN; count + pad];
                table.lookup_many(&words, &mut out);
                for (w, o) in words.iter().zip(&out) {
                    assert_eq!(
                        table.lookup_scalar(w).to_bits(),
                        o.to_bits(),
                        "count={count} pad={pad}"
                    );
                }
                assert!(
                    out[count..].iter().all(|v| v.is_nan()),
                    "count={count} pad={pad}: slots past words.len() must stay untouched"
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_node_lookup_matches_scalar() {
        if !dsidx_series::distance::hardware_simd_available() {
            eprintln!("skipping: no AVX2 on this host");
            return;
        }
        let n = 64;
        let q = Quantizer::new(n, 16).unwrap();
        let a = series(71, n);
        let paa_a = crate::paa::paa(&a, 16);
        let table = NodeMindistTable::new_point(&paa_a, q.segment_lens());
        for seed in 0..40u64 {
            let word_b = q.word(&series(seed + 900, n));
            let mut node = NodeWord::root(word_b.root_key(), 16);
            for k in 0..24 {
                let scalar = table.lookup_scalar(&node);
                // SAFETY: AVX2 checked above; NodeWord keeps bits in 1..=8.
                let simd = unsafe {
                    crate::simd::node_table_lookup_avx2(
                        &table.table,
                        node.bits_raw(),
                        node.prefixes_raw(),
                    )
                };
                assert!(
                    (scalar - simd).abs() <= scalar.abs() * 1e-4 + 1e-5,
                    "seed={seed} k={k}: scalar {scalar} vs simd {simd}"
                );
                // lookup_parts with valid bits routes to the same kernel.
                let parts = table.lookup_parts(node.bits_raw(), node.prefixes_raw());
                assert!((scalar - parts).abs() <= scalar.abs() * 1e-4 + 1e-5);
                let seg = k % 16;
                if !node.can_split(seg) {
                    continue;
                }
                let (zero, one) = node.split(seg);
                node = if node.split_bit(&word_b, seg) {
                    one
                } else {
                    zero
                };
            }
        }
    }

    #[test]
    fn interval_table_matches_direct() {
        let n = 64;
        let q = Quantizer::new(n, 16).unwrap();
        let a = series(13, n);
        let paa_a = crate::paa::paa(&a, 16);
        let lo: Vec<f32> = paa_a.iter().map(|v| v - 0.3).collect();
        let hi: Vec<f32> = paa_a.iter().map(|v| v + 0.3).collect();
        let table = MindistTable::new_interval(&lo, &hi, q.segment_lens());
        for seed in 0..30u64 {
            let b = series(seed + 500, n);
            let w = q.word(&b);
            // Direct: full-cardinality node word equivalent.
            let mut direct = 0.0f32;
            let bp = breakpoints();
            for seg in 0..16 {
                let (rlo, rhi) = bp.region(w.symbol(seg), MAX_BITS);
                direct +=
                    q.segment_lens()[seg] as f32 * interval_gap_sq(lo[seg], hi[seg], rlo, rhi);
            }
            let looked = table.lookup(&w);
            assert!((direct - looked).abs() <= direct.abs() * 1e-5 + 1e-6);
        }
    }
}
