//! Error type for iSAX configuration.

use std::fmt;

/// Errors produced when configuring the iSAX quantizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaxError {
    /// `segments` was zero or exceeded [`crate::MAX_SEGMENTS`].
    BadSegmentCount {
        /// The requested segment count.
        requested: usize,
    },
    /// The series length is smaller than the number of segments.
    SeriesTooShort {
        /// The series length.
        series_len: usize,
        /// The requested segment count.
        segments: usize,
    },
}

impl fmt::Display for IsaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IsaxError::BadSegmentCount { requested } => write!(
                f,
                "segment count must be in 1..={}, got {requested}",
                crate::MAX_SEGMENTS
            ),
            IsaxError::SeriesTooShort {
                series_len,
                segments,
            } => write!(
                f,
                "series length {series_len} is shorter than {segments} segments"
            ),
        }
    }
}

impl std::error::Error for IsaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(IsaxError::BadSegmentCount { requested: 99 }
            .to_string()
            .contains("99"));
        let e = IsaxError::SeriesTooShort {
            series_len: 4,
            segments: 16,
        };
        assert!(e.to_string().contains('4'));
    }
}
