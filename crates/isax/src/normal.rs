//! Inverse standard-normal CDF (quantile function).
//!
//! iSAX breakpoints are N(0, 1) quantiles. We implement Peter Acklam's
//! rational approximation (relative error < 1.15e-9 over (0, 1)) rather
//! than pulling in a stats crate; breakpoints are computed once per process
//! and cached, so speed is irrelevant but determinism matters.

/// Acklam's rational approximation of `Phi^{-1}(p)`.
///
/// # Panics
/// Panics unless `0 < p < 1`.
#[must_use]
pub fn inv_norm_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "inv_norm_cdf requires 0 < p < 1, got {p}"
    );

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        // Lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        // Central region.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail: symmetric to the lower tail.
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_zero() {
        assert!(inv_norm_cdf(0.5).abs() < 1e-12);
    }

    #[test]
    fn known_quantiles() {
        // Reference values from standard normal tables.
        let cases = [
            (0.975, 1.959_963_984_540_054),
            (0.95, 1.644_853_626_951_472),
            (0.841_344_746_068_543, 1.0),
            (0.99, 2.326_347_874_040_841),
            (0.999, 3.090_232_306_167_813),
        ];
        for (p, want) in cases {
            let got = inv_norm_cdf(p);
            assert!((got - want).abs() < 1e-7, "p={p}: got {got}, want {want}");
        }
    }

    #[test]
    fn symmetry() {
        for p in [0.001, 0.01, 0.1, 0.25, 0.4, 0.49] {
            let lo = inv_norm_cdf(p);
            let hi = inv_norm_cdf(1.0 - p);
            assert!((lo + hi).abs() < 1e-9, "p={p}: {lo} vs {hi}");
        }
    }

    #[test]
    fn strictly_increasing() {
        let mut prev = f64::NEG_INFINITY;
        let mut p = 1e-6;
        while p < 1.0 - 1e-6 {
            let v = inv_norm_cdf(p);
            assert!(v > prev, "not increasing at p={p}");
            prev = v;
            p += 1e-3;
        }
    }

    #[test]
    fn tails_are_large() {
        assert!(inv_norm_cdf(1e-10) < -6.0);
        assert!(inv_norm_cdf(1.0 - 1e-10) > 6.0);
    }

    #[test]
    #[should_panic(expected = "requires 0 < p < 1")]
    fn rejects_zero() {
        let _ = inv_norm_cdf(0.0);
    }

    #[test]
    #[should_panic(expected = "requires 0 < p < 1")]
    fn rejects_one() {
        let _ = inv_norm_cdf(1.0);
    }
}
