//! N(0, 1) quantile breakpoints, for every cardinality `2^b`, `b = 1..=8`.
//!
//! The breakpoints for cardinality `2^b` are `Phi^{-1}(i / 2^b)` for
//! `i = 1..2^b - 1`. Because `i / 2^b == 2i / 2^(b+1)`, every breakpoint at
//! bits `b` reappears at bits `b+1` — the *nesting* that makes symbol
//! refinement a pure bit-append.

use crate::normal::inv_norm_cdf;
use crate::word::MAX_BITS;
use std::sync::OnceLock;

/// Breakpoints for all supported cardinalities.
#[derive(Debug)]
pub struct BreakpointTable {
    /// `per_bits[b - 1]` holds the `2^b - 1` ascending breakpoints for `b` bits.
    per_bits: Vec<Vec<f32>>,
}

impl BreakpointTable {
    fn compute() -> Self {
        let mut per_bits = Vec::with_capacity(MAX_BITS as usize);
        for bits in 1..=MAX_BITS {
            let card = 1usize << bits;
            let mut bps = Vec::with_capacity(card - 1);
            for i in 1..card {
                bps.push(inv_norm_cdf(i as f64 / card as f64) as f32);
            }
            per_bits.push(bps);
        }
        Self { per_bits }
    }

    /// The ascending breakpoints for a cardinality of `bits` bits.
    ///
    /// # Panics
    /// Panics unless `1 <= bits <= MAX_BITS`.
    #[inline]
    #[must_use]
    pub fn for_bits(&self, bits: u8) -> &[f32] {
        assert!((1..=MAX_BITS).contains(&bits), "bits out of range: {bits}");
        &self.per_bits[bits as usize - 1]
    }

    /// Quantizes a value into its symbol (bottom-up region index) at the
    /// given cardinality.
    ///
    /// A value exactly equal to a breakpoint belongs to the region *above*
    /// it, so regions are `(-inf, b1), [b1, b2), ..., [b_{c-1}, +inf)`.
    #[inline]
    #[must_use]
    pub fn symbol(&self, value: f32, bits: u8) -> u8 {
        let bps = self.for_bits(bits);
        bps.partition_point(|&bp| bp <= value) as u8
    }

    /// The `(lower, upper)` boundaries of a symbol's region; outer regions
    /// extend to infinity.
    #[inline]
    #[must_use]
    pub fn region(&self, symbol: u8, bits: u8) -> (f32, f32) {
        let bps = self.for_bits(bits);
        let s = symbol as usize;
        debug_assert!(
            s < (1usize << bits),
            "symbol {s} out of range for {bits} bits"
        );
        let lower = if s == 0 {
            f32::NEG_INFINITY
        } else {
            bps[s - 1]
        };
        let upper = if s == bps.len() {
            f32::INFINITY
        } else {
            bps[s]
        };
        (lower, upper)
    }
}

/// The process-wide breakpoint table (computed once, on first use).
#[must_use]
pub fn breakpoints() -> &'static BreakpointTable {
    static TABLE: OnceLock<BreakpointTable> = OnceLock::new();
    TABLE.get_or_init(BreakpointTable::compute)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_order() {
        let t = breakpoints();
        for bits in 1..=MAX_BITS {
            let bps = t.for_bits(bits);
            assert_eq!(bps.len(), (1usize << bits) - 1);
            for w in bps.windows(2) {
                assert!(w[0] < w[1], "breakpoints must be strictly ascending");
            }
        }
    }

    #[test]
    fn one_bit_breakpoint_is_zero() {
        let t = breakpoints();
        assert_eq!(t.for_bits(1).len(), 1);
        assert!(t.for_bits(1)[0].abs() < 1e-7);
    }

    #[test]
    fn nesting_property() {
        let t = breakpoints();
        for bits in 1..MAX_BITS {
            let coarse = t.for_bits(bits);
            let fine = t.for_bits(bits + 1);
            for (k, &bp) in coarse.iter().enumerate() {
                assert_eq!(bp, fine[2 * k + 1], "bits={bits} k={k}");
            }
        }
    }

    #[test]
    fn symbol_is_prefix_of_finer_symbol() {
        let t = breakpoints();
        for i in -60..=60 {
            let v = i as f32 * 0.1;
            let full = t.symbol(v, MAX_BITS);
            for bits in 1..MAX_BITS {
                assert_eq!(
                    t.symbol(v, bits),
                    full >> (MAX_BITS - bits),
                    "v={v} bits={bits}"
                );
            }
        }
    }

    #[test]
    fn symbol_boundaries() {
        let t = breakpoints();
        // Exactly at a breakpoint -> upper region.
        let bp = t.for_bits(2)[1]; // middle breakpoint (== 0)
        assert_eq!(t.symbol(bp, 2), 2);
        assert_eq!(t.symbol(bp - 1e-4, 2), 1);
        // Extremes.
        assert_eq!(t.symbol(-100.0, 8), 0);
        assert_eq!(t.symbol(100.0, 8), 255);
    }

    #[test]
    fn region_contains_its_values() {
        let t = breakpoints();
        for bits in [1u8, 3, 8] {
            for i in -40..=40 {
                let v = i as f32 * 0.15;
                let s = t.symbol(v, bits);
                let (lo, hi) = t.region(s, bits);
                assert!(lo <= v && v < hi, "v={v} bits={bits} region=({lo},{hi})");
            }
        }
    }

    #[test]
    fn regions_partition_the_line() {
        let t = breakpoints();
        for bits in 1..=MAX_BITS {
            let card = 1u16 << bits;
            let (first_lo, _) = t.region(0, bits);
            assert_eq!(first_lo, f32::NEG_INFINITY);
            let (_, last_hi) = t.region((card - 1) as u8, bits);
            assert_eq!(last_hi, f32::INFINITY);
            for s in 0..card - 1 {
                let (_, hi) = t.region(s as u8, bits);
                let (lo_next, _) = t.region((s + 1) as u8, bits);
                assert_eq!(hi, lo_next, "adjacent regions must share a boundary");
            }
        }
    }

    #[test]
    fn breakpoints_match_symmetry() {
        let t = breakpoints();
        for bits in 1..=MAX_BITS {
            let bps = t.for_bits(bits);
            let n = bps.len();
            for k in 0..n {
                assert!(
                    (bps[k] + bps[n - 1 - k]).abs() < 1e-6,
                    "bits={bits}: quantiles should be symmetric around 0"
                );
            }
        }
    }
}
