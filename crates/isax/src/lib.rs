//! The iSAX representation: PAA summarization, Gaussian breakpoints,
//! variable-cardinality symbolic words, and the lower-bound (MINDIST)
//! distances that make index-based pruning sound.
//!
//! Terminology follows the paper (§II):
//!
//! * **PAA** — Piecewise Aggregate Approximation: the series is cut into
//!   `w` segments and each segment is replaced by its mean.
//! * **iSAX word** — each PAA value is quantized into one of `2^b` regions
//!   delimited by N(0, 1) quantiles ("breakpoints"); `b` is the segment's
//!   *cardinality* in bits and may differ per segment.
//! * **MINDIST** — a distance between a query's PAA and an iSAX word that
//!   never exceeds the true Euclidean distance between the raw series.
//!
//! Symbols are *bottom-up region indices*; because breakpoints for `2^b`
//! regions nest inside those for `2^(b+1)`, a symbol at a coarse cardinality
//! is exactly the bit-prefix of the symbol at any finer cardinality. That
//! prefix property is what lets the index split nodes by "adding one bit".

#![deny(unsafe_op_in_unsafe_fn)]

pub mod breakpoints;
pub mod error;
pub mod mindist;
pub mod normal;
pub mod paa;
pub mod quantizer;
#[cfg(target_arch = "x86_64")]
pub(crate) mod simd;
pub mod split;
pub mod word;

pub use breakpoints::{breakpoints, BreakpointTable};
pub use error::IsaxError;
pub use mindist::{MindistTable, NodeMindistTable};
// The one SIMD gate every dispatch point in the workspace consults
// (re-exported so isax consumers need not depend on dsidx-series directly).
pub use dsidx_series::distance::simd_enabled;
pub use quantizer::Quantizer;
pub use word::{NodeWord, Word, WordMatcher, MAX_BITS, MAX_CARDINALITY, MAX_SEGMENTS};

/// The paper's default number of segments ("w is fixed to 16 in this paper,
/// as in previous studies").
pub const DEFAULT_SEGMENTS: usize = 16;
