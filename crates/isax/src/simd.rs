//! AVX2 gather kernels for the MINDIST lookup tables.
//!
//! A [`crate::MindistTable`] lookup at the paper's default 16 segments is 16
//! dependent loads and adds; with AVX2 it becomes two 8-lane gathers and a
//! horizontal sum. These kernels are `pub(crate)` — callers go through the
//! dispatching `lookup` methods in [`crate::mindist`], which gate on
//! [`dsidx_series::distance::simd_enabled`] and fall back to the scalar
//! loops everywhere else (non-x86-64, no AVX2, `DSIDX_NO_SIMD=1`, or a
//! segment count other than 16).

#![cfg(target_arch = "x86_64")]

use crate::word::{Word, MAX_BITS, MAX_CARDINALITY, MAX_SEGMENTS};
use std::arch::x86_64::{
    __m128i, __m256, _mm256_add_epi32, _mm256_add_ps, _mm256_castps256_ps128, _mm256_cvtepu8_epi32,
    _mm256_extractf128_ps, _mm256_i32gather_ps, _mm256_set1_epi32, _mm256_setr_epi32,
    _mm256_setzero_ps, _mm256_slli_epi32, _mm256_storeu_ps, _mm256_sub_epi32, _mm_add_ps,
    _mm_add_ss, _mm_cvtss_f32, _mm_loadu_si128, _mm_movehl_ps, _mm_shuffle_ps, _mm_srli_si128,
    _mm_unpackhi_epi16, _mm_unpackhi_epi32, _mm_unpackhi_epi8, _mm_unpacklo_epi16,
    _mm_unpacklo_epi32, _mm_unpacklo_epi8,
};

/// Horizontal sum of all 8 lanes.
///
/// # Safety
/// Caller must ensure AVX is available.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum256(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps::<1>(v);
    let sum4 = _mm_add_ps(lo, hi);
    let shuf = _mm_movehl_ps(sum4, sum4);
    let sum2 = _mm_add_ps(sum4, shuf);
    let shuf1 = _mm_shuffle_ps::<0b01>(sum2, sum2);
    _mm_cvtss_f32(_mm_add_ss(sum2, shuf1))
}

/// Sums `table[seg * 256 + symbols[seg]]` over all 16 segments.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and that
/// `table.len() >= MAX_SEGMENTS * MAX_CARDINALITY` (4096). Every gathered
/// index is then in bounds: `seg * 256 + symbol <= 15 * 256 + 255 = 4095`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn word_table_lookup_avx2(table: &[f32], symbols: &[u8; MAX_SEGMENTS]) -> f32 {
    debug_assert!(table.len() >= MAX_SEGMENTS * MAX_CARDINALITY);
    // SAFETY: the caller guarantees AVX2 and a full-size table; every index
    // is seg * 256 + u8 <= 4095 < table.len(), and the 16-byte load reads
    // exactly the [u8; 16] the reference covers.
    unsafe {
        let base = table.as_ptr();
        // 16 symbols -> two 8-lane i32 vectors.
        let raw: __m128i = _mm_loadu_si128(symbols.as_ptr().cast());
        let sym_lo = _mm256_cvtepu8_epi32(raw);
        let sym_hi = _mm256_cvtepu8_epi32(_mm_srli_si128::<8>(raw));
        // Per-lane row offsets seg * 256.
        let rows_lo = _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
        let rows_hi = _mm256_setr_epi32(2048, 2304, 2560, 2816, 3072, 3328, 3584, 3840);
        let idx_lo = _mm256_add_epi32(rows_lo, sym_lo);
        let idx_hi = _mm256_add_epi32(rows_hi, sym_hi);
        let gathered = _mm256_add_ps(
            _mm256_i32gather_ps::<4>(base, idx_lo),
            _mm256_i32gather_ps::<4>(base, idx_hi),
        );
        hsum256(gathered)
    }
}

/// Looks up `table[seg * 256 + symbol]` bounds for eight words at once:
/// transposes the 8 x 16 symbol matrix in-register, then for each segment
/// gathers that segment's entry for all eight words and accumulates
/// *vertically* — each output lane adds its word's per-segment
/// contributions in segment order 0..16 starting from zero, exactly the
/// float-add sequence of `MindistTable::lookup_scalar`. The batch results
/// are therefore **bit-identical** to the scalar loop (and, transitively,
/// to [`crate::mindist::mindist_paa_word_sq`]): scans prune identically
/// with SIMD on or off. This is also the faster shape — no per-word
/// horizontal sum, one dispatch per eight words — which is what lets the
/// SAX-array scans beat the (already load-parallel) scalar loop.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and that
/// `table.len() >= MAX_SEGMENTS * MAX_CARDINALITY` (4096).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn word_table_lookup_batch8_avx2(
    table: &[f32],
    words: &[Word; 8],
    out: &mut [f32; 8],
) {
    debug_assert!(table.len() >= MAX_SEGMENTS * MAX_CARDINALITY);
    // SAFETY: the caller guarantees AVX2 and a full-size table; every
    // gathered index is seg * 256 + u8 <= 4095 < table.len(), each 16-byte
    // load covers exactly one word's [u8; 16] symbol array, and the store
    // fills exactly the [f32; 8] output.
    unsafe {
        let base = table.as_ptr();
        let row = |i: usize| _mm_loadu_si128(words[i].symbols_raw().as_ptr().cast());
        // 8 x 16 byte transpose (unpack tree): rows = words, columns =
        // segments. After three rounds, `cols[c]` holds segments 2c and
        // 2c+1 as two 8-byte groups ordered word 0..7.
        let p0 = _mm_unpacklo_epi8(row(0), row(1));
        let p1 = _mm_unpackhi_epi8(row(0), row(1));
        let p2 = _mm_unpacklo_epi8(row(2), row(3));
        let p3 = _mm_unpackhi_epi8(row(2), row(3));
        let p4 = _mm_unpacklo_epi8(row(4), row(5));
        let p5 = _mm_unpackhi_epi8(row(4), row(5));
        let p6 = _mm_unpacklo_epi8(row(6), row(7));
        let p7 = _mm_unpackhi_epi8(row(6), row(7));
        let q0 = _mm_unpacklo_epi16(p0, p2);
        let q1 = _mm_unpackhi_epi16(p0, p2);
        let q2 = _mm_unpacklo_epi16(p1, p3);
        let q3 = _mm_unpackhi_epi16(p1, p3);
        let q4 = _mm_unpacklo_epi16(p4, p6);
        let q5 = _mm_unpackhi_epi16(p4, p6);
        let q6 = _mm_unpacklo_epi16(p5, p7);
        let q7 = _mm_unpackhi_epi16(p5, p7);
        let cols = [
            _mm_unpacklo_epi32(q0, q4),
            _mm_unpackhi_epi32(q0, q4),
            _mm_unpacklo_epi32(q1, q5),
            _mm_unpackhi_epi32(q1, q5),
            _mm_unpacklo_epi32(q2, q6),
            _mm_unpackhi_epi32(q2, q6),
            _mm_unpacklo_epi32(q3, q7),
            _mm_unpackhi_epi32(q3, q7),
        ];
        let mut acc = _mm256_setzero_ps();
        for seg in 0..MAX_SEGMENTS {
            let half = cols[seg / 2];
            let col8 = if seg % 2 == 0 {
                half
            } else {
                _mm_srli_si128::<8>(half)
            };
            let idx = _mm256_add_epi32(
                _mm256_cvtepu8_epi32(col8),
                _mm256_set1_epi32((seg * MAX_CARDINALITY) as i32),
            );
            acc = _mm256_add_ps(acc, _mm256_i32gather_ps::<4>(base, idx));
        }
        _mm256_storeu_ps(out.as_mut_ptr(), acc);
    }
}

/// Sums `table[seg * 2048 + (bits[seg] - 1) * 256 + prefixes[seg]]` over all
/// 16 segments (the [`crate::NodeMindistTable`] layout).
///
/// # Safety
/// Caller must ensure the CPU supports AVX2, that
/// `table.len() >= MAX_SEGMENTS * MAX_BITS * MAX_CARDINALITY` (32768), and
/// that every `bits[seg]` is in `1..=MAX_BITS`. Each gathered index is then
/// at most `15 * 2048 + 7 * 256 + 255 = 32767`, in bounds. (`prefixes` needs
/// no precondition beyond being `u8`: an out-of-cardinality prefix reads a
/// stale-but-in-bounds slot, same as the scalar loop.)
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn node_table_lookup_avx2(
    table: &[f32],
    bits: &[u8; MAX_SEGMENTS],
    prefixes: &[u8; MAX_SEGMENTS],
) -> f32 {
    debug_assert!(table.len() >= MAX_SEGMENTS * MAX_BITS as usize * MAX_CARDINALITY);
    debug_assert!(bits.iter().all(|b| (1..=MAX_BITS).contains(b)));
    // SAFETY: the caller guarantees AVX2, a full-size table, and bits in
    // 1..=8, so every index is at most 15*2048 + 7*256 + 255 = 32767 <
    // table.len(); the 16-byte loads read exactly the [u8; 16] arrays.
    unsafe {
        let base = table.as_ptr();
        let raw_bits: __m128i = _mm_loadu_si128(bits.as_ptr().cast());
        let raw_pref: __m128i = _mm_loadu_si128(prefixes.as_ptr().cast());
        let bits_lo = _mm256_cvtepu8_epi32(raw_bits);
        let bits_hi = _mm256_cvtepu8_epi32(_mm_srli_si128::<8>(raw_bits));
        let pref_lo = _mm256_cvtepu8_epi32(raw_pref);
        let pref_hi = _mm256_cvtepu8_epi32(_mm_srli_si128::<8>(raw_pref));
        // Per-lane segment offsets seg * 2048; each lane computes
        // segoff + (bits << 8) - 256 + prefix.
        let segs_lo = _mm256_setr_epi32(0, 2048, 4096, 6144, 8192, 10240, 12288, 14336);
        let segs_hi = _mm256_setr_epi32(16384, 18432, 20480, 22528, 24576, 26624, 28672, 30720);
        let bias = _mm256_setr_epi32(256, 256, 256, 256, 256, 256, 256, 256);
        let idx_lo = _mm256_sub_epi32(
            _mm256_add_epi32(
                _mm256_add_epi32(segs_lo, _mm256_slli_epi32::<8>(bits_lo)),
                pref_lo,
            ),
            bias,
        );
        let idx_hi = _mm256_sub_epi32(
            _mm256_add_epi32(
                _mm256_add_epi32(segs_hi, _mm256_slli_epi32::<8>(bits_hi)),
                pref_hi,
            ),
            bias,
        );
        let gathered = _mm256_add_ps(
            _mm256_i32gather_ps::<4>(base, idx_lo),
            _mm256_i32gather_ps::<4>(base, idx_hi),
        );
        hsum256(gathered)
    }
}
