//! Build-time accounting (the data behind Fig. 4).

use std::time::Duration;

/// Wall-clock decomposition of a ParIS/ParIS+ build.
///
/// `read` and `stall` are coordinator-visible wall time: what the paper's
/// stacked bars show. For ParIS the stall spans are the stop-the-world
/// stage-3 phases; for ParIS+ the stall is only the final tail after the
/// last byte was read (everything else is hidden under reading). The
/// cumulative `grow_cpu`/`flush_io` worker totals split the stall into its
/// CPU and Write components proportionally.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildReport {
    /// Total wall time of the build.
    pub total: Duration,
    /// Coordinator wall time spent reading raw data.
    pub read: Duration,
    /// Coordinator wall time stalled on stage-3 work.
    pub stall: Duration,
    /// Cumulative worker time growing subtrees (across threads).
    pub grow_cpu: Duration,
    /// Cumulative time materializing leaves (across threads).
    pub flush_io: Duration,
    /// Number of generations (memory-budget refills).
    pub generations: usize,
}

impl BuildReport {
    /// The stall time attributable to CPU (tree growth).
    #[must_use]
    pub fn visible_cpu(&self) -> Duration {
        self.split_stall().0
    }

    /// The stall time attributable to leaf materialization.
    #[must_use]
    pub fn visible_write(&self) -> Duration {
        self.split_stall().1
    }

    fn split_stall(&self) -> (Duration, Duration) {
        let grow = self.grow_cpu.as_secs_f64();
        let flush = self.flush_io.as_secs_f64();
        if grow + flush <= f64::EPSILON {
            return (self.stall, Duration::ZERO);
        }
        let cpu = self.stall.mul_f64(grow / (grow + flush));
        (cpu, self.stall.saturating_sub(cpu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_split_is_proportional() {
        let r = BuildReport {
            total: Duration::from_secs(10),
            read: Duration::from_secs(6),
            stall: Duration::from_secs(4),
            grow_cpu: Duration::from_secs(3),
            flush_io: Duration::from_secs(1),
            generations: 2,
        };
        assert_eq!(r.visible_cpu(), Duration::from_secs(3));
        assert_eq!(r.visible_write(), Duration::from_secs(1));
    }

    #[test]
    fn zero_work_attributes_stall_to_cpu() {
        let r = BuildReport {
            stall: Duration::from_secs(1),
            ..Default::default()
        };
        assert_eq!(r.visible_cpu(), Duration::from_secs(1));
        assert_eq!(r.visible_write(), Duration::ZERO);
    }
}
