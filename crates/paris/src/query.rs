//! ParIS/ParIS+ exact query answering (stage 4 of Fig. 2).
//!
//! Identical for ParIS and ParIS+ ("for query answering, ParIS and ParIS+
//! are the same"): compute an approximate best-so-far from the most
//! promising leaf, prune over the SAX array with lower-bound distances in
//! parallel, collect the survivors in a candidate list, then compute real
//! distances for the candidates in parallel with early abandoning.
//!
//! The per-candidate work (preparation, seeding, lower-bound filtering,
//! early-abandoned verification) comes from the shared kernel
//! (`dsidx-query`); this module contributes the ParIS scheduling: two
//! Fetch&Inc-chunked pool phases with a shared candidate list between.
//!
//! Unlike MESSI, candidates are processed in position order, not
//! best-bound-first — the paper attributes part of MESSI's speedup to
//! exactly that difference, which the `abl-queues` ablation measures.

use crate::build::ParisIndex;
use dsidx_obs::phase::{Phase, PhaseBreakdown, PhaseClock};
use dsidx_query::{
    approx_leaf, batch_collect_candidates, batch_seed_positions, batch_seed_prefix,
    batch_verify_candidates, collect_candidates, finish_knn, seed_from_entries, verify_candidates,
    AtomicQueryStats, BatchCandidate, BatchStats, DtwPrepared, ErrorSlot, PreparedQuery, Pruner,
    QueryBatch, QueryStats, SeriesFetcher, ShardView, SharedTopK,
};
use dsidx_series::distance::dtw::{dtw_sq_bounded, lb_keogh_sq_bounded};
use dsidx_series::distance::euclidean_sq_bounded;
use dsidx_series::Match;
use dsidx_storage::{LeafHandle, RawSource, StorageError};
use dsidx_sync::{AtomicBest, WorkQueue};
use parking_lot::Mutex;

/// SAX-array positions per Fetch&Inc claim in the lower-bound phase.
const LB_CHUNK: usize = 4096;
/// Candidates per Fetch&Inc claim in the real-distance phase.
const REAL_CHUNK: usize = 16;
/// Positions sampled per requested neighbor when warming a k-NN threshold
/// before the collect phase: the k-th best of a `4k` sample sits at a low
/// quantile of the distance distribution, where the k-th of a bare-k
/// sample would be the sample maximum (no pruning power at all).
const KNN_WARM_PER_NEIGHBOR: usize = 4;
/// Sketch-nearest probes per requested neighbor in approximate mode
/// (floored at [`APPROX_PROBE_MIN`]): verifying a few times k of the
/// best-sketch positions keeps the answer quality high while staying a
/// tiny fraction of the exact candidate list.
const APPROX_PROBE_PER_NEIGHBOR: usize = 4;
/// Minimum sketch-nearest probes whatever the k.
const APPROX_PROBE_MIN: usize = 16;

/// Charges the on-disk read-back of one materialized leaf to the leaf
/// store's device (a no-op for in-memory builds).
fn charge_leaf_read(paris: &ParisIndex, leaf: &dsidx_tree::Node) -> Result<(), StorageError> {
    if let Some(reader) = &paris.leaves {
        let mut records = Vec::new();
        for chunk in &leaf.payload().expect("leaf payload").chunks {
            reader.read(
                LeafHandle {
                    offset: chunk.offset,
                    count: chunk.count,
                },
                &mut records,
            )?;
        }
    }
    Ok(())
}

/// The ParIS schedule behind [`exact_nn`]: approximate-descent seeding,
/// then the two Fetch&Inc-chunked pool phases (parallel lower-bound
/// collect, parallel early-abandoned verify). Returns `None` for an empty
/// index. (k-NN goes through the batch path — [`exact_knn`] is a batch of
/// one.)
fn run_exact<P: Pruner>(
    paris: &ParisIndex,
    source: &impl RawSource,
    query: &[f32],
    threads: usize,
    pruner: &P,
) -> Result<Option<QueryStats>, StorageError> {
    let config = paris.index.config();
    assert_eq!(query.len(), config.series_len(), "query length mismatch");
    assert!(threads > 0, "thread count must be non-zero");
    if paris.index.is_empty() {
        return Ok(None);
    }
    let mut clock = PhaseClock::start();
    let mut phase = PhaseBreakdown::new();
    let prep = PreparedQuery::new(config.quantizer(), query);
    phase.record(Phase::Prepare, clock.lap());

    // Step 1: approximate answer — descend to the query's leaf, compute
    // real distances for its entries. In on-disk mode the leaf was
    // materialized, so charge its read-back from the leaf store.
    let leaf = approx_leaf(&paris.index, &prep.word).expect("non-empty index has a non-empty leaf");
    charge_leaf_read(paris, leaf).map_err(|e| e.in_phase(Phase::Seed.name()))?;
    let mut fetcher = SeriesFetcher::new(source);
    let entries = leaf.entries().expect("leaves are resident");
    let approx_real = seed_from_entries(entries, &mut fetcher, query, pruner)
        .map_err(|e| e.in_phase(Phase::Seed.name()))?;
    phase.record(Phase::Seed, clock.lap());

    // Step 2: parallel lower-bound pruning over the SAX array.
    let pool = dsidx_sync::pool::global(threads);
    let words = paris.sax.words();
    let lb_queue = WorkQueue::new(words.len());
    let candidates: Mutex<Vec<(u32, f32)>> = Mutex::new(Vec::new());
    pool.broadcast(&|_worker| {
        let mut local: Vec<(u32, f32)> = Vec::new();
        while let Some(range) = lb_queue.claim_chunk(LB_CHUNK) {
            collect_candidates(words, range, &prep.table, pruner, &mut local);
        }
        if !local.is_empty() {
            candidates.lock().extend_from_slice(&local);
        }
    });
    let candidates = candidates.into_inner();
    phase.record(Phase::Collect, clock.lap());

    // Step 3: parallel real distances over the candidate list.
    let real_queue = WorkQueue::new(candidates.len());
    let shared = AtomicQueryStats::new();
    let errors = ErrorSlot::for_phase(Phase::Verify);
    pool.broadcast(&|_worker| {
        let mut fetcher = SeriesFetcher::new(source);
        let mut reals = 0u64;
        while let Some(range) = real_queue.claim_chunk(REAL_CHUNK) {
            if errors.is_set() {
                break;
            }
            match verify_candidates(&candidates, range, &mut fetcher, query, pruner) {
                Ok(n) => reals += n,
                Err(e) => {
                    errors.record(e);
                    break;
                }
            }
        }
        shared.add_real_computed(reals);
    });
    errors.take()?;
    phase.record(Phase::Verify, clock.lap());

    let mut stats = shared.snapshot();
    stats.lb_computed = words.len() as u64;
    stats.candidates = candidates.len() as u64;
    stats.real_computed += approx_real;
    stats.phase = stats.phase.merged(&phase);
    Ok(Some(stats))
}

/// Exact 1-NN through the ParIS index.
///
/// `source` supplies raw series (the dataset file for on-disk operation —
/// reads are charged to its device — or the in-memory dataset).
///
/// Returns `None` for an empty index.
///
/// # Errors
/// Propagates raw-source and leaf-store I/O failures.
///
/// # Panics
/// Panics if the query length differs from the configured series length or
/// `threads == 0`.
pub fn exact_nn(
    paris: &ParisIndex,
    source: &impl RawSource,
    query: &[f32],
    threads: usize,
) -> Result<Option<(Match, QueryStats)>, StorageError> {
    let best = AtomicBest::new();
    match run_exact(paris, source, query, threads, &best)? {
        None => Ok(None),
        Some(stats) => {
            let (dist_sq, pos) = best.get();
            Ok(Some((Match::new(pos, dist_sq), stats)))
        }
    }
}

/// Exact k-NN through the ParIS index: the same two pool phases, pruning
/// against the k-th best distance (a [`SharedTopK`]) instead of the single
/// best. Workers share one top-k set, so the candidate list shrinks as any
/// worker tightens the k-th distance.
///
/// Returns the up-to-`k` nearest series sorted ascending by
/// `(distance, position)` — fewer than `k` when the collection is smaller,
/// empty for an empty index. The answer is deterministic across runs and
/// thread counts (distance ties prefer the lowest position).
///
/// # Errors
/// Propagates raw-source and leaf-store I/O failures.
///
/// # Panics
/// Panics if the query length differs from the configured series length,
/// `threads == 0`, or `k == 0`.
pub fn exact_knn(
    paris: &ParisIndex,
    source: &impl RawSource,
    query: &[f32],
    k: usize,
    threads: usize,
) -> Result<(Vec<Match>, QueryStats), StorageError> {
    let (mut matches, stats) = exact_knn_batch(paris, source, &[query], k, threads)?;
    Ok((matches.pop().expect("batch of one"), stats.into_single()))
}

/// Exact k-NN for a *batch* of queries, amortizing the pool wake-ups that
/// dominate sub-millisecond queries: the whole batch is answered by **one**
/// collect broadcast plus **one** verify broadcast (instead of two per
/// query), with the same Fetch&Inc chunking inside.
///
/// The collect phase lower-bounds each SAX word against every query in one
/// pass, emitting per-query candidate lists as `(position, query, bound)`
/// triples; the verify phase claims chunks of the shared triple list and
/// pays one raw fetch for every run of queries that kept the same
/// position. Seeding unions the batch's approximate leaves (each distinct
/// leaf charged once to the leaf store in on-disk mode) and cross-seeds
/// every pruner, then warms the k-NN thresholds over a position-order
/// prefix exactly like the single-query path.
///
/// Answers are element-wise identical to calling [`exact_knn`] per query,
/// deterministic across runs and thread counts.
///
/// # Errors
/// Propagates raw-source and leaf-store I/O failures.
///
/// # Panics
/// Panics if any query length differs from the configured series length,
/// `threads == 0`, or `k == 0`.
pub fn exact_knn_batch(
    paris: &ParisIndex,
    source: &impl RawSource,
    queries: &[&[f32]],
    k: usize,
    threads: usize,
) -> Result<(Vec<Vec<Match>>, BatchStats), StorageError> {
    exact_knn_batch_shared(paris, source, queries, k, threads, None)
}

/// [`exact_knn_batch`] with an optional cross-shard pruner view (see
/// [`SharedPruners`](dsidx_query::SharedPruners)): with `shard` set, both
/// pool phases prune against thresholds that other shards tighten
/// mid-flight, and recorded positions are rebased to global. The returned
/// matches then reflect the whole gather so far; the coordinator uses this
/// return value for stats and reads the final answer from the shared
/// pruners after every shard joined.
///
/// # Errors
/// Propagates raw-source and leaf-store I/O failures.
///
/// # Panics
/// As [`exact_knn_batch`].
pub fn exact_knn_batch_shared(
    paris: &ParisIndex,
    source: &impl RawSource,
    queries: &[&[f32]],
    k: usize,
    threads: usize,
    shard: Option<ShardView<'_>>,
) -> Result<(Vec<Vec<Match>>, BatchStats), StorageError> {
    let config = paris.index.config();
    for q in queries {
        assert_eq!(q.len(), config.series_len(), "query length mismatch");
    }
    assert!(threads > 0, "thread count must be non-zero");
    let mut clock = PhaseClock::start();
    let batch = QueryBatch::for_shard(config.quantizer(), queries, k, shard);
    let prepare_nanos = clock.lap();
    if paris.index.is_empty() || batch.is_empty() {
        return Ok(batch.finish(0, QueryStats::default()));
    }
    batch.phases().record(Phase::Prepare, prepare_nanos);

    // Step 1: approximate answers — the union of the batch's leaves
    // (distinct leaves charged once), cross-seeded into every pruner, then
    // the shared threshold warm-up over a position-order prefix.
    let mut leaves: Vec<&dsidx_tree::Node> = Vec::new();
    for slot in batch.slots() {
        let leaf = approx_leaf(&paris.index, &slot.prep.word)
            .expect("non-empty index has a non-empty leaf");
        if !leaves.iter().any(|l| std::ptr::eq(*l, leaf)) {
            leaves.push(leaf);
        }
    }
    let mut positions: Vec<u32> = Vec::new();
    for leaf in &leaves {
        charge_leaf_read(paris, leaf).map_err(|e| e.in_phase(Phase::Seed.name()))?;
        positions.extend(
            leaf.entries()
                .expect("leaves are resident")
                .iter()
                .map(|e| e.pos),
        );
    }
    positions.sort_unstable();
    positions.dedup();
    let mut fetcher = SeriesFetcher::new(source);
    batch_seed_positions(&positions, &mut fetcher, &batch)
        .map_err(|e| e.in_phase(Phase::Seed.name()))?;
    let warm = k.saturating_mul(KNN_WARM_PER_NEIGHBOR).min(source.count());
    batch_seed_prefix(warm, &mut fetcher, &batch).map_err(|e| e.in_phase(Phase::Seed.name()))?;
    clock.lap_into(batch.phases(), Phase::Seed);

    // Step 2: one parallel lower-bound broadcast for the whole batch.
    let pool = dsidx_sync::pool::global(threads);
    let words = paris.sax.words();
    let lb_queue = WorkQueue::new(words.len());
    let candidates: Mutex<Vec<BatchCandidate>> = Mutex::new(Vec::new());
    pool.broadcast(&|_worker| {
        let mut locals = vec![QueryStats::default(); batch.len()];
        let mut local: Vec<BatchCandidate> = Vec::new();
        while let Some(range) = lb_queue.claim_chunk(LB_CHUNK) {
            batch_collect_candidates(words, range, &batch, &mut locals, &mut local);
        }
        batch.merge_locals(&locals);
        if !local.is_empty() {
            candidates.lock().extend_from_slice(&local);
        }
    });
    let candidates = candidates.into_inner();
    clock.lap_into(batch.phases(), Phase::Collect);

    // Step 3: one parallel verify broadcast over the shared triple list.
    let real_queue = WorkQueue::new(candidates.len());
    let errors = ErrorSlot::for_phase(Phase::Verify);
    pool.broadcast(&|_worker| {
        let mut fetcher = SeriesFetcher::new(source);
        let mut locals = vec![QueryStats::default(); batch.len()];
        while let Some(range) = real_queue.claim_chunk(REAL_CHUNK) {
            if errors.is_set() {
                break;
            }
            if let Err(e) =
                batch_verify_candidates(&candidates, range, &mut fetcher, &batch, &mut locals)
            {
                errors.record(e);
                break;
            }
        }
        batch.merge_locals(&locals);
    });
    errors.take()?;
    clock.lap_into(batch.phases(), Phase::Verify);

    // Every query paid one bound per SAX-array position.
    let bounds = QueryStats {
        lb_computed: words.len() as u64,
        ..QueryStats::default()
    };
    for slot in batch.slots() {
        slot.stats.merge(&bounds);
    }
    Ok(batch.finish(2, QueryStats::default()))
}

/// *Approximate* k-NN through the ParIS index by **sketch-nearest**
/// probing: one serial pass over the SAX array (the sketches) lower-bounds
/// every position, the few-times-k positions with the smallest sketch
/// distances are fetched and verified with real Euclidean distances, and
/// the k nearest of those probes are returned — no pool broadcast, no
/// exhaustive verification.
///
/// Every reported distance is a real distance to a real series, so it is
/// never below the exact answer at the same rank; the positions may
/// differ. Empty for an empty index.
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// Panics if the query length differs from the configured series length or
/// `k == 0`.
pub fn approx_knn(
    paris: &ParisIndex,
    source: &impl RawSource,
    query: &[f32],
    k: usize,
) -> Result<(Vec<Match>, QueryStats), StorageError> {
    let config = paris.index.config();
    assert_eq!(query.len(), config.series_len(), "query length mismatch");
    let prep = PreparedQuery::new(config.quantizer(), query);
    sketch_nearest(
        paris,
        source,
        k,
        |word| prep.table.lookup(word),
        move |series, limit, stats| {
            if let Some(d) = euclidean_sq_bounded(query, series, limit) {
                stats.real_computed += 1;
                Some(d)
            } else {
                None
            }
        },
    )
}

/// *Approximate* k-NN under banded DTW through the ParIS index: the same
/// sketch-nearest probing as [`approx_knn`], using the interval (envelope)
/// sketch bound to rank positions and paying the LB_Keogh →
/// early-abandoned banded DTW cascade for the probes.
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// Panics if the query length differs from the configured series length or
/// `k == 0`.
pub fn approx_knn_dtw(
    paris: &ParisIndex,
    source: &impl RawSource,
    query: &[f32],
    band: usize,
    k: usize,
) -> Result<(Vec<Match>, QueryStats), StorageError> {
    let config = paris.index.config();
    assert_eq!(query.len(), config.series_len(), "query length mismatch");
    let prep = DtwPrepared::new(config.quantizer(), query, band);
    sketch_nearest(
        paris,
        source,
        k,
        |word| prep.table.lookup(word),
        move |series, limit, stats| {
            stats.lb_keogh_computed += 1;
            if lb_keogh_sq_bounded(series, &prep.lo_env, &prep.hi_env, limit).is_none() {
                stats.lb_keogh_pruned += 1;
                return None;
            }
            if let Some(d) = dtw_sq_bounded(query, series, band, limit) {
                stats.real_computed += 1;
                Some(d)
            } else {
                stats.dtw_abandoned += 1;
                None
            }
        },
    )
}

/// The shared sketch-nearest schedule behind both approximate measures:
/// rank every SAX word by `bound`, verify the best few-times-k positions
/// through `verify` (which charges its own counters and returns a full
/// real distance when one was paid).
fn sketch_nearest(
    paris: &ParisIndex,
    source: &impl RawSource,
    k: usize,
    bound: impl Fn(&dsidx_isax::Word) -> f32,
    mut verify: impl FnMut(&[f32], f32, &mut QueryStats) -> Option<f32>,
) -> Result<(Vec<Match>, QueryStats), StorageError> {
    let topk = SharedTopK::new(k);
    if paris.index.is_empty() {
        return Ok(finish_knn(&topk, None));
    }
    let mut clock = PhaseClock::start();
    let words = paris.sax.words();
    let mut stats = QueryStats {
        lb_computed: words.len() as u64,
        ..QueryStats::default()
    };
    let mut sketched: Vec<(f32, u32)> = words
        .iter()
        .enumerate()
        .map(|(pos, w)| (bound(w), pos as u32))
        .collect();
    let probe = k
        .saturating_mul(APPROX_PROBE_PER_NEIGHBOR)
        .max(APPROX_PROBE_MIN)
        .min(sketched.len());
    if probe < sketched.len() {
        // Deterministic selection: ties on the sketch distance break by
        // position, so the probed set never depends on sort internals.
        sketched.select_nth_unstable_by(probe - 1, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        sketched.truncate(probe);
    }
    stats.candidates = sketched.len() as u64;
    stats.phase.record(Phase::SaxScan, clock.lap());
    // Fetch in position order (sequential-friendly for on-disk sources).
    sketched.sort_unstable_by_key(|&(_, pos)| pos);
    let mut fetcher = SeriesFetcher::new(source);
    for &(_, pos) in &sketched {
        let series = fetcher.fetch(pos as usize)?;
        let limit = topk.threshold_sq();
        if let Some(d) = verify(series, limit, &mut stats) {
            topk.insert(d, pos);
        }
    }
    stats.phase.record(Phase::Verify, clock.lap());
    Ok(finish_knn(&topk, Some(stats)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_in_memory, build_on_disk};
    use crate::config::{Overlap, ParisConfig};
    use dsidx_series::gen::DatasetKind;
    use dsidx_storage::{write_dataset, DatasetFile, Device};
    use dsidx_tree::TreeConfig;
    use dsidx_ucr::brute_force;
    use std::sync::Arc;

    fn cfg(threads: usize) -> ParisConfig {
        ParisConfig::new(TreeConfig::new(64, 8, 16).unwrap(), threads)
            .with_block_series(64)
            .with_generation_series(256)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dsidx-parisq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn exact_on_all_dataset_kinds_in_memory() {
        for kind in DatasetKind::ALL {
            let data = kind.generate(600, 64, 37);
            let (paris, _) = build_in_memory(&data, &cfg(4));
            let queries = kind.queries(8, 64, 37);
            for q in queries.iter() {
                let want = brute_force(&data, q).unwrap();
                for threads in [1usize, 4] {
                    let (got, stats) = exact_nn(&paris, &data, q, threads).unwrap().unwrap();
                    assert_eq!(got.pos, want.pos, "{} x{threads}", kind.name());
                    assert!((got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4);
                    assert_eq!(stats.lb_computed, 600);
                    assert!(stats.candidates <= 600);
                }
            }
        }
    }

    #[test]
    fn exact_on_disk_matches_memory() {
        let data = DatasetKind::Seismic.generate(400, 64, 5);
        let path = tmp("q.dsidx");
        write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let file = DatasetFile::open(&path, Arc::new(Device::unthrottled())).unwrap();
        let (paris, _) = build_on_disk(&file, &tmp("q.leaf"), &cfg(3), Overlap::ParisPlus).unwrap();
        let queries = DatasetKind::Seismic.queries(6, 64, 5);
        for q in queries.iter() {
            let want = brute_force(&data, q).unwrap();
            let (got, _) = exact_nn(&paris, &file, q, 4).unwrap().unwrap();
            assert_eq!(got.pos, want.pos);
            assert!((got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4);
        }
    }

    #[test]
    fn knn_equals_brute_force_topk_across_thread_counts() {
        let data = DatasetKind::Synthetic.generate(500, 64, 29);
        let (paris, _) = build_in_memory(&data, &cfg(4));
        let queries = DatasetKind::Synthetic.queries(3, 64, 29);
        for q in queries.iter() {
            for k in [1usize, 8, 40, 600] {
                let want = dsidx_ucr::brute_force_knn(&data, q, k);
                for threads in [1usize, 4] {
                    let (got, _) = exact_knn(&paris, &data, q, k, threads).unwrap();
                    assert_eq!(got.len(), want.len(), "k={k} x{threads}");
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.pos, w.pos, "k={k} x{threads}");
                        assert!((g.dist_sq - w.dist_sq).abs() <= w.dist_sq * 1e-4 + 1e-4);
                    }
                }
            }
        }
    }

    #[test]
    fn knn_collect_phase_stays_bounded_when_k_exceeds_the_seed_leaf() {
        // With leaf capacity 16 and k = 50, leaf seeding alone cannot fill
        // the top-k, and an infinite threshold would make the collect
        // phase emit every position as a candidate. The position-order
        // top-up caps it: the candidate list must stay a fraction of the
        // collection.
        let data = DatasetKind::Synthetic.generate(2000, 64, 8);
        let (paris, _) = build_in_memory(&data, &cfg(4));
        let q = DatasetKind::Synthetic.queries(1, 64, 8);
        let (got, stats) = exact_knn(&paris, &data, q.get(0), 50, 4).unwrap();
        assert_eq!(got.len(), 50);
        assert!(
            stats.candidates < 2000,
            "collect phase ran unpruned: {} candidates",
            stats.candidates
        );
        // And the warmed seeding still yields the exact answer.
        let want = dsidx_ucr::brute_force_knn(&data, q.get(0), 50);
        assert_eq!(
            got.iter().map(|m| m.pos).collect::<Vec<_>>(),
            want.iter().map(|m| m.pos).collect::<Vec<_>>()
        );
    }

    #[test]
    fn knn_batch_equals_sequential_knn_across_thread_counts() {
        let data = DatasetKind::Synthetic.generate(600, 64, 47);
        let (paris, _) = build_in_memory(&data, &cfg(4));
        let qs = DatasetKind::Synthetic.queries(6, 64, 47);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        for k in [1usize, 9, 35] {
            for threads in [1usize, 4] {
                let (batched, stats) = exact_knn_batch(&paris, &data, &qrefs, k, threads).unwrap();
                assert_eq!(stats.broadcasts, 2, "one collect + one verify per batch");
                assert!(stats.broadcasts_per_query() < 1.0);
                for (qi, q) in qs.iter().enumerate() {
                    let (single, _) = exact_knn(&paris, &data, q, k, threads).unwrap();
                    assert_eq!(
                        batched[qi].iter().map(|m| m.pos).collect::<Vec<_>>(),
                        single.iter().map(|m| m.pos).collect::<Vec<_>>(),
                        "q{qi} k={k} x{threads}"
                    );
                    assert_eq!(stats.per_query[qi].lb_computed, 600);
                }
                // Shared fetches never exceed the per-query requests.
                assert!(stats.series_fetched <= stats.series_requests);
            }
        }
    }

    #[test]
    fn knn_batch_on_disk_matches_memory_batch() {
        let data = DatasetKind::Seismic.generate(300, 64, 53);
        let path = tmp("batch.dsidx");
        write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let file = DatasetFile::open(&path, Arc::new(Device::unthrottled())).unwrap();
        let (paris, _) =
            build_on_disk(&file, &tmp("batch.leaf"), &cfg(3), Overlap::ParisPlus).unwrap();
        let qs = DatasetKind::Seismic.queries(5, 64, 53);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        let (mem, _) = exact_knn_batch(&paris, &data, &qrefs, 7, 4).unwrap();
        let (disk, _) = exact_knn_batch(&paris, &file, &qrefs, 7, 4).unwrap();
        for (qi, (m, d)) in mem.iter().zip(&disk).enumerate() {
            assert_eq!(
                m.iter().map(|x| x.pos).collect::<Vec<_>>(),
                d.iter().map(|x| x.pos).collect::<Vec<_>>(),
                "q{qi}"
            );
            let want = dsidx_ucr::brute_force_knn(&data, qs.get(qi), 7);
            assert_eq!(
                m.iter().map(|x| x.pos).collect::<Vec<_>>(),
                want.iter().map(|x| x.pos).collect::<Vec<_>>(),
                "q{qi}"
            );
        }
    }

    #[test]
    fn knn_on_disk_matches_memory() {
        let data = DatasetKind::Seismic.generate(350, 64, 17);
        let path = tmp("knn.dsidx");
        write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let file = DatasetFile::open(&path, Arc::new(Device::unthrottled())).unwrap();
        let (paris, _) =
            build_on_disk(&file, &tmp("knn.leaf"), &cfg(3), Overlap::ParisPlus).unwrap();
        let queries = DatasetKind::Seismic.queries(3, 64, 17);
        for q in queries.iter() {
            let want = dsidx_ucr::brute_force_knn(&data, q, 10);
            let (got, _) = exact_knn(&paris, &file, q, 10, 4).unwrap();
            assert_eq!(
                got.iter().map(|m| m.pos).collect::<Vec<_>>(),
                want.iter().map(|m| m.pos).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn knn_deterministic_across_runs_and_threads() {
        let data = DatasetKind::Sald.generate(600, 64, 23);
        let (paris, _) = build_in_memory(&data, &cfg(6));
        let q = DatasetKind::Sald.queries(1, 64, 23);
        let (first, _) = exact_knn(&paris, &data, q.get(0), 15, 1).unwrap();
        assert_eq!(first.len(), 15);
        for threads in [2usize, 4, 8] {
            for _ in 0..3 {
                let (m, _) = exact_knn(&paris, &data, q.get(0), 15, threads).unwrap();
                assert_eq!(m, first);
            }
        }
    }

    #[test]
    fn approx_knn_never_beats_exact_on_memory_and_disk() {
        let data = DatasetKind::Synthetic.generate(600, 64, 67);
        let (paris, _) = build_in_memory(&data, &cfg(4));
        let queries = DatasetKind::Synthetic.queries(4, 64, 67);
        for q in queries.iter() {
            for k in [1usize, 5, 12] {
                let exact = dsidx_ucr::brute_force_knn(&data, q, k);
                let (approx, stats) = approx_knn(&paris, &data, q, k).unwrap();
                assert_eq!(approx.len(), k.min(data.len()));
                for (a, e) in approx.iter().zip(&exact) {
                    assert!(a.dist_sq >= e.dist_sq - e.dist_sq * 1e-6, "k={k}");
                }
                // Sketch pass bounds every position; probes stay few.
                assert_eq!(stats.lb_computed, 600);
                assert!(stats.candidates <= 600);
                assert!(stats.candidates >= k as u64);
                let exact_dtw = dsidx_ucr::brute_force_dtw_knn(&data, q, 4, k);
                let (approx_dtw, _) = approx_knn_dtw(&paris, &data, q, 4, k).unwrap();
                for (a, e) in approx_dtw.iter().zip(&exact_dtw) {
                    assert!(a.dist_sq >= e.dist_sq - e.dist_sq * 1e-6, "dtw k={k}");
                }
            }
        }
        // The on-disk index gives the same approximate answers.
        let path = tmp("approx.dsidx");
        write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let file = DatasetFile::open(&path, Arc::new(Device::unthrottled())).unwrap();
        let (paris_d, _) =
            build_on_disk(&file, &tmp("approx.leaf"), &cfg(3), Overlap::ParisPlus).unwrap();
        for q in queries.iter() {
            let (mem, _) = approx_knn(&paris_d, &data, q, 5).unwrap();
            let (disk, _) = approx_knn(&paris_d, &file, q, 5).unwrap();
            assert_eq!(
                mem.iter().map(|m| m.pos).collect::<Vec<_>>(),
                disk.iter().map(|m| m.pos).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn approx_knn_finds_planted_twin_and_handles_empty() {
        // The query IS a collection member: its sketch distance is 0, so
        // the probe set must contain it and approximate k-NN returns it.
        let data = DatasetKind::Seismic.generate(400, 64, 21);
        let (paris, _) = build_in_memory(&data, &cfg(3));
        for pos in [0usize, 200, 399] {
            let (m, _) = approx_knn(&paris, &data, data.get(pos), 1).unwrap();
            assert_eq!(m[0].pos as usize, pos);
            assert_eq!(m[0].dist_sq, 0.0);
        }
        let empty = dsidx_series::Dataset::new(64).unwrap();
        let (paris, _) = build_in_memory(&empty, &cfg(2));
        let (m, stats) = approx_knn(&paris, &empty, &vec![0.0; 64], 3).unwrap();
        assert!(m.is_empty());
        assert_eq!(stats, QueryStats::default());
    }

    #[test]
    fn query_for_indexed_series_finds_itself() {
        let data = DatasetKind::Synthetic.generate(300, 64, 11);
        let (paris, _) = build_in_memory(&data, &cfg(4));
        for pos in [0usize, 150, 299] {
            let (m, _) = exact_nn(&paris, &data, data.get(pos), 4).unwrap().unwrap();
            assert_eq!(m.pos as usize, pos);
            assert_eq!(m.dist_sq, 0.0);
        }
    }

    #[test]
    fn empty_index_returns_none() {
        let data = dsidx_series::Dataset::new(64).unwrap();
        let (paris, _) = build_in_memory(&data, &cfg(2));
        assert!(exact_nn(&paris, &data, &vec![0.0; 64], 2)
            .unwrap()
            .is_none());
    }

    #[test]
    fn deterministic_answer_across_runs_and_threads() {
        let data = DatasetKind::Sald.generate(800, 64, 3);
        let (paris, _) = build_in_memory(&data, &cfg(6));
        let q = DatasetKind::Sald.queries(1, 64, 3);
        let (first, _) = exact_nn(&paris, &data, q.get(0), 1).unwrap().unwrap();
        for threads in [2usize, 4, 8] {
            for _ in 0..3 {
                let (m, _) = exact_nn(&paris, &data, q.get(0), threads).unwrap().unwrap();
                assert_eq!(m, first);
            }
        }
    }

    #[test]
    fn tree_counters_stay_zero_for_scan_engine() {
        let data = DatasetKind::Synthetic.generate(200, 64, 2);
        let (paris, _) = build_in_memory(&data, &cfg(2));
        let q = DatasetKind::Synthetic.queries(1, 64, 2);
        let (_, stats) = exact_nn(&paris, &data, q.get(0), 2).unwrap().unwrap();
        assert_eq!(stats.nodes_pruned, 0);
        assert_eq!(stats.leaves_enqueued, 0);
        assert_eq!(stats.leaves_processed, 0);
        assert_eq!(stats.lb_entry_computed, 0);
        assert_eq!(stats.lb_total(), stats.lb_computed);
    }
}
