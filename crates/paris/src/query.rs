//! ParIS/ParIS+ exact query answering (stage 4 of Fig. 2).
//!
//! Identical for ParIS and ParIS+ ("for query answering, ParIS and ParIS+
//! are the same"): compute an approximate best-so-far from the most
//! promising leaf, prune over the SAX array with lower-bound distances in
//! parallel, collect the survivors in a candidate list, then compute real
//! distances for the candidates in parallel with early abandoning.
//!
//! Unlike MESSI, candidates are processed in position order, not
//! best-bound-first — the paper attributes part of MESSI's speedup to
//! exactly that difference, which the `abl-queues` ablation measures.

use crate::build::ParisIndex;
use dsidx_isax::MindistTable;
use dsidx_series::distance::{euclidean_sq, euclidean_sq_bounded};
use dsidx_series::Match;
use dsidx_storage::{LeafHandle, RawSource, StorageError};
use dsidx_sync::{AtomicBest, WorkQueue};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters from one exact query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Lower bounds evaluated over the SAX array.
    pub lb_computed: u64,
    /// Positions whose lower bound beat the BSF (candidate list size).
    pub candidates: u64,
    /// Real distances fully evaluated (not early-abandoned).
    pub real_computed: u64,
}

/// SAX-array positions per Fetch&Inc claim in the lower-bound phase.
const LB_CHUNK: usize = 4096;
/// Candidates per Fetch&Inc claim in the real-distance phase.
const REAL_CHUNK: usize = 16;

/// Exact 1-NN through the ParIS index.
///
/// `source` supplies raw series (the dataset file for on-disk operation —
/// reads are charged to its device — or the in-memory dataset).
///
/// Returns `None` for an empty index.
///
/// # Errors
/// Propagates raw-source and leaf-store I/O failures.
///
/// # Panics
/// Panics if the query length differs from the configured series length or
/// `threads == 0`.
pub fn exact_nn(
    paris: &ParisIndex,
    source: &impl RawSource,
    query: &[f32],
    threads: usize,
) -> Result<Option<(Match, QueryStats)>, StorageError> {
    let config = paris.index.config();
    assert_eq!(query.len(), config.series_len(), "query length mismatch");
    assert!(threads > 0, "thread count must be non-zero");
    if paris.index.is_empty() {
        return Ok(None);
    }
    let quantizer = config.quantizer();
    let mut paa = vec![0.0f32; config.segments()];
    quantizer.paa_into(query, &mut paa);
    let query_word = quantizer.word_from_paa(&paa);
    let table = MindistTable::new_point(&paa, quantizer.segment_lens());
    let memory = source.as_memory();
    let mut scratch = vec![0.0f32; config.series_len()];

    // Step 1: approximate answer — descend to the query's leaf, compute
    // real distances for its entries. In on-disk mode the leaf was
    // materialized, so charge its read-back from the leaf store.
    let leaf = paris
        .index
        .non_empty_leaf_for(&query_word)
        .or_else(|| paris.index.any_leaf())
        .expect("non-empty index has a non-empty leaf");
    if let Some(reader) = &paris.leaves {
        let mut records = Vec::new();
        for chunk in &leaf.payload().expect("leaf payload").chunks {
            reader.read(LeafHandle { offset: chunk.offset, count: chunk.count }, &mut records)?;
        }
    }
    let best = AtomicBest::new();
    let mut approx_real = 0u64;
    for e in leaf.entries().expect("leaves are resident") {
        let d = if let Some(ds) = memory {
            euclidean_sq(query, ds.get(e.pos as usize))
        } else {
            source.read_into(e.pos as usize, &mut scratch)?;
            euclidean_sq(query, &scratch)
        };
        approx_real += 1;
        best.update(d, e.pos);
    }

    // Step 2: parallel lower-bound pruning over the SAX array.
    let pool = dsidx_sync::pool::global(threads);
    let words = paris.sax.words();
    let lb_queue = WorkQueue::new(words.len());
    let candidates: Mutex<Vec<(u32, f32)>> = Mutex::new(Vec::new());
    pool.broadcast(&|_worker| {
        let mut local: Vec<(u32, f32)> = Vec::new();
        while let Some(range) = lb_queue.claim_chunk(LB_CHUNK) {
            let limit = best.dist_sq();
            for pos in range {
                let lb = table.lookup(&words[pos]);
                if lb < limit {
                    local.push((pos as u32, lb));
                }
            }
        }
        if !local.is_empty() {
            candidates.lock().extend_from_slice(&local);
        }
    });
    let candidates = candidates.into_inner();

    // Step 3: parallel real distances over the candidate list.
    let real_queue = WorkQueue::new(candidates.len());
    let real_computed = AtomicU64::new(0);
    let errors: Mutex<Option<StorageError>> = Mutex::new(None);
    pool.broadcast(&|_worker| {
        let mut scratch = vec![0.0f32; query.len()];
        while let Some(range) = real_queue.claim_chunk(REAL_CHUNK) {
            for i in range {
                let (pos, lb) = candidates[i];
                let limit = best.dist_sq();
                if lb >= limit {
                    continue; // pruned by a BSF that improved since
                }
                let d = if let Some(ds) = memory {
                    euclidean_sq_bounded(query, ds.get(pos as usize), limit)
                } else {
                    match source.read_into(pos as usize, &mut scratch) {
                        Ok(()) => euclidean_sq_bounded(query, &scratch, limit),
                        Err(e) => {
                            let mut slot = errors.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            return;
                        }
                    }
                };
                if let Some(d) = d {
                    real_computed.fetch_add(1, Ordering::Relaxed);
                    best.update(d, pos);
                }
            }
        }
    });
    if let Some(e) = errors.into_inner() {
        return Err(e);
    }

    let (dist_sq, pos) = best.get();
    let stats = QueryStats {
        lb_computed: words.len() as u64,
        candidates: candidates.len() as u64,
        real_computed: real_computed.load(Ordering::Relaxed) + approx_real,
    };
    Ok(Some((Match::new(pos, dist_sq), stats)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_in_memory, build_on_disk};
    use crate::config::{Overlap, ParisConfig};
    use dsidx_series::gen::DatasetKind;
    use dsidx_storage::{write_dataset, DatasetFile, Device};
    use dsidx_tree::TreeConfig;
    use dsidx_ucr::brute_force;
    use std::sync::Arc;

    fn cfg(threads: usize) -> ParisConfig {
        ParisConfig::new(TreeConfig::new(64, 8, 16).unwrap(), threads)
            .with_block_series(64)
            .with_generation_series(256)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dsidx-parisq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn exact_on_all_dataset_kinds_in_memory() {
        for kind in DatasetKind::ALL {
            let data = kind.generate(600, 64, 37);
            let (paris, _) = build_in_memory(&data, &cfg(4));
            let queries = kind.queries(8, 64, 37);
            for q in queries.iter() {
                let want = brute_force(&data, q).unwrap();
                for threads in [1usize, 4] {
                    let (got, stats) =
                        exact_nn(&paris, &data, q, threads).unwrap().unwrap();
                    assert_eq!(got.pos, want.pos, "{} x{threads}", kind.name());
                    assert!(
                        (got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4
                    );
                    assert_eq!(stats.lb_computed, 600);
                    assert!(stats.candidates <= 600);
                }
            }
        }
    }

    #[test]
    fn exact_on_disk_matches_memory() {
        let data = DatasetKind::Seismic.generate(400, 64, 5);
        let path = tmp("q.dsidx");
        write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let file = DatasetFile::open(&path, Arc::new(Device::unthrottled())).unwrap();
        let (paris, _) =
            build_on_disk(&file, &tmp("q.leaf"), &cfg(3), Overlap::ParisPlus).unwrap();
        let queries = DatasetKind::Seismic.queries(6, 64, 5);
        for q in queries.iter() {
            let want = brute_force(&data, q).unwrap();
            let (got, _) = exact_nn(&paris, &file, q, 4).unwrap().unwrap();
            assert_eq!(got.pos, want.pos);
            assert!((got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4);
        }
    }

    #[test]
    fn query_for_indexed_series_finds_itself() {
        let data = DatasetKind::Synthetic.generate(300, 64, 11);
        let (paris, _) = build_in_memory(&data, &cfg(4));
        for pos in [0usize, 150, 299] {
            let (m, _) = exact_nn(&paris, &data, data.get(pos), 4).unwrap().unwrap();
            assert_eq!(m.pos as usize, pos);
            assert_eq!(m.dist_sq, 0.0);
        }
    }

    #[test]
    fn empty_index_returns_none() {
        let data = dsidx_series::Dataset::new(64).unwrap();
        let (paris, _) = build_in_memory(&data, &cfg(2));
        assert!(exact_nn(&paris, &data, &vec![0.0; 64], 2).unwrap().is_none());
    }

    #[test]
    fn deterministic_answer_across_runs_and_threads() {
        let data = DatasetKind::Sald.generate(800, 64, 3);
        let (paris, _) = build_in_memory(&data, &cfg(6));
        let q = DatasetKind::Sald.queries(1, 64, 3);
        let (first, _) = exact_nn(&paris, &data, q.get(0), 1).unwrap().unwrap();
        for threads in [2usize, 4, 8] {
            for _ in 0..3 {
                let (m, _) = exact_nn(&paris, &data, q.get(0), threads).unwrap().unwrap();
                assert_eq!(m, first);
            }
        }
    }
}
