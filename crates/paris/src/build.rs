//! The ParIS/ParIS+ index-construction pipeline (stages 1–3 of Fig. 2).
//!
//! Thread roles and synchronization, mirroring the paper:
//!
//! * the **coordinator** (caller thread) reads sequential blocks and feeds
//!   them to a bounded MPMC channel sized to hold a full generation — the
//!   "raw data buffer in main memory";
//! * `threads` **workers** summarize blocks into per-subtree RecBufs and
//!   the SAX array; at each generation boundary the coordinator enqueues
//!   one `EndGen` marker per worker (channel FIFO guarantees every worker
//!   sees all of the generation's blocks first), the workers barrier, then
//!   claim dirty RecBufs by Fetch&Inc and grow the corresponding subtrees;
//! * in **ParIS** mode the coordinator blocks until the generation's
//!   growth *and* leaf flushing finish (the visible stage-3 stall of
//!   Fig. 4); in **ParIS+** mode it keeps reading the next generation while
//!   dedicated **flusher** threads materialize the finished subtrees'
//!   leaves — growth of generation `g+1` waits until generation `g` is
//!   fully flushed, which is the only ordering the shared subtrees need.

use crate::config::{Overlap, ParisConfig};
use crate::recbuf::RecBufs;
use crate::report::BuildReport;
use dsidx_isax::Word;
use dsidx_series::Dataset;
use dsidx_storage::{DatasetFile, LeafStoreReader, LeafStoreWriter, StorageError};
use dsidx_sync::{SyncSlice, WorkQueue};
use dsidx_tree::{Index, LeafChunk, LeafEntry, Node, NodeWord, SaxArray};
use parking_lot::{Condvar, Mutex};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// A built ParIS/ParIS+ index.
#[derive(Debug)]
pub struct ParisIndex {
    /// The iSAX tree (all subtrees resident; leaves carry flush chunks in
    /// on-disk mode).
    pub index: Index,
    /// Position-ordered iSAX words — what stage 4 scans.
    pub sax: SaxArray,
    /// The materialized leaf store (on-disk builds only).
    pub leaves: Option<LeafStoreReader>,
}

enum Feed {
    Block {
        first_pos: usize,
        parity: usize,
        data: Vec<f32>,
    },
    EndGen {
        parity: usize,
    },
}

/// Counts leaf-store flushes still in flight (ParIS+).
struct FlushTracker {
    pending: Mutex<usize>,
    cv: Condvar,
}

impl FlushTracker {
    fn new() -> Self {
        Self {
            pending: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn add(&self) {
        *self.pending.lock() += 1;
    }

    fn done(&self) {
        let mut p = self.pending.lock();
        *p -= 1;
        if *p == 0 {
            self.cv.notify_all();
        }
    }

    fn wait_zero(&self) {
        let mut p = self.pending.lock();
        while *p > 0 {
            self.cv.wait(&mut p);
        }
    }
}

/// Shared error slot: first storage error wins, the pipeline drains.
#[derive(Default)]
struct ErrorSlot(Mutex<Option<StorageError>>);

impl ErrorSlot {
    fn set(&self, e: StorageError) {
        let mut slot = self.0.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    fn take(&self) -> Option<StorageError> {
        self.0.lock().take()
    }
}

fn flush_subtree(node: &mut Node, store: &LeafStoreWriter, errors: &ErrorSlot) {
    node.for_each_leaf_mut(&mut |leaf| {
        let unflushed = leaf.unflushed_entries();
        if unflushed.is_empty() {
            return;
        }
        let records: Vec<(Word, u32)> = unflushed.iter().map(|e| (e.word, e.pos)).collect();
        match store.append(&records) {
            Ok(h) => leaf.mark_flushed(LeafChunk {
                offset: h.offset,
                count: h.count,
            }),
            Err(e) => errors.set(e),
        }
    });
}

/// Builds a ParIS or ParIS+ index from an on-disk dataset, materializing
/// leaves into a leaf store created at `store_path`.
///
/// # Errors
/// Propagates I/O failures from the dataset file and the leaf store.
///
/// # Panics
/// Panics on configuration mismatches (series length, zero threads).
pub fn build_on_disk(
    file: &DatasetFile,
    store_path: &Path,
    cfg: &ParisConfig,
    mode: Overlap,
) -> Result<(ParisIndex, BuildReport), StorageError> {
    cfg.validate();
    assert_eq!(
        file.series_len(),
        cfg.tree.series_len(),
        "series length mismatch"
    );
    let store = LeafStoreWriter::create(store_path, cfg.tree.segments(), file.device().clone())?;
    let (index, sax, report) = run_pipeline(
        cfg,
        mode,
        file.count(),
        Some(&store),
        |start, count, out| file.read_block(start, count, out),
    )?;
    let leaves = store.finish()?;
    Ok((
        ParisIndex {
            index,
            sax,
            leaves: Some(leaves),
        },
        report,
    ))
}

/// Builds an in-memory ParIS index (the paper's "in-memory implementation
/// of ParIS" used in Figs. 7, 9 and 12): same locked RecBufs and stage-3
/// structure, no disk at all.
///
/// # Panics
/// Panics on configuration mismatches.
#[must_use]
pub fn build_in_memory(data: &Dataset, cfg: &ParisConfig) -> (ParisIndex, BuildReport) {
    cfg.validate();
    assert_eq!(
        data.series_len(),
        cfg.tree.series_len(),
        "series length mismatch"
    );
    let series_len = data.series_len();
    let (index, sax, report) = run_pipeline(
        cfg,
        Overlap::Paris,
        data.len(),
        None,
        |start, count, out: &mut Vec<f32>| {
            out.clear();
            out.extend_from_slice(
                &data.as_flat()[start * series_len..(start + count) * series_len],
            );
            Ok(())
        },
    )
    .expect("in-memory build performs no I/O");
    (
        ParisIndex {
            index,
            sax,
            leaves: None,
        },
        report,
    )
}

#[allow(clippy::too_many_lines)]
fn run_pipeline(
    cfg: &ParisConfig,
    mode: Overlap,
    total: usize,
    store: Option<&LeafStoreWriter>,
    mut read_block: impl FnMut(usize, usize, &mut Vec<f32>) -> Result<(), StorageError>,
) -> Result<(Index, SaxArray, BuildReport), StorageError> {
    let tree_cfg = &cfg.tree;
    let quantizer = tree_cfg.quantizer().clone();
    let segments = tree_cfg.segments();
    let series_len = tree_cfg.series_len();
    let threads = cfg.threads;

    let recbufs = [
        RecBufs::new(tree_cfg.root_count()),
        RecBufs::new(tree_cfg.root_count()),
    ];
    let filler = Word::new(&vec![0u8; segments]);
    let sax = SyncSlice::new(vec![filler; total]);
    let roots: SyncSlice<Option<Box<Node>>> =
        SyncSlice::new((0..tree_cfg.root_count()).map(|_| None).collect());
    let errors = ErrorSlot::default();

    // Channel capacity: a full generation plus markers — the raw buffer.
    let blocks_per_gen = cfg.generation_series.div_ceil(cfg.block_series);
    let (block_tx, block_rx) = crossbeam_channel::bounded::<Feed>(2 * blocks_per_gen + threads + 1);
    let (flush_tx, flush_rx) = crossbeam_channel::unbounded::<u16>();
    let (gen_done_tx, gen_done_rx) = crossbeam_channel::unbounded::<()>();
    let flush_tracker = FlushTracker::new();
    let barrier = Barrier::new(threads);
    let grow_nanos = AtomicU64::new(0);
    let flush_nanos = AtomicU64::new(0);

    let t0 = Instant::now();
    let mut read_time = Duration::ZERO;
    let mut stall_waits = Duration::ZERO;
    let mut generations = 0usize;
    let mut t_read_done = t0;

    let coordinator_error: Option<StorageError> = std::thread::scope(|s| {
        // IndexBulkLoading workers (who also construct subtrees at
        // generation boundaries; in ParIS+ that is exactly the paper's
        // redesign, in ParIS it is equivalent to a distinct construction
        // pool because the coordinator is stopped anyway).
        for _ in 0..threads {
            let block_rx = block_rx.clone();
            let flush_tx = flush_tx.clone();
            let quantizer = quantizer.clone();
            let recbufs = &recbufs;
            let sax = &sax;
            let roots = &roots;
            let errors = &errors;
            let barrier = &barrier;
            let flush_tracker = &flush_tracker;
            let grow_nanos = &grow_nanos;
            let flush_nanos = &flush_nanos;
            let gen_done_tx = gen_done_tx.clone();
            s.spawn(move || {
                let mut paa = vec![0.0f32; segments];
                while let Ok(feed) = block_rx.recv() {
                    match feed {
                        Feed::Block {
                            first_pos,
                            parity,
                            data,
                        } => {
                            for (i, series) in data.chunks_exact(series_len).enumerate() {
                                let word = quantizer.word_into(series, &mut paa);
                                let pos = first_pos + i;
                                // SAFETY: block ranges are disjoint and each
                                // position is summarized exactly once.
                                unsafe { sax.write(pos, word) };
                                recbufs[parity]
                                    .push(word.root_key(), LeafEntry::new(word, pos as u32));
                            }
                        }
                        Feed::EndGen { parity } => {
                            // B1: every worker finished summarizing this
                            // generation (each consumes exactly one marker).
                            barrier.wait();
                            if mode == Overlap::ParisPlus {
                                // Previous generation's leaves must be fully
                                // materialized before we mutate subtrees.
                                flush_tracker.wait_zero();
                            }
                            let tg = Instant::now();
                            let mut flush_local = Duration::ZERO;
                            while let Some(key) = recbufs[parity].claim_dirty() {
                                let entries = recbufs[parity].drain(key);
                                // SAFETY: each dirty key is claimed by one
                                // worker; flushers only touch keys handed to
                                // them after growth, never concurrently.
                                let slot = unsafe { roots.get_mut(key as usize) };
                                let node = slot.get_or_insert_with(|| {
                                    Box::new(Node::new_leaf(NodeWord::root(key, segments)))
                                });
                                for e in entries {
                                    node.insert(e, tree_cfg);
                                }
                                if let Some(store) = store {
                                    match mode {
                                        Overlap::Paris => {
                                            let tf = Instant::now();
                                            flush_subtree(node, store, errors);
                                            flush_local += tf.elapsed();
                                        }
                                        Overlap::ParisPlus => {
                                            flush_tracker.add();
                                            // Receiver outlives senders by
                                            // construction.
                                            let _ = flush_tx.send(key);
                                        }
                                    }
                                }
                            }
                            let grow_local = tg.elapsed().saturating_sub(flush_local);
                            // ORDERING: relaxed — phase-time accumulators,
                            // read only after the scope joins all workers.
                            grow_nanos.fetch_add(grow_local.as_nanos() as u64, Ordering::Relaxed);
                            flush_nanos.fetch_add(flush_local.as_nanos() as u64, Ordering::Relaxed);
                            // B2: all subtrees of this generation grown.
                            if barrier.wait().is_leader() {
                                recbufs[parity].reset_generation();
                            }
                            // B3: reset visible to everyone; signal the
                            // coordinator (ParIS waits on this).
                            if barrier.wait().is_leader() {
                                let _ = gen_done_tx.send(());
                            }
                        }
                    }
                }
            });
        }
        drop(gen_done_tx);
        drop(flush_tx);

        // Flusher pool (ParIS+ on-disk only): materializes leaves while the
        // coordinator keeps reading.
        if mode == Overlap::ParisPlus && store.is_some() {
            for _ in 0..2usize {
                let flush_rx = flush_rx.clone();
                let roots = &roots;
                let errors = &errors;
                let flush_tracker = &flush_tracker;
                let flush_nanos = &flush_nanos;
                s.spawn(move || {
                    while let Ok(key) = flush_rx.recv() {
                        let tf = Instant::now();
                        // SAFETY: the key was handed over after growth
                        // finished; no grower touches it until the tracker
                        // hits zero, and each key is in flight at most once.
                        let slot = unsafe { roots.get_mut(key as usize) };
                        if let Some(node) = slot.as_mut() {
                            flush_subtree(node, store.expect("flushers imply a store"), errors);
                        }
                        // ORDERING: relaxed — phase-time accumulator, read
                        // only after the scope joins all workers.
                        flush_nanos.fetch_add(tf.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        flush_tracker.done();
                    }
                });
            }
        }
        drop(flush_rx);

        // Coordinator (stage 1).
        let result = (|| -> Result<(), StorageError> {
            let mut buf: Vec<f32> = Vec::new();
            let mut pos = 0usize;
            let mut in_gen = 0usize;
            let mut parity = 0usize;
            while pos < total {
                let gen_left = cfg.generation_series - in_gen;
                let count = cfg.block_series.min(total - pos).min(gen_left);
                let tr = Instant::now();
                read_block(pos, count, &mut buf)?;
                read_time += tr.elapsed();
                let data = std::mem::take(&mut buf);
                block_tx
                    .send(Feed::Block {
                        first_pos: pos,
                        parity,
                        data,
                    })
                    .expect("workers outlive the coordinator");
                pos += count;
                in_gen += count;
                if in_gen >= cfg.generation_series || pos == total {
                    for _ in 0..threads {
                        block_tx
                            .send(Feed::EndGen { parity })
                            .expect("workers outlive the coordinator");
                    }
                    generations += 1;
                    if mode == Overlap::Paris {
                        let tw = Instant::now();
                        gen_done_rx.recv().expect("workers signal every generation");
                        stall_waits += tw.elapsed();
                    }
                    in_gen = 0;
                    parity ^= 1;
                }
            }
            Ok(())
        })();
        t_read_done = Instant::now();
        drop(block_tx); // workers drain and exit; flushers follow
        result.err()
    });

    if let Some(e) = coordinator_error {
        return Err(e);
    }
    if let Some(e) = errors.take() {
        return Err(e);
    }

    let total_time = t0.elapsed();
    let report = BuildReport {
        total: total_time,
        read: read_time,
        stall: stall_waits + total_time.saturating_sub(t_read_done - t0),
        // ORDERING: relaxed — every writer joined when the worker scope
        // ended above; the join is the happens-before edge.
        grow_cpu: Duration::from_nanos(grow_nanos.load(Ordering::Relaxed)),
        flush_io: Duration::from_nanos(flush_nanos.load(Ordering::Relaxed)),
        generations,
    };
    let index = Index::from_roots(tree_cfg.clone(), roots.into_inner());
    let sax = SaxArray::new(sax.into_inner());
    Ok((index, sax, report))
}

/// Parallel in-memory summarization used by ablations and tests: fills only
/// the SAX array (no tree), via Fetch&Inc position chunks.
#[must_use]
pub fn summarize_parallel(data: &Dataset, cfg: &ParisConfig) -> SaxArray {
    let quantizer = cfg.tree.quantizer().clone();
    let segments = cfg.tree.segments();
    let filler = Word::new(&vec![0u8; segments]);
    let sax = SyncSlice::new(vec![filler; data.len()]);
    let queue = WorkQueue::new(data.len());
    std::thread::scope(|s| {
        for _ in 0..cfg.threads {
            let quantizer = quantizer.clone();
            let sax = &sax;
            let queue = &queue;
            s.spawn(move || {
                let mut paa = vec![0.0f32; segments];
                while let Some(range) = queue.claim_chunk(cfg.block_series) {
                    for pos in range {
                        let word = quantizer.word_into(data.get(pos), &mut paa);
                        // SAFETY: chunk claims are disjoint.
                        unsafe { sax.write(pos, word) };
                    }
                }
            });
        }
    });
    SaxArray::new(sax.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_series::gen::DatasetKind;
    use dsidx_storage::{write_dataset, Device, DeviceProfile};
    use dsidx_tree::stats::{index_stats, validate};
    use dsidx_tree::TreeConfig;
    use std::sync::Arc;

    fn tree_cfg() -> TreeConfig {
        TreeConfig::new(64, 8, 16).unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dsidx-paris-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn on_disk_fixture(n: usize, seed: u64, name: &str) -> DatasetFile {
        let data = DatasetKind::Synthetic.generate(n, 64, seed);
        let path = tmp(name);
        write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        DatasetFile::open(&path, Arc::new(Device::unthrottled())).unwrap()
    }

    #[test]
    fn in_memory_build_matches_serial_reference() {
        let data = DatasetKind::Synthetic.generate(600, 64, 42);
        let cfg = ParisConfig::new(tree_cfg(), 4)
            .with_block_series(64)
            .with_generation_series(256);
        let (paris, report) = build_in_memory(&data, &cfg);
        assert_eq!(paris.index.len(), 600);
        assert_eq!(paris.sax.len(), 600);
        validate(&paris.index);
        assert!(report.generations >= 2, "600/256 needs >= 3 generations");
        // SAX words match direct computation.
        let q = cfg.tree.quantizer();
        for (pos, series) in data.iter().enumerate() {
            assert_eq!(paris.sax.word(pos), &q.word(series), "pos {pos}");
        }
        // Same leaf structure as the serial baseline build.
        let (ads, _) = dsidx_ads::build_from_dataset(&data, &cfg.tree);
        assert_eq!(
            index_stats(&paris.index).entry_count,
            index_stats(&ads.index).entry_count
        );
        assert_eq!(paris.index.occupied_roots(), ads.index.occupied_roots());
    }

    #[test]
    fn on_disk_paris_and_plus_build_identical_indexes() {
        let file = on_disk_fixture(500, 7, "build.dsidx");
        let cfg = ParisConfig::new(tree_cfg(), 3)
            .with_block_series(50)
            .with_generation_series(150);
        let (paris, rep_a) = build_on_disk(&file, &tmp("a.leaf"), &cfg, Overlap::Paris).unwrap();
        let (plus, rep_b) = build_on_disk(&file, &tmp("b.leaf"), &cfg, Overlap::ParisPlus).unwrap();
        assert_eq!(paris.index.len(), 500);
        assert_eq!(plus.index.len(), 500);
        validate(&paris.index);
        validate(&plus.index);
        assert_eq!(paris.sax.words(), plus.sax.words());
        assert_eq!(paris.index.occupied_roots(), plus.index.occupied_roots());
        assert!(rep_a.generations >= 3);
        assert_eq!(rep_a.generations, rep_b.generations);
        assert!(paris.leaves.is_some());
        // Every leaf is fully flushed at the end of both builds.
        for idx in [&paris.index, &plus.index] {
            idx.for_each_leaf(&mut |leaf| {
                assert!(leaf.unflushed_entries().is_empty(), "leaf left unflushed");
            });
        }
    }

    #[test]
    fn flushed_leaves_read_back_correctly() {
        let file = on_disk_fixture(300, 9, "roundtrip.dsidx");
        let cfg = ParisConfig::new(tree_cfg(), 2)
            .with_block_series(64)
            .with_generation_series(128);
        let (paris, _) = build_on_disk(&file, &tmp("rt.leaf"), &cfg, Overlap::ParisPlus).unwrap();
        let reader = paris.leaves.as_ref().unwrap();
        let mut records = Vec::new();
        let mut checked = 0;
        paris.index.for_each_leaf(&mut |leaf| {
            let payload = leaf.payload().unwrap();
            let mut from_store = Vec::new();
            for chunk in &payload.chunks {
                reader
                    .read(
                        dsidx_storage::LeafHandle {
                            offset: chunk.offset,
                            count: chunk.count,
                        },
                        &mut records,
                    )
                    .unwrap();
                from_store.extend(records.iter().copied());
            }
            let resident: Vec<(Word, u32)> =
                payload.entries.iter().map(|e| (e.word, e.pos)).collect();
            assert_eq!(from_store, resident, "store contents must mirror leaf");
            checked += 1;
        });
        assert!(checked > 0);
    }

    #[test]
    fn single_generation_and_single_thread_work() {
        let file = on_disk_fixture(100, 3, "small.dsidx");
        let cfg = ParisConfig::new(tree_cfg(), 1)
            .with_block_series(100)
            .with_generation_series(1000);
        let (paris, report) =
            build_on_disk(&file, &tmp("small.leaf"), &cfg, Overlap::Paris).unwrap();
        assert_eq!(paris.index.len(), 100);
        assert_eq!(report.generations, 1);
        validate(&paris.index);
    }

    #[test]
    fn empty_dataset_builds_empty_index() {
        let data = dsidx_series::Dataset::new(64).unwrap();
        let cfg = ParisConfig::new(tree_cfg(), 4);
        let (paris, report) = build_in_memory(&data, &cfg);
        assert!(paris.index.is_empty());
        assert!(paris.sax.is_empty());
        assert_eq!(report.generations, 0);
    }

    #[test]
    fn paris_plus_hides_cpu_under_reads_on_hdd() {
        // The Fig. 4 effect, miniaturized: with a throttled HDD, ParIS's
        // visible stall must be a significantly larger share of the build
        // than ParIS+'s. Wall-clock fractions get noisy when the whole
        // workspace test suite saturates the machine, so the shape is
        // allowed a few attempts; it must show up in at least one.
        let data = DatasetKind::Synthetic.generate(3000, 64, 5);
        let path = tmp("hdd.dsidx");
        write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let cfg = ParisConfig::new(TreeConfig::new(64, 8, 20).unwrap(), 4)
            .with_block_series(250)
            .with_generation_series(750);
        let frac = |r: &BuildReport| r.stall.as_secs_f64() / r.total.as_secs_f64();

        let mut last = (f64::NAN, f64::NAN);
        for attempt in 0..3 {
            let dev_a = Arc::new(Device::new(DeviceProfile::HDD));
            let file_a = DatasetFile::open(&path, dev_a).unwrap();
            let (_, rep_paris) = build_on_disk(
                &file_a,
                &tmp(&format!("hdd_a{attempt}.leaf")),
                &cfg,
                Overlap::Paris,
            )
            .unwrap();

            let dev_b = Arc::new(Device::new(DeviceProfile::HDD));
            let file_b = DatasetFile::open(&path, dev_b).unwrap();
            let (_, rep_plus) = build_on_disk(
                &file_b,
                &tmp(&format!("hdd_b{attempt}.leaf")),
                &cfg,
                Overlap::ParisPlus,
            )
            .unwrap();

            last = (frac(&rep_plus), frac(&rep_paris));
            if last.0 < last.1 {
                return;
            }
        }
        panic!(
            "ParIS+ stall fraction {:.3} should be below ParIS {:.3}",
            last.0, last.1
        );
    }

    #[test]
    fn summarize_parallel_matches_sequential() {
        let data = DatasetKind::Sald.generate(400, 64, 12);
        let cfg = ParisConfig::new(tree_cfg(), 6).with_block_series(32);
        let sax = summarize_parallel(&data, &cfg);
        let q = cfg.tree.quantizer();
        for (pos, series) in data.iter().enumerate() {
            assert_eq!(sax.word(pos), &q.word(series));
        }
    }
}
