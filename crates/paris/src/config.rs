//! Build configuration for ParIS/ParIS+.

use dsidx_tree::TreeConfig;

/// Which pipeline variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overlap {
    /// ParIS: index construction (stage 3) stops the coordinator.
    Paris,
    /// ParIS+: construction and leaf flushing overlap with reading.
    ParisPlus,
}

impl Overlap {
    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Overlap::Paris => "ParIS",
            Overlap::ParisPlus => "ParIS+",
        }
    }
}

/// Configuration for a ParIS/ParIS+ build.
#[derive(Debug, Clone)]
pub struct ParisConfig {
    /// Tree shape (series length, segments, leaf capacity).
    pub tree: TreeConfig,
    /// Worker thread count (the coordinator and flushers are extra threads,
    /// but they are I/O-bound; the paper's "number of cores" sweeps map to
    /// this value).
    pub threads: usize,
    /// Series per sequential read block (stage 1 granularity).
    pub block_series: usize,
    /// Series per generation — the modeled "available main memory" that
    /// triggers stage 3 when full.
    pub generation_series: usize,
}

impl ParisConfig {
    /// A configuration with sensible laptop-scale defaults.
    #[must_use]
    pub fn new(tree: TreeConfig, threads: usize) -> Self {
        Self {
            tree,
            threads,
            block_series: 1024,
            generation_series: 16 * 1024,
        }
    }

    /// Sets the read block size.
    #[must_use]
    pub fn with_block_series(mut self, block_series: usize) -> Self {
        assert!(block_series > 0, "block size must be non-zero");
        self.block_series = block_series;
        self
    }

    /// Sets the generation (memory budget) size.
    #[must_use]
    pub fn with_generation_series(mut self, generation_series: usize) -> Self {
        assert!(generation_series > 0, "generation size must be non-zero");
        self.generation_series = generation_series;
        self
    }

    pub(crate) fn validate(&self) {
        assert!(self.threads > 0, "thread count must be non-zero");
        assert!(self.block_series > 0, "block size must be non-zero");
        assert!(
            self.generation_series >= self.block_series,
            "generation must hold at least one block"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods() {
        let tree = TreeConfig::new(64, 8, 10).unwrap();
        let cfg = ParisConfig::new(tree, 4)
            .with_block_series(128)
            .with_generation_series(512);
        assert_eq!(cfg.block_series, 128);
        assert_eq!(cfg.generation_series, 512);
        cfg.validate();
    }

    #[test]
    fn names() {
        assert_eq!(Overlap::Paris.name(), "ParIS");
        assert_eq!(Overlap::ParisPlus.name(), "ParIS+");
    }

    #[test]
    #[should_panic(expected = "generation must hold")]
    fn generation_smaller_than_block_panics() {
        let tree = TreeConfig::new(64, 8, 10).unwrap();
        let cfg = ParisConfig::new(tree, 4)
            .with_block_series(1024)
            .with_generation_series(1023);
        let _ = cfg.generation_series; // silence unused warnings pre-panic
        cfg.validate();
    }
}
