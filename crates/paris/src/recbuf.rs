//! Receiving buffers (RecBufs): one lock-protected entry buffer per root
//! subtree.
//!
//! This is ParIS's original design — "index Receiving Buffers" filled by
//! the bulk-loading workers (§III). The paper contrasts it with MESSI's
//! per-thread buffer parts precisely because these *shared, locked* buffers
//! pay a synchronization cost; keeping that design here (and the other in
//! `dsidx-messi`) is what lets the `abl-buffers` ablation measure the
//! difference.

use dsidx_tree::LeafEntry;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// One locked buffer per root key, plus dirty-key tracking so stage 3 only
/// visits subtrees that received data this generation.
#[derive(Debug)]
pub struct RecBufs {
    bufs: Vec<Mutex<Vec<LeafEntry>>>,
    dirty: Vec<AtomicBool>,
    dirty_keys: Mutex<Vec<u16>>,
    /// Claim cursor over `dirty_keys` during the grow phase.
    cursor: AtomicUsize,
}

impl RecBufs {
    /// Buffers for `root_count` subtrees.
    #[must_use]
    pub fn new(root_count: usize) -> Self {
        let mut bufs = Vec::with_capacity(root_count);
        bufs.resize_with(root_count, || Mutex::new(Vec::new()));
        let mut dirty = Vec::with_capacity(root_count);
        dirty.resize_with(root_count, || AtomicBool::new(false));
        Self {
            bufs,
            dirty,
            dirty_keys: Mutex::new(Vec::new()),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Appends an entry to its subtree's buffer (locked; contended by
    /// design — see module docs).
    pub fn push(&self, key: u16, entry: LeafEntry) {
        self.bufs[key as usize].lock().push(entry);
        if !self.dirty[key as usize].swap(true, Ordering::AcqRel) {
            self.dirty_keys.lock().push(key);
        }
    }

    /// Claims the next dirty key during the grow phase (call only after all
    /// pushes for the generation have finished).
    pub fn claim_dirty(&self) -> Option<u16> {
        let keys = self.dirty_keys.lock();
        // ORDERING: relaxed — Fetch&Inc claim: the index is the whole
        // payload, and the keys themselves are read under the mutex.
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        keys.get(i).copied()
    }

    /// Drains a buffer for subtree construction and clears its dirty flag.
    #[must_use]
    pub fn drain(&self, key: u16) -> Vec<LeafEntry> {
        self.dirty[key as usize].store(false, Ordering::Release);
        std::mem::take(&mut *self.bufs[key as usize].lock())
    }

    /// Resets the dirty-key list and cursor for the next generation (call
    /// once per generation, after every dirty key has been drained).
    pub fn reset_generation(&self) {
        let mut keys = self.dirty_keys.lock();
        debug_assert!(
            keys.iter()
                .all(|&k| !self.dirty[k as usize].load(Ordering::Acquire)),
            "reset with undrained buffers"
        );
        keys.clear();
        self.cursor.store(0, Ordering::Release);
    }

    /// Number of dirty subtrees in the current generation.
    #[must_use]
    pub fn dirty_count(&self) -> usize {
        self.dirty_keys.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_isax::Word;

    fn entry(key_byte: u8, pos: u32) -> LeafEntry {
        LeafEntry::new(Word::new(&[key_byte, 0, 0, 0]), pos)
    }

    #[test]
    fn push_drain_round_trip() {
        let rb = RecBufs::new(16);
        rb.push(3, entry(1, 10));
        rb.push(3, entry(2, 11));
        rb.push(7, entry(3, 12));
        assert_eq!(rb.dirty_count(), 2);
        let drained = rb.drain(3);
        assert_eq!(drained.len(), 2);
        assert_eq!(rb.drain(3).len(), 0, "drain empties the buffer");
    }

    #[test]
    fn claim_visits_each_dirty_key_once() {
        let rb = RecBufs::new(8);
        rb.push(1, entry(0, 0));
        rb.push(5, entry(0, 1));
        rb.push(1, entry(0, 2));
        let mut claimed = Vec::new();
        while let Some(k) = rb.claim_dirty() {
            claimed.push(k);
            let _ = rb.drain(k);
        }
        claimed.sort_unstable();
        assert_eq!(claimed, vec![1, 5]);
    }

    #[test]
    fn generations_reset_cleanly() {
        let rb = RecBufs::new(8);
        rb.push(2, entry(0, 0));
        while let Some(k) = rb.claim_dirty() {
            let _ = rb.drain(k);
        }
        rb.reset_generation();
        assert_eq!(rb.dirty_count(), 0);
        rb.push(2, entry(0, 1));
        assert_eq!(rb.dirty_count(), 1);
        assert_eq!(rb.claim_dirty(), Some(2));
    }

    #[test]
    fn concurrent_pushes_preserve_every_entry() {
        let rb = RecBufs::new(4);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let rb = &rb;
                s.spawn(move || {
                    for i in 0..1000 {
                        rb.push((i % 4) as u16, entry(0, t * 1000 + i));
                    }
                });
            }
        });
        let mut total = 0;
        for k in 0..4 {
            total += rb.drain(k).len();
        }
        assert_eq!(total, 8000);
        assert_eq!(rb.dirty_count(), 4);
    }
}
