//! ParIS and ParIS+: the paper's parallel on-disk data series indices.
//!
//! Both engines run the four-stage pipeline of Fig. 2:
//!
//! 1. a **Coordinator** thread reads raw series from disk into main-memory
//!    blocks;
//! 2. **IndexBulkLoading** workers summarize each series to its iSAX word,
//!    append it to the receiving buffer (RecBuf) of its root subtree, and
//!    record it in the SAX array;
//! 3. when a *generation* (the memory budget) has been read,
//!    **IndexConstruction** work drains each RecBuf into its subtree and
//!    materializes leaves to the leaf store;
//! 4. query answering: an approximate descent seeds the best-so-far, then
//!    workers prune over the SAX array with lower-bound distances and
//!    compute real distances for the surviving candidates in parallel.
//!
//! **ParIS** stops the Coordinator while stage 3 runs. **ParIS+** is the
//! same pipeline re-plumbed for full overlap: the bulk-loading workers
//! themselves grow the subtrees at generation boundaries while the
//! Coordinator already reads the next generation, and dedicated flusher
//! threads materialize leaves concurrently — "completely masking out CPU
//! cost" (§I). The visible difference is exactly what Fig. 4 plots, and
//! [`BuildReport`] captures it.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod build;
pub mod config;
pub mod query;
pub mod recbuf;
pub mod report;

pub use build::{build_in_memory, build_on_disk, ParisIndex};
pub use config::{Overlap, ParisConfig};
pub use dsidx_query::{BatchStats, QueryStats};
pub use query::{
    approx_knn, approx_knn_dtw, exact_knn, exact_knn_batch, exact_knn_batch_shared, exact_nn,
};
pub use report::BuildReport;
