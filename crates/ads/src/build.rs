//! Serial buffered index construction.

use dsidx_isax::Word;
use dsidx_storage::{DatasetFile, StorageError};
use dsidx_tree::{Index, LeafEntry, SaxArray, TreeConfig};
use std::time::{Duration, Instant};

/// A built ADS+-style index: the tree plus the SAX array.
#[derive(Debug)]
pub struct AdsIndex {
    /// The iSAX tree.
    pub index: Index,
    /// Position-ordered iSAX words (scanned by SIMS at query time).
    pub sax: SaxArray,
}

/// Wall-clock breakdown of a serial build (Fig. 4's ADS+ bar).
#[derive(Debug, Clone, Copy, Default)]
pub struct AdsBuildReport {
    /// Time spent reading raw data.
    pub read: Duration,
    /// Time spent summarizing and growing the tree.
    pub cpu: Duration,
    /// Total wall time.
    pub total: Duration,
}

/// Builds serially from an in-memory dataset.
///
/// # Panics
/// Panics if the dataset's series length differs from the configuration's.
#[must_use]
pub fn build_from_dataset(
    data: &dsidx_series::Dataset,
    config: &TreeConfig,
) -> (AdsIndex, AdsBuildReport) {
    assert_eq!(
        data.series_len(),
        config.series_len(),
        "series length mismatch"
    );
    let t0 = Instant::now();
    let quantizer = config.quantizer();
    let mut paa = vec![0.0f32; config.segments()];
    let mut words: Vec<Word> = Vec::with_capacity(data.len());
    for series in data.iter() {
        words.push(quantizer.word_into(series, &mut paa));
    }
    let index = bulk_build(&words, config);
    let report = AdsBuildReport {
        read: Duration::ZERO,
        cpu: t0.elapsed(),
        total: t0.elapsed(),
    };
    (
        AdsIndex {
            index,
            sax: SaxArray::new(words),
        },
        report,
    )
}

/// Builds serially from an on-disk dataset file, reading sequential blocks
/// of `block_series` series (reads charged to the file's device).
///
/// # Errors
/// Propagates I/O failures.
///
/// # Panics
/// Panics on series-length mismatch or `block_series == 0`.
pub fn build_from_file(
    file: &DatasetFile,
    config: &TreeConfig,
    block_series: usize,
) -> Result<(AdsIndex, AdsBuildReport), StorageError> {
    assert_eq!(
        file.series_len(),
        config.series_len(),
        "series length mismatch"
    );
    assert!(block_series > 0, "block size must be non-zero");
    let t0 = Instant::now();
    let mut read = Duration::ZERO;
    let mut cpu = Duration::ZERO;
    let quantizer = config.quantizer();
    let series_len = config.series_len();
    let mut paa = vec![0.0f32; config.segments()];
    let mut words: Vec<Word> = Vec::with_capacity(file.count());
    let mut block = Vec::new();
    let mut start = 0;
    while start < file.count() {
        let count = block_series.min(file.count() - start);
        let tr = Instant::now();
        file.read_block(start, count, &mut block)?;
        read += tr.elapsed();
        let tc = Instant::now();
        for series in block.chunks_exact(series_len) {
            words.push(quantizer.word_into(series, &mut paa));
        }
        cpu += tc.elapsed();
        start += count;
    }
    let tc = Instant::now();
    let index = bulk_build(&words, config);
    cpu += tc.elapsed();
    let report = AdsBuildReport {
        read,
        cpu,
        total: t0.elapsed(),
    };
    Ok((
        AdsIndex {
            index,
            sax: SaxArray::new(words),
        },
        report,
    ))
}

/// ADS+-style buffered bulk load: group entries per root subtree first,
/// then build each subtree in one pass (better locality than interleaved
/// inserts — this is what the receiving-buffer design generalizes).
fn bulk_build(words: &[Word], config: &TreeConfig) -> Index {
    let mut buffers: Vec<Vec<LeafEntry>> = Vec::new();
    buffers.resize_with(config.root_count(), Vec::new);
    for (pos, word) in words.iter().enumerate() {
        buffers[word.root_key() as usize].push(LeafEntry::new(*word, pos as u32));
    }
    let mut index = Index::new(config.clone());
    for buffer in buffers {
        for entry in buffer {
            index.insert(entry);
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_series::gen::DatasetKind;
    use dsidx_storage::{write_dataset, Device};
    use dsidx_tree::stats::{index_stats, validate};
    use std::sync::Arc;

    fn config() -> TreeConfig {
        TreeConfig::new(64, 8, 16).unwrap()
    }

    #[test]
    fn build_indexes_every_series() {
        let data = DatasetKind::Synthetic.generate(400, 64, 5);
        let (ads, report) = build_from_dataset(&data, &config());
        assert_eq!(ads.index.len(), 400);
        assert_eq!(ads.sax.len(), 400);
        validate(&ads.index);
        assert!(report.total >= report.cpu);
        // SAX array is position-aligned.
        let q = config();
        for (pos, series) in data.iter().enumerate() {
            assert_eq!(ads.sax.word(pos), &q.quantizer().word(series));
        }
    }

    #[test]
    fn file_build_matches_memory_build() {
        let dir = std::env::temp_dir().join(format!("dsidx-ads-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("build.dsidx");
        let data = DatasetKind::Sald.generate(300, 64, 9);
        write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let file = DatasetFile::open(&path, Arc::new(Device::unthrottled())).unwrap();
        let (mem, _) = build_from_dataset(&data, &config());
        let (disk, report) = build_from_file(&file, &config(), 77).unwrap();
        assert_eq!(mem.index.len(), disk.index.len());
        assert_eq!(mem.sax.words(), disk.sax.words());
        assert_eq!(
            index_stats(&mem.index).leaf_count,
            index_stats(&disk.index).leaf_count
        );
        assert!(report.read > Duration::ZERO || report.total >= report.cpu);
        validate(&disk.index);
    }

    #[test]
    fn empty_dataset_builds_empty_index() {
        let data = dsidx_series::Dataset::new(64).unwrap();
        let (ads, _) = build_from_dataset(&data, &config());
        assert!(ads.index.is_empty());
        assert!(ads.sax.is_empty());
    }

    #[test]
    #[should_panic(expected = "series length mismatch")]
    fn wrong_series_length_panics() {
        let data = DatasetKind::Synthetic.generate(5, 32, 1);
        let _ = build_from_dataset(&data, &config());
    }
}
