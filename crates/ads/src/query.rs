//! SIMS-style serial exact query answering.

use crate::build::AdsIndex;
use dsidx_isax::MindistTable;
use dsidx_series::distance::{euclidean_sq, euclidean_sq_bounded};
use dsidx_series::Match;
use dsidx_storage::{RawSource, StorageError};

/// Counters from one exact query (pruning-effectiveness reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdsQueryStats {
    /// Lower bounds evaluated over the SAX array.
    pub lb_computed: u64,
    /// Candidates whose lower bound beat the BSF.
    pub candidates: u64,
    /// Real distances fully evaluated (not early-abandoned).
    pub real_computed: u64,
}

/// Exact 1-NN via the serial index path: approximate descent for an
/// initial best-so-far, then a serial SAX-array scan with lower-bound
/// pruning, reading raw values for survivors.
///
/// Returns `None` for an empty index.
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// Panics if the query length differs from the configured series length.
pub fn exact_nn(
    ads: &AdsIndex,
    source: &impl RawSource,
    query: &[f32],
) -> Result<Option<(Match, AdsQueryStats)>, StorageError> {
    let config = ads.index.config();
    assert_eq!(query.len(), config.series_len(), "query length mismatch");
    if ads.index.is_empty() {
        return Ok(None);
    }
    let quantizer = config.quantizer();
    let mut paa = vec![0.0f32; config.segments()];
    quantizer.paa_into(query, &mut paa);
    let query_word = quantizer.word_from_paa(&paa);
    let mut stats = AdsQueryStats::default();
    let mut scratch = vec![0.0f32; config.series_len()];
    let memory = source.as_memory();

    // Step 1: approximate answer from the closest leaf.
    let leaf = ads
        .index
        .non_empty_leaf_for(&query_word)
        .or_else(|| ads.index.any_leaf())
        .expect("non-empty index has a non-empty leaf");
    let mut best = Match::new(u32::MAX, f32::INFINITY);
    for e in leaf.entries().expect("serial leaves are resident") {
        let d = if let Some(ds) = memory {
            euclidean_sq(query, ds.get(e.pos as usize))
        } else {
            source.read_into(e.pos as usize, &mut scratch)?;
            euclidean_sq(query, &scratch)
        };
        stats.real_computed += 1;
        if d < best.dist_sq || (d == best.dist_sq && e.pos < best.pos) {
            best = Match::new(e.pos, d);
        }
    }

    // Step 2: SIMS — serial scan of the SAX array with lower-bound pruning.
    let table = MindistTable::new_point(&paa, quantizer.segment_lens());
    for (pos, word) in ads.sax.words().iter().enumerate() {
        stats.lb_computed += 1;
        let lb = table.lookup(word);
        if lb >= best.dist_sq {
            continue;
        }
        stats.candidates += 1;
        let d = if let Some(ds) = memory {
            euclidean_sq_bounded(query, ds.get(pos), best.dist_sq)
        } else {
            source.read_into(pos, &mut scratch)?;
            euclidean_sq_bounded(query, &scratch, best.dist_sq)
        };
        if let Some(d) = d {
            stats.real_computed += 1;
            if d < best.dist_sq || (d == best.dist_sq && (pos as u32) < best.pos) {
                best = Match::new(pos as u32, d);
            }
        }
    }
    Ok(Some((best, stats)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_from_dataset, build_from_file};
    use dsidx_series::gen::DatasetKind;
    use dsidx_storage::{write_dataset, DatasetFile, Device};
    use dsidx_tree::TreeConfig;
    use dsidx_ucr::brute_force;
    use std::sync::Arc;

    fn config() -> TreeConfig {
        TreeConfig::new(64, 8, 16).unwrap()
    }

    #[test]
    fn exact_on_all_dataset_kinds() {
        for kind in DatasetKind::ALL {
            let data = kind.generate(500, 64, 23);
            let (ads, _) = build_from_dataset(&data, &config());
            let queries = kind.queries(10, 64, 23);
            for q in queries.iter() {
                let (got, stats) = exact_nn(&ads, &data, q).unwrap().unwrap();
                let want = brute_force(&data, q).unwrap();
                assert_eq!(got.pos, want.pos, "{}", kind.name());
                assert!((got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4);
                assert!(stats.lb_computed == 500);
                assert!(stats.candidates <= 500);
            }
        }
    }

    #[test]
    fn pruning_actually_happens_on_clusterable_data() {
        let data = dsidx_series::gen::sines(800, 64, 3);
        let (ads, _) = build_from_dataset(&data, &config());
        let queries = dsidx_series::gen::sines(5, 64, 999);
        let mut pruned_everything = true;
        for q in queries.iter() {
            let (_, stats) = exact_nn(&ads, &data, q).unwrap().unwrap();
            if stats.candidates > 400 {
                pruned_everything = false;
            }
        }
        assert!(pruned_everything, "lower bounds should prune most sines candidates");
    }

    #[test]
    fn on_disk_query_matches_in_memory() {
        let dir = std::env::temp_dir().join(format!("dsidx-adsq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.dsidx");
        let data = DatasetKind::Seismic.generate(300, 64, 8);
        write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let file = DatasetFile::open(&path, Arc::new(Device::unthrottled())).unwrap();
        let (ads, _) = build_from_file(&file, &config(), 64).unwrap();
        let queries = DatasetKind::Seismic.queries(5, 64, 8);
        for q in queries.iter() {
            let (mem, _) = exact_nn(&ads, &data, q).unwrap().unwrap();
            let (disk, _) = exact_nn(&ads, &file, q).unwrap().unwrap();
            assert_eq!(mem.pos, disk.pos);
            assert!((mem.dist_sq - disk.dist_sq).abs() <= mem.dist_sq * 1e-4 + 1e-4);
        }
    }

    #[test]
    fn empty_index_returns_none() {
        let data = dsidx_series::Dataset::new(64).unwrap();
        let (ads, _) = build_from_dataset(&data, &config());
        assert!(exact_nn(&ads, &data, &vec![0.0; 64]).unwrap().is_none());
    }

    #[test]
    fn query_for_indexed_series_returns_it() {
        let data = DatasetKind::Synthetic.generate(200, 64, 4);
        let (ads, _) = build_from_dataset(&data, &config());
        for pos in [0usize, 99, 199] {
            let (m, _) = exact_nn(&ads, &data, data.get(pos)).unwrap().unwrap();
            assert_eq!(m.pos as usize, pos);
            assert_eq!(m.dist_sq, 0.0);
        }
    }
}
