//! SIMS-style serial exact query answering.
//!
//! All heavy lifting comes from the shared kernel (`dsidx-query`): query
//! preparation, approximate-descent seeding, and the interleaved
//! lower-bound/verify scan. ADS+ contributes only the scheduling — one
//! thread, position order.

use crate::build::AdsIndex;
use dsidx_obs::phase::{Phase, PhaseClock};
use dsidx_query::{
    approx_leaf, batch_scan_sax_serial, batch_seed_positions, finish_knn, scan_sax_serial,
    seed_from_entries, seed_from_entries_dtw, BatchStats, PreparedQuery, Pruner, QueryBatch,
    QueryStats, SeriesFetcher, ShardView, SharedTopK,
};
use dsidx_series::Match;
use dsidx_storage::{RawSource, StorageError};
use dsidx_sync::AtomicBest;

/// The SIMS schedule behind [`exact_nn`]: approximate descent for the
/// initial threshold, then the serial SAX-array scan. Returns `None` for
/// an empty index. (k-NN goes through the batch path — [`exact_knn`] is a
/// batch of one.)
fn run_exact<P: Pruner>(
    ads: &AdsIndex,
    source: &impl RawSource,
    query: &[f32],
    pruner: &P,
) -> Result<Option<QueryStats>, StorageError> {
    let config = ads.index.config();
    assert_eq!(query.len(), config.series_len(), "query length mismatch");
    if ads.index.is_empty() {
        return Ok(None);
    }
    let mut clock = PhaseClock::start();
    let prep = PreparedQuery::new(config.quantizer(), query);
    let mut fetcher = SeriesFetcher::new(source);
    let mut stats = QueryStats::default();
    stats.phase.record(Phase::Prepare, clock.lap());

    // Step 1: approximate answer from the closest leaf.
    let leaf = approx_leaf(&ads.index, &prep.word).expect("non-empty index has a non-empty leaf");
    let entries = leaf.entries().expect("serial leaves are resident");
    stats.real_computed += seed_from_entries(entries, &mut fetcher, query, pruner)
        .map_err(|e| e.in_phase(Phase::Seed.name()))?;
    stats.phase.record(Phase::Seed, clock.lap());

    // Step 2: SIMS — serial scan of the SAX array with lower-bound pruning.
    scan_sax_serial(
        ads.sax.words(),
        &prep.table,
        &mut fetcher,
        query,
        pruner,
        &mut stats,
    )
    .map_err(|e| e.in_phase(Phase::SaxScan.name()))?;
    stats.phase.record(Phase::SaxScan, clock.lap());
    Ok(Some(stats))
}

/// Exact 1-NN via the serial index path: approximate descent for an
/// initial best-so-far, then a serial SAX-array scan with lower-bound
/// pruning, reading raw values for survivors.
///
/// Returns `None` for an empty index.
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// Panics if the query length differs from the configured series length.
pub fn exact_nn(
    ads: &AdsIndex,
    source: &impl RawSource,
    query: &[f32],
) -> Result<Option<(Match, QueryStats)>, StorageError> {
    let best = AtomicBest::new();
    match run_exact(ads, source, query, &best)? {
        None => Ok(None),
        Some(stats) => {
            let (dist_sq, pos) = best.get();
            Ok(Some((Match::new(pos, dist_sq), stats)))
        }
    }
}

/// Exact k-NN via the same serial index path, pruning against the k-th
/// best distance instead of the single best — the batch-of-one special
/// case of [`exact_knn_batch`].
///
/// Returns the up-to-`k` nearest series sorted ascending by
/// `(distance, position)` — fewer than `k` when the collection is smaller,
/// empty for an empty index.
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// Panics if the query length differs from the configured series length or
/// `k == 0`.
pub fn exact_knn(
    ads: &AdsIndex,
    source: &impl RawSource,
    query: &[f32],
    k: usize,
) -> Result<(Vec<Match>, QueryStats), StorageError> {
    let (mut matches, stats) = exact_knn_batch(ads, source, &[query], k)?;
    Ok((matches.pop().expect("batch of one"), stats.into_single()))
}

/// Exact k-NN for a *batch* of queries in one serial pass: every query is
/// seeded from the union of the batch's approximate leaves (each series
/// fetched once, checked against all B queries), then a single SAX-array
/// scan lower-bounds each word against every query and fetches a surviving
/// position at most once.
///
/// Answers are element-wise identical to calling [`exact_knn`] per query;
/// the data is walked once instead of B times. The serial engine issues no
/// pool broadcasts, so [`BatchStats::broadcasts`] is 0.
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// Panics if any query length differs from the configured series length or
/// `k == 0`.
pub fn exact_knn_batch(
    ads: &AdsIndex,
    source: &impl RawSource,
    queries: &[&[f32]],
    k: usize,
) -> Result<(Vec<Vec<Match>>, BatchStats), StorageError> {
    exact_knn_batch_shared(ads, source, queries, k, None)
}

/// [`exact_knn_batch`] with an optional cross-shard pruner view: when
/// `shard` is `Some`, every kernel loop feeds the shared per-query
/// collectors (recording positions rebased to global), so other shards'
/// finds tighten this scan's thresholds mid-flight. The returned matches
/// then reflect the *global* gather so far; the scatter-gather coordinator
/// reads the authoritative answer from the
/// [`SharedPruners`](dsidx_query::SharedPruners) once every shard joined,
/// and consumes this return value for its stats only.
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// As [`exact_knn_batch`].
pub fn exact_knn_batch_shared(
    ads: &AdsIndex,
    source: &impl RawSource,
    queries: &[&[f32]],
    k: usize,
    shard: Option<ShardView<'_>>,
) -> Result<(Vec<Vec<Match>>, BatchStats), StorageError> {
    let config = ads.index.config();
    for q in queries {
        assert_eq!(q.len(), config.series_len(), "query length mismatch");
    }
    let mut clock = PhaseClock::start();
    let batch = QueryBatch::for_shard(config.quantizer(), queries, k, shard);
    let prepare_nanos = clock.lap();
    if ads.index.is_empty() || batch.is_empty() {
        return Ok(batch.finish(0, QueryStats::default()));
    }
    batch.phases().record(Phase::Prepare, prepare_nanos);
    let mut fetcher = SeriesFetcher::new(source);

    // Step 1: approximate answers — the union of every query's own leaf,
    // deduplicated, cross-seeded into every pruner.
    let mut positions: Vec<u32> = Vec::new();
    for slot in batch.slots() {
        let leaf =
            approx_leaf(&ads.index, &slot.prep.word).expect("non-empty index has a non-empty leaf");
        positions.extend(
            leaf.entries()
                .expect("serial leaves are resident")
                .iter()
                .map(|e| e.pos),
        );
    }
    positions.sort_unstable();
    positions.dedup();
    batch_seed_positions(&positions, &mut fetcher, &batch)
        .map_err(|e| e.in_phase(Phase::Seed.name()))?;
    clock.lap_into(batch.phases(), Phase::Seed);

    // Step 2: SIMS — one serial scan of the SAX array for the whole batch.
    batch_scan_sax_serial(ads.sax.words(), &mut fetcher, &batch)
        .map_err(|e| e.in_phase(Phase::SaxScan.name()))?;
    clock.lap_into(batch.phases(), Phase::SaxScan);
    Ok(batch.finish(0, QueryStats::default()))
}

/// *Approximate* k-NN via the serial index: descend to the query's own
/// leaf (the paper's approximate answer) and return the k nearest of its
/// entries by real Euclidean distance — no SAX-array scan. Every reported
/// distance is a real distance to a real series, so it is never below the
/// exact answer at the same rank; returns fewer than `k` matches when the
/// leaf holds fewer entries, empty for an empty index.
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// Panics if the query length differs from the configured series length or
/// `k == 0`.
pub fn approx_knn(
    ads: &AdsIndex,
    source: &impl RawSource,
    query: &[f32],
    k: usize,
) -> Result<(Vec<Match>, QueryStats), StorageError> {
    approx_leaf_visit(ads, source, query, k, |entries, fetcher, topk| {
        seed_from_entries(entries, fetcher, query, topk)
    })
}

/// *Approximate* k-NN under banded DTW via the serial index: the same
/// best-leaf visit as [`approx_knn`], paying full banded-DTW distances for
/// the leaf's entries.
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// Panics if the query length differs from the configured series length or
/// `k == 0`.
pub fn approx_knn_dtw(
    ads: &AdsIndex,
    source: &impl RawSource,
    query: &[f32],
    band: usize,
    k: usize,
) -> Result<(Vec<Match>, QueryStats), StorageError> {
    approx_leaf_visit(ads, source, query, k, |entries, fetcher, topk| {
        seed_from_entries_dtw(entries, fetcher, query, band, topk)
    })
}

/// The shared best-leaf visit behind both approximate measures: locate the
/// query's leaf, let `pay` charge one real distance per entry into the
/// collector.
fn approx_leaf_visit<S: RawSource>(
    ads: &AdsIndex,
    source: &S,
    query: &[f32],
    k: usize,
    pay: impl FnOnce(
        &[dsidx_tree::LeafEntry],
        &mut SeriesFetcher<'_, S>,
        &SharedTopK,
    ) -> Result<u64, StorageError>,
) -> Result<(Vec<Match>, QueryStats), StorageError> {
    let config = ads.index.config();
    assert_eq!(query.len(), config.series_len(), "query length mismatch");
    let topk = SharedTopK::new(k);
    if ads.index.is_empty() {
        return Ok(finish_knn(&topk, None));
    }
    let mut clock = PhaseClock::start();
    let word = config.quantizer().word(query);
    let leaf = approx_leaf(&ads.index, &word).expect("non-empty index has a non-empty leaf");
    let entries = leaf.entries().expect("serial leaves are resident");
    let mut fetcher = SeriesFetcher::new(source);
    let mut stats = QueryStats::default();
    stats.phase.record(Phase::Prepare, clock.lap());
    stats.real_computed = pay(entries, &mut fetcher, &topk)?;
    stats.phase.record(Phase::Seed, clock.lap());
    Ok(finish_knn(&topk, Some(stats)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_from_dataset, build_from_file};
    use dsidx_series::gen::DatasetKind;
    use dsidx_storage::{write_dataset, DatasetFile, Device};
    use dsidx_tree::TreeConfig;
    use dsidx_ucr::brute_force;
    use std::sync::Arc;

    fn config() -> TreeConfig {
        TreeConfig::new(64, 8, 16).unwrap()
    }

    #[test]
    fn exact_on_all_dataset_kinds() {
        for kind in DatasetKind::ALL {
            let data = kind.generate(500, 64, 23);
            let (ads, _) = build_from_dataset(&data, &config());
            let queries = kind.queries(10, 64, 23);
            for q in queries.iter() {
                let (got, stats) = exact_nn(&ads, &data, q).unwrap().unwrap();
                let want = brute_force(&data, q).unwrap();
                assert_eq!(got.pos, want.pos, "{}", kind.name());
                assert!((got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4);
                assert!(stats.lb_computed == 500);
                assert!(stats.candidates <= 500);
            }
        }
    }

    #[test]
    fn pruning_actually_happens_on_clusterable_data() {
        let data = dsidx_series::gen::sines(800, 64, 3);
        let (ads, _) = build_from_dataset(&data, &config());
        let queries = dsidx_series::gen::sines(5, 64, 999);
        let mut pruned_everything = true;
        for q in queries.iter() {
            let (_, stats) = exact_nn(&ads, &data, q).unwrap().unwrap();
            if stats.candidates > 400 {
                pruned_everything = false;
            }
        }
        assert!(
            pruned_everything,
            "lower bounds should prune most sines candidates"
        );
    }

    #[test]
    fn knn_equals_brute_force_topk() {
        let data = DatasetKind::Synthetic.generate(400, 64, 13);
        let (ads, _) = build_from_dataset(&data, &config());
        let queries = DatasetKind::Synthetic.queries(4, 64, 13);
        for q in queries.iter() {
            for k in [1usize, 5, 25, 400, 500] {
                let (got, stats) = exact_knn(&ads, &data, q, k).unwrap();
                let want = dsidx_ucr::brute_force_knn(&data, q, k);
                assert_eq!(got.len(), want.len(), "k={k}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.pos, w.pos, "k={k}");
                    assert!((g.dist_sq - w.dist_sq).abs() <= w.dist_sq * 1e-4 + 1e-4);
                }
                assert_eq!(stats.lb_computed, 400);
            }
        }
    }

    #[test]
    fn knn_at_k1_matches_exact_nn() {
        let data = DatasetKind::Sald.generate(300, 64, 7);
        let (ads, _) = build_from_dataset(&data, &config());
        let queries = DatasetKind::Sald.queries(5, 64, 7);
        for q in queries.iter() {
            let (nn, _) = exact_nn(&ads, &data, q).unwrap().unwrap();
            let (knn, _) = exact_knn(&ads, &data, q, 1).unwrap();
            assert_eq!(knn.len(), 1);
            assert_eq!(knn[0].pos, nn.pos);
        }
    }

    #[test]
    fn knn_batch_equals_sequential_knn() {
        let data = DatasetKind::Synthetic.generate(500, 64, 19);
        let (ads, _) = build_from_dataset(&data, &config());
        let qs = DatasetKind::Synthetic.queries(8, 64, 19);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        for k in [1usize, 6, 30] {
            let (batched, stats) = exact_knn_batch(&ads, &data, &qrefs, k).unwrap();
            assert_eq!(stats.broadcasts, 0, "serial engine broadcasts nothing");
            assert_eq!(stats.per_query.len(), 8);
            for (qi, q) in qs.iter().enumerate() {
                let (single, _) = exact_knn(&ads, &data, q, k).unwrap();
                assert_eq!(
                    batched[qi].iter().map(|m| m.pos).collect::<Vec<_>>(),
                    single.iter().map(|m| m.pos).collect::<Vec<_>>(),
                    "q{qi} k={k}"
                );
                assert_eq!(stats.per_query[qi].lb_computed, 500);
            }
            // The scan fetched each position at most once for the batch.
            assert!(stats.series_fetched <= 500 + 8 * 16);
            assert!(stats.series_requests >= stats.series_fetched);
        }
    }

    #[test]
    fn knn_batch_of_zero_queries_is_empty() {
        let data = DatasetKind::Synthetic.generate(50, 64, 3);
        let (ads, _) = build_from_dataset(&data, &config());
        let (matches, stats) = exact_knn_batch(&ads, &data, &[], 5).unwrap();
        assert!(matches.is_empty());
        assert_eq!(stats.broadcasts, 0);
        assert!(stats.per_query.is_empty());
    }

    #[test]
    fn approx_knn_never_beats_exact() {
        let data = DatasetKind::Synthetic.generate(500, 64, 41);
        let (ads, _) = build_from_dataset(&data, &config());
        let queries = DatasetKind::Synthetic.queries(4, 64, 41);
        for q in queries.iter() {
            for k in [1usize, 5, 12] {
                let exact = dsidx_ucr::brute_force_knn(&data, q, k);
                let (approx, stats) = approx_knn(&ads, &data, q, k).unwrap();
                assert!(!approx.is_empty() && approx.len() <= k);
                for (a, e) in approx.iter().zip(&exact) {
                    assert!(a.dist_sq >= e.dist_sq - e.dist_sq * 1e-6, "k={k}");
                }
                // No scan: the SAX-array counter stays zero.
                assert_eq!(stats.lb_computed, 0);
                assert!(stats.real_computed >= approx.len() as u64);
                let exact_dtw = dsidx_ucr::brute_force_dtw_knn(&data, q, 4, k);
                let (approx_dtw, _) = approx_knn_dtw(&ads, &data, q, 4, k).unwrap();
                for (a, e) in approx_dtw.iter().zip(&exact_dtw) {
                    assert!(a.dist_sq >= e.dist_sq - e.dist_sq * 1e-6, "dtw k={k}");
                }
            }
        }
    }

    #[test]
    fn approx_knn_finds_indexed_series_and_handles_empty() {
        let data = DatasetKind::Sald.generate(200, 64, 13);
        let (ads, _) = build_from_dataset(&data, &config());
        for pos in [0usize, 77, 199] {
            let (m, _) = approx_knn(&ads, &data, data.get(pos), 1).unwrap();
            assert_eq!(m[0].pos as usize, pos);
            assert_eq!(m[0].dist_sq, 0.0);
        }
        let empty = dsidx_series::Dataset::new(64).unwrap();
        let (ads, _) = build_from_dataset(&empty, &config());
        let (m, stats) = approx_knn(&ads, &empty, &vec![0.0; 64], 3).unwrap();
        assert!(m.is_empty());
        assert_eq!(stats, QueryStats::default());
    }

    #[test]
    fn knn_on_empty_index_is_empty() {
        let data = dsidx_series::Dataset::new(64).unwrap();
        let (ads, _) = build_from_dataset(&data, &config());
        let (got, stats) = exact_knn(&ads, &data, &vec![0.0; 64], 3).unwrap();
        assert!(got.is_empty());
        assert_eq!(stats, QueryStats::default());
    }

    #[test]
    fn on_disk_query_matches_in_memory() {
        let dir = std::env::temp_dir().join(format!("dsidx-adsq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.dsidx");
        let data = DatasetKind::Seismic.generate(300, 64, 8);
        write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let file = DatasetFile::open(&path, Arc::new(Device::unthrottled())).unwrap();
        let (ads, _) = build_from_file(&file, &config(), 64).unwrap();
        let queries = DatasetKind::Seismic.queries(5, 64, 8);
        for q in queries.iter() {
            let (mem, _) = exact_nn(&ads, &data, q).unwrap().unwrap();
            let (disk, _) = exact_nn(&ads, &file, q).unwrap().unwrap();
            assert_eq!(mem.pos, disk.pos);
            assert!((mem.dist_sq - disk.dist_sq).abs() <= mem.dist_sq * 1e-4 + 1e-4);
        }
    }

    #[test]
    fn empty_index_returns_none() {
        let data = dsidx_series::Dataset::new(64).unwrap();
        let (ads, _) = build_from_dataset(&data, &config());
        assert!(exact_nn(&ads, &data, &vec![0.0; 64]).unwrap().is_none());
    }

    #[test]
    fn query_for_indexed_series_returns_it() {
        let data = DatasetKind::Synthetic.generate(200, 64, 4);
        let (ads, _) = build_from_dataset(&data, &config());
        for pos in [0usize, 99, 199] {
            let (m, _) = exact_nn(&ads, &data, data.get(pos)).unwrap().unwrap();
            assert_eq!(m.pos as usize, pos);
            assert_eq!(m.dist_sq, 0.0);
        }
    }

    #[test]
    fn stats_account_seeding_and_scan_uniformly() {
        // The unified QueryStats semantics: real_computed includes the
        // seeding pass (every leaf entry pays a full distance) plus the
        // non-abandoned scan survivors; tree-only counters stay zero for
        // this scan-based engine.
        let data = DatasetKind::Synthetic.generate(150, 64, 17);
        let (ads, _) = build_from_dataset(&data, &config());
        let q = DatasetKind::Synthetic.queries(1, 64, 17);
        let (_, stats) = exact_nn(&ads, &data, q.get(0)).unwrap().unwrap();
        assert_eq!(stats.lb_computed, 150);
        assert!(stats.real_computed >= 1, "seeding pays at least one real");
        assert_eq!(stats.nodes_pruned, 0);
        assert_eq!(stats.leaves_enqueued, 0);
        assert_eq!(stats.lb_entry_computed, 0);
        assert_eq!(stats.lb_total(), 150);
    }
}
