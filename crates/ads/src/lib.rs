//! The ADS+-style serial baseline.
//!
//! ADS+ is "the current state-of-the-art index" the paper measures ParIS,
//! ParIS+ and MESSI against (§IV). This crate implements its serial
//! behaviour over the shared tree structure: a buffered single-threaded
//! bulk load and SIMS-style exact query answering (approximate descent for
//! an initial best-so-far, then a serial scan of the SAX array with
//! lower-bound pruning and early-abandoned real distances).
//!
//! One deliberate substitution, recorded in DESIGN.md §3: real ADS+ is
//! *adaptive* (leaves are materialized lazily, during queries). We build
//! the full index up front, which upper-bounds ADS+ build time and matches
//! its steady-state query path — the comparisons the paper's figures make
//! (build-time ratios, exact-query latency) keep their direction.

pub mod build;
pub mod query;

pub use build::{build_from_dataset, build_from_file, AdsBuildReport, AdsIndex};
pub use dsidx_query::{BatchStats, QueryStats};
pub use query::{
    approx_knn, approx_knn_dtw, exact_knn, exact_knn_batch, exact_knn_batch_shared, exact_nn,
};
