//! UCR-style scans under Dynamic Time Warping (the paper's §V extension).

use std::sync::Arc;

use dsidx_obs::phase::{Phase, PhaseBreakdown, PhaseClock};
use dsidx_query::{
    finish_knn, AtomicQueryStats, BatchStats, ErrorSlot, QueryStats, SeriesFetcher, ShardView,
    SharedTopK,
};
use dsidx_series::distance::dtw::{dtw_sq_bounded, envelope, lb_keogh_sq_bounded};
use dsidx_series::{Dataset, Match};
use dsidx_storage::{RawSource, StorageError};
use dsidx_sync::{AtomicBest, OffsetTopK, Pruner, WorkQueue};

/// Exact 1-NN under banded DTW by serial scan with the LB_Keogh cascade.
///
/// For each candidate: LB_Keogh against the query envelope first (cheap,
/// early-abandoning); only survivors pay for the banded DTW, itself
/// early-abandoned row-wise against the best-so-far.
///
/// Returns `None` for an empty dataset.
///
/// # Panics
/// Panics if the query length differs from the dataset's series length.
#[must_use]
pub fn scan_dtw(data: &Dataset, query: &[f32], band: usize) -> Option<Match> {
    assert_eq!(query.len(), data.series_len(), "query length mismatch");
    let mut lower = Vec::new();
    let mut upper = Vec::new();
    envelope(query, band, &mut lower, &mut upper);
    let mut best: Option<Match> = None;
    for (pos, series) in data.iter().enumerate() {
        let limit = best.map_or(f32::INFINITY, |b| b.dist_sq);
        if lb_keogh_sq_bounded(series, &lower, &upper, limit).is_none() {
            continue;
        }
        if let Some(d) = dtw_sq_bounded(query, series, band, limit) {
            best = Some(Match::new(pos as u32, d));
        } else if best.is_none() {
            // Degenerate: +inf limit only fails for non-finite costs, which
            // finite inputs never produce — but keep an explicit fallback.
            best = Some(Match::new(
                pos as u32,
                dsidx_series::distance::dtw::dtw_sq(query, series, band),
            ));
        }
    }
    best
}

/// Parallel variant of [`scan_dtw`] with a shared best-so-far.
///
/// Returns `None` for an empty dataset.
///
/// # Panics
/// Panics if the query length differs from the dataset's series length or
/// `threads == 0`.
#[must_use]
pub fn scan_dtw_parallel(
    data: &Dataset,
    query: &[f32],
    band: usize,
    threads: usize,
) -> Option<Match> {
    scan_dtw_parallel_with_stats(data, query, band, threads).map(|(m, _)| m)
}

/// [`scan_dtw_parallel`] plus the unified per-query work counters for the
/// DTW cascade: LB_Keogh bounds computed/pruned, DTWs abandoned, DTWs
/// fully paid.
///
/// Returns `None` for an empty dataset.
///
/// # Panics
/// Panics if the query length differs from the dataset's series length or
/// `threads == 0`.
#[must_use]
pub fn scan_dtw_parallel_with_stats(
    data: &Dataset,
    query: &[f32],
    band: usize,
    threads: usize,
) -> Option<(Match, QueryStats)> {
    assert_eq!(query.len(), data.series_len(), "query length mismatch");
    if data.is_empty() {
        return None;
    }
    let first = dsidx_series::distance::dtw::dtw_sq(query, data.get(0), band);
    let best = AtomicBest::with_initial(first, 0);
    let stats = scan_dtw_parallel_pruner(data, query, band, threads, &best);
    let (dist_sq, pos) = best.get();
    Some((Match::new(pos, dist_sq), stats))
}

/// Exact k-NN under banded DTW by parallel scan: the same LB_Keogh →
/// early-abandoned-DTW cascade as [`scan_dtw_parallel_with_stats`],
/// pruning against the k-th best DTW distance (a [`SharedTopK`]) instead
/// of the single best. The index-free DTW k-NN baseline (and the fallback
/// the facade uses for engines without a DTW index path).
///
/// Returns the up-to-`k` nearest series sorted ascending by
/// `(distance, position)` — fewer than `k` when the collection is smaller,
/// empty for an empty dataset. Deterministic across runs and thread
/// counts.
///
/// # Panics
/// Panics if the query length differs from the dataset's series length,
/// `threads == 0`, or `k == 0`.
#[must_use]
pub fn knn_dtw_parallel_with_stats(
    data: &Dataset,
    query: &[f32],
    band: usize,
    k: usize,
    threads: usize,
) -> (Vec<Match>, QueryStats) {
    assert_eq!(query.len(), data.series_len(), "query length mismatch");
    let topk = SharedTopK::new(k);
    if data.is_empty() {
        return finish_knn(&topk, None);
    }
    let first = dsidx_series::distance::dtw::dtw_sq(query, data.get(0), band);
    topk.insert(first, 0);
    let stats = scan_dtw_parallel_pruner(data, query, band, threads, &topk);
    finish_knn(&topk, Some(stats))
}

/// The shared parallel DTW cascade behind the 1-NN and k-NN scans, generic
/// over [`Pruner`] like the ED kernel loops. The pruner must already hold
/// one seed candidate (position 0's full DTW), which this function charges
/// as the `+1` in `real_computed`.
fn scan_dtw_parallel_pruner<P: Pruner>(
    data: &Dataset,
    query: &[f32],
    band: usize,
    threads: usize,
    best: &P,
) -> QueryStats {
    assert!(threads > 0, "thread count must be non-zero");
    let mut clock = PhaseClock::start();
    let mut lower = Vec::new();
    let mut upper = Vec::new();
    envelope(query, band, &mut lower, &mut upper);
    let prepare_nanos = clock.lap();
    let queue = WorkQueue::new(data.len());
    let shared = AtomicQueryStats::new();
    let pool = dsidx_sync::pool::global(threads);
    pool.broadcast(&|_worker| {
        // Accumulate locally, merge once per worker (see `AtomicQueryStats`).
        let mut local = QueryStats::default();
        while let Some(range) = queue.claim_chunk(64) {
            for pos in range {
                let limit = best.threshold_sq();
                let series = data.get(pos);
                local.lb_keogh_computed += 1;
                if lb_keogh_sq_bounded(series, &lower, &upper, limit).is_none() {
                    local.lb_keogh_pruned += 1;
                    continue;
                }
                if let Some(d) = dtw_sq_bounded(query, series, band, limit) {
                    local.real_computed += 1;
                    best.insert(d, pos as u32);
                } else {
                    local.dtw_abandoned += 1;
                }
            }
        }
        shared.merge(&local);
    });
    let mut stats = shared.snapshot();
    stats.phase.record(Phase::Prepare, prepare_nanos);
    stats.phase.record(Phase::DtwCascade, clock.lap());
    // Position 0 paid one unconditional full DTW for the initial seed.
    stats.real_computed += 1;
    stats
}

/// Exact k-NN under banded DTW for a *batch* of queries by one parallel
/// scan over any [`RawSource`]: each position's series is read once
/// (zero-copy in memory, a device-charged positioned read on disk) and
/// pays the LB_Keogh → early-abandoned-DTW cascade against every query in
/// the batch — one data pass, B threshold checks, a single pool
/// broadcast. The index-free batched-DTW baseline, and the exact-DTW
/// schedule the facade uses for engines without a DTW index path — on
/// disk included.
///
/// Answers are element-wise identical to calling
/// [`knn_dtw_parallel_with_stats`] per query over the same data; the
/// [`BatchStats`] report the single broadcast and the shared reads. A
/// read failing mid-scan surfaces as `Err`: workers record the first
/// failure and stop claiming chunks.
///
/// # Errors
/// Propagates raw-source I/O failures (the in-memory path is infallible).
///
/// # Panics
/// Panics if any query length differs from the source's series length,
/// `threads == 0`, or `k == 0`.
pub fn knn_dtw_batch_parallel_with_stats(
    source: &impl RawSource,
    queries: &[&[f32]],
    band: usize,
    k: usize,
    threads: usize,
) -> Result<(Vec<Vec<Match>>, BatchStats), StorageError> {
    knn_dtw_batch_parallel_with_stats_shared(source, queries, band, k, threads, None)
}

/// [`knn_dtw_batch_parallel_with_stats`] with optional cross-shard pruner
/// sharing: when `shard` is set, every query prunes against (and inserts
/// into) the shared [`SharedPruners`](dsidx_query::SharedPruners)
/// collectors with positions rebased by the shard's global offset, so a
/// tight match found by another shard raises this scan's abandon
/// thresholds mid-flight.
///
/// # Errors
/// Propagates raw-source I/O failures (the in-memory path is infallible).
///
/// # Panics
/// Panics if any query length differs from the source's series length,
/// `threads == 0`, or `k == 0`.
pub fn knn_dtw_batch_parallel_with_stats_shared(
    source: &impl RawSource,
    queries: &[&[f32]],
    band: usize,
    k: usize,
    threads: usize,
    shard: Option<ShardView<'_>>,
) -> Result<(Vec<Vec<Match>>, BatchStats), StorageError> {
    assert!(threads > 0, "thread count must be non-zero");
    for q in queries {
        assert_eq!(q.len(), source.series_len(), "query length mismatch");
    }
    let mut clock = PhaseClock::start();
    struct Slot<'q> {
        query: &'q [f32],
        lower: Vec<f32>,
        upper: Vec<f32>,
        topk: OffsetTopK,
        stats: AtomicQueryStats,
    }
    let slots: Vec<Slot<'_>> = queries
        .iter()
        .enumerate()
        .map(|(qi, &query)| {
            let mut lower = Vec::new();
            let mut upper = Vec::new();
            envelope(query, band, &mut lower, &mut upper);
            let topk = match shard {
                Some(view) => OffsetTopK::shared(Arc::clone(&view.pruners.topks()[qi]), view.base),
                None => OffsetTopK::fresh(k),
            };
            Slot {
                query,
                lower,
                upper,
                topk,
                stats: AtomicQueryStats::new(),
            }
        })
        .collect();
    let prepare_nanos = clock.lap();
    if source.count() == 0 || slots.is_empty() {
        let per_query = vec![QueryStats::default(); slots.len()];
        return Ok((
            vec![Vec::new(); slots.len()],
            BatchStats {
                per_query,
                ..BatchStats::default()
            },
        ));
    }

    let mut phase = PhaseBreakdown::new();
    phase.record(Phase::Prepare, prepare_nanos);

    // Position 0 seeds every query with one unconditional full DTW, like
    // the single-query scan.
    {
        let mut fetcher = SeriesFetcher::new(source);
        let first_series = fetcher
            .fetch(0)
            .map_err(|e| e.in_phase(Phase::Seed.name()))?;
        for slot in &slots {
            let first = dsidx_series::distance::dtw::dtw_sq(slot.query, first_series, band);
            slot.topk.insert(first, 0);
        }
    }
    phase.record(Phase::Seed, clock.lap());

    let queue = WorkQueue::new(source.count());
    let errors = ErrorSlot::for_phase(Phase::DtwCascade);
    let pool = dsidx_sync::pool::global(threads);
    pool.broadcast(&|_worker| {
        // Accumulate locally, merge once per worker (see `AtomicQueryStats`).
        let mut locals = vec![QueryStats::default(); slots.len()];
        let mut fetcher = SeriesFetcher::new(source);
        'claims: while let Some(range) = queue.claim_chunk(64) {
            if errors.is_set() {
                break;
            }
            for pos in range {
                let series = match fetcher.fetch(pos) {
                    Ok(s) => s,
                    Err(e) => {
                        errors.record(e);
                        break 'claims;
                    }
                };
                for (slot, local) in slots.iter().zip(&mut locals) {
                    let limit = slot.topk.threshold_sq();
                    local.lb_keogh_computed += 1;
                    if lb_keogh_sq_bounded(series, &slot.lower, &slot.upper, limit).is_none() {
                        local.lb_keogh_pruned += 1;
                        continue;
                    }
                    if let Some(d) = dtw_sq_bounded(slot.query, series, band, limit) {
                        local.real_computed += 1;
                        slot.topk.insert(d, pos as u32);
                    } else {
                        local.dtw_abandoned += 1;
                    }
                }
            }
        }
        for (slot, local) in slots.iter().zip(&locals) {
            slot.stats.merge(local);
        }
    });
    errors.take()?;
    phase.record(Phase::DtwCascade, clock.lap());

    let mut matches = Vec::with_capacity(slots.len());
    let mut per_query = Vec::with_capacity(slots.len());
    for slot in &slots {
        let (m, mut s) = finish_knn(slot.topk.inner(), Some(slot.stats.snapshot()));
        // Position 0 paid one unconditional full DTW for the seed.
        s.real_computed += 1;
        matches.push(m);
        per_query.push(s);
    }
    // The scan fetches every position once; the seed step fetched
    // position 0 once more (its full-DTW threshold for every query).
    let n = source.count() as u64;
    let fetched = n + 1;
    Ok((
        matches,
        BatchStats {
            broadcasts: 1,
            series_fetched: fetched,
            // Every fetched series is examined (LB_Keogh reads the raw
            // values, the seed pays full DTWs) by every query.
            series_requests: fetched * queries.len() as u64,
            shared: QueryStats {
                phase,
                ..QueryStats::default()
            },
            per_query,
        },
    ))
}

/// Brute-force banded DTW k-NN (test oracle; no lower bounds, no
/// abandons): the `k` smallest DTW distances sorted ascending by
/// `(distance, position)`.
#[must_use]
pub fn brute_force_dtw_knn(data: &Dataset, query: &[f32], band: usize, k: usize) -> Vec<Match> {
    assert_eq!(query.len(), data.series_len(), "query length mismatch");
    let mut all: Vec<Match> = data
        .iter()
        .enumerate()
        .map(|(pos, series)| {
            Match::new(
                pos as u32,
                dsidx_series::distance::dtw::dtw_sq(query, series, band),
            )
        })
        .collect();
    all.sort_unstable_by(|a, b| {
        a.dist_sq
            .partial_cmp(&b.dist_sq)
            .expect("finite distances")
            .then(a.pos.cmp(&b.pos))
    });
    all.truncate(k);
    all
}

/// Brute-force banded DTW scan (test oracle; no lower bounds, no abandons).
#[must_use]
pub fn brute_force_dtw(data: &Dataset, query: &[f32], band: usize) -> Option<Match> {
    assert_eq!(query.len(), data.series_len(), "query length mismatch");
    let mut best: Option<Match> = None;
    for (pos, series) in data.iter().enumerate() {
        let d = dsidx_series::distance::dtw::dtw_sq(query, series, band);
        if best.is_none_or(|b| d < b.dist_sq) {
            best = Some(Match::new(pos as u32, d));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_series::gen::DatasetKind;

    #[test]
    fn scan_matches_brute_force() {
        for kind in DatasetKind::ALL {
            let data = kind.generate(150, 48, 31);
            let queries = kind.queries(5, 48, 31);
            for band in [0usize, 2, 5] {
                for q in queries.iter() {
                    let want = brute_force_dtw(&data, q, band).unwrap();
                    let got = scan_dtw(&data, q, band).unwrap();
                    assert_eq!(got.pos, want.pos, "{} band={band}", kind.name());
                    assert!((got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4);
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let data = DatasetKind::Sald.generate(200, 64, 13);
        let queries = DatasetKind::Sald.queries(4, 64, 13);
        for q in queries.iter() {
            let want = scan_dtw(&data, q, 6).unwrap();
            for threads in [1usize, 3, 8] {
                let got = scan_dtw_parallel(&data, q, 6, threads).unwrap();
                assert_eq!(got.pos, want.pos);
                assert!((got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4);
            }
        }
    }

    #[test]
    fn parallel_stats_account_every_position() {
        let data = DatasetKind::Synthetic.generate(180, 48, 29);
        let queries = DatasetKind::Synthetic.queries(3, 48, 29);
        for q in queries.iter() {
            let (m, stats) = scan_dtw_parallel_with_stats(&data, q, 4, 3).unwrap();
            assert_eq!(m.pos, brute_force_dtw(&data, q, 4).unwrap().pos);
            // Every position pays one LB_Keogh bound and lands in exactly
            // one bucket: pruned, abandoned, or fully paid (minus the
            // unconditional seed DTW at position 0).
            assert_eq!(stats.lb_keogh_computed, 180);
            assert_eq!(
                stats.lb_keogh_pruned + stats.dtw_abandoned + stats.real_computed - 1,
                180
            );
            assert_eq!(stats.lb_total(), stats.lb_keogh_computed);
        }
    }

    #[test]
    fn knn_dtw_equals_brute_force_topk() {
        let data = DatasetKind::Sald.generate(160, 48, 23);
        let queries = DatasetKind::Sald.queries(3, 48, 23);
        for q in queries.iter() {
            for k in [1usize, 5, 20, 200] {
                let want = brute_force_dtw_knn(&data, q, 4, k);
                for threads in [1usize, 3] {
                    let (got, stats) = knn_dtw_parallel_with_stats(&data, q, 4, k, threads);
                    assert_eq!(got.len(), want.len(), "k={k} x{threads}");
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.pos, w.pos, "k={k} x{threads}");
                        assert!((g.dist_sq - w.dist_sq).abs() <= w.dist_sq * 1e-4 + 1e-4);
                    }
                    // The cascade reports through the unified counters.
                    assert_eq!(stats.lb_keogh_computed, 160);
                    assert!(stats.real_computed >= 1);
                }
            }
        }
    }

    #[test]
    fn knn_dtw_at_k1_matches_nn_scan() {
        let data = DatasetKind::Synthetic.generate(120, 48, 41);
        let queries = DatasetKind::Synthetic.queries(3, 48, 41);
        for q in queries.iter() {
            let (nn, _) = scan_dtw_parallel_with_stats(&data, q, 5, 3).unwrap();
            let (knn, _) = knn_dtw_parallel_with_stats(&data, q, 5, 1, 3);
            assert_eq!(knn.len(), 1);
            assert_eq!(knn[0].pos, nn.pos);
        }
    }

    #[test]
    fn knn_dtw_batch_equals_sequential_and_brute_force() {
        let data = DatasetKind::Sald.generate(180, 48, 19);
        let qs = DatasetKind::Sald.queries(5, 48, 19);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        for band in [0usize, 4] {
            for k in [1usize, 6] {
                for threads in [1usize, 3] {
                    let (batched, stats) =
                        knn_dtw_batch_parallel_with_stats(&data, &qrefs, band, k, threads).unwrap();
                    assert_eq!(stats.broadcasts, 1);
                    assert!(stats.broadcasts_per_query() < 1.0);
                    // Every position once, plus the seed's re-read of
                    // position 0.
                    assert_eq!(stats.series_fetched, 181);
                    for (qi, q) in qs.iter().enumerate() {
                        let want = brute_force_dtw_knn(&data, q, band, k);
                        let (single, _) = knn_dtw_parallel_with_stats(&data, q, band, k, threads);
                        assert_eq!(
                            batched[qi].iter().map(|m| m.pos).collect::<Vec<_>>(),
                            want.iter().map(|m| m.pos).collect::<Vec<_>>(),
                            "q{qi} band={band} k={k} x{threads}"
                        );
                        assert_eq!(batched[qi], single, "q{qi} band={band} k={k} x{threads}");
                        // Every position pays one LB_Keogh per query.
                        assert_eq!(stats.per_query[qi].lb_keogh_computed, 180);
                    }
                }
            }
        }
    }

    #[test]
    fn knn_dtw_batch_on_empty_inputs() {
        let data = Dataset::new(8).unwrap();
        let q = [0.0f32; 8];
        let (m, stats) = knn_dtw_batch_parallel_with_stats(&data, &[&q], 2, 3, 2).unwrap();
        assert_eq!(m, vec![Vec::new()]);
        assert_eq!(stats.broadcasts, 0);
        let data = DatasetKind::Synthetic.generate(20, 8, 1);
        let (m, stats) = knn_dtw_batch_parallel_with_stats(&data, &[], 2, 3, 2).unwrap();
        assert!(m.is_empty());
        assert!(stats.per_query.is_empty());
    }

    #[test]
    fn knn_dtw_batch_over_flaky_source_errors_instead_of_panicking() {
        let data = DatasetKind::Sald.generate(120, 48, 5);
        let qs = DatasetKind::Sald.queries(2, 48, 5);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        // The scan reads every position, so any budget below the count
        // must fail — in the seed fetch or inside the broadcast.
        for budget in [0u64, 1, 40, 100] {
            let flaky = dsidx_storage::FlakySource::new(data.clone(), budget);
            assert!(
                knn_dtw_batch_parallel_with_stats(&flaky, &qrefs, 3, 4, 3).is_err(),
                "budget {budget} cannot cover a 120-series scan"
            );
        }
        // An unconstrained budget answers exactly like the dataset.
        let flaky = dsidx_storage::FlakySource::new(data.clone(), u64::MAX);
        let (via_flaky, _) = knn_dtw_batch_parallel_with_stats(&flaky, &qrefs, 3, 4, 3).unwrap();
        let (via_data, _) = knn_dtw_batch_parallel_with_stats(&data, &qrefs, 3, 4, 3).unwrap();
        assert_eq!(via_flaky, via_data);
    }

    #[test]
    fn knn_dtw_on_empty_dataset_is_empty() {
        let data = Dataset::new(8).unwrap();
        let (got, stats) = knn_dtw_parallel_with_stats(&data, &[0.0; 8], 2, 3, 4);
        assert!(got.is_empty());
        assert_eq!(stats, QueryStats::default());
    }

    #[test]
    fn dtw_finds_warped_copy_that_ed_misses() {
        // Plant a time-shifted copy of the query; DTW should match it with
        // near-zero distance.
        let base = DatasetKind::Synthetic.generate(50, 64, 3);
        let mut flat = Vec::new();
        let shifted: Vec<f32> = {
            let orig = base.get(7);
            let mut s = orig.to_vec();
            s.rotate_right(2);
            s
        };
        for (i, series) in base.iter().enumerate() {
            if i == 20 {
                flat.extend_from_slice(&shifted);
            } else {
                flat.extend_from_slice(series);
            }
        }
        let data = Dataset::from_flat(flat, 64).unwrap();
        let q = base.get(7);
        let dtw_match = scan_dtw(&data, q, 4).unwrap();
        // Positions 7 (original) and 20 (shifted) are both near-perfect under
        // DTW; either is acceptable, but the distance must be tiny.
        assert!(
            dtw_match.pos == 7 || dtw_match.pos == 20,
            "pos={}",
            dtw_match.pos
        );
        assert!(dtw_match.dist_sq < 1.0, "dist_sq={}", dtw_match.dist_sq);
    }

    #[test]
    fn empty_dataset_returns_none() {
        let data = Dataset::new(8).unwrap();
        assert!(scan_dtw(&data, &[0.0; 8], 2).is_none());
        assert!(scan_dtw_parallel(&data, &[0.0; 8], 2, 4).is_none());
    }

    #[test]
    fn band_zero_equals_euclidean_scan() {
        let data = DatasetKind::Seismic.generate(100, 32, 17);
        let queries = DatasetKind::Seismic.queries(3, 32, 17);
        for q in queries.iter() {
            let ed = crate::ed::scan_ed(&data, q).unwrap();
            let dtw = scan_dtw(&data, q, 0).unwrap();
            assert_eq!(ed.pos, dtw.pos);
            assert!((ed.dist_sq - dtw.dist_sq).abs() <= ed.dist_sq * 1e-3 + 1e-3);
        }
    }
}
