//! Serial UCR-style scans under Euclidean distance.

use dsidx_series::distance::{abandon_order, euclidean_sq_ordered};
use dsidx_series::{Dataset, Match};
use dsidx_storage::{DatasetFile, StorageError};

/// Exact 1-NN by serial scan over an in-memory dataset.
///
/// Applies the UCR Suite optimizations applicable to whole matching:
/// early abandoning against the best-so-far, visiting points in decreasing
/// `|query|` order.
///
/// Returns `None` for an empty dataset.
///
/// # Panics
/// Panics if the query length differs from the dataset's series length.
#[must_use]
pub fn scan_ed(data: &Dataset, query: &[f32]) -> Option<Match> {
    assert_eq!(query.len(), data.series_len(), "query length mismatch");
    let order = abandon_order(query);
    let mut best = Match::new(0, f32::INFINITY);
    let mut found = false;
    for (pos, series) in data.iter().enumerate() {
        if let Some(d) = euclidean_sq_ordered(query, series, &order, best.dist_sq) {
            best = Match::new(pos as u32, d);
            found = true;
        } else if !found {
            // First series may tie the +inf limit (e.g. identical); keep a
            // valid answer for the degenerate case below.
            found = true;
            best = Match::new(
                pos as u32,
                dsidx_series::distance::euclidean_sq(query, series),
            );
        }
    }
    found.then_some(best)
}

/// Exact 1-NN by serial block scan over an on-disk dataset file; reads are
/// charged to the file's device.
///
/// `block_series` controls the sequential read granularity.
///
/// # Errors
/// Propagates I/O failures.
///
/// # Panics
/// Panics if the query length differs from the file's series length, or if
/// `block_series == 0`.
pub fn scan_ed_file(
    file: &DatasetFile,
    query: &[f32],
    block_series: usize,
) -> Result<Option<Match>, StorageError> {
    assert_eq!(query.len(), file.series_len(), "query length mismatch");
    assert!(block_series > 0, "block size must be non-zero");
    let order = abandon_order(query);
    let series_len = file.series_len();
    let mut best = Match::new(0, f32::INFINITY);
    let mut found = false;
    let mut block = Vec::new();
    let mut start = 0;
    while start < file.count() {
        let count = block_series.min(file.count() - start);
        file.read_block(start, count, &mut block)?;
        for (i, series) in block.chunks_exact(series_len).enumerate() {
            let pos = (start + i) as u32;
            if let Some(d) = euclidean_sq_ordered(query, series, &order, best.dist_sq) {
                best = Match::new(pos, d);
                found = true;
            } else if !found {
                found = true;
                best = Match::new(pos, dsidx_series::distance::euclidean_sq(query, series));
            }
        }
        start += count;
    }
    Ok(found.then_some(best))
}

/// Reference brute-force scan without any optimization (test oracle).
#[must_use]
pub fn brute_force(data: &Dataset, query: &[f32]) -> Option<Match> {
    assert_eq!(query.len(), data.series_len(), "query length mismatch");
    let mut best: Option<Match> = None;
    for (pos, series) in data.iter().enumerate() {
        let d = dsidx_series::distance::euclidean_sq(query, series);
        if best.is_none_or(|b| d < b.dist_sq) {
            best = Some(Match::new(pos as u32, d));
        }
    }
    best
}

/// Reference brute-force exact k-NN (test oracle): every distance, sorted
/// ascending by `(distance, position)`, truncated to `k`. The
/// lowest-position tie-break matches the concurrent collectors'
/// determinism contract.
///
/// # Panics
/// Panics if the query length differs from the dataset's series length.
#[must_use]
pub fn brute_force_knn(data: &Dataset, query: &[f32], k: usize) -> Vec<Match> {
    assert_eq!(query.len(), data.series_len(), "query length mismatch");
    let mut all: Vec<Match> = data
        .iter()
        .enumerate()
        .map(|(pos, series)| {
            Match::new(
                pos as u32,
                dsidx_series::distance::euclidean_sq(query, series),
            )
        })
        .collect();
    all.sort_unstable_by(|a, b| {
        a.dist_sq
            .partial_cmp(&b.dist_sq)
            .expect("finite distances")
            .then(a.pos.cmp(&b.pos))
    });
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_series::gen::{random_walk, DatasetKind};
    use dsidx_storage::{write_dataset, Device};
    use std::sync::Arc;

    fn dev() -> Arc<Device> {
        Arc::new(Device::unthrottled())
    }

    #[test]
    fn scan_matches_brute_force() {
        for kind in DatasetKind::ALL {
            let data = kind.generate(300, 64, 11);
            let queries = kind.queries(10, 64, 11);
            for q in queries.iter() {
                let got = scan_ed(&data, q).unwrap();
                let want = brute_force(&data, q).unwrap();
                assert_eq!(got.pos, want.pos, "{}", kind.name());
                assert!((got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4);
            }
        }
    }

    #[test]
    fn finds_exact_copy() {
        let data = random_walk(100, 32, 5);
        let q = data.get(37).to_vec();
        let m = scan_ed(&data, &q).unwrap();
        assert_eq!(m.pos, 37);
        assert_eq!(m.dist_sq, 0.0);
    }

    #[test]
    fn empty_dataset_returns_none() {
        let data = Dataset::new(16).unwrap();
        assert!(scan_ed(&data, &[0.0; 16]).is_none());
    }

    #[test]
    fn single_series_dataset() {
        let data = random_walk(1, 32, 9);
        let q = random_walk(1, 32, 10);
        let m = scan_ed(&data, q.get(0)).unwrap();
        assert_eq!(m.pos, 0);
    }

    #[test]
    #[should_panic(expected = "query length mismatch")]
    fn wrong_query_length_panics() {
        let data = random_walk(5, 32, 1);
        let _ = scan_ed(&data, &[0.0; 16]);
    }

    #[test]
    fn file_scan_matches_memory_scan() {
        let dir = std::env::temp_dir().join(format!("dsidx-ucr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scan.dsidx");
        let data = random_walk(200, 48, 3);
        write_dataset(&path, &data, dev()).unwrap();
        let file = DatasetFile::open(&path, dev()).unwrap();
        let queries = random_walk(5, 48, 99);
        for q in queries.iter() {
            let mem = scan_ed(&data, q).unwrap();
            // Block size that does not divide the count exercises the tail.
            let disk = scan_ed_file(&file, q, 37).unwrap().unwrap();
            assert_eq!(mem.pos, disk.pos);
            assert!((mem.dist_sq - disk.dist_sq).abs() <= mem.dist_sq * 1e-4 + 1e-4);
        }
    }
}
