//! UCR Suite-p: the paper's parallel in-memory scan competitor.

use dsidx_series::distance::{abandon_order, euclidean_sq_ordered};
use dsidx_series::{Dataset, Match};
use dsidx_sync::{AtomicBest, WorkQueue};

/// Positions per Fetch&Inc claim; large enough to amortize the atomic,
/// small enough to balance stragglers.
const CHUNK: usize = 256;

/// Exact 1-NN by parallel scan with a shared best-so-far.
///
/// Every worker claims position chunks via Fetch&Inc and early-abandons
/// against the global BSF — the natural parallelization of the UCR scan,
/// matching the paper's "UCR Suite-p".
///
/// Returns `None` for an empty dataset.
///
/// # Panics
/// Panics if the query length differs from the dataset's series length or
/// `threads == 0`.
#[must_use]
pub fn scan_ed_parallel(data: &Dataset, query: &[f32], threads: usize) -> Option<Match> {
    assert_eq!(query.len(), data.series_len(), "query length mismatch");
    assert!(threads > 0, "thread count must be non-zero");
    if data.is_empty() {
        return None;
    }
    let order = abandon_order(query);
    // Seed the BSF with series 0 so every worker can abandon immediately.
    let first = dsidx_series::distance::euclidean_sq(query, data.get(0));
    let best = AtomicBest::with_initial(first, 0);
    let queue = WorkQueue::new(data.len());
    let pool = dsidx_sync::pool::global(threads);
    pool.broadcast(&|_worker| {
        while let Some(range) = queue.claim_chunk(CHUNK) {
            let mut limit = best.dist_sq();
            for pos in range {
                if let Some(d) = euclidean_sq_ordered(query, data.get(pos), &order, limit) {
                    best.update(d, pos as u32);
                    limit = best.dist_sq();
                }
            }
        }
    });
    let (dist_sq, pos) = best.get();
    Some(Match::new(pos, dist_sq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ed::{brute_force, scan_ed};
    use dsidx_series::gen::DatasetKind;

    #[test]
    fn parallel_matches_serial_for_all_kinds_and_thread_counts() {
        for kind in DatasetKind::ALL {
            let data = kind.generate(500, 64, 21);
            let queries = kind.queries(5, 64, 21);
            for q in queries.iter() {
                let want = scan_ed(&data, q).unwrap();
                for threads in [1usize, 2, 4, 8] {
                    let got = scan_ed_parallel(&data, q, threads).unwrap();
                    assert_eq!(got.pos, want.pos, "{} x{threads}", kind.name());
                    assert!((got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4);
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let data = DatasetKind::Synthetic.generate(1000, 32, 5);
        let q = DatasetKind::Synthetic.queries(1, 32, 5);
        let a = scan_ed_parallel(&data, q.get(0), 8).unwrap();
        for _ in 0..5 {
            let b = scan_ed_parallel(&data, q.get(0), 8).unwrap();
            assert_eq!(a, b, "ties must resolve deterministically");
        }
    }

    #[test]
    fn empty_dataset_returns_none() {
        let data = dsidx_series::Dataset::new(8).unwrap();
        assert!(scan_ed_parallel(&data, &[0.0; 8], 4).is_none());
    }

    #[test]
    fn finds_planted_neighbor() {
        let data = DatasetKind::Seismic.generate(300, 64, 7);
        let mut q = data.get(123).to_vec();
        // Perturb slightly; the planted original must still win.
        for v in &mut q {
            *v += 0.001;
        }
        let got = scan_ed_parallel(&data, &q, 6).unwrap();
        assert_eq!(got.pos, 123);
        // Also agrees with the brute-force oracle.
        let want = brute_force(&data, &q).unwrap();
        assert_eq!(got.pos, want.pos);
    }
}
