//! The UCR Suite baseline: exact nearest-neighbor search by optimized
//! sequential scan.
//!
//! The paper compares every index against "the serial scan method, UCR
//! Suite" (§IV) and against "an in-memory, parallel implementation of UCR
//! Suite" it calls *UCR Suite-p* (Figs. 9, 12). For whole-matching over
//! z-normalized, equal-length series the applicable UCR Suite optimizations
//! are early abandoning of the Euclidean distance and reordering the
//! distance accumulation by decreasing query magnitude; both are
//! implemented here, over in-memory data and over on-disk files (block
//! sequential scan), for both ED and DTW (LB_Keogh cascade, then banded
//! DTW with early abandoning).

pub mod dtw;
pub mod ed;
pub mod parallel;

pub use dtw::{
    brute_force_dtw_knn, knn_dtw_batch_parallel_with_stats,
    knn_dtw_batch_parallel_with_stats_shared, knn_dtw_parallel_with_stats, scan_dtw,
    scan_dtw_parallel, scan_dtw_parallel_with_stats,
};
pub use ed::{brute_force, brute_force_knn, scan_ed, scan_ed_file};
pub use parallel::scan_ed_parallel;
