//! Fixture: an unsafe block with no SAFETY comment (expect a finding on
//! line 6) in a crate whose lib.rs lacks the deny attribute.

/// Reads one byte.
pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
