//! Fixture: storage reads propagate with `?`.

/// Verifies one candidate.
pub fn verify(fetcher: &dyn SeriesFetcher, pos: usize) -> Result<f32, StorageError> {
    let series = fetcher.fetch(pos)?;
    Ok(series[0])
}
