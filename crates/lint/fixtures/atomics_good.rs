//! Fixture: annotated relaxed atomics.
use std::sync::atomic::{AtomicU64, Ordering};

/// Bumps a counter.
pub fn bump(c: &AtomicU64) {
    // ORDERING: relaxed — monotonic counter, read only after join.
    c.fetch_add(1, Ordering::Relaxed);
    c.fetch_add(2, Ordering::Relaxed);
}
