//! Fixture: defines one cataloged metric, one rogue metric, and two trace
//! events (one cataloged, one rogue) against the fixture README.

/// Cataloged.
pub const GOOD_TOTAL: &str = "dsidx_fixture_good_total";
/// Not in the README (expect an obs-catalog finding on line 7).
pub const ROGUE_TOTAL: &str = "dsidx_fixture_rogue_total";

/// Emits both events.
pub fn emit_all() {
    trace::emit("fixture_event", &[]);
    trace::emit(
        "rogue_event",
        &[("k", Value::U64(1))],
    );
}
