//! Fixture: storage reads unwrapped in an engine crate (expect findings on
//! lines 6 and 8, including the chained multi-line form).

/// Verifies one candidate.
pub fn verify(fetcher: &dyn SeriesFetcher, pos: usize) -> f32 {
    let series = fetcher.fetch(pos).unwrap();
    let other = fetcher
        .fetch(pos + 1)
        .expect("mid-query read");
    series[0] + other[0]
}
