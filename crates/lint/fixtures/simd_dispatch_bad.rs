//! Fixture: a #[target_feature] kernel that is not `unsafe fn` (expect a
//! finding on line 5), called from a non-dispatcher file in the same
//! workspace fixture (the caller lives in the test's second file).

#[target_feature(enable = "avx2")]
pub fn kernel_fixture(x: f32) -> f32 {
    x * 2.0
}
