//! Fixture: every unsafe site is justified.
#![deny(unsafe_op_in_unsafe_fn)]

/// Reads one byte.
pub fn read(p: *const u8) -> u8 {
    // SAFETY: the caller hands over a valid, readable pointer.
    unsafe { *p }
}

/// Reads one byte without checking.
///
/// # Safety
/// `p` must be valid for reads.
pub unsafe fn read_unchecked(p: *const u8) -> u8 {
    // SAFETY: forwarded from this fn's own contract.
    unsafe { *p }
}
