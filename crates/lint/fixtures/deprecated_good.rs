//! Fixture: a deprecated wrapper that stays a thin delegation.

/// Old entry point.
#[deprecated(since = "0.1.0", note = "use search")]
pub fn nn(&self, queries: &[Vec<f32>], k: usize) -> Vec<Match> {
    if queries.is_empty() {
        return Vec::new();
    }
    self.search(&QuerySpec::knn(queries, k))
}
