//! Fixture: a deprecated wrapper that grew logic (expect a finding on
//! line 6: it loops instead of delegating).

/// Old entry point.
#[deprecated(since = "0.1.0", note = "use search")]
pub fn nn_scan(&self, queries: &[Vec<f32>]) -> Vec<Match> {
    let mut out = Vec::new();
    for q in queries {
        out.push(self.scan_one(q));
    }
    out
}
