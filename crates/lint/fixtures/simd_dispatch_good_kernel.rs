//! Fixture: a well-formed #[target_feature] kernel.

/// Doubles a lane.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn kernel_fixture(x: f32) -> f32 {
    x * 2.0
}
