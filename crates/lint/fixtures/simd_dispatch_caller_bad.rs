//! Fixture: calls a #[target_feature] kernel from outside the dispatcher
//! set (expect a finding on line 6).

/// Ungated call.
pub fn fast_path(x: f32) -> f32 {
    unsafe { kernel_fixture(x) }
}
