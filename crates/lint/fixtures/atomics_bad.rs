//! Fixture: a relaxed publish point with no rationale (expect a finding on
//! line 9). The blank line cuts it off from the unrelated comment above.
use std::sync::atomic::{AtomicU64, Ordering};

/// Publishes a value.
pub fn publish(c: &AtomicU64) {
    // A comment that says nothing about ordering.

    c.store(7, Ordering::Relaxed);
}
