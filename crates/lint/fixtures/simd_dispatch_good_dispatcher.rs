//! Fixture: a gated dispatcher (placed at a dispatcher path by the test).

/// Gated entry point.
pub fn fast(x: f32) -> f32 {
    if simd_enabled() {
        // SAFETY: the gate above proved AVX2 support.
        unsafe { kernel_fixture(x) }
    } else {
        x * 2.0
    }
}
