//! The allowlist: documented, reviewable exceptions.
//!
//! `lint.allow` at the workspace root holds one entry per line:
//!
//! ```text
//! # comment
//! <rule-id> <path-glob> -- <reason>
//! ```
//!
//! The reason is mandatory — an exception without a recorded justification
//! is itself a lint error. Globs use `/`-separated segments where `*`
//! matches within a segment and `**` matches any number of segments
//! (`crates/obs/**` covers the whole crate). A rule id of `*` matches every
//! rule. Entries that match no violation are reported as stale so the file
//! cannot quietly outlive the code it excused.

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id the entry applies to (`*` for all rules).
    pub rule: String,
    /// Path glob the entry covers.
    pub glob: String,
    /// Mandatory human justification.
    pub reason: String,
    /// 1-based line in the allowlist file (for diagnostics).
    pub line: usize,
}

/// The parsed allowlist plus any parse errors (malformed lines).
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Well-formed entries in file order.
    pub entries: Vec<AllowEntry>,
    /// `(line, message)` for lines that could not be parsed.
    pub errors: Vec<(usize, String)>,
}

impl Allowlist {
    /// Parses the `lint.allow` format described at the module level.
    #[must_use]
    pub fn parse(text: &str) -> Self {
        let mut out = Self::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let t = raw.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let Some((head, reason)) = t.split_once("--") else {
                out.errors
                    .push((line, "missing `-- <reason>` clause".to_owned()));
                continue;
            };
            let reason = reason.trim();
            let mut parts = head.split_whitespace();
            let (Some(rule), Some(glob), None) = (parts.next(), parts.next(), parts.next()) else {
                out.errors.push((
                    line,
                    "expected `<rule-id> <path-glob> -- <reason>`".to_owned(),
                ));
                continue;
            };
            if reason.is_empty() {
                out.errors.push((line, "empty reason".to_owned()));
                continue;
            }
            out.entries.push(AllowEntry {
                rule: rule.to_owned(),
                glob: glob.to_owned(),
                reason: reason.to_owned(),
                line,
            });
        }
        out
    }

    /// Returns the index of the first entry covering `(rule, path)`.
    #[must_use]
    pub fn covering(&self, rule: &str, path: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| (e.rule == "*" || e.rule == rule) && glob_match(&e.glob, path))
    }
}

/// Matches a `/`-separated glob against a `/`-separated path.
#[must_use]
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let ps: Vec<&str> = pattern.split('/').collect();
    let ss: Vec<&str> = path.split('/').collect();
    segs_match(&ps, &ss)
}

fn segs_match(ps: &[&str], ss: &[&str]) -> bool {
    match ps.first() {
        None => ss.is_empty(),
        Some(&"**") => segs_match(&ps[1..], ss) || (!ss.is_empty() && segs_match(ps, &ss[1..])),
        Some(p) => !ss.is_empty() && seg_match(p, ss[0]) && segs_match(&ps[1..], &ss[1..]),
    }
}

/// Single-segment wildcard match (`*` matches any run of characters).
fn seg_match(p: &str, s: &str) -> bool {
    let pb: Vec<char> = p.chars().collect();
    let sb: Vec<char> = s.chars().collect();
    fn rec(p: &[char], s: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('*') => rec(&p[1..], s) || (!s.is_empty() && rec(p, &s[1..])),
            Some(c) => !s.is_empty() && s[0] == *c && rec(&p[1..], &s[1..]),
        }
    }
    rec(&pb, &sb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_rejects_reasonless_lines() {
        let a = Allowlist::parse(
            "# header\n\natomics-ordering crates/obs/** -- counters\nbad-line-no-reason\n",
        );
        assert_eq!(a.entries.len(), 1);
        assert_eq!(a.entries[0].rule, "atomics-ordering");
        assert_eq!(a.entries[0].reason, "counters");
        assert_eq!(a.errors.len(), 1);
    }

    #[test]
    fn globs() {
        assert!(glob_match("crates/obs/**", "crates/obs/src/lib.rs"));
        assert!(glob_match("crates/*/src/lib.rs", "crates/obs/src/lib.rs"));
        assert!(!glob_match("crates/obs/**", "crates/sync/src/lib.rs"));
        assert!(glob_match("**/stats.rs", "crates/query/src/stats.rs"));
        assert!(glob_match(
            "crates/query/src/stats.rs",
            "crates/query/src/stats.rs"
        ));
        assert!(!glob_match(
            "crates/query/src/stats.rs",
            "crates/query/src/batch.rs"
        ));
        assert!(glob_match("**", "anything/at/all.rs"));
    }

    #[test]
    fn covering_honors_rule_and_wildcard() {
        let a = Allowlist::parse("* crates/x/** -- blanket\nr2 crates/y/** -- scoped\n");
        assert_eq!(a.covering("any-rule", "crates/x/src/a.rs"), Some(0));
        assert_eq!(a.covering("r2", "crates/y/src/a.rs"), Some(1));
        assert_eq!(a.covering("other", "crates/y/src/a.rs"), None);
    }
}
