//! Report assembly and JSON serialization (hand-rolled — the crate is
//! dependency-free by design so it can run in the offline CI container).

use crate::rules::{Violation, RULES};
use crate::Workspace;

/// The outcome of a full lint run.
#[derive(Debug)]
pub struct Report {
    /// Violations not covered by the allowlist, in (file, line) order.
    pub violations: Vec<Violation>,
    /// Violations suppressed by an allowlist entry: `(violation, entry line)`.
    pub allowed: Vec<(Violation, usize)>,
    /// Allowlist entries (1-based lines) that suppressed nothing.
    pub stale_allows: Vec<usize>,
    /// Malformed allowlist lines: `(line, message)`.
    pub allow_errors: Vec<(usize, String)>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// `true` when CI should pass.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.allow_errors.is_empty()
    }

    /// Renders the `file:line: rule-id: message` diagnostics, one per line.
    #[must_use]
    pub fn diagnostics(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}: {}: {}\n",
                v.file, v.line, v.rule, v.message
            ));
        }
        for (line, msg) in &self.allow_errors {
            out.push_str(&format!("lint.allow:{line}: allowlist: {msg}\n"));
        }
        out
    }

    /// Renders the machine-readable report for `results/LINT.json`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"clean\": {},\n", self.clean()));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"rules\": [\n");
        for (i, r) in RULES.iter().enumerate() {
            let count = self.violations.iter().filter(|v| v.rule == r.id).count();
            let allowed = self.allowed.iter().filter(|(v, _)| v.rule == r.id).count();
            s.push_str(&format!(
                "    {{\"id\": {}, \"summary\": {}, \"violations\": {count}, \
                 \"allowed\": {allowed}}}{}\n",
                json_str(r.id),
                json_str(r.summary),
                if i + 1 == RULES.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}{}\n",
                json_str(&v.file),
                v.line,
                json_str(v.rule),
                json_str(&v.message),
                if i + 1 == self.violations.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"stale_allowlist_lines\": [{}],\n",
            self.stale_allows
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str("  \"allowlist_errors\": [\n");
        for (i, (line, msg)) in self.allow_errors.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"line\": {line}, \"message\": {}}}{}\n",
                json_str(msg),
                if i + 1 == self.allow_errors.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Builds the report from raw rule output by applying the allowlist.
#[must_use]
pub fn assemble(ws: &Workspace, raw: Vec<Violation>) -> Report {
    let mut violations = Vec::new();
    let mut allowed = Vec::new();
    let mut used = vec![false; ws.allow.entries.len()];
    for v in raw {
        if let Some(i) = ws.allow.covering(v.rule, &v.file) {
            used[i] = true;
            allowed.push((v, ws.allow.entries[i].line));
        } else {
            violations.push(v);
        }
    }
    // simd-dispatch entries act as dispatcher registrations, not
    // suppressions, so they are never stale.
    let stale_allows = ws
        .allow
        .entries
        .iter()
        .zip(&used)
        .filter(|(e, u)| !**u && e.rule != "simd-dispatch")
        .map(|(e, _)| e.line)
        .collect();
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Report {
        violations,
        allowed,
        stale_allows,
        allow_errors: ws.allow.errors.clone(),
        files_scanned: ws.files.len(),
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::json_str;

    #[test]
    fn escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
