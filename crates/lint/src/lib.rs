//! `dsidx-lint` — a dependency-free workspace invariant checker.
//!
//! The engines in this repository (ADS+, ParIS+, MESSI) are built on
//! hand-rolled concurrency and AVX2 kernels behind a runtime-dispatch
//! contract. Several invariants established by earlier PRs are not
//! expressible to rustc or clippy, so this crate machine-checks them at the
//! source level:
//!
//! | rule id | invariant |
//! |---|---|
//! | `unsafe-safety` | every unsafe site carries a `// SAFETY:` (or `# Safety`) justification; unsafe crates deny `unsafe_op_in_unsafe_fn` |
//! | `simd-dispatch` | `#[target_feature]` kernels are unsafe fns, reachable only via gated dispatcher modules |
//! | `atomics-ordering` | every `Ordering::Relaxed` publish point carries an `// ORDERING:` rationale or an allowlist entry |
//! | `error-context` | no `.unwrap()`/`.expect()` on fallible storage reads in engine/query crates |
//! | `obs-catalog` | README metric/trace catalogs match the names defined in code, both directions |
//! | `deprecated-delegation` | `#[deprecated]` facade wrappers stay thin delegations to `Search::search` |
//!
//! Run `cargo run -p dsidx-lint --release` from the workspace; see
//! `--explain <rule-id>` for the full rationale behind any rule, and
//! `lint.allow` at the repository root for the documented exceptions.

pub mod allow;
pub mod report;
pub mod rules;
pub mod scan;

use std::fs;
use std::path::{Path, PathBuf};

use allow::Allowlist;
use report::Report;
use scan::SourceFile;

/// The scanned workspace: sources, README, and allowlist.
pub struct Workspace {
    /// Workspace root.
    pub root: PathBuf,
    /// Scanned `.rs` files, sorted by path.
    pub files: Vec<SourceFile>,
    /// `(path, contents)` of README.md when present.
    pub readme: Option<(String, String)>,
    /// Parsed `lint.allow` (empty when the file is absent).
    pub allow: Allowlist,
}

impl Workspace {
    /// Scans the workspace rooted at `root`.
    #[must_use]
    pub fn load(root: &Path) -> Self {
        let files = scan::discover(root);
        let readme = fs::read_to_string(root.join("README.md"))
            .ok()
            .map(|s| ("README.md".to_owned(), s));
        let allow = fs::read_to_string(root.join("lint.allow"))
            .map(|s| Allowlist::parse(&s))
            .unwrap_or_default();
        Self {
            root: root.to_owned(),
            files,
            readme,
            allow,
        }
    }

    /// Adds (or replaces) an in-memory file — used by the self-check tests
    /// to inject deliberate violations into an otherwise-clean workspace.
    pub fn add_file(&mut self, path: &str, contents: &str) {
        self.files.retain(|f| f.path != path);
        self.files.push(SourceFile::parse(path, contents));
        self.files.sort_by(|a, b| a.path.cmp(&b.path));
    }

    /// Runs every rule and applies the allowlist.
    #[must_use]
    pub fn check(&self) -> Report {
        let mut raw = Vec::new();
        for rule in rules::RULES {
            raw.extend((rule.check)(self));
        }
        report::assemble(self, raw)
    }
}

/// Builds a [`Workspace`] directly from in-memory sources — the fixture
/// tests use this to exercise rules without touching the real tree.
#[must_use]
pub fn workspace_from_sources(
    files: &[(&str, &str)],
    readme: Option<&str>,
    allow: &str,
) -> Workspace {
    let mut fs: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
    fs.sort_by(|a, b| a.path.cmp(&b.path));
    Workspace {
        root: PathBuf::new(),
        files: fs,
        readme: readme.map(|s| ("README.md".to_owned(), s.to_owned())),
        allow: Allowlist::parse(allow),
    }
}
