//! The rule passes.
//!
//! Each rule is a pure function from the scanned [`Workspace`] to a list of
//! [`Violation`]s; allowlist filtering and reporting happen in
//! [`crate::report::assemble`]. Rules operate on the stripped code/comment/string
//! channels from [`crate::scan`], so comments and string literals can never
//! masquerade as code.

use crate::scan::SourceFile;
use crate::Workspace;

/// One finding, addressed so CI logs are clickable.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id.
    pub rule: &'static str,
    /// What is wrong and what would fix it.
    pub message: String,
}

impl Violation {
    fn new(file: &str, line0: usize, rule: &'static str, message: String) -> Self {
        Self {
            file: file.to_owned(),
            line: line0 + 1,
            rule,
            message,
        }
    }
}

/// Static description of a rule, driving `--explain` and the JSON report.
pub struct Rule {
    /// Stable kebab-case id used in diagnostics and the allowlist.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Long-form `--explain` text.
    pub explain: &'static str,
    /// The pass itself.
    pub check: fn(&Workspace) -> Vec<Violation>,
}

/// Every rule, in report order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "unsafe-safety",
        summary: "every unsafe block/fn/impl carries a SAFETY justification; \
                  unsafe crates deny unsafe_op_in_unsafe_fn",
        explain: "\
Every `unsafe` block or `unsafe impl` must be immediately preceded by a
`// SAFETY:` comment stating why the operation is sound (the comment may sit
up to three lines above to allow multi-line statements). An `unsafe fn` may
alternatively document its contract with a `# Safety` rustdoc section in the
doc block directly above the declaration. In addition, every crate that
contains any unsafe code must carry `#![deny(unsafe_op_in_unsafe_fn)]` in
its lib.rs, so unsafe operations inside unsafe fns still need their own
`unsafe { }` block — and therefore their own SAFETY comment.

Why: the paper's engines lean on hand-rolled concurrency (SyncSlice disjoint
writes, pool job erasure) and AVX2 kernels; an undocumented unsafe site is a
soundness review nobody can perform.

Fix: write the justification, or — for generated/vendored code only — add a
`lint.allow` entry with a reason.",
        check: check_unsafe_safety,
    },
    Rule {
        id: "simd-dispatch",
        summary: "#[target_feature] kernels are unsafe fns reachable only \
                  through gated dispatcher modules",
        explain: "\
Functions annotated `#[target_feature(enable = ...)]` compile to code that
faults on CPUs without the feature, so they must (a) be declared `unsafe fn`
and (b) only be called from their dispatcher modules — the files that gate
on `simd_enabled()` (which itself implies `is_x86_feature_detected!`) — or
from `#[cfg(test)]` code that performs its own gating. The dispatcher set is
crates/series/src/distance/{mod,dtw,simd}.rs and
crates/isax/src/{mindist,simd}.rs; a `lint.allow` entry for this rule adds a
file to the set. Any dispatcher that calls a kernel defined elsewhere must
itself mention `simd_enabled` so the runtime gate is visibly present.

Why: one ungated call site makes every answer wrong (or SIGILLs) on a
non-AVX2 host, and the DSIDX_NO_SIMD kill-switch stops being authoritative.

Fix: route the call through the dispatching wrapper, or register the file
as a dispatcher via lint.allow and add the gate.",
        check: check_simd_dispatch,
    },
    Rule {
        id: "error-context",
        summary: "no .unwrap()/.expect() on fallible storage reads in the \
                  engine/query crates",
        explain: "\
In crates ads/paris/messi/query/ucr/core, a call to a StorageError-returning
read (`.fetch(`, `.read_into(`, `.read(`) must not be followed by
`.unwrap()` or `.expect(` on the same statement: mid-query I/O failures must
propagate through `?` into ErrorSlot so they surface with phase/shard/query
context (`during <phase> (shard <s>, query <i>): ...`), never as a worker
panic that poisons the pool.

Why: PR 5 made every MESSI path fallible end-to-end and PR 8 added per-shard
context; one .expect() on a read reintroduces the panic path that machinery
exists to prevent.

Fix: propagate with `?` (annotating via ErrorSlot::for_phase where in a
parallel region), or allowlist a genuinely infallible site with a reason.",
        check: check_error_context,
    },
    Rule {
        id: "atomics-ordering",
        summary: "every Ordering::Relaxed on a cross-thread publish point \
                  carries an // ORDERING: rationale",
        explain: "\
Every `Ordering::Relaxed` in non-test library code must be justified by an
`// ORDERING:` comment — inline, or in the contiguous comment block directly
above the statement (one comment covers an unbroken run of Relaxed lines,
e.g. a group of stat-counter loads). Alternatively a `lint.allow` entry can
blanket-allow a file or crate; the shipped allowlist covers the obs counter
plane, where Relaxed monotonic counters are the documented design.

Why: the engines publish across threads through atomics — the SharedTopK
BSF threshold, ErrorSlot poison flag, pool generation counter, WorkQueue
head. A Relaxed that should be Release/Acquire is a silent correctness bug
that only a reviewer reading the rationale can catch; this rule forces the
rationale to exist.

Fix: write the `// ORDERING:` comment explaining why relaxed suffices (or
why the fence/stronger op elsewhere provides the edge), upgrade the
ordering if it does not, or allowlist counter-only files with a reason.",
        check: check_atomics_ordering,
    },
    Rule {
        id: "obs-catalog",
        summary: "README metric/trace catalogs and the code stay in sync",
        explain: "\
Every `dsidx_*` metric name defined as a string literal in library code must
appear in the README metric catalog (the table between
`<!-- lint:metric-catalog -->` and `<!-- lint:end-catalog -->`), and every
trace event name passed to `trace::emit(...)` must appear in the README
trace catalog (between `<!-- lint:trace-catalog -->` and
`<!-- lint:end-catalog -->`) — and vice versa: a catalog row whose name no
longer exists in code is drift too. Bench/test/example code is excluded
(experiment-local names are not the production catalog).

Why: the observability plane is only trustworthy if operators can look up
every name they see in a scrape or a trace; PR 7 wrote the catalog, this
rule keeps it from rotting.

Fix: add the catalog row (name in backticks in the first table column), or
delete the stale row/constant.",
        check: check_obs_catalog,
    },
    Rule {
        id: "deprecated-delegation",
        summary: "#[deprecated] facade wrappers stay thin delegations",
        explain: "\
Every `#[deprecated]` fn must remain a thin wrapper over the query plane: a
body of at most 14 lines that calls `.search(` and contains no loops,
`match`, or unsafe code. The legacy nn/knn method matrix survives only as
documentation-by-delegation; logic accreting inside a deprecated wrapper
would fork behavior away from `Search::search` and un-deprecate it de facto.

Why: tests/public_api.rs pins the facade surface; this rule pins its depth.

Fix: move the logic into the QuerySpec/Search path and delegate to it.",
        check: check_deprecated_delegation,
    },
];

/// Looks up a rule by id.
#[must_use]
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

fn has_word(code: &str, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let c = bytes[at - 1] as char;
            !c.is_alphanumeric() && c != '_'
        };
        let end = at + word.len();
        let after_ok = end >= bytes.len() || {
            let c = bytes[end] as char;
            !c.is_alphanumeric() && c != '_'
        };
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + word.len();
    }
    None
}

// ---------------------------------------------------------------- rule 1

/// `true` when the unsafe site at `idx` has a `SAFETY:` comment inline or
/// anywhere in the contiguous comment block directly above it (multi-line
/// justifications put the `SAFETY:` token several lines up).
fn safety_above(f: &SourceFile, idx: usize) -> bool {
    if f.lines[idx].comment.contains("SAFETY:") {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &f.lines[j];
        let code = l.code.trim_end();
        let comment_only = code.trim().is_empty() && !l.comment.is_empty();
        // A line ending mid-statement (`let x =`, an open call, a trailing
        // operator) keeps the unsafe site attached to the lines above it.
        let continuation = ["=", "(", ","].iter().any(|s| code.ends_with(s));
        if !comment_only && !continuation {
            return false;
        }
        if l.comment.contains("SAFETY:") {
            return true;
        }
    }
    false
}

/// Walks the contiguous doc/attribute block above `idx` and returns its
/// accumulated comment text (for `# Safety` sections on unsafe fns).
fn doc_block_above(f: &SourceFile, idx: usize) -> String {
    let mut text = String::new();
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let code = f.lines[j].code.trim();
        let comment = &f.lines[j].comment;
        let is_attr = code.starts_with("#[") || code.starts_with("#!");
        let is_doc = code.is_empty() && !comment.is_empty();
        if is_attr || is_doc {
            text.push_str(comment);
            text.push('\n');
        } else {
            break;
        }
    }
    text
}

fn check_unsafe_safety(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut crates_with_unsafe: Vec<String> = Vec::new();
    for f in &ws.files {
        for (idx, line) in f.lines.iter().enumerate() {
            let Some(_) = has_word(&line.code, "unsafe") else {
                continue;
            };
            if let Some(krate) = crate_prefix(&f.path) {
                if !crates_with_unsafe.contains(&krate) {
                    crates_with_unsafe.push(krate);
                }
            }
            let code = &line.code;
            let is_impl = code.contains("unsafe impl");
            let is_fn = !is_impl && code.contains("unsafe fn");
            let ok = if is_fn {
                safety_above(f, idx) || doc_block_above(f, idx).contains("# Safety")
            } else {
                safety_above(f, idx)
            };
            if !ok {
                let kind = if is_impl {
                    "unsafe impl"
                } else if is_fn {
                    "unsafe fn"
                } else {
                    "unsafe block"
                };
                out.push(Violation::new(
                    &f.path,
                    idx,
                    "unsafe-safety",
                    format!(
                        "{kind} without an immediately preceding `// SAFETY:` comment{}",
                        if is_fn {
                            " or a `# Safety` doc section"
                        } else {
                            ""
                        }
                    ),
                ));
            }
        }
    }
    // Crate-level gate: unsafe code requires deny(unsafe_op_in_unsafe_fn).
    for krate in crates_with_unsafe {
        let lib = format!("{krate}/src/lib.rs");
        let denies = ws.files.iter().any(|f| {
            f.path == lib
                && f.lines
                    .iter()
                    .any(|l| l.code.contains("#![deny(unsafe_op_in_unsafe_fn)]"))
        });
        if !denies {
            out.push(Violation::new(
                &lib,
                0,
                "unsafe-safety",
                "crate contains unsafe code but lib.rs lacks \
                 `#![deny(unsafe_op_in_unsafe_fn)]`"
                    .to_owned(),
            ));
        }
    }
    out
}

/// `crates/foo/src/...` / `shims/foo/src/...` -> `crates/foo`.
fn crate_prefix(path: &str) -> Option<String> {
    let mut parts = path.split('/');
    let top = parts.next()?;
    if top != "crates" && top != "shims" {
        return None;
    }
    let name = parts.next()?;
    if parts.next()? != "src" {
        return None;
    }
    Some(format!("{top}/{name}"))
}

// ---------------------------------------------------------------- rule 2

/// Files allowed to call `#[target_feature]` kernels directly: they hold
/// the runtime dispatch (`simd_enabled()` + feature detection).
const DISPATCHERS: &[&str] = &[
    "crates/series/src/distance/mod.rs",
    "crates/series/src/distance/dtw.rs",
    "crates/series/src/distance/simd.rs",
    "crates/isax/src/mindist.rs",
    "crates/isax/src/simd.rs",
];

fn check_simd_dispatch(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    // Pass 1: collect kernels (fn name, defining file) and check unsafety.
    let mut kernels: Vec<(String, String)> = Vec::new();
    for f in &ws.files {
        for (idx, line) in f.lines.iter().enumerate() {
            if !line.code.contains("#[target_feature") {
                continue;
            }
            // The fn declaration follows within a few lines (other
            // attributes may intervene).
            let mut decl = None;
            for j in idx..(idx + 6).min(f.lines.len()) {
                if let Some(pos) = f.lines[j].code.find("fn ") {
                    decl = Some((j, pos));
                    break;
                }
            }
            let Some((j, pos)) = decl else {
                out.push(Violation::new(
                    &f.path,
                    idx,
                    "simd-dispatch",
                    "#[target_feature] attribute with no fn declaration in reach".to_owned(),
                ));
                continue;
            };
            let code = &f.lines[j].code;
            let name: String = code[pos + 3..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !code[..pos].contains("unsafe") {
                out.push(Violation::new(
                    &f.path,
                    j,
                    "simd-dispatch",
                    format!("#[target_feature] fn `{name}` must be declared `unsafe fn`"),
                ));
            }
            if !name.is_empty() {
                kernels.push((name, f.path.clone()));
            }
        }
    }
    // Pass 2: audit call sites.
    let extra_dispatchers: Vec<&str> = ws
        .allow
        .entries
        .iter()
        .filter(|e| e.rule == "simd-dispatch")
        .map(|e| e.glob.as_str())
        .collect();
    let is_dispatcher = |path: &str| {
        DISPATCHERS.contains(&path)
            || extra_dispatchers
                .iter()
                .any(|g| crate::allow::glob_match(g, path))
    };
    let mut gated_dispatchers: Vec<(&str, usize)> = Vec::new();
    for f in &ws.files {
        for (idx, line) in f.lines.iter().enumerate() {
            if f.is_test_line(idx) {
                continue;
            }
            for (name, def_file) in &kernels {
                let Some(at) = has_word(&line.code, name) else {
                    continue;
                };
                let after = &line.code[at + name.len()..];
                let is_call = after.trim_start().starts_with('(')
                    || after.trim_start().is_empty() && {
                        // call split across lines: `foo(\n args)` never
                        // splits between name and paren in rustfmt'd code,
                        // so treat bare trailing names as non-calls.
                        false
                    };
                let is_decl = line.code[..at].trim_end().ends_with("fn");
                if !is_call || is_decl {
                    continue;
                }
                // A same-named kernel defined in this very file makes the
                // call local (matching is name-based; `hsum256` exists in
                // both simd modules).
                if &f.path == def_file || kernels.iter().any(|(n, d)| n == name && d == &f.path) {
                    continue;
                }
                if is_dispatcher(&f.path) {
                    if !gated_dispatchers.iter().any(|(p, _)| *p == f.path) {
                        gated_dispatchers.push((&f.path, idx));
                    }
                } else {
                    out.push(Violation::new(
                        &f.path,
                        idx,
                        "simd-dispatch",
                        format!(
                            "call to #[target_feature] kernel `{name}` outside its \
                             dispatcher modules — AVX2 code reachable without the \
                             simd_enabled() gate"
                        ),
                    ));
                }
            }
        }
    }
    // Pass 3: dispatchers that call foreign kernels must carry the gate.
    for (path, first_call) in gated_dispatchers {
        let gated = ws
            .files
            .iter()
            .any(|f| f.path == path && f.lines.iter().any(|l| l.code.contains("simd_enabled")));
        if !gated {
            out.push(Violation::new(
                path,
                first_call,
                "simd-dispatch",
                "dispatcher calls a #[target_feature] kernel but never checks \
                 `simd_enabled()`"
                    .to_owned(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------- rule 3

/// Crates whose query paths must propagate storage errors.
const ENGINE_CRATES: &[&str] = &[
    "crates/ads/",
    "crates/paris/",
    "crates/messi/",
    "crates/query/",
    "crates/ucr/",
    "crates/core/",
];

/// Method calls returning `Result<_, StorageError>`.
const FALLIBLE_READS: &[&str] = &[".fetch(", ".read_into(", ".read("];

fn check_error_context(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &ws.files {
        if !ENGINE_CRATES.iter().any(|c| f.path.starts_with(c)) {
            continue;
        }
        for (idx, line) in f.lines.iter().enumerate() {
            if f.is_test_line(idx) {
                continue;
            }
            let Some(read) = FALLIBLE_READS.iter().find(|t| line.code.contains(**t)) else {
                continue;
            };
            // The panic may sit on the same line or on a chained next line.
            let mut stmt = line.code.clone();
            if let Some(next) = f.lines.get(idx + 1) {
                if next.code.trim_start().starts_with('.') {
                    stmt.push_str(next.code.trim_start());
                }
            }
            if stmt.contains(".unwrap()") || stmt.contains(".expect(") {
                out.push(Violation::new(
                    &f.path,
                    idx,
                    "error-context",
                    format!(
                        "`{}` result unwrapped — storage failures must propagate \
                         with `?` (via ErrorSlot in parallel phases) so they carry \
                         phase/shard/query context",
                        read.trim_start_matches('.').trim_end_matches('(')
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------- rule 3b

/// How far above a `Relaxed` site the `ORDERING:` comment may sit. The
/// window is bounded by blank lines: a comment only covers the contiguous
/// statement run beneath it.
const ORDERING_WINDOW: usize = 12;

fn check_atomics_ordering(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &ws.files {
        for (idx, line) in f.lines.iter().enumerate() {
            if f.is_test_line(idx) || !line.code.contains("Ordering::Relaxed") {
                continue;
            }
            // Walk upward through the contiguous block (no fully blank
            // line) looking for the rationale.
            let mut ok = line.comment.contains("ORDERING:");
            let lo = idx.saturating_sub(ORDERING_WINDOW);
            let mut j = idx;
            while !ok && j > lo {
                j -= 1;
                let l = &f.lines[j];
                if l.code.trim().is_empty() && l.comment.is_empty() {
                    break; // blank line ends the covered run
                }
                if l.comment.contains("ORDERING:") {
                    ok = true;
                }
            }
            if !ok {
                out.push(Violation::new(
                    &f.path,
                    idx,
                    "atomics-ordering",
                    "Ordering::Relaxed without an `// ORDERING:` rationale in the \
                     statement's comment block"
                        .to_owned(),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------- rule 4

/// Paths excluded from catalog collection: experiment/test-local names are
/// not part of the production observability surface.
const CATALOG_EXCLUDED: &[&str] = &["crates/bench/", "tests/", "examples/", "crates/lint/"];

fn metric_name_ok(s: &str) -> bool {
    s.starts_with("dsidx_")
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

fn event_name_ok(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Extracts backticked names from the first column of table rows between
/// `marker` and the following `<!-- lint:end-catalog -->`.
fn readme_catalog(readme: &str, marker: &str) -> Option<Vec<(usize, String)>> {
    let mut names = Vec::new();
    let mut inside = false;
    let mut found = false;
    for (idx, line) in readme.lines().enumerate() {
        if line.contains(marker) {
            inside = true;
            found = true;
            continue;
        }
        if inside && line.contains("<!-- lint:end-catalog -->") {
            inside = false;
            continue;
        }
        if !inside || !line.trim_start().starts_with('|') {
            continue;
        }
        let first_cell = line.trim_start().trim_start_matches('|');
        let first_cell = first_cell.split('|').next().unwrap_or("");
        let mut rest = first_cell;
        while let Some(start) = rest.find('`') {
            let tail = &rest[start + 1..];
            let Some(end) = tail.find('`') else { break };
            names.push((idx, tail[..end].to_owned()));
            rest = &tail[end + 1..];
        }
    }
    found.then_some(names)
}

fn check_obs_catalog(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some((readme_path, readme)) = &ws.readme else {
        return vec![Violation::new(
            "README.md",
            0,
            "obs-catalog",
            "README.md not found".to_owned(),
        )];
    };
    // Code side.
    let mut code_metrics: Vec<(String, String, usize)> = Vec::new();
    let mut code_events: Vec<(String, String, usize)> = Vec::new();
    for f in &ws.files {
        if CATALOG_EXCLUDED.iter().any(|p| f.path.starts_with(p)) {
            continue;
        }
        for (idx, line) in f.lines.iter().enumerate() {
            if f.is_test_line(idx) {
                continue;
            }
            for s in &line.strings {
                if metric_name_ok(s) && !code_metrics.iter().any(|(n, _, _)| n == s) {
                    code_metrics.push((s.clone(), f.path.clone(), idx));
                }
            }
            if line.code.contains("emit(") && !line.code.contains("fn ") {
                // First string literal on this or the next two lines is the
                // event name.
                let name = (idx..(idx + 3).min(f.lines.len()))
                    .flat_map(|j| f.lines[j].strings.first())
                    .next();
                if let Some(name) = name {
                    if event_name_ok(name) && !code_events.iter().any(|(n, _, _)| n == name) {
                        code_events.push((name.clone(), f.path.clone(), idx));
                    }
                }
            }
        }
    }
    // README side.
    let metric_rows = readme_catalog(readme, "<!-- lint:metric-catalog -->");
    let trace_rows = readme_catalog(readme, "<!-- lint:trace-catalog -->");
    let Some(metric_rows) = metric_rows else {
        out.push(Violation::new(
            readme_path,
            0,
            "obs-catalog",
            "README has no `<!-- lint:metric-catalog -->` marker".to_owned(),
        ));
        return out;
    };
    let Some(trace_rows) = trace_rows else {
        out.push(Violation::new(
            readme_path,
            0,
            "obs-catalog",
            "README has no `<!-- lint:trace-catalog -->` marker".to_owned(),
        ));
        return out;
    };
    let readme_metrics: Vec<&(usize, String)> = metric_rows
        .iter()
        .filter(|(_, n)| metric_name_ok(n))
        .collect();
    let readme_events: Vec<&(usize, String)> = trace_rows
        .iter()
        .filter(|(_, n)| event_name_ok(n))
        .collect();
    for (name, file, idx) in &code_metrics {
        if !readme_metrics.iter().any(|(_, n)| n == name) {
            out.push(Violation::new(
                file,
                *idx,
                "obs-catalog",
                format!("metric `{name}` is not in the README metric catalog"),
            ));
        }
    }
    for (idx, name) in &readme_metrics {
        if !code_metrics.iter().any(|(n, _, _)| n == name) {
            out.push(Violation::new(
                readme_path,
                *idx,
                "obs-catalog",
                format!("README catalogs metric `{name}` but no code defines it"),
            ));
        }
    }
    for (name, file, idx) in &code_events {
        if !readme_events.iter().any(|(_, n)| n == name) {
            out.push(Violation::new(
                file,
                *idx,
                "obs-catalog",
                format!("trace event `{name}` is not in the README trace catalog"),
            ));
        }
    }
    for (idx, name) in &readme_events {
        if !code_events.iter().any(|(n, _, _)| n == name) {
            out.push(Violation::new(
                readme_path,
                *idx,
                "obs-catalog",
                format!("README catalogs trace event `{name}` but no code emits it"),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------- rule 5

/// Maximum body height (lines between the braces, inclusive) of a
/// deprecated wrapper: enough for an empty-batch guard plus one delegation
/// chain, not enough for logic.
const WRAPPER_MAX_LINES: usize = 14;

fn check_deprecated_delegation(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &ws.files {
        for (idx, line) in f.lines.iter().enumerate() {
            if !line.code.contains("#[deprecated") || f.is_test_line(idx) {
                continue;
            }
            // Find the fn the attribute decorates (the attribute itself and
            // doc comments may span lines).
            let mut fn_line = None;
            for j in idx..(idx + 12).min(f.lines.len()) {
                if f.lines[j].code.contains("fn ") {
                    fn_line = Some(j);
                    break;
                }
            }
            let Some(fn_line) = fn_line else {
                continue;
            };
            // Brace-match the body on stripped code.
            let mut depth = 0i64;
            let mut open = None;
            let mut close = None;
            'body: for j in fn_line..f.lines.len() {
                for ch in f.lines[j].code.chars() {
                    match ch {
                        '{' => {
                            if open.is_none() {
                                open = Some(j);
                            }
                            depth += 1;
                        }
                        '}' => {
                            depth -= 1;
                            if depth == 0 && open.is_some() {
                                close = Some(j);
                                break 'body;
                            }
                        }
                        _ => {}
                    }
                }
            }
            let (Some(open), Some(close)) = (open, close) else {
                continue; // trait decl without body
            };
            let body: Vec<&str> = (open..=close).map(|j| f.lines[j].code.as_str()).collect();
            let body_text = body.join("\n");
            let height = close - open + 1;
            let mut problems = Vec::new();
            if height > WRAPPER_MAX_LINES {
                problems.push(format!(
                    "body spans {height} lines (max {WRAPPER_MAX_LINES})"
                ));
            }
            if !body_text.contains(".search(") {
                problems.push("does not delegate to `.search(`".to_owned());
            }
            for kw in ["for", "while", "loop", "match", "unsafe"] {
                if has_word(&body_text, kw).is_some() {
                    problems.push(format!("contains `{kw}`"));
                }
            }
            if !problems.is_empty() {
                out.push(Violation::new(
                    &f.path,
                    fn_line,
                    "deprecated-delegation",
                    format!(
                        "#[deprecated] wrapper is no longer a thin delegation: {}",
                        problems.join("; ")
                    ),
                ));
            }
        }
    }
    out
}
