//! Source discovery and decomposition.
//!
//! Every rule in this crate reasons about Rust source at the line/token
//! level, so the scanner splits each line into three channels — *code*
//! (with comment text and string/char literal contents blanked), *comment*
//! text, and the *string literals* that start on the line — via a small
//! line-preserving state machine. Rules never see a comment as code or a
//! string as a token, which is what makes grep-style checks trustworthy.

use std::fs;
use std::path::Path;

/// One source line, decomposed into channels.
#[derive(Debug, Default)]
pub struct Line {
    /// Code text: comments removed, string/char literal contents blanked
    /// (delimiters kept, so `emit("x")` reads as `emit("")`).
    pub code: String,
    /// Comment text from `//`, `///`, `//!` and `/* .. */` bodies.
    pub comment: String,
    /// String literals that *start* on this line, in source order.
    pub strings: Vec<String>,
}

/// A scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Decomposed lines (index 0 is line 1).
    pub lines: Vec<Line>,
    /// `true` where the line sits inside a `#[cfg(test)]` item or a
    /// `#[test]` fn, or when the whole file is a `tests/` target.
    pub test_mask: Vec<bool>,
}

impl SourceFile {
    /// Decomposes `src` (the contents of `path`) into lines.
    #[must_use]
    pub fn parse(path: &str, src: &str) -> Self {
        let (lines, strings) = strip(src);
        let mut lines = lines;
        for (line_idx, text) in strings {
            if let Some(l) = lines.get_mut(line_idx) {
                l.strings.push(text);
            }
        }
        let code: Vec<&str> = lines.iter().map(|l| l.code.as_str()).collect();
        let test_mask = test_mask(path, &code);
        Self {
            path: path.to_owned(),
            lines,
            test_mask,
        }
    }

    /// `true` when line `idx` (0-based) is test-only code.
    #[must_use]
    pub fn is_test_line(&self, idx: usize) -> bool {
        self.test_mask.get(idx).copied().unwrap_or(false)
    }
}

/// Lexer state for [`strip`].
enum St {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

/// Splits source text into per-line code/comment channels and a list of
/// `(start line, contents)` string literals.
fn strip(src: &str) -> (Vec<Line>, Vec<(usize, String)>) {
    let b: Vec<char> = src.chars().collect();
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut strings: Vec<(usize, String)> = Vec::new();
    let mut cur_str = String::new();
    let mut cur_str_start = 0usize;
    let mut st = St::Code;
    let mut i = 0usize;
    let at = |j: usize| b.get(j).copied();
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            lines.push(Line::default());
            if matches!(st, St::LineComment) {
                st = St::Code;
            }
            i += 1;
            continue;
        }
        let line_idx = lines.len() - 1;
        match st {
            St::Code => {
                if c == '/' && at(i + 1) == Some('/') {
                    st = St::LineComment;
                    i += 2;
                } else if c == '/' && at(i + 1) == Some('*') {
                    st = St::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    st = St::Str;
                    cur_str.clear();
                    cur_str_start = line_idx;
                    lines[line_idx].code.push('"');
                    i += 1;
                } else if (c == 'r' || c == 'b') && raw_str_hashes(&b, i).is_some() {
                    let (hashes, skip) = raw_str_hashes(&b, i).expect("checked");
                    st = St::RawStr(hashes);
                    cur_str.clear();
                    cur_str_start = line_idx;
                    lines[line_idx].code.push('"');
                    i += skip;
                } else if c == 'b' && at(i + 1) == Some('"') {
                    st = St::Str;
                    cur_str.clear();
                    cur_str_start = line_idx;
                    lines[line_idx].code.push('"');
                    i += 2;
                } else if c == '\'' && is_char_literal(&b, i) {
                    st = St::CharLit;
                    lines[line_idx].code.push_str("' '");
                    i += 1;
                } else {
                    lines[line_idx].code.push(c);
                    i += 1;
                }
            }
            St::LineComment => {
                lines[line_idx].comment.push(c);
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && at(i + 1) == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && at(i + 1) == Some('*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else {
                    lines[line_idx].comment.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    cur_str.push(c);
                    if let Some(n) = at(i + 1) {
                        cur_str.push(n);
                    }
                    i += 2;
                } else if c == '"' {
                    lines[line_idx].code.push('"');
                    strings.push((cur_str_start, std::mem::take(&mut cur_str)));
                    st = St::Code;
                    i += 1;
                } else {
                    cur_str.push(c);
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                let closes = c == '"' && (0..hashes as usize).all(|k| at(i + 1 + k) == Some('#'));
                if closes {
                    lines[line_idx].code.push('"');
                    strings.push((cur_str_start, std::mem::take(&mut cur_str)));
                    st = St::Code;
                    i += 1 + hashes as usize;
                } else {
                    cur_str.push(c);
                    i += 1;
                }
            }
            St::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    // A string left open at EOF still lands in the list (malformed input).
    if !cur_str.is_empty() {
        strings.push((cur_str_start, cur_str));
    }
    (lines, strings)
}

/// Detects `r"`, `r#"`, `br"`, `br##"` … at position `i`; returns
/// `(hash count, chars to skip past the opening quote)`.
fn raw_str_hashes(b: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if b.get(j) == Some(&'b') {
        j += 1;
    }
    if b.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&'"') {
        Some((hashes, j + 1 - i))
    } else {
        None
    }
}

/// Distinguishes a char literal (`'a'`, `'\n'`, `b'x'`) from a lifetime
/// (`'a`, `'static`): it is a literal when the quote is followed by an
/// escape, or when the char after next closes the quote.
fn is_char_literal(b: &[char], i: usize) -> bool {
    match b.get(i + 1) {
        Some('\\') => true,
        Some(_) => b.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks the lines belonging to `#[cfg(test)]` items and `#[test]` fns.
///
/// The walk is structural: from the attribute, brace-match the attributed
/// item on stripped code (strings and comments can no longer confuse the
/// counter) and mark every line through the item's closing brace.
fn test_mask(path: &str, code: &[&str]) -> Vec<bool> {
    let n = code.len();
    if path.starts_with("tests/") || path.contains("/tests/") {
        return vec![true; n];
    }
    let mut mask = vec![false; n];
    let mut i = 0usize;
    while i < n {
        let t = code[i].trim();
        let is_test_attr = t.contains("#[cfg(test)")
            || t.contains("#[cfg(all(test")
            || t.contains("#[cfg(any(test")
            || t.contains("#[test]");
        if is_test_attr && !mask[i] {
            let mut depth = 0i64;
            let mut started = false;
            let mut j = i;
            'scan: while j < n {
                for ch in code[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            started = true;
                        }
                        '}' => depth -= 1,
                        ';' if !started && depth == 0 && j > i => break 'scan,
                        _ => {}
                    }
                    if started && depth == 0 {
                        break 'scan;
                    }
                }
                j += 1;
            }
            let end = j.min(n.saturating_sub(1));
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Recursively collects `.rs` files under `root`'s scanned directories
/// (`crates/`, `src/`, `tests/`, `examples/`, `shims/`), skipping build
/// output and this crate's deliberately-violating lint fixtures.
#[must_use]
pub fn discover(root: &Path) -> Vec<SourceFile> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples", "shims"] {
        walk(root, &root.join(top), &mut out);
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    out
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk(root, &path, out);
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if let Ok(src) = fs::read_to_string(&path) {
                out.push(SourceFile::parse(&rel, &src));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = \"unsafe { }\"; // SAFETY: not really code\nunsafe { go() }\n",
        );
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[0].comment.contains("SAFETY:"));
        assert_eq!(f.lines[0].strings, vec!["unsafe { }".to_owned()]);
        assert!(f.lines[1].code.contains("unsafe"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = SourceFile::parse("x.rs", "/* one\ntwo */ code()\n");
        assert!(f.lines[0].comment.contains("one"));
        assert!(f.lines[1].comment.contains("two"));
        assert!(f.lines[1].code.contains("code()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = SourceFile::parse("x.rs", "fn f<'a>(x: &'a str) -> char { '{' }\n");
        // The brace inside the char literal must not reach the code channel.
        let braces = f.lines[0].code.matches('{').count();
        assert_eq!(braces, 1, "code: {}", f.lines[0].code);
        assert!(f.lines[0].code.contains("<'a>"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = SourceFile::parse("x.rs", "let j = r#\"{\"k\": 1}\"#;\nnext()\n");
        assert!(!f.lines[0].code.contains('{'));
        assert_eq!(f.lines[0].strings.len(), 1);
        assert!(f.lines[1].code.contains("next()"));
    }

    #[test]
    fn test_regions_are_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test_line(0));
        assert!(f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn files_under_tests_are_all_test() {
        let f = SourceFile::parse("tests/foo.rs", "fn x() {}\n");
        assert!(f.is_test_line(0));
    }
}
