//! CLI entry point: `dsidx-lint [--root PATH] [--json PATH] [--explain RULE]`.

use std::path::PathBuf;
use std::process::ExitCode;

use dsidx_lint::rules::{rule_by_id, RULES};
use dsidx_lint::Workspace;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut explain: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = args.next().map(PathBuf::from),
            "--explain" => explain = args.next(),
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dsidx-lint: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(id) = explain {
        return match rule_by_id(&id) {
            Some(rule) => {
                println!("{}: {}\n\n{}", rule.id, rule.summary, rule.explain);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "dsidx-lint: unknown rule `{id}`; known rules: {}",
                    RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
                );
                ExitCode::FAILURE
            }
        };
    }

    let root = root.unwrap_or_else(default_root);
    let ws = Workspace::load(&root);
    if ws.files.is_empty() {
        eprintln!(
            "dsidx-lint: no sources found under {} (wrong --root?)",
            root.display()
        );
        return ExitCode::FAILURE;
    }
    let report = ws.check();

    let json_path = json.unwrap_or_else(|| root.join("results").join("LINT.json"));
    if let Some(dir) = json_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("dsidx-lint: cannot write {}: {e}", json_path.display());
    }

    print!("{}", report.diagnostics());
    for line in &report.stale_allows {
        eprintln!("lint.allow:{line}: warning: stale entry — matches no current finding");
    }
    eprintln!(
        "dsidx-lint: {} files, {} violation(s), {} allowed, report at {}",
        report.files_scanned,
        report.violations.len(),
        report.allowed.len(),
        json_path.display()
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Workspace root when `--root` is absent: the manifest dir's grandparent
/// (`crates/lint` -> repo root), falling back to the current directory.
fn default_root() -> PathBuf {
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(md);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            return root.to_owned();
        }
    }
    PathBuf::from(".")
}

fn print_help() {
    println!(
        "dsidx-lint: workspace invariant checker\n\n\
         USAGE: dsidx-lint [--root PATH] [--json PATH] [--explain RULE]\n\n\
         Scans the workspace sources and enforces the invariants below,\n\
         writing a machine-readable report to results/LINT.json and exiting\n\
         non-zero when violations remain after applying lint.allow.\n\n\
         RULES:"
    );
    for r in RULES {
        println!(
            "  {:<24} {}",
            r.id,
            r.summary.split_whitespace().collect::<Vec<_>>().join(" ")
        );
    }
}
