//! Self-check: the live workspace is lint-clean, and a deliberately
//! injected violation of each rule is caught. This is the test that keeps
//! `cargo test -q` and the CI `lint-invariants` lane honest about each
//! other.

use std::path::{Path, PathBuf};

use dsidx_lint::Workspace;

fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root")
        .to_owned()
}

#[test]
fn live_workspace_is_lint_clean() {
    let ws = Workspace::load(&root());
    assert!(
        ws.files.len() > 50,
        "workspace scan found only {} files — discovery is broken",
        ws.files.len()
    );
    let report = ws.check();
    assert!(
        report.clean(),
        "workspace has lint violations:\n{}",
        report.diagnostics()
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale lint.allow entries at lines {:?}",
        report.stale_allows
    );
}

/// Asserts that injecting `files` into the clean workspace produces at
/// least one `rule` violation in `expect_file`.
fn assert_injected_caught(files: &[(&str, &str)], rule: &str, expect_file: &str) {
    let mut ws = Workspace::load(&root());
    for (path, contents) in files {
        ws.add_file(path, contents);
    }
    let report = ws.check();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == rule && v.file == expect_file),
        "injected {rule} violation in {expect_file} was not caught; got:\n{}",
        report.diagnostics()
    );
}

#[test]
fn injected_unsafe_without_safety_is_caught() {
    assert_injected_caught(
        &[(
            "crates/series/src/zz_lint_inject.rs",
            include_str!("../fixtures/unsafe_safety_bad.rs"),
        )],
        "unsafe-safety",
        "crates/series/src/zz_lint_inject.rs",
    );
}

#[test]
fn injected_ungated_kernel_call_is_caught() {
    // A fresh kernel plus an ungated call site, both outside the
    // dispatcher set — self-contained, independent of real kernel names.
    assert_injected_caught(
        &[
            (
                "crates/tree/src/zz_kern.rs",
                include_str!("../fixtures/simd_dispatch_good_kernel.rs"),
            ),
            (
                "crates/ads/src/zz_caller.rs",
                include_str!("../fixtures/simd_dispatch_caller_bad.rs"),
            ),
        ],
        "simd-dispatch",
        "crates/ads/src/zz_caller.rs",
    );
}

#[test]
fn injected_unannotated_relaxed_is_caught() {
    assert_injected_caught(
        &[(
            "crates/sync/src/zz_lint_inject.rs",
            include_str!("../fixtures/atomics_bad.rs"),
        )],
        "atomics-ordering",
        "crates/sync/src/zz_lint_inject.rs",
    );
}

#[test]
fn injected_unwrapped_storage_read_is_caught() {
    assert_injected_caught(
        &[(
            "crates/query/src/zz_lint_inject.rs",
            include_str!("../fixtures/error_context_bad.rs"),
        )],
        "error-context",
        "crates/query/src/zz_lint_inject.rs",
    );
}

#[test]
fn injected_uncataloged_metric_is_caught() {
    assert_injected_caught(
        &[(
            "crates/obs/src/zz_lint_inject.rs",
            "//! Injected.\n/// Rogue metric.\npub const ZZ: &str = \"dsidx_zz_injected_total\";\n",
        )],
        "obs-catalog",
        "crates/obs/src/zz_lint_inject.rs",
    );
}

#[test]
fn injected_fat_deprecated_wrapper_is_caught() {
    assert_injected_caught(
        &[(
            "crates/core/src/zz_lint_inject.rs",
            include_str!("../fixtures/deprecated_bad.rs"),
        )],
        "deprecated-delegation",
        "crates/core/src/zz_lint_inject.rs",
    );
}
