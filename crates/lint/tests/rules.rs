//! Fixture-based positive/negative tests, one pair per rule. Fixtures live
//! in `fixtures/` (excluded from workspace discovery) and are mounted at
//! synthetic paths so crate-scoped rules see the layout they expect.

use dsidx_lint::report::Report;
use dsidx_lint::workspace_from_sources;

const UNSAFE_GOOD: &str = include_str!("../fixtures/unsafe_safety_good.rs");
const UNSAFE_BAD: &str = include_str!("../fixtures/unsafe_safety_bad.rs");
const SIMD_KERNEL_BAD: &str = include_str!("../fixtures/simd_dispatch_bad.rs");
const SIMD_CALLER_BAD: &str = include_str!("../fixtures/simd_dispatch_caller_bad.rs");
const SIMD_KERNEL_GOOD: &str = include_str!("../fixtures/simd_dispatch_good_kernel.rs");
const SIMD_DISPATCHER_GOOD: &str = include_str!("../fixtures/simd_dispatch_good_dispatcher.rs");
const ATOMICS_GOOD: &str = include_str!("../fixtures/atomics_good.rs");
const ATOMICS_BAD: &str = include_str!("../fixtures/atomics_bad.rs");
const ERRCTX_GOOD: &str = include_str!("../fixtures/error_context_good.rs");
const ERRCTX_BAD: &str = include_str!("../fixtures/error_context_bad.rs");
const DEPRECATED_GOOD: &str = include_str!("../fixtures/deprecated_good.rs");
const DEPRECATED_BAD: &str = include_str!("../fixtures/deprecated_bad.rs");
const OBS_CODE: &str = include_str!("../fixtures/obs_metrics.rs");
const OBS_README: &str = include_str!("../fixtures/obs_readme.md");

fn findings<'r>(report: &'r Report, rule: &str) -> Vec<(&'r str, usize)> {
    report
        .violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| (v.file.as_str(), v.line))
        .collect()
}

#[test]
fn unsafe_safety_negative() {
    let ws = workspace_from_sources(&[("crates/demo/src/lib.rs", UNSAFE_BAD)], None, "");
    let r = ws.check();
    let f = findings(&r, "unsafe-safety");
    assert!(
        f.contains(&("crates/demo/src/lib.rs", 6)),
        "missing block finding: {f:?}"
    );
    assert!(
        f.contains(&("crates/demo/src/lib.rs", 1)),
        "missing deny(unsafe_op_in_unsafe_fn) finding: {f:?}"
    );
}

#[test]
fn unsafe_safety_positive() {
    let ws = workspace_from_sources(&[("crates/demo/src/lib.rs", UNSAFE_GOOD)], None, "");
    assert_eq!(findings(&ws.check(), "unsafe-safety"), vec![]);
}

#[test]
fn simd_dispatch_negative() {
    let ws = workspace_from_sources(
        &[
            ("crates/demo/src/kern.rs", SIMD_KERNEL_BAD),
            ("crates/demo/src/caller.rs", SIMD_CALLER_BAD),
        ],
        None,
        "",
    );
    let r = ws.check();
    let f = findings(&r, "simd-dispatch");
    assert!(
        f.contains(&("crates/demo/src/kern.rs", 6)),
        "missing not-unsafe kernel finding: {f:?}"
    );
    assert!(
        f.contains(&("crates/demo/src/caller.rs", 6)),
        "missing ungated-call finding: {f:?}"
    );
}

#[test]
fn simd_dispatch_positive() {
    // The dispatcher path is in the built-in set and mentions the gate.
    let ws = workspace_from_sources(
        &[
            ("crates/demo/src/kern.rs", SIMD_KERNEL_GOOD),
            ("crates/series/src/distance/simd.rs", SIMD_DISPATCHER_GOOD),
        ],
        None,
        "",
    );
    assert_eq!(findings(&ws.check(), "simd-dispatch"), vec![]);
}

#[test]
fn simd_dispatch_allowlist_registers_dispatchers() {
    // The same gated dispatcher at a non-default path passes only when a
    // simd-dispatch allow entry registers it.
    let files = [
        ("crates/demo/src/kern.rs", SIMD_KERNEL_GOOD),
        ("crates/demo/src/fast.rs", SIMD_DISPATCHER_GOOD),
    ];
    let denied = workspace_from_sources(&files, None, "");
    assert_eq!(findings(&denied.check(), "simd-dispatch").len(), 1);
    let allowed = workspace_from_sources(
        &files,
        None,
        "simd-dispatch crates/demo/src/fast.rs -- fixture dispatcher\n",
    );
    assert_eq!(findings(&allowed.check(), "simd-dispatch"), vec![]);
}

#[test]
fn atomics_ordering_negative() {
    let ws = workspace_from_sources(&[("crates/demo/src/a.rs", ATOMICS_BAD)], None, "");
    assert_eq!(
        findings(&ws.check(), "atomics-ordering"),
        vec![("crates/demo/src/a.rs", 9)]
    );
}

#[test]
fn atomics_ordering_positive_one_comment_covers_a_run() {
    let ws = workspace_from_sources(&[("crates/demo/src/a.rs", ATOMICS_GOOD)], None, "");
    assert_eq!(findings(&ws.check(), "atomics-ordering"), vec![]);
}

#[test]
fn atomics_ordering_allowlist_suppresses_and_counts() {
    let ws = workspace_from_sources(
        &[("crates/demo/src/a.rs", ATOMICS_BAD)],
        None,
        "atomics-ordering crates/demo/** -- fixture counters\n",
    );
    let r = ws.check();
    assert_eq!(findings(&r, "atomics-ordering"), vec![]);
    assert_eq!(r.allowed.len(), 1);
    assert!(r.stale_allows.is_empty());
}

#[test]
fn error_context_negative() {
    let ws = workspace_from_sources(&[("crates/query/src/fx.rs", ERRCTX_BAD)], None, "");
    assert_eq!(
        findings(&ws.check(), "error-context"),
        vec![("crates/query/src/fx.rs", 6), ("crates/query/src/fx.rs", 8)]
    );
}

#[test]
fn error_context_positive_and_scoped_to_engine_crates() {
    let clean = workspace_from_sources(&[("crates/query/src/fx.rs", ERRCTX_GOOD)], None, "");
    assert_eq!(findings(&clean.check(), "error-context"), vec![]);
    // The same unwraps in a non-engine crate are out of scope: storage's
    // own tests/tools may unwrap its readers.
    let out_of_scope =
        workspace_from_sources(&[("crates/storage/src/fx.rs", ERRCTX_BAD)], None, "");
    assert_eq!(findings(&out_of_scope.check(), "error-context"), vec![]);
}

#[test]
fn obs_catalog_bidirectional_drift() {
    let ws = workspace_from_sources(&[("crates/obs/src/fx.rs", OBS_CODE)], Some(OBS_README), "");
    let r = ws.check();
    let f = findings(&r, "obs-catalog");
    assert!(
        f.contains(&("crates/obs/src/fx.rs", 7)),
        "rogue metric not flagged: {f:?}"
    );
    assert!(
        f.contains(&("README.md", 7)),
        "stale README metric row not flagged: {f:?}"
    );
    assert!(
        f.iter().any(|(p, _)| *p == "crates/obs/src/fx.rs")
            && r.violations
                .iter()
                .any(|v| v.message.contains("rogue_event")),
        "rogue trace event not flagged: {f:?}"
    );
    assert_eq!(f.len(), 3, "exactly the three drift findings: {f:?}");
}

#[test]
fn obs_catalog_requires_markers() {
    let ws = workspace_from_sources(
        &[("crates/obs/src/fx.rs", OBS_CODE)],
        Some("# README without markers\n"),
        "",
    );
    let r = ws.check();
    assert_eq!(findings(&r, "obs-catalog"), vec![("README.md", 1)]);
}

#[test]
fn deprecated_delegation_negative() {
    let ws = workspace_from_sources(&[("crates/core/src/fx.rs", DEPRECATED_BAD)], None, "");
    assert_eq!(
        findings(&ws.check(), "deprecated-delegation"),
        vec![("crates/core/src/fx.rs", 6)]
    );
}

#[test]
fn deprecated_delegation_positive() {
    let ws = workspace_from_sources(&[("crates/core/src/fx.rs", DEPRECATED_GOOD)], None, "");
    assert_eq!(findings(&ws.check(), "deprecated-delegation"), vec![]);
}

#[test]
fn diagnostics_are_clickable_and_exit_is_nonzero_shaped() {
    let ws = workspace_from_sources(&[("crates/demo/src/lib.rs", UNSAFE_BAD)], None, "");
    let r = ws.check();
    assert!(!r.clean());
    let diag = r.diagnostics();
    assert!(
        diag.contains("crates/demo/src/lib.rs:6: unsafe-safety: "),
        "diagnostic format drifted: {diag}"
    );
}

#[test]
fn stale_allowlist_entries_are_reported() {
    let ws = workspace_from_sources(
        &[("crates/demo/src/a.rs", ATOMICS_GOOD)],
        None,
        "atomics-ordering crates/nowhere/** -- excuses nothing\n",
    );
    let r = ws.check();
    assert_eq!(r.stale_allows, vec![1]);
}

#[test]
fn malformed_allowlist_lines_fail_the_run() {
    let ws = workspace_from_sources(
        &[("crates/demo/src/a.rs", ATOMICS_GOOD)],
        None,
        "atomics-ordering crates/demo/**\n",
    );
    let r = ws.check();
    assert!(!r.clean(), "an entry without a reason must fail the run");
    assert!(r.diagnostics().contains("lint.allow:1"));
}
