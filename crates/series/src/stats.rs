//! Small statistics helpers used across the workspace.

/// Running mean/variance via Welford's algorithm.
///
/// Used by instrumentation (e.g. per-query timing summaries in the bench
/// harness) where we cannot afford to keep every sample.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let total_f = total as f64;
        self.m2 += other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total_f;
        self.mean += delta * (other.count as f64) / total_f;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Index of the minimum value in a non-empty slice (first on ties).
///
/// # Panics
/// Panics on an empty slice.
#[must_use]
pub fn argmin(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "argmin of empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v < values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_direct_computation() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut st = OnlineStats::new();
        for &x in &xs {
            st.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((st.mean() - mean).abs() < 1e-12);
        assert!((st.variance() - var).abs() < 1e-12);
        assert_eq!(st.min(), 1.0);
        assert_eq!(st.max(), 9.0);
        assert_eq!(st.count(), 8);
    }

    #[test]
    fn empty_stats_are_neutral() {
        let st = OnlineStats::new();
        assert_eq!(st.mean(), 0.0);
        assert_eq!(st.variance(), 0.0);
        assert_eq!(st.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.77 - 20.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());

        // Merging into empty adopts the other side.
        let mut empty = OnlineStats::new();
        empty.merge(&whole);
        assert!((empty.mean() - whole.mean()).abs() < 1e-12);
        // Merging empty is a no-op.
        let before = whole.mean();
        whole.merge(&OnlineStats::new());
        assert_eq!(whole.mean(), before);
    }

    #[test]
    fn argmin_finds_first_minimum() {
        assert_eq!(argmin(&[3.0, 1.0, 1.0, 2.0]), 1);
        assert_eq!(argmin(&[0.5]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn argmin_empty_panics() {
        let _ = argmin(&[]);
    }
}
