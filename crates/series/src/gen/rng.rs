//! In-repo pseudo-random number generation.
//!
//! SplitMix64 is tiny, fast, passes BigCrush, and — unlike `rand`'s `StdRng`
//! — its stream is ours to keep stable forever, so generated datasets are
//! reproducible across toolchain and dependency upgrades.

/// SplitMix64 generator (Steele, Lea, Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; distinct seeds give independent-ish
    /// streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Modulo bias is negligible for the small n used here (n << 2^64).
        (self.next_u64() % n as u64) as usize
    }

    /// Derives an independent child generator (for per-series streams).
    #[must_use]
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// Standard-normal sampler over SplitMix64 (Box-Muller, caches the spare).
#[derive(Debug, Clone)]
pub struct NormalGen {
    rng: SplitMix64,
    spare: Option<f64>,
}

impl NormalGen {
    /// Creates a sampler from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
            spare: None,
        }
    }

    /// Wraps an existing generator.
    #[must_use]
    pub fn from_rng(rng: SplitMix64) -> Self {
        Self { rng, spare: None }
    }

    /// Next N(0, 1) sample.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, never None
    pub fn next(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box-Muller on (0, 1] uniforms (avoid ln(0)).
        let u1 = 1.0 - self.rng.next_f64();
        let u2 = self.rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Next N(0, 1) sample as `f32`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        self.next() as f32
    }

    /// Access to the underlying uniform generator.
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(1234);
        let mut b = SplitMix64::new(1234);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn uniforms_in_range() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let f = r.next_f32();
            assert!((0.0..1.0).contains(&f));
            let v = r.range_f64(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
            let k = r.below(7);
            assert!(k < 7);
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = SplitMix64::new(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments_are_standard() {
        let mut g = NormalGen::new(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.next()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
        // Roughly 68% within one sigma.
        let within = samples.iter().filter(|x| x.abs() < 1.0).count() as f64 / n as f64;
        assert!((within - 0.6827).abs() < 0.02, "within-1sigma {within}");
    }

    #[test]
    fn fork_produces_distinct_streams() {
        let mut parent = SplitMix64::new(42);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
