//! Deterministic dataset generators.
//!
//! The paper evaluates on three collections: *Synthetic* (random walk,
//! 100M × 256), *SALD* (electroencephalography, 200M × 128) and *Seismic*
//! (seismic activity, 100M × 256). The real SALD and Seismic collections are
//! not redistributable, so this module provides generators whose outputs
//! reproduce the property that drives the paper's cross-dataset figures:
//! **prunability** (random walk prunes best, EEG-like data worst, seismic
//! in between). See DESIGN.md §3 for the substitution argument.
//!
//! Everything is seeded and reproducible: the RNG is an in-repo SplitMix64
//! (no dependence on `rand`'s cross-version stream stability).

pub mod rng;
mod sources;

pub use sources::{eeg_like, random_walk, seismic_like, sines, white_noise};

use crate::dataset::Dataset;

/// The three dataset families of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Random-walk series — the paper's "Synthetic" collection.
    Synthetic,
    /// EEG-like series — surrogate for the paper's "SALD" collection.
    Sald,
    /// Burst-over-noise series — surrogate for the paper's "Seismic" collection.
    Seismic,
}

impl DatasetKind {
    /// All three families, in the order the paper's figures list them.
    pub const ALL: [DatasetKind; 3] = [
        DatasetKind::Synthetic,
        DatasetKind::Sald,
        DatasetKind::Seismic,
    ];

    /// Human-readable name matching the paper's figure labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Synthetic => "Synthetic",
            DatasetKind::Sald => "SALD",
            DatasetKind::Seismic => "Seismic",
        }
    }

    /// Generates a z-normalized dataset of `count` series of length `len`.
    #[must_use]
    pub fn generate(self, count: usize, len: usize, seed: u64) -> Dataset {
        match self {
            DatasetKind::Synthetic => random_walk(count, len, seed),
            DatasetKind::Sald => eeg_like(count, len, seed),
            DatasetKind::Seismic => seismic_like(count, len, seed),
        }
    }

    /// Generates a query workload for a dataset of this family.
    ///
    /// Queries come from the same generative process but a disjoint seed
    /// stream, matching the paper's setup (queries drawn from the same
    /// distribution as the data).
    #[must_use]
    pub fn queries(self, count: usize, len: usize, seed: u64) -> Dataset {
        // Offset the seed stream so queries never collide with data series.
        self.generate(count, len, seed ^ 0xC0FF_EE00_5EED_517E)
    }
}

impl std::str::FromStr for DatasetKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "synthetic" | "rw" | "randomwalk" => Ok(DatasetKind::Synthetic),
            "sald" | "eeg" => Ok(DatasetKind::Sald),
            "seismic" => Ok(DatasetKind::Seismic),
            other => Err(format!("unknown dataset kind: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::znorm::is_znormalized;

    #[test]
    fn all_kinds_generate_znormalized_data() {
        for kind in DatasetKind::ALL {
            let ds = kind.generate(10, 64, 42);
            assert_eq!(ds.len(), 10);
            assert_eq!(ds.series_len(), 64);
            for s in ds.iter() {
                assert!(is_znormalized(s, 1e-2), "{} not z-normalized", kind.name());
                assert!(s.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for kind in DatasetKind::ALL {
            let a = kind.generate(5, 32, 7);
            let b = kind.generate(5, 32, 7);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetKind::Synthetic.generate(3, 32, 1);
        let b = DatasetKind::Synthetic.generate(3, 32, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn queries_differ_from_data() {
        let data = DatasetKind::Sald.generate(3, 32, 9);
        let queries = DatasetKind::Sald.queries(3, 32, 9);
        assert_ne!(data, queries);
    }

    #[test]
    fn kind_parses_from_str() {
        assert_eq!(
            "synthetic".parse::<DatasetKind>().unwrap(),
            DatasetKind::Synthetic
        );
        assert_eq!("EEG".parse::<DatasetKind>().unwrap(), DatasetKind::Sald);
        assert_eq!(
            "seismic".parse::<DatasetKind>().unwrap(),
            DatasetKind::Seismic
        );
        assert!("nope".parse::<DatasetKind>().is_err());
    }
}
