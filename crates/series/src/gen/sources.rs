//! The generative processes behind each dataset family.

use super::rng::{NormalGen, SplitMix64};
use crate::dataset::Dataset;
use crate::znorm::znormalize;

/// Random-walk series (the paper's Synthetic collection): cumulative sums of
/// N(0, 1) steps, z-normalized per series.
#[must_use]
pub fn random_walk(count: usize, len: usize, seed: u64) -> Dataset {
    generate_with(count, len, seed, |normal, _rng, out| {
        let mut level = 0.0f64;
        for v in out.iter_mut() {
            level += normal.next();
            *v = level as f32;
        }
    })
}

/// EEG-like series (SALD surrogate): a sum of band-limited sinusoids with
/// random phases plus AR(1) noise.
///
/// Frequencies are drawn from narrow shared bands, so series resemble each
/// other far more than random walks do — which is exactly what makes real
/// EEG data hard to prune (small lower-bound gaps between candidates).
#[must_use]
pub fn eeg_like(count: usize, len: usize, seed: u64) -> Dataset {
    // Normalized per-point angular frequency bands, loosely mimicking
    // theta/alpha/beta rhythm proportions after sampling.
    const BANDS: [(f64, f64); 3] = [(0.04, 0.08), (0.09, 0.14), (0.18, 0.30)];
    generate_with(count, len, seed, |normal, rng, out| {
        let mut comps = [(0.0f64, 0.0f64, 0.0f64); 3]; // (omega, phase, amp)
        for (k, &(lo, hi)) in BANDS.iter().enumerate() {
            comps[k] = (
                rng.range_f64(lo, hi) * std::f64::consts::TAU,
                rng.range_f64(0.0, std::f64::consts::TAU),
                rng.range_f64(0.5, 1.0) / (k + 1) as f64,
            );
        }
        let mut ar = 0.0f64; // AR(1) noise state
        for (t, v) in out.iter_mut().enumerate() {
            let tf = t as f64;
            let mut x = 0.0;
            for &(omega, phase, amp) in &comps {
                x += amp * (omega * tf + phase).sin();
            }
            ar = 0.9 * ar + 0.1 * normal.next();
            *v = (x + ar) as f32;
        }
    })
}

/// Seismic-like series (Seismic surrogate): a Gaussian noise floor with
/// two to four exponentially decaying oscillatory bursts, the first of
/// which is guaranteed to be strong and to land inside the window.
///
/// Real seismic collections are event-aligned waveforms: every trace
/// carries a dominant arrival. A pure-noise trace would have a flat PAA
/// (all segment means ≈ 0), making iSAX lower bounds vacuous for it; the
/// guaranteed main event keeps the family indexable, like its real
/// counterpart.
#[must_use]
pub fn seismic_like(count: usize, len: usize, seed: u64) -> Dataset {
    generate_with(count, len, seed, |normal, rng, out| {
        for v in out.iter_mut() {
            *v = (0.1 * normal.next()) as f32;
        }
        let bursts = 2 + rng.below(3);
        for b in 0..bursts {
            // The main arrival: strong, early enough to develop fully.
            let (onset, amp) = if b == 0 {
                (
                    rng.below((out.len() * 3 / 4).max(1)),
                    rng.range_f64(3.0, 6.0),
                )
            } else {
                (rng.below(out.len().max(1)), rng.range_f64(0.8, 3.0))
            };
            let omega = rng.range_f64(0.3, 1.2);
            let decay = rng.range_f64(0.015, 0.08);
            let phase = rng.range_f64(0.0, std::f64::consts::TAU);
            for (t, sample) in out.iter_mut().enumerate().skip(onset) {
                let dt = (t - onset) as f64;
                let burst = amp * (-decay * dt).exp() * (omega * dt + phase).sin();
                *sample += burst as f32;
            }
        }
    })
}

/// Pure sinusoids with random frequency/phase — a highly clusterable family
/// used by tests and examples.
#[must_use]
pub fn sines(count: usize, len: usize, seed: u64) -> Dataset {
    generate_with(count, len, seed, |_normal, rng, out| {
        let omega = rng.range_f64(0.02, 0.12) * std::f64::consts::TAU;
        let phase = rng.range_f64(0.0, std::f64::consts::TAU);
        for (t, v) in out.iter_mut().enumerate() {
            *v = (omega * t as f64 + phase).sin() as f32;
        }
    })
}

/// Independent N(0, 1) points — the least structured (and least indexable)
/// family; useful as a worst case in tests.
#[must_use]
pub fn white_noise(count: usize, len: usize, seed: u64) -> Dataset {
    generate_with(count, len, seed, |normal, _rng, out| {
        for v in out.iter_mut() {
            *v = normal.next_f32();
        }
    })
}

/// Shared scaffolding: one forked RNG per series (so `count` does not change
/// the content of earlier series), z-normalization applied at the end.
fn generate_with(
    count: usize,
    len: usize,
    seed: u64,
    fill: impl Fn(&mut NormalGen, &mut SplitMix64, &mut [f32]),
) -> Dataset {
    assert!(len > 0, "series length must be non-zero");
    let mut root = SplitMix64::new(seed);
    let mut flat = vec![0.0f32; count * len];
    for series in flat.chunks_exact_mut(len) {
        let mut child = root.fork();
        let mut normal = NormalGen::from_rng(child.fork());
        fill(&mut normal, &mut child, series);
        znormalize(series);
    }
    Dataset::from_flat(flat, len).expect("generated buffer is rectangular")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_stability_under_count_growth() {
        // Generating more series must not change the earlier ones.
        let small = random_walk(3, 32, 5);
        let big = random_walk(10, 32, 5);
        for i in 0..3 {
            assert_eq!(small.get(i), big.get(i));
        }
    }

    #[test]
    fn families_are_distinguishable() {
        // Random walks have (much) higher lag-1 autocorrelation than white
        // noise; seismic has outlier bursts. Loose sanity checks that each
        // generator produces its intended character.
        let rw = random_walk(20, 128, 1);
        let wn = white_noise(20, 128, 1);
        let lag1 = |ds: &Dataset| -> f64 {
            let mut acc = 0.0;
            for s in ds.iter() {
                let mut c = 0.0;
                for w in s.windows(2) {
                    c += f64::from(w[0]) * f64::from(w[1]);
                }
                acc += c / (s.len() - 1) as f64;
            }
            acc / ds.len() as f64
        };
        assert!(lag1(&rw) > 0.7, "random walk lag-1 {}", lag1(&rw));
        assert!(lag1(&wn).abs() < 0.3, "white noise lag-1 {}", lag1(&wn));
    }

    #[test]
    fn eeg_concentrates_less_energy_in_segment_means_than_walks() {
        // The mechanism behind the paper's "real data prunes worse than
        // random" observation: PAA segment means capture most of a random
        // walk's energy (smooth, low-frequency) but much less of EEG-like
        // data's (beta-band oscillations live *within* a segment). Less
        // captured energy -> looser iSAX lower bounds -> worse pruning.
        let n = 30;
        let len = 128;
        let seg = 8; // 16 segments of 8 points
        let energy_fraction = |ds: &Dataset| -> f64 {
            let mut acc = 0.0;
            for s in ds.iter() {
                let total: f64 = s.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
                let mut captured = 0.0;
                for chunk in s.chunks_exact(seg) {
                    let m: f64 = chunk.iter().map(|&v| f64::from(v)).sum::<f64>() / seg as f64;
                    captured += m * m * seg as f64;
                }
                acc += captured / total.max(1e-12);
            }
            acc / ds.len() as f64
        };
        let eeg = energy_fraction(&eeg_like(n, len, 3));
        let rw = energy_fraction(&random_walk(n, len, 3));
        assert!(
            rw > eeg,
            "rw fraction {rw} should exceed eeg fraction {eeg}"
        );
        assert!(
            rw > 0.5,
            "random walks should be mostly low-frequency: {rw}"
        );
    }

    #[test]
    fn seismic_has_bursts() {
        let ds = seismic_like(10, 256, 11);
        // After z-normalization a bursty series has max |value| well above
        // what a flat noise series would have.
        let mut maxes = Vec::new();
        for s in ds.iter() {
            maxes.push(s.iter().fold(0.0f32, |m, v| m.max(v.abs())));
        }
        let avg_max: f32 = maxes.iter().sum::<f32>() / maxes.len() as f32;
        assert!(avg_max > 2.0, "avg max abs {avg_max}");
    }

    #[test]
    fn sines_are_smooth() {
        let ds = sines(5, 64, 9);
        for s in ds.iter() {
            for w in s.windows(2) {
                assert!((w[0] - w[1]).abs() < 1.5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_length_panics() {
        let _ = random_walk(1, 0, 0);
    }

    #[test]
    fn zero_count_is_empty() {
        let ds = eeg_like(0, 16, 1);
        assert!(ds.is_empty());
    }
}
