//! Owned, validated data series.

use crate::error::SeriesError;
use std::ops::Deref;

/// An owned data series: a non-empty, finite sequence of `f32` points.
///
/// Most APIs in this workspace take `&[f32]` directly; `DataSeries` is the
/// validated owner you use at trust boundaries (file ingestion, user
/// queries). It dereferences to `[f32]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSeries {
    points: Box<[f32]>,
}

impl DataSeries {
    /// Validates and wraps a vector of points.
    ///
    /// # Errors
    /// Returns [`SeriesError::EmptySeries`] for an empty input and
    /// [`SeriesError::NonFinite`] if any point is NaN or infinite.
    pub fn new(points: Vec<f32>) -> Result<Self, SeriesError> {
        validate(&points)?;
        Ok(Self {
            points: points.into_boxed_slice(),
        })
    }

    /// Validates and copies a slice of points.
    pub fn from_slice(points: &[f32]) -> Result<Self, SeriesError> {
        Self::new(points.to_vec())
    }

    /// Number of points in the series.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false`: construction rejects empty series.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The points as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.points
    }

    /// Consumes the series, returning its points.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.points.into_vec()
    }

    /// Returns a z-normalized copy of this series (mean 0, stddev 1).
    #[must_use]
    pub fn znormalized(&self) -> DataSeries {
        let mut v = self.points.to_vec();
        crate::znorm::znormalize(&mut v);
        DataSeries {
            points: v.into_boxed_slice(),
        }
    }
}

impl Deref for DataSeries {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.points
    }
}

impl AsRef<[f32]> for DataSeries {
    fn as_ref(&self) -> &[f32] {
        &self.points
    }
}

impl TryFrom<Vec<f32>> for DataSeries {
    type Error = SeriesError;

    fn try_from(points: Vec<f32>) -> Result<Self, Self::Error> {
        Self::new(points)
    }
}

/// Validates that a slice is a legal data series (non-empty, all finite).
///
/// # Errors
/// See [`DataSeries::new`].
pub fn validate(points: &[f32]) -> Result<(), SeriesError> {
    if points.is_empty() {
        return Err(SeriesError::EmptySeries);
    }
    for (index, &value) in points.iter().enumerate() {
        if !value.is_finite() {
            return Err(SeriesError::NonFinite { index, value });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_finite_series() {
        let s = DataSeries::new(vec![1.0, -2.0, 3.5]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.as_slice(), &[1.0, -2.0, 3.5]);
        assert!(!s.is_empty());
    }

    #[test]
    fn new_rejects_empty() {
        assert_eq!(DataSeries::new(vec![]), Err(SeriesError::EmptySeries));
    }

    #[test]
    fn new_rejects_nan_and_inf() {
        let err = DataSeries::new(vec![0.0, f32::NAN]).unwrap_err();
        assert!(matches!(err, SeriesError::NonFinite { index: 1, .. }));
        let err = DataSeries::new(vec![f32::INFINITY]).unwrap_err();
        assert!(matches!(err, SeriesError::NonFinite { index: 0, .. }));
        let err = DataSeries::new(vec![1.0, 2.0, f32::NEG_INFINITY]).unwrap_err();
        assert!(matches!(err, SeriesError::NonFinite { index: 2, .. }));
    }

    #[test]
    fn deref_and_indexing_work() {
        let s = DataSeries::new(vec![5.0, 6.0]).unwrap();
        assert_eq!(s[0], 5.0);
        assert_eq!(s.iter().sum::<f32>(), 11.0);
    }

    #[test]
    fn znormalized_has_zero_mean_unit_std() {
        let s = DataSeries::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let z = s.znormalized();
        let mean: f32 = z.iter().sum::<f32>() / z.len() as f32;
        assert!(mean.abs() < 1e-6);
        let var: f32 = z.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / z.len() as f32;
        assert!((var - 1.0).abs() < 1e-5);
    }

    #[test]
    fn try_from_round_trips() {
        let s: DataSeries = vec![1.0, 2.0].try_into().unwrap();
        assert_eq!(s.into_vec(), vec![1.0, 2.0]);
    }
}
