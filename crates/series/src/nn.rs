//! Nearest-neighbor query results.

/// The answer to an exact 1-NN query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// Position of the nearest series in its collection.
    pub pos: u32,
    /// Squared distance to the query (Euclidean or DTW, per the query).
    pub dist_sq: f32,
}

impl Match {
    /// Bundles a position and a squared distance.
    #[must_use]
    pub fn new(pos: u32, dist_sq: f32) -> Self {
        Self { pos, dist_sq }
    }

    /// The (non-squared) distance.
    #[must_use]
    pub fn dist(&self) -> f32 {
        self.dist_sq.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_is_sqrt() {
        let m = Match::new(3, 25.0);
        assert_eq!(m.pos, 3);
        assert_eq!(m.dist(), 5.0);
    }
}
