//! Portable scalar distance kernels.
//!
//! Written so LLVM can auto-vectorize the main loops (`chunks_exact`,
//! no early exits inside the unrolled body). These are both the fallback
//! for non-x86 targets and the differential-testing oracle for the SIMD
//! kernels.

/// Number of points accumulated between early-abandon checks.
///
/// Checking every point defeats vectorization; every 16 points keeps the
/// abandon granularity fine enough for the BSF loop while letting the body
/// vectorize.
const ABANDON_STRIDE: usize = 16;

/// Squared Euclidean distance, scalar.
#[must_use]
pub fn euclidean_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let chunks_a = a.chunks_exact(8);
    let chunks_b = b.chunks_exact(8);
    let rem_a = chunks_a.remainder();
    let rem_b = chunks_b.remainder();
    for (ca, cb) in chunks_a.zip(chunks_b) {
        for i in 0..8 {
            let d = ca[i] - cb[i];
            acc[i] += d * d;
        }
    }
    let mut sum: f32 = acc.iter().sum();
    for (x, y) in rem_a.iter().zip(rem_b) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// Early-abandoning squared Euclidean distance, scalar.
///
/// Returns `Some(d2)` iff `d2 < limit`; `None` otherwise (may abandon).
#[must_use]
pub fn euclidean_sq_bounded(a: &[f32], b: &[f32], limit: f32) -> Option<f32> {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0.0f32;
    let mut i = 0;
    while i + ABANDON_STRIDE <= a.len() {
        let mut partial = 0.0f32;
        for k in i..i + ABANDON_STRIDE {
            let d = a[k] - b[k];
            partial += d * d;
        }
        sum += partial;
        if sum >= limit {
            return None;
        }
        i += ABANDON_STRIDE;
    }
    for k in i..a.len() {
        let d = a[k] - b[k];
        sum += d * d;
    }
    if sum < limit {
        Some(sum)
    } else {
        None
    }
}

/// Early-abandoning squared distance with caller-chosen visit order.
#[must_use]
pub fn euclidean_sq_ordered(a: &[f32], b: &[f32], order: &[u32], limit: f32) -> Option<f32> {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), order.len());
    let mut sum = 0.0f32;
    for chunk in order.chunks(ABANDON_STRIDE) {
        for &idx in chunk {
            let idx = idx as usize;
            let d = a[idx] - b[idx];
            sum += d * d;
        }
        if sum >= limit {
            return None;
        }
    }
    if sum < limit {
        Some(sum)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive() {
        let a: Vec<f32> = (0..37).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..37).map(|i| (36 - i) as f32 * 0.25).collect();
        let want: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        let got = euclidean_sq(&a, &b);
        assert!((got - want).abs() < want * 1e-5 + 1e-6);
    }

    #[test]
    fn bounded_abandons_at_limit_boundary() {
        // Distance contribution of 1.0 per point.
        let a = vec![1.0f32; 64];
        let b = vec![0.0f32; 64];
        assert_eq!(euclidean_sq_bounded(&a, &b, 64.5), Some(64.0));
        assert_eq!(euclidean_sq_bounded(&a, &b, 64.0), None, "strict limit");
        assert_eq!(euclidean_sq_bounded(&a, &b, 10.0), None);
    }

    #[test]
    fn bounded_handles_short_series() {
        // Shorter than the abandon stride: only the tail loop runs.
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.0f32, 0.0, 0.0];
        assert_eq!(euclidean_sq_bounded(&a, &b, 100.0), Some(13.0));
        assert_eq!(euclidean_sq_bounded(&a, &b, 13.0), None);
    }

    #[test]
    fn ordered_visits_all_points() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [0.0f32; 4];
        let order = [3u32, 2, 1, 0];
        assert_eq!(euclidean_sq_ordered(&a, &b, &order, 1e9), Some(30.0));
    }

    #[test]
    fn ordered_abandons_early_with_big_points_first() {
        let mut a = vec![0.01f32; 100];
        a[99] = 100.0; // one huge point
        let b = vec![0.0f32; 100];
        // Visiting index 99 first exceeds the limit in the first chunk.
        let mut order: Vec<u32> = (0..100).rev().collect();
        assert_eq!(euclidean_sq_ordered(&a, &b, &order, 50.0), None);
        // Natural order also abandons (sum eventually exceeds), same result.
        order.reverse();
        assert_eq!(euclidean_sq_ordered(&a, &b, &order, 50.0), None);
    }
}
