//! Dynamic Time Warping with a Sakoe-Chiba band, plus the LB_Keogh lower
//! bound and its envelope.
//!
//! This implements the paper's "current work" extension (§V): the iSAX index
//! is built once and can then answer both Euclidean and DTW queries. DTW
//! query answering uses the classic cascade: envelope → LB_Keogh → exact
//! banded DTW with early abandoning.
//!
//! All costs are **squared** point differences, so DTW values compare
//! directly against squared Euclidean BSFs (for band 0, DTW == squared ED).

/// Computes the lower/upper envelope of `series` for warping radius `r`.
///
/// `lower[i] = min(series[i-r ..= i+r])`, `upper[i] = max(...)` (clamped at
/// the boundaries), computed in O(n) with monotonic deques (Lemire's
/// streaming min-max).
///
/// The output vectors are cleared and refilled, so they can be reused across
/// calls to avoid allocation.
pub fn envelope(series: &[f32], r: usize, lower: &mut Vec<f32>, upper: &mut Vec<f32>) {
    let n = series.len();
    lower.clear();
    upper.clear();
    lower.reserve(n);
    upper.reserve(n);
    if n == 0 {
        return;
    }
    // Deques hold indices; front is the extremum of the current window.
    let mut min_dq: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut max_dq: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    // Window for output i is [i-r, i+r]; we push index j when it enters any
    // window (j <= i+r) and pop when it leaves (j < i-r).
    let mut j = 0; // next index to insert
    for i in 0..n {
        let hi = (i + r).min(n - 1);
        while j <= hi {
            while min_dq.back().is_some_and(|&k| series[k] >= series[j]) {
                min_dq.pop_back();
            }
            min_dq.push_back(j);
            while max_dq.back().is_some_and(|&k| series[k] <= series[j]) {
                max_dq.pop_back();
            }
            max_dq.push_back(j);
            j += 1;
        }
        let lo = i.saturating_sub(r);
        while min_dq.front().is_some_and(|&k| k < lo) {
            min_dq.pop_front();
        }
        while max_dq.front().is_some_and(|&k| k < lo) {
            max_dq.pop_front();
        }
        lower.push(series[*min_dq.front().expect("window non-empty")]);
        upper.push(series[*max_dq.front().expect("window non-empty")]);
    }
}

/// LB_Keogh lower bound (squared) of DTW(query, candidate) given the
/// query's envelope.
///
/// Dispatches to the AVX2 kernel when
/// [`simd_enabled`](crate::distance::simd_enabled), otherwise to the
/// scalar loop ([`lb_keogh_sq_scalar`]).
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
#[must_use]
pub fn lb_keogh_sq(candidate: &[f32], lower: &[f32], upper: &[f32]) -> f32 {
    assert_eq!(candidate.len(), lower.len(), "lb_keogh_sq length mismatch");
    assert_eq!(candidate.len(), upper.len(), "lb_keogh_sq length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if crate::distance::simd_enabled() {
            // SAFETY: `simd_enabled` implies AVX2/FMA; lengths checked above.
            return unsafe { crate::distance::simd::lb_keogh_sq_avx2(candidate, lower, upper) };
        }
    }
    lb_keogh_sq_scalar(candidate, lower, upper)
}

/// Scalar LB_Keogh — the non-x86 fallback and the differential-testing
/// oracle for the AVX2 kernel.
#[must_use]
pub fn lb_keogh_sq_scalar(candidate: &[f32], lower: &[f32], upper: &[f32]) -> f32 {
    debug_assert_eq!(candidate.len(), lower.len());
    debug_assert_eq!(candidate.len(), upper.len());
    let mut sum = 0.0f32;
    for i in 0..candidate.len() {
        let c = candidate[i];
        if c > upper[i] {
            let d = c - upper[i];
            sum += d * d;
        } else if c < lower[i] {
            let d = lower[i] - c;
            sum += d * d;
        }
    }
    sum
}

/// Early-abandoning LB_Keogh: returns `Some(lb)` iff `lb < limit`.
///
/// Dispatches like [`lb_keogh_sq`].
#[inline]
#[must_use]
pub fn lb_keogh_sq_bounded(
    candidate: &[f32],
    lower: &[f32],
    upper: &[f32],
    limit: f32,
) -> Option<f32> {
    assert_eq!(candidate.len(), lower.len(), "lb_keogh_sq length mismatch");
    assert_eq!(candidate.len(), upper.len(), "lb_keogh_sq length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if crate::distance::simd_enabled() {
            // SAFETY: `simd_enabled` implies AVX2/FMA; lengths checked above.
            return unsafe {
                crate::distance::simd::lb_keogh_sq_bounded_avx2(candidate, lower, upper, limit)
            };
        }
    }
    lb_keogh_sq_bounded_scalar(candidate, lower, upper, limit)
}

/// Scalar early-abandoning LB_Keogh (partial-sum check every 16 points) —
/// the non-x86 fallback and the differential-testing oracle.
#[must_use]
pub fn lb_keogh_sq_bounded_scalar(
    candidate: &[f32],
    lower: &[f32],
    upper: &[f32],
    limit: f32,
) -> Option<f32> {
    debug_assert_eq!(candidate.len(), lower.len());
    debug_assert_eq!(candidate.len(), upper.len());
    let mut sum = 0.0f32;
    for (chunk_c, (chunk_l, chunk_u)) in candidate
        .chunks(16)
        .zip(lower.chunks(16).zip(upper.chunks(16)))
    {
        for i in 0..chunk_c.len() {
            let c = chunk_c[i];
            if c > chunk_u[i] {
                let d = c - chunk_u[i];
                sum += d * d;
            } else if c < chunk_l[i] {
                let d = chunk_l[i] - c;
                sum += d * d;
            }
        }
        if sum >= limit {
            return None;
        }
    }
    Some(sum)
}

/// Exact DTW (squared costs) between equal-length series with a Sakoe-Chiba
/// band of radius `band`.
///
/// `band == 0` degenerates to the squared Euclidean distance.
///
/// # Panics
/// Panics if the lengths differ.
#[must_use]
pub fn dtw_sq(a: &[f32], b: &[f32], band: usize) -> f32 {
    dtw_sq_bounded(a, b, band, f32::INFINITY).expect("infinite limit never abandons")
}

/// Early-abandoning banded DTW: returns `Some(d)` iff the exact banded DTW
/// cost `d` is strictly below `limit`; abandons as soon as an entire DP row
/// exceeds `limit`.
///
/// Dispatches to the AVX2 row-vectorized kernel when
/// [`simd_enabled`](crate::distance::simd_enabled). Unlike the tolerance-
/// tested Euclidean/LB_Keogh pairs, the two DTW variants perform the same
/// float operations in the same order, so values and abandon decisions are
/// bit-identical across dispatch modes.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
#[must_use]
pub fn dtw_sq_bounded(a: &[f32], b: &[f32], band: usize, limit: f32) -> Option<f32> {
    assert_eq!(a.len(), b.len(), "dtw_sq length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if crate::distance::simd_enabled() {
            // SAFETY: `simd_enabled` implies AVX2/FMA; lengths checked above.
            return unsafe { crate::distance::simd::dtw_sq_bounded_avx2(a, b, band, limit) };
        }
    }
    dtw_sq_bounded_scalar(a, b, band, limit)
}

/// Scalar early-abandoning banded DTW — the non-x86 fallback and the
/// bit-exact oracle for the AVX2 kernel.
#[must_use]
pub fn dtw_sq_bounded_scalar(a: &[f32], b: &[f32], band: usize, limit: f32) -> Option<f32> {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 0 {
        return if 0.0 < limit { Some(0.0) } else { None };
    }
    let r = band.min(n - 1);
    let inf = f32::INFINITY;
    let mut prev = vec![inf; n];
    let mut curr = vec![inf; n];
    for (i, &av) in a.iter().enumerate() {
        let lo = i.saturating_sub(r);
        let hi = (i + r).min(n - 1);
        curr[lo..=hi].fill(inf);
        let mut row_min = inf;
        for j in lo..=hi {
            let bv = b[j];
            let d = (av - bv) * (av - bv);
            let best = if i == 0 && j == 0 {
                0.0
            } else {
                let up = if i > 0 { prev[j] } else { inf };
                let diag = if i > 0 && j > 0 { prev[j - 1] } else { inf };
                let left = if j > lo { curr[j - 1] } else { inf };
                up.min(diag).min(left)
            };
            let cost = best + d;
            curr[j] = cost;
            row_min = row_min.min(cost);
        }
        if row_min >= limit {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let result = prev[n - 1];
    if result < limit {
        Some(result)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::scalar::euclidean_sq;

    fn env_of(s: &[f32], r: usize) -> (Vec<f32>, Vec<f32>) {
        let mut lo = Vec::new();
        let mut up = Vec::new();
        envelope(s, r, &mut lo, &mut up);
        (lo, up)
    }

    fn series(seed: u64, n: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / 16_777_216.0) * 2.0 - 1.0
            })
            .collect()
    }

    /// Naive O(n^2 * r) DTW oracle with explicit DP table.
    fn dtw_naive(a: &[f32], b: &[f32], r: usize) -> f32 {
        let n = a.len();
        let mut dp = vec![vec![f32::INFINITY; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i.abs_diff(j) > r {
                    continue;
                }
                let d = (a[i] - b[j]) * (a[i] - b[j]);
                let best = if i == 0 && j == 0 {
                    0.0
                } else {
                    let up = if i > 0 { dp[i - 1][j] } else { f32::INFINITY };
                    let left = if j > 0 { dp[i][j - 1] } else { f32::INFINITY };
                    let diag = if i > 0 && j > 0 {
                        dp[i - 1][j - 1]
                    } else {
                        f32::INFINITY
                    };
                    up.min(left).min(diag)
                };
                dp[i][j] = best + d;
            }
        }
        dp[n - 1][n - 1]
    }

    #[test]
    fn envelope_radius_zero_is_identity() {
        let s = series(1, 50);
        let (lo, up) = env_of(&s, 0);
        assert_eq!(lo, s);
        assert_eq!(up, s);
    }

    #[test]
    fn envelope_bounds_series() {
        let s = series(2, 100);
        for r in [1usize, 3, 10, 99, 200] {
            let (lo, up) = env_of(&s, r);
            assert_eq!(lo.len(), s.len());
            for i in 0..s.len() {
                assert!(lo[i] <= s[i] && s[i] <= up[i], "r={r} i={i}");
                // Check against naive window min/max.
                let a = i.saturating_sub(r);
                let b = (i + r).min(s.len() - 1);
                let w = &s[a..=b];
                let wmin = w.iter().copied().fold(f32::INFINITY, f32::min);
                let wmax = w.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                assert_eq!(lo[i], wmin);
                assert_eq!(up[i], wmax);
            }
        }
    }

    #[test]
    fn envelope_empty_series() {
        let (lo, up) = env_of(&[], 5);
        assert!(lo.is_empty() && up.is_empty());
    }

    #[test]
    fn dtw_band_zero_equals_euclidean() {
        let a = series(3, 64);
        let b = series(4, 64);
        let d = dtw_sq(&a, &b, 0);
        let e = euclidean_sq(&a, &b);
        assert!((d - e).abs() <= e * 1e-4 + 1e-5);
    }

    #[test]
    fn dtw_identical_series_is_zero() {
        let a = series(5, 48);
        for band in [0usize, 2, 10] {
            assert_eq!(dtw_sq(&a, &a, band), 0.0);
        }
    }

    #[test]
    fn dtw_matches_naive_oracle() {
        for n in [1usize, 2, 8, 21, 40] {
            for r in [0usize, 1, 3, 7, 40] {
                let a = series(n as u64 * 7 + 1, n);
                let b = series(n as u64 * 7 + 2, n);
                let got = dtw_sq(&a, &b, r);
                let want = dtw_naive(&a, &b, r.min(n - 1));
                assert!(
                    (got - want).abs() <= want.abs() * 1e-4 + 1e-5,
                    "n={n} r={r}: got {got} want {want}"
                );
            }
        }
    }

    #[test]
    fn wider_band_never_increases_cost() {
        let a = series(11, 60);
        let b = series(12, 60);
        let mut last = f32::INFINITY;
        for r in [0usize, 1, 2, 4, 8, 16, 59] {
            let d = dtw_sq(&a, &b, r);
            assert!(d <= last + 1e-4, "band {r} increased cost: {d} > {last}");
            last = d;
        }
    }

    #[test]
    fn dtw_shifted_sine_much_smaller_than_euclidean() {
        let n = 128;
        let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.2).sin()).collect();
        let b: Vec<f32> = (0..n).map(|i| ((i + 3) as f32 * 0.2).sin()).collect();
        let ed = euclidean_sq(&a, &b);
        let dtw = dtw_sq(&a, &b, 8);
        assert!(dtw < ed * 0.1, "dtw {dtw} should be far below ed {ed}");
    }

    #[test]
    fn lb_keogh_lower_bounds_dtw() {
        for seed in 0..20u64 {
            let n = 50;
            let q = series(seed * 2 + 1, n);
            let c = series(seed * 2 + 2, n);
            for r in [0usize, 1, 5, 12] {
                let (lo, up) = env_of(&q, r);
                let lb = lb_keogh_sq(&c, &lo, &up);
                let d = dtw_sq(&q, &c, r);
                assert!(
                    lb <= d + d.abs() * 1e-4 + 1e-4,
                    "seed={seed} r={r}: lb {lb} > dtw {d}"
                );
            }
        }
    }

    #[test]
    fn lb_keogh_bounded_matches_full() {
        let q = series(31, 80);
        let c = series(32, 80);
        let (lo, up) = env_of(&q, 4);
        let full = lb_keogh_sq(&c, &lo, &up);
        // SIMD bounded/full variants accumulate in different lane groupings,
        // so (like the Euclidean kernels) values match to tolerance, not bits.
        let got = lb_keogh_sq_bounded(&c, &lo, &up, full + 1.0).expect("below limit");
        assert!((got - full).abs() <= full * 1e-4 + 1e-5);
        assert_eq!(lb_keogh_sq_bounded(&c, &lo, &up, full * 0.5), None);
    }

    #[test]
    fn dtw_bounded_decision_is_exact() {
        let a = series(41, 64);
        let b = series(42, 64);
        let full = dtw_sq(&a, &b, 5);
        assert_eq!(dtw_sq_bounded(&a, &b, 5, full * 1.01), Some(full));
        assert_eq!(dtw_sq_bounded(&a, &b, 5, full * 0.99), None);
        assert_eq!(dtw_sq_bounded(&a, &b, 5, full), None, "strict");
    }

    #[test]
    fn dtw_empty_series() {
        assert_eq!(dtw_sq(&[], &[], 3), 0.0);
        assert_eq!(dtw_sq_bounded(&[], &[], 3, 0.0), None);
    }
}
