//! AVX2/FMA distance kernels (x86-64 only).
//!
//! The paper evaluates both lower-bound and real distances with SIMD
//! ("MESSI uses SIMD for calculating the distances", §III). These kernels
//! mirror that: 8-lane f32 fused multiply-add over unaligned loads, with a
//! horizontal reduction at the end. Every kernel is differentially tested
//! against the scalar oracle, including the early-abandon decision.

#![allow(unsafe_code)]

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::{
    __m256, _mm256_castps256_ps128, _mm256_extractf128_ps, _mm256_fmadd_ps, _mm256_loadu_ps,
    _mm256_setzero_ps, _mm256_sub_ps, _mm_add_ps, _mm_add_ss, _mm_cvtss_f32, _mm_movehl_ps,
    _mm_shuffle_ps,
};

/// `true` when the running CPU supports AVX2 and FMA.
///
/// `is_x86_feature_detected!` caches its result in an atomic, so calling
/// this in hot loops is a load + branch.
#[inline]
#[must_use]
pub fn avx2_fma_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

/// Horizontal sum of all 8 lanes.
///
/// # Safety
/// Caller must ensure AVX is available.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum256(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps::<1>(v);
    let sum4 = _mm_add_ps(lo, hi);
    let shuf = _mm_movehl_ps(sum4, sum4);
    let sum2 = _mm_add_ps(sum4, shuf);
    let shuf1 = _mm_shuffle_ps::<0b01>(sum2, sum2);
    _mm_cvtss_f32(_mm_add_ss(sum2, shuf1))
}

/// Squared Euclidean distance with AVX2 + FMA.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and FMA
/// (see [`avx2_fma_available`]) and that `a.len() == b.len()`.
#[target_feature(enable = "avx2", enable = "fma")]
#[must_use]
pub unsafe fn euclidean_sq_avx2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // SAFETY: every load stays within `a`/`b` (offsets bounded by `n`), and
    // the caller guarantees AVX2/FMA support and equal lengths.
    unsafe {
        let n = a.len();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut i = 0;
        // Two independent accumulators hide FMA latency.
        while i + 16 <= n {
            let va0 = _mm256_loadu_ps(pa.add(i));
            let vb0 = _mm256_loadu_ps(pb.add(i));
            let d0 = _mm256_sub_ps(va0, vb0);
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            let va1 = _mm256_loadu_ps(pa.add(i + 8));
            let vb1 = _mm256_loadu_ps(pb.add(i + 8));
            let d1 = _mm256_sub_ps(va1, vb1);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            i += 16;
        }
        if i + 8 <= n {
            let va = _mm256_loadu_ps(pa.add(i));
            let vb = _mm256_loadu_ps(pb.add(i));
            let d = _mm256_sub_ps(va, vb);
            acc0 = _mm256_fmadd_ps(d, d, acc0);
            i += 8;
        }
        let mut sum = hsum256(acc0) + hsum256(acc1);
        while i < n {
            let d = *a.get_unchecked(i) - *b.get_unchecked(i);
            sum += d * d;
            i += 1;
        }
        sum
    }
}

/// Early-abandoning squared Euclidean distance with AVX2 + FMA.
///
/// Checks the partial sum every 32 points. Returns `Some(d2)` iff
/// `d2 < limit`, else `None`.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and FMA and `a.len() == b.len()`.
#[target_feature(enable = "avx2", enable = "fma")]
#[must_use]
pub unsafe fn euclidean_sq_bounded_avx2(a: &[f32], b: &[f32], limit: f32) -> Option<f32> {
    debug_assert_eq!(a.len(), b.len());
    // SAFETY: every load stays within `a`/`b` (offsets bounded by `n`), and
    // the caller guarantees AVX2/FMA support and equal lengths.
    unsafe {
        let n = a.len();
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut sum = 0.0f32;
        let mut i = 0;
        while i + 32 <= n {
            let mut acc = _mm256_setzero_ps();
            for k in 0..4 {
                let va = _mm256_loadu_ps(pa.add(i + 8 * k));
                let vb = _mm256_loadu_ps(pb.add(i + 8 * k));
                let d = _mm256_sub_ps(va, vb);
                acc = _mm256_fmadd_ps(d, d, acc);
            }
            sum += hsum256(acc);
            if sum >= limit {
                return None;
            }
            i += 32;
        }
        while i + 8 <= n {
            let va = _mm256_loadu_ps(pa.add(i));
            let vb = _mm256_loadu_ps(pb.add(i));
            let d = _mm256_sub_ps(va, vb);
            sum += hsum256(_mm256_fmadd_ps(d, d, _mm256_setzero_ps()));
            i += 8;
        }
        while i < n {
            let d = *a.get_unchecked(i) - *b.get_unchecked(i);
            sum += d * d;
            i += 1;
        }
        if sum < limit {
            Some(sum)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::scalar;

    fn series(seed: u64, n: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / 16_777_216.0) * 6.0 - 3.0
            })
            .collect()
    }

    #[test]
    fn avx2_matches_scalar_differentially() {
        if !avx2_fma_available() {
            eprintln!("skipping: no AVX2/FMA on this host");
            return;
        }
        for n in [
            0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100, 128, 255, 256, 1024,
        ] {
            let a = series(n as u64 + 1, n);
            let b = series(n as u64 + 2, n);
            let scalar_d = scalar::euclidean_sq(&a, &b);
            // SAFETY: AVX2/FMA availability checked above; equal lengths.
            let simd_d = unsafe { euclidean_sq_avx2(&a, &b) };
            assert!(
                (scalar_d - simd_d).abs() <= scalar_d * 1e-4 + 1e-5,
                "n={n}: scalar {scalar_d} vs simd {simd_d}"
            );
        }
    }

    #[test]
    fn bounded_avx2_decision_matches_scalar() {
        if !avx2_fma_available() {
            eprintln!("skipping: no AVX2/FMA on this host");
            return;
        }
        for n in [8usize, 32, 33, 64, 100, 256] {
            let a = series(n as u64 + 10, n);
            let b = series(n as u64 + 20, n);
            let full = scalar::euclidean_sq(&a, &b);
            for limit in [
                0.0,
                full * 0.25,
                full * 0.999,
                full,
                full * 1.001,
                full * 4.0,
            ] {
                let s = scalar::euclidean_sq_bounded(&a, &b, limit);
                // SAFETY: AVX2/FMA availability checked above; equal lengths.
                let v = unsafe { euclidean_sq_bounded_avx2(&a, &b, limit) };
                match (s, v) {
                    (Some(x), Some(y)) => {
                        assert!((x - y).abs() <= x * 1e-4 + 1e-5);
                    }
                    (None, None) => {}
                    // Rounding at the exact boundary may flip the decision;
                    // only accept disagreement within float tolerance.
                    (sv, vv) => {
                        let near = (full - limit).abs() <= full * 1e-4 + 1e-5;
                        assert!(near, "n={n} limit={limit}: scalar {sv:?} vs simd {vv:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn detection_is_consistent() {
        // Just exercises the detection path; result depends on the host.
        let _ = avx2_fma_available();
    }
}
