//! AVX2/FMA distance kernels (x86-64 only).
//!
//! The paper evaluates both lower-bound and real distances with SIMD
//! ("MESSI uses SIMD for calculating the distances", §III). These kernels
//! mirror that: 8-lane f32 fused multiply-add over unaligned loads, with a
//! horizontal reduction at the end. Every kernel is differentially tested
//! against the scalar oracle, including the early-abandon decision.

#![allow(unsafe_code)]

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::{
    __m256, _mm256_castps256_ps128, _mm256_extractf128_ps, _mm256_fmadd_ps, _mm256_loadu_ps,
    _mm256_max_ps, _mm256_min_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
    _mm256_storeu_ps, _mm256_sub_ps, _mm_add_ps, _mm_add_ss, _mm_cvtss_f32, _mm_movehl_ps,
    _mm_shuffle_ps,
};

/// `true` when the running CPU supports AVX2 and FMA.
///
/// `is_x86_feature_detected!` caches its result in an atomic, so calling
/// this in hot loops is a load + branch.
#[inline]
#[must_use]
pub fn avx2_fma_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

/// Horizontal sum of all 8 lanes.
///
/// # Safety
/// Caller must ensure AVX is available.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum256(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps::<1>(v);
    let sum4 = _mm_add_ps(lo, hi);
    let shuf = _mm_movehl_ps(sum4, sum4);
    let sum2 = _mm_add_ps(sum4, shuf);
    let shuf1 = _mm_shuffle_ps::<0b01>(sum2, sum2);
    _mm_cvtss_f32(_mm_add_ss(sum2, shuf1))
}

/// Squared Euclidean distance with AVX2 + FMA.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and FMA
/// (see [`avx2_fma_available`]) and that `a.len() == b.len()`.
#[target_feature(enable = "avx2", enable = "fma")]
#[must_use]
pub unsafe fn euclidean_sq_avx2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // SAFETY: every load stays within `a`/`b` (offsets bounded by `n`), and
    // the caller guarantees AVX2/FMA support and equal lengths.
    unsafe {
        let n = a.len();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut i = 0;
        // Two independent accumulators hide FMA latency.
        while i + 16 <= n {
            let va0 = _mm256_loadu_ps(pa.add(i));
            let vb0 = _mm256_loadu_ps(pb.add(i));
            let d0 = _mm256_sub_ps(va0, vb0);
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            let va1 = _mm256_loadu_ps(pa.add(i + 8));
            let vb1 = _mm256_loadu_ps(pb.add(i + 8));
            let d1 = _mm256_sub_ps(va1, vb1);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            i += 16;
        }
        if i + 8 <= n {
            let va = _mm256_loadu_ps(pa.add(i));
            let vb = _mm256_loadu_ps(pb.add(i));
            let d = _mm256_sub_ps(va, vb);
            acc0 = _mm256_fmadd_ps(d, d, acc0);
            i += 8;
        }
        let mut sum = hsum256(acc0) + hsum256(acc1);
        while i < n {
            let d = *a.get_unchecked(i) - *b.get_unchecked(i);
            sum += d * d;
            i += 1;
        }
        sum
    }
}

/// Early-abandoning squared Euclidean distance with AVX2 + FMA.
///
/// Checks the partial sum every 32 points. Returns `Some(d2)` iff
/// `d2 < limit`, else `None`.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and FMA and `a.len() == b.len()`.
#[target_feature(enable = "avx2", enable = "fma")]
#[must_use]
pub unsafe fn euclidean_sq_bounded_avx2(a: &[f32], b: &[f32], limit: f32) -> Option<f32> {
    debug_assert_eq!(a.len(), b.len());
    // SAFETY: every load stays within `a`/`b` (offsets bounded by `n`), and
    // the caller guarantees AVX2/FMA support and equal lengths.
    unsafe {
        let n = a.len();
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut sum = 0.0f32;
        let mut i = 0;
        while i + 32 <= n {
            let mut acc = _mm256_setzero_ps();
            for k in 0..4 {
                let va = _mm256_loadu_ps(pa.add(i + 8 * k));
                let vb = _mm256_loadu_ps(pb.add(i + 8 * k));
                let d = _mm256_sub_ps(va, vb);
                acc = _mm256_fmadd_ps(d, d, acc);
            }
            sum += hsum256(acc);
            if sum >= limit {
                return None;
            }
            i += 32;
        }
        while i + 8 <= n {
            let va = _mm256_loadu_ps(pa.add(i));
            let vb = _mm256_loadu_ps(pb.add(i));
            let d = _mm256_sub_ps(va, vb);
            sum += hsum256(_mm256_fmadd_ps(d, d, _mm256_setzero_ps()));
            i += 8;
        }
        while i < n {
            let d = *a.get_unchecked(i) - *b.get_unchecked(i);
            sum += d * d;
            i += 1;
        }
        if sum < limit {
            Some(sum)
        } else {
            None
        }
    }
}

/// LB_Keogh lower bound (squared) with AVX2 + FMA.
///
/// The envelope clamp is branch-free lane math: both excursions
/// `max(c - upper, 0)` and `max(lower - c, 0)` are computed per lane (for a
/// valid envelope `lower <= upper` at most one is non-zero) and
/// squared-accumulated.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and FMA (see
/// [`avx2_fma_available`]) and that all three slices have equal lengths.
#[target_feature(enable = "avx2", enable = "fma")]
#[must_use]
pub unsafe fn lb_keogh_sq_avx2(candidate: &[f32], lower: &[f32], upper: &[f32]) -> f32 {
    debug_assert_eq!(candidate.len(), lower.len());
    debug_assert_eq!(candidate.len(), upper.len());
    // SAFETY: every load stays within the slices (offsets bounded by `n`),
    // and the caller guarantees AVX2/FMA support and equal lengths.
    unsafe {
        let n = candidate.len();
        let pc = candidate.as_ptr();
        let pl = lower.as_ptr();
        let pu = upper.as_ptr();
        let zero = _mm256_setzero_ps();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        // Two independent accumulators hide FMA latency.
        while i + 16 <= n {
            let c0 = _mm256_loadu_ps(pc.add(i));
            let above0 = _mm256_max_ps(_mm256_sub_ps(c0, _mm256_loadu_ps(pu.add(i))), zero);
            let below0 = _mm256_max_ps(_mm256_sub_ps(_mm256_loadu_ps(pl.add(i)), c0), zero);
            acc0 = _mm256_fmadd_ps(above0, above0, acc0);
            acc0 = _mm256_fmadd_ps(below0, below0, acc0);
            let c1 = _mm256_loadu_ps(pc.add(i + 8));
            let above1 = _mm256_max_ps(_mm256_sub_ps(c1, _mm256_loadu_ps(pu.add(i + 8))), zero);
            let below1 = _mm256_max_ps(_mm256_sub_ps(_mm256_loadu_ps(pl.add(i + 8)), c1), zero);
            acc1 = _mm256_fmadd_ps(above1, above1, acc1);
            acc1 = _mm256_fmadd_ps(below1, below1, acc1);
            i += 16;
        }
        if i + 8 <= n {
            let c = _mm256_loadu_ps(pc.add(i));
            let above = _mm256_max_ps(_mm256_sub_ps(c, _mm256_loadu_ps(pu.add(i))), zero);
            let below = _mm256_max_ps(_mm256_sub_ps(_mm256_loadu_ps(pl.add(i)), c), zero);
            acc0 = _mm256_fmadd_ps(above, above, acc0);
            acc0 = _mm256_fmadd_ps(below, below, acc0);
            i += 8;
        }
        let mut sum = hsum256(acc0) + hsum256(acc1);
        while i < n {
            let c = *candidate.get_unchecked(i);
            let above = (c - *upper.get_unchecked(i)).max(0.0);
            let below = (*lower.get_unchecked(i) - c).max(0.0);
            sum += above * above + below * below;
            i += 1;
        }
        sum
    }
}

/// Early-abandoning LB_Keogh with AVX2 + FMA: checks the partial sum every
/// 32 points, like [`euclidean_sq_bounded_avx2`]. Returns `Some(lb)` iff
/// `lb < limit`.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and FMA and that all three
/// slices have equal lengths.
#[target_feature(enable = "avx2", enable = "fma")]
#[must_use]
pub unsafe fn lb_keogh_sq_bounded_avx2(
    candidate: &[f32],
    lower: &[f32],
    upper: &[f32],
    limit: f32,
) -> Option<f32> {
    debug_assert_eq!(candidate.len(), lower.len());
    debug_assert_eq!(candidate.len(), upper.len());
    // SAFETY: every load stays within the slices (offsets bounded by `n`),
    // and the caller guarantees AVX2/FMA support and equal lengths.
    unsafe {
        let n = candidate.len();
        let pc = candidate.as_ptr();
        let pl = lower.as_ptr();
        let pu = upper.as_ptr();
        let zero = _mm256_setzero_ps();
        let mut sum = 0.0f32;
        let mut i = 0;
        while i + 32 <= n {
            let mut acc = _mm256_setzero_ps();
            for k in 0..4 {
                let c = _mm256_loadu_ps(pc.add(i + 8 * k));
                let above =
                    _mm256_max_ps(_mm256_sub_ps(c, _mm256_loadu_ps(pu.add(i + 8 * k))), zero);
                let below =
                    _mm256_max_ps(_mm256_sub_ps(_mm256_loadu_ps(pl.add(i + 8 * k)), c), zero);
                acc = _mm256_fmadd_ps(above, above, acc);
                acc = _mm256_fmadd_ps(below, below, acc);
            }
            sum += hsum256(acc);
            if sum >= limit {
                return None;
            }
            i += 32;
        }
        while i + 8 <= n {
            let c = _mm256_loadu_ps(pc.add(i));
            let above = _mm256_max_ps(_mm256_sub_ps(c, _mm256_loadu_ps(pu.add(i))), zero);
            let below = _mm256_max_ps(_mm256_sub_ps(_mm256_loadu_ps(pl.add(i)), c), zero);
            let mut acc = _mm256_fmadd_ps(above, above, zero);
            acc = _mm256_fmadd_ps(below, below, acc);
            sum += hsum256(acc);
            i += 8;
        }
        while i < n {
            let c = *candidate.get_unchecked(i);
            let above = (c - *upper.get_unchecked(i)).max(0.0);
            let below = (*lower.get_unchecked(i) - c).max(0.0);
            sum += above * above + below * below;
            i += 1;
        }
        if sum < limit {
            Some(sum)
        } else {
            None
        }
    }
}

thread_local! {
    /// Scratch rows for [`dtw_sq_bounded_avx2`] (`prev`/`curr`/`cost`/`mins`,
    /// each `n` long, in one flat grow-only buffer). DTW verification runs
    /// per-candidate inside hot query loops, so the kernel reuses this
    /// per-thread buffer instead of paying four heap allocations per call.
    static DTW_SCRATCH: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Early-abandoning banded DTW with an AVX2-vectorized row pass.
///
/// Per DP row the two vectorizable parts — the cell costs `(a_i - b_j)^2`
/// for a lane of `j` and the lane-wise `min` of the two row-independent
/// predecessors `min(prev[j], prev[j-1])` — are computed 8 columns at a
/// time into scratch rows; a short serial pass then folds in the
/// loop-carried left predecessor. Every float operation (subtract, square,
/// `min`, add) is performed in the same order as the scalar kernel, so
/// results AND the row-min early-abandon decision are **bit-identical** to
/// [`scalar` DTW](crate::distance::dtw::dtw_sq_bounded_scalar) at every
/// limit — the differential tests assert exact equality.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and FMA (see
/// [`avx2_fma_available`]) and that `a.len() == b.len()`.
#[must_use]
pub unsafe fn dtw_sq_bounded_avx2(a: &[f32], b: &[f32], band: usize, limit: f32) -> Option<f32> {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 0 {
        return if 0.0 < limit { Some(0.0) } else { None };
    }
    DTW_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < 4 * n {
            buf.resize(4 * n, 0.0);
        }
        // SAFETY: forwards the caller's contract (AVX2/FMA support, equal
        // non-zero lengths); the scratch slice is exactly `4 * n` long.
        unsafe { dtw_rows_avx2(a, b, band.min(n - 1), limit, &mut buf[..4 * n]) }
    })
}

/// The DP-row loop of [`dtw_sq_bounded_avx2`], over a caller-provided flat
/// scratch buffer it splits into the four `n`-length rows.
///
/// # Safety
/// Caller must ensure AVX2/FMA support, `a.len() == b.len() == n > 0`,
/// `r < n`, and `scratch.len() == 4 * n`.
#[target_feature(enable = "avx2", enable = "fma")]
#[must_use]
unsafe fn dtw_rows_avx2(
    a: &[f32],
    b: &[f32],
    r: usize,
    limit: f32,
    scratch: &mut [f32],
) -> Option<f32> {
    let n = a.len();
    let inf = f32::INFINITY;
    let (mut prev, rest) = scratch.split_at_mut(n);
    let (mut curr, rest) = rest.split_at_mut(n);
    let (cost, mins) = rest.split_at_mut(n);
    // Band-edge cells one past a row's window are read (as `up`/`diag`)
    // before any row writes them; like the scalar kernel's fresh rows they
    // must start at +inf, so stale values from a previous call on this
    // thread never leak into the recurrence. `cost`/`mins` need no reset:
    // every cell read in a row was written earlier in that row.
    prev.fill(inf);
    curr.fill(inf);
    // SAFETY: all pointer offsets stay inside the window `lo..=hi` (for the
    // `diag` load, `j >= 1` is established before the vector loop), every
    // buffer is `n` long, and the caller guarantees AVX2/FMA support.
    unsafe {
        let pb = b.as_ptr();
        for (i, &av) in a.iter().enumerate() {
            let lo = i.saturating_sub(r);
            let hi = (i + r).min(n - 1);
            let va = _mm256_set1_ps(av);
            let pp = prev.as_ptr();
            let pcost = cost.as_mut_ptr();
            let pmins = mins.as_mut_ptr();
            let mut j = lo;
            if j == 0 {
                // No `prev[j-1]` at the left boundary: diag is +inf there,
                // so min(up, diag) degenerates to up.
                let d = av - *b.get_unchecked(0);
                *cost.get_unchecked_mut(0) = d * d;
                *mins.get_unchecked_mut(0) = *prev.get_unchecked(0);
                j = 1;
            }
            while j + 8 <= hi + 1 {
                let vb = _mm256_loadu_ps(pb.add(j));
                let d = _mm256_sub_ps(va, vb);
                _mm256_storeu_ps(pcost.add(j), _mm256_mul_ps(d, d));
                let up = _mm256_loadu_ps(pp.add(j));
                let diag = _mm256_loadu_ps(pp.add(j - 1));
                _mm256_storeu_ps(pmins.add(j), _mm256_min_ps(up, diag));
                j += 8;
            }
            while j <= hi {
                let d = av - *b.get_unchecked(j);
                *cost.get_unchecked_mut(j) = d * d;
                *mins.get_unchecked_mut(j) =
                    (*prev.get_unchecked(j)).min(*prev.get_unchecked(j - 1));
                j += 1;
            }
            // Serial pass: the left predecessor is loop-carried.
            let mut row_min = inf;
            let mut left = inf;
            for j in lo..=hi {
                let best = if i == 0 && j == 0 {
                    0.0
                } else {
                    (*mins.get_unchecked(j)).min(left)
                };
                let c = best + *cost.get_unchecked(j);
                *curr.get_unchecked_mut(j) = c;
                left = c;
                row_min = row_min.min(c);
            }
            if row_min >= limit {
                return None;
            }
            std::mem::swap(&mut prev, &mut curr);
        }
    }
    let result = prev[n - 1];
    if result < limit {
        Some(result)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::scalar;

    fn series(seed: u64, n: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / 16_777_216.0) * 6.0 - 3.0
            })
            .collect()
    }

    #[test]
    fn avx2_matches_scalar_differentially() {
        if !avx2_fma_available() {
            eprintln!("skipping: no AVX2/FMA on this host");
            return;
        }
        for n in [
            0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100, 128, 255, 256, 1024,
        ] {
            let a = series(n as u64 + 1, n);
            let b = series(n as u64 + 2, n);
            let scalar_d = scalar::euclidean_sq(&a, &b);
            // SAFETY: AVX2/FMA availability checked above; equal lengths.
            let simd_d = unsafe { euclidean_sq_avx2(&a, &b) };
            assert!(
                (scalar_d - simd_d).abs() <= scalar_d * 1e-4 + 1e-5,
                "n={n}: scalar {scalar_d} vs simd {simd_d}"
            );
        }
    }

    #[test]
    fn bounded_avx2_decision_matches_scalar() {
        if !avx2_fma_available() {
            eprintln!("skipping: no AVX2/FMA on this host");
            return;
        }
        for n in [8usize, 32, 33, 64, 100, 256] {
            let a = series(n as u64 + 10, n);
            let b = series(n as u64 + 20, n);
            let full = scalar::euclidean_sq(&a, &b);
            for limit in [
                0.0,
                full * 0.25,
                full * 0.999,
                full,
                full * 1.001,
                full * 4.0,
            ] {
                let s = scalar::euclidean_sq_bounded(&a, &b, limit);
                // SAFETY: AVX2/FMA availability checked above; equal lengths.
                let v = unsafe { euclidean_sq_bounded_avx2(&a, &b, limit) };
                match (s, v) {
                    (Some(x), Some(y)) => {
                        assert!((x - y).abs() <= x * 1e-4 + 1e-5);
                    }
                    (None, None) => {}
                    // Rounding at the exact boundary may flip the decision;
                    // only accept disagreement within float tolerance.
                    (sv, vv) => {
                        let near = (full - limit).abs() <= full * 1e-4 + 1e-5;
                        assert!(near, "n={n} limit={limit}: scalar {sv:?} vs simd {vv:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn detection_is_consistent() {
        // Just exercises the detection path; result depends on the host.
        let _ = avx2_fma_available();
    }

    fn envelope_of(q: &[f32], r: usize) -> (Vec<f32>, Vec<f32>) {
        let mut lo = Vec::new();
        let mut up = Vec::new();
        crate::distance::dtw::envelope(q, r, &mut lo, &mut up);
        (lo, up)
    }

    #[test]
    fn lb_keogh_avx2_matches_scalar_differentially() {
        if !avx2_fma_available() {
            eprintln!("skipping: no AVX2/FMA on this host");
            return;
        }
        use crate::distance::dtw::lb_keogh_sq_scalar;
        for n in [
            0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100, 128, 255, 256, 1024,
        ] {
            let q = series(n as u64 + 100, n);
            let c = series(n as u64 + 200, n);
            for r in [0usize, 1, 5] {
                let (lo, up) = envelope_of(&q, r);
                let scalar_lb = lb_keogh_sq_scalar(&c, &lo, &up);
                // SAFETY: AVX2/FMA availability checked above; equal lengths.
                let simd_lb = unsafe { lb_keogh_sq_avx2(&c, &lo, &up) };
                assert!(
                    (scalar_lb - simd_lb).abs() <= scalar_lb * 1e-4 + 1e-5,
                    "n={n} r={r}: scalar {scalar_lb} vs simd {simd_lb}"
                );
            }
        }
    }

    #[test]
    fn lb_keogh_bounded_avx2_decision_matches_scalar() {
        if !avx2_fma_available() {
            eprintln!("skipping: no AVX2/FMA on this host");
            return;
        }
        use crate::distance::dtw::{lb_keogh_sq_bounded_scalar, lb_keogh_sq_scalar};
        for n in [8usize, 32, 33, 64, 100, 256] {
            let q = series(n as u64 + 300, n);
            let c = series(n as u64 + 400, n);
            let (lo, up) = envelope_of(&q, 3);
            let full = lb_keogh_sq_scalar(&c, &lo, &up);
            for limit in [
                0.0,
                full * 0.25,
                full * 0.999,
                full,
                full * 1.001,
                full * 4.0,
            ] {
                let s = lb_keogh_sq_bounded_scalar(&c, &lo, &up, limit);
                // SAFETY: AVX2/FMA availability checked above; equal lengths.
                let v = unsafe { lb_keogh_sq_bounded_avx2(&c, &lo, &up, limit) };
                match (s, v) {
                    (Some(x), Some(y)) => {
                        assert!((x - y).abs() <= x * 1e-4 + 1e-5);
                    }
                    (None, None) => {}
                    // Rounding at the exact boundary may flip the decision;
                    // only accept disagreement within float tolerance.
                    (sv, vv) => {
                        let near = (full - limit).abs() <= full * 1e-4 + 1e-5;
                        assert!(near, "n={n} limit={limit}: scalar {sv:?} vs simd {vv:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn dtw_avx2_is_bit_identical_to_scalar() {
        if !avx2_fma_available() {
            eprintln!("skipping: no AVX2/FMA on this host");
            return;
        }
        use crate::distance::dtw::dtw_sq_bounded_scalar;
        for n in [1usize, 2, 7, 8, 9, 17, 33, 64, 100, 256] {
            let a = series(n as u64 + 500, n);
            let b = series(n as u64 + 600, n);
            for band in [0usize, 1, 3, 8, 40, n] {
                let full = dtw_sq_bounded_scalar(&a, &b, band, f32::INFINITY)
                    .expect("infinite limit never abandons");
                for limit in [0.0, full * 0.5, full, full * 1.001, f32::INFINITY] {
                    let s = dtw_sq_bounded_scalar(&a, &b, band, limit);
                    // SAFETY: AVX2/FMA availability checked above; equal lengths.
                    let v = unsafe { dtw_sq_bounded_avx2(&a, &b, band, limit) };
                    // Same ops in the same order: exact equality, no tolerance.
                    assert_eq!(
                        s.map(f32::to_bits),
                        v.map(f32::to_bits),
                        "n={n} band={band} limit={limit}"
                    );
                }
            }
        }
    }

    #[test]
    fn dtw_avx2_empty_series() {
        if !avx2_fma_available() {
            return;
        }
        // SAFETY: AVX2/FMA availability checked above; equal (zero) lengths.
        unsafe {
            assert_eq!(dtw_sq_bounded_avx2(&[], &[], 3, 1.0), Some(0.0));
            assert_eq!(dtw_sq_bounded_avx2(&[], &[], 3, 0.0), None);
        }
    }
}
