//! Distance kernels.
//!
//! The paper's engines spend nearly all query time in two kernels: the
//! *real* (Euclidean) distance between raw series, and the *lower-bound*
//! distance between a query summary and iSAX summaries (the latter lives in
//! `dsidx-isax`). Both ParIS and MESSI evaluate real distances with SIMD and
//! abandon a candidate as soon as its partial sum exceeds the best-so-far
//! (BSF); this module provides exactly those kernels.
//!
//! All functions return **squared** Euclidean distances. Comparisons against
//! a BSF are monotone under squaring, so engines never need the square root.

pub mod dtw;
pub mod scalar;
#[cfg(target_arch = "x86_64")]
pub mod simd;

use std::sync::atomic::{AtomicU8, Ordering};

/// Cached dispatch decision: 0 = undecided, 1 = SIMD, 2 = scalar.
static SIMD_STATE: AtomicU8 = AtomicU8::new(0);

/// `true` when the running CPU has the AVX2/FMA features the SIMD kernels
/// need (always `false` off x86-64). Ignores the kill-switch.
#[inline]
#[must_use]
pub fn hardware_simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        simd::avx2_fma_available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// `true` when distance kernels should dispatch to their SIMD variants.
///
/// This is THE gate every kernel dispatch point in the workspace consults
/// (Euclidean, LB_Keogh, DTW here; the MINDIST table lookups in
/// `dsidx-isax` re-export it). It requires hardware support AND honors the
/// `DSIDX_NO_SIMD` kill-switch: setting `DSIDX_NO_SIMD=1` (any non-empty
/// value other than `0`) forces every kernel onto the scalar fallback, so
/// operators can bisect kernel regressions in production and the scalar
/// path stays testable on AVX2 hosts. The decision is computed once and
/// cached in an atomic; hot loops pay a load and a predictable branch.
#[inline]
#[must_use]
pub fn simd_enabled() -> bool {
    // ORDERING: relaxed — the cached decision is a self-contained value
    // (no data is published through it) and every racing initializer
    // computes the same answer.
    match SIMD_STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_simd_state(),
    }
}

#[cold]
fn init_simd_state() -> bool {
    let enabled = hardware_simd_available() && !simd_kill_switch_active();
    // ORDERING: relaxed — racing initializers compute the same value; the
    // store is idempotent and publishes nothing beyond itself.
    SIMD_STATE.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
    enabled
}

/// `true` when the `DSIDX_NO_SIMD` environment kill-switch is set (any
/// non-empty value other than `0`). While active, every dispatch point —
/// including the [`set_simd_enabled`] override — stays on the scalar path.
#[must_use]
pub fn simd_kill_switch_active() -> bool {
    std::env::var_os("DSIDX_NO_SIMD").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Overrides the cached dispatch decision (benchmark/test hook: the
/// `kernels` experiment times both paths in one process). Requesting SIMD
/// on hardware without it is ignored, and the `DSIDX_NO_SIMD` kill-switch
/// always wins — an operator bisecting a kernel regression must not have
/// the scalar pin silently undone by a library consumer calling this.
/// Returns the effective state.
pub fn set_simd_enabled(on: bool) -> bool {
    let effective = on && hardware_simd_available() && !simd_kill_switch_active();
    // ORDERING: relaxed — same contract as the initializer: the flag is a
    // self-contained dispatch decision, not a publication point.
    SIMD_STATE.store(if effective { 1 } else { 2 }, Ordering::Relaxed);
    effective
}

/// Squared Euclidean distance between two equal-length series.
///
/// Dispatches to an AVX2/FMA kernel when the CPU supports it (detected once,
/// cached by `std`), otherwise to an auto-vectorizable scalar loop.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
#[must_use]
pub fn euclidean_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "euclidean_sq length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if simd_enabled() {
            // SAFETY: `simd_enabled` implies AVX2/FMA; lengths equal.
            return unsafe { simd::euclidean_sq_avx2(a, b) };
        }
    }
    scalar::euclidean_sq(a, b)
}

/// Euclidean distance (square root of [`euclidean_sq`]).
#[inline]
#[must_use]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    euclidean_sq(a, b).sqrt()
}

/// Early-abandoning squared Euclidean distance.
///
/// Returns `Some(d2)` iff the full squared distance `d2` is **strictly
/// smaller** than `limit`; otherwise returns `None`, possibly having
/// abandoned the computation part-way (the partial sum is monotone
/// non-decreasing, so once it reaches `limit` the outcome is decided).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
#[must_use]
pub fn euclidean_sq_bounded(a: &[f32], b: &[f32], limit: f32) -> Option<f32> {
    assert_eq!(a.len(), b.len(), "euclidean_sq_bounded length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if simd_enabled() {
            // SAFETY: `simd_enabled` implies AVX2/FMA; lengths equal.
            return unsafe { simd::euclidean_sq_bounded_avx2(a, b, limit) };
        }
    }
    scalar::euclidean_sq_bounded(a, b, limit)
}

/// Early-abandoning squared distance visiting points in a caller-chosen
/// order (the UCR Suite "reordering" optimization: visiting the largest
/// |query| points first abandons sooner on z-normalized data).
///
/// Semantics match [`euclidean_sq_bounded`].
///
/// # Panics
/// Panics if lengths differ or `order` is not a permutation-sized slice.
#[must_use]
pub fn euclidean_sq_ordered(a: &[f32], b: &[f32], order: &[u32], limit: f32) -> Option<f32> {
    assert_eq!(a.len(), b.len(), "euclidean_sq_ordered length mismatch");
    assert_eq!(a.len(), order.len(), "order must cover every point");
    scalar::euclidean_sq_ordered(a, b, order, limit)
}

/// Builds the UCR-style visit order for a query: point indices sorted by
/// decreasing `|q_i|`.
#[must_use]
pub fn abandon_order(query: &[f32]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..query.len() as u32).collect();
    order.sort_by(|&i, &j| {
        query[j as usize]
            .abs()
            .partial_cmp(&query[i as usize].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    fn series(seed: u64, n: usize) -> Vec<f32> {
        // Simple deterministic pseudo-random data; no rand dependency needed.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / 16_777_216.0) * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn euclidean_sq_matches_naive_across_lengths() {
        for n in [
            1usize, 2, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 128, 256, 1000,
        ] {
            let a = series(n as u64, n);
            let b = series(n as u64 + 1, n);
            let got = euclidean_sq(&a, &b);
            let want = naive(&a, &b);
            assert!(
                (got - want).abs() <= want.abs() * 1e-4 + 1e-5,
                "n={n}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn euclidean_is_sqrt() {
        let a = [0.0f32, 3.0];
        let b = [4.0f32, 0.0];
        assert!((euclidean(&a, &b) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn identical_series_have_zero_distance() {
        let a = series(3, 256);
        assert_eq!(euclidean_sq(&a, &a), 0.0);
        assert_eq!(euclidean_sq_bounded(&a, &a, 1.0), Some(0.0));
    }

    #[test]
    fn bounded_agrees_with_full_distance() {
        for n in [8usize, 64, 256, 257] {
            let a = series(7, n);
            let b = series(8, n);
            let full = euclidean_sq(&a, &b);
            // Limit above the distance: must return the exact value.
            let got = euclidean_sq_bounded(&a, &b, full * 1.5 + 1.0).expect("below limit");
            assert!((got - full).abs() <= full * 1e-4 + 1e-5);
            // Limit below the distance: must abandon.
            assert_eq!(euclidean_sq_bounded(&a, &b, full * 0.5), None);
            // Limit exactly at the distance: strict comparison -> None.
            assert_eq!(euclidean_sq_bounded(&a, &b, 0.0), None);
        }
    }

    #[test]
    fn set_simd_enabled_cannot_override_kill_switch() {
        let initial = simd_enabled();
        // The override is capped by hardware support AND the DSIDX_NO_SIMD
        // kill-switch — under the CI scalar-pin run this asserts that a
        // library consumer requesting SIMD is refused.
        let granted = set_simd_enabled(true);
        assert_eq!(
            granted,
            hardware_simd_available() && !simd_kill_switch_active()
        );
        assert_eq!(simd_enabled(), granted);
        set_simd_enabled(initial);
    }

    #[test]
    fn ordered_abandon_agrees_with_bounded() {
        let n = 128;
        let q = series(100, n);
        let c = series(101, n);
        let order = abandon_order(&q);
        let full = euclidean_sq(&q, &c);
        let got = euclidean_sq_ordered(&q, &c, &order, full + 1.0).expect("below limit");
        assert!((got - full).abs() <= full * 1e-4 + 1e-5);
        assert_eq!(euclidean_sq_ordered(&q, &c, &order, full * 0.9), None);
    }

    #[test]
    fn abandon_order_sorts_by_magnitude() {
        let q = [0.1f32, -5.0, 2.0, -0.5];
        assert_eq!(abandon_order(&q), vec![1, 2, 3, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = euclidean_sq(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn zero_length_is_zero() {
        assert_eq!(euclidean_sq(&[], &[]), 0.0);
        assert_eq!(euclidean_sq_bounded(&[], &[], 1.0), Some(0.0));
    }
}
