//! Data series primitives for the `dsidx` workspace.
//!
//! A *data series* is a fixed-length ordered sequence of real values
//! (`&[f32]`). This crate provides the substrate every other `dsidx` crate
//! builds on:
//!
//! * [`Dataset`] — a flat, cache-friendly collection of equal-length series,
//! * [`znorm`] — z-normalization (the similarity-search convention),
//! * [`distance`] — Euclidean distance kernels (scalar and runtime-detected
//!   AVX2/FMA), early-abandoning variants, and banded DTW with LB_Keogh,
//! * [`gen`] — deterministic dataset generators standing in for the paper's
//!   Synthetic (random walk), SALD (EEG) and Seismic collections,
//! * [`load`] — the standard raw binary f32 dataset format (headerless
//!   little-endian records), for ingesting the real collections.
//!
//! All distances in hot paths are *squared* Euclidean distances; take a
//! square root only at API boundaries.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod dataset;
pub mod distance;
pub mod error;
pub mod gen;
pub mod load;
pub mod nn;
pub mod series;
pub mod stats;
pub mod znorm;

pub use dataset::Dataset;
pub use error::SeriesError;
pub use load::{load_raw_f32, load_raw_f32_range, raw_f32_record_count, write_raw_f32};
pub use nn::Match;
pub use series::DataSeries;
