//! Flat, cache-friendly collections of equal-length series.

use crate::error::SeriesError;

/// A collection of equal-length data series stored in one flat buffer.
///
/// Series `i` occupies `data[i * series_len .. (i + 1) * series_len]`. This
/// layout is what the paper's "RawData array" is: sequential summarization
/// walks it linearly, and query-time real-distance computations fetch series
/// by position with no pointer chasing.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    data: Vec<f32>,
    series_len: usize,
}

impl Dataset {
    /// Creates an empty dataset of series of length `series_len`.
    ///
    /// # Errors
    /// Returns [`SeriesError::EmptySeries`] if `series_len == 0`.
    pub fn new(series_len: usize) -> Result<Self, SeriesError> {
        if series_len == 0 {
            return Err(SeriesError::EmptySeries);
        }
        Ok(Self {
            data: Vec::new(),
            series_len,
        })
    }

    /// Creates an empty dataset with room for `count` series.
    ///
    /// # Errors
    /// Returns [`SeriesError::EmptySeries`] if `series_len == 0`.
    pub fn with_capacity(series_len: usize, count: usize) -> Result<Self, SeriesError> {
        let mut ds = Self::new(series_len)?;
        ds.data.reserve_exact(count * series_len);
        Ok(ds)
    }

    /// Wraps an existing flat buffer.
    ///
    /// # Errors
    /// Returns [`SeriesError::EmptySeries`] if `series_len == 0`, or
    /// [`SeriesError::RaggedBuffer`] if `data.len()` is not a multiple of
    /// `series_len`.
    pub fn from_flat(data: Vec<f32>, series_len: usize) -> Result<Self, SeriesError> {
        if series_len == 0 {
            return Err(SeriesError::EmptySeries);
        }
        if data.len() % series_len != 0 {
            return Err(SeriesError::RaggedBuffer {
                buffer_len: data.len(),
                series_len,
            });
        }
        Ok(Self { data, series_len })
    }

    /// Appends one series.
    ///
    /// # Errors
    /// Returns [`SeriesError::LengthMismatch`] if `series.len()` differs from
    /// the dataset's series length.
    pub fn push(&mut self, series: &[f32]) -> Result<(), SeriesError> {
        if series.len() != self.series_len {
            return Err(SeriesError::LengthMismatch {
                expected: self.series_len,
                actual: series.len(),
            });
        }
        self.data.extend_from_slice(series);
        Ok(())
    }

    /// Number of series in the dataset.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() / self.series_len
    }

    /// `true` when the dataset holds no series.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Length of every series in the dataset.
    #[must_use]
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Returns series `i`, panicking on out-of-bounds (hot-path accessor).
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> &[f32] {
        &self.data[i * self.series_len..(i + 1) * self.series_len]
    }

    /// Returns series `i`, or an error when out of bounds.
    ///
    /// # Errors
    /// Returns [`SeriesError::OutOfBounds`] if `i >= self.len()`.
    pub fn try_get(&self, i: usize) -> Result<&[f32], SeriesError> {
        if i >= self.len() {
            return Err(SeriesError::OutOfBounds {
                index: i,
                len: self.len(),
            });
        }
        Ok(self.get(i))
    }

    /// Iterates over all series in position order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.series_len)
    }

    /// The underlying flat buffer.
    #[must_use]
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the dataset, returning the flat buffer.
    #[must_use]
    pub fn into_flat(self) -> Vec<f32> {
        self.data
    }

    /// Z-normalizes every series in place.
    pub fn znormalize_all(&mut self) {
        for s in self.data.chunks_exact_mut(self.series_len) {
            crate::znorm::znormalize(s);
        }
    }

    /// Splits `0..len()` into `parts` near-equal contiguous position ranges.
    ///
    /// Used by the parallel engines to hand each worker a disjoint slice of
    /// the dataset. Earlier ranges get the remainder, so sizes differ by at
    /// most one. `parts` must be non-zero.
    #[must_use]
    pub fn position_ranges(&self, parts: usize) -> Vec<std::ops::Range<usize>> {
        split_ranges(self.len(), parts)
    }
}

/// Splits `0..total` into `parts` near-equal contiguous ranges.
///
/// Empty ranges are omitted, so the result may contain fewer than `parts`
/// entries when `total < parts`.
#[must_use]
pub fn split_ranges(total: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts > 0, "parts must be non-zero");
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts.min(total));
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, total);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::new(3).unwrap();
        ds.push(&[1.0, 2.0, 3.0]).unwrap();
        ds.push(&[4.0, 5.0, 6.0]).unwrap();
        ds
    }

    #[test]
    fn new_rejects_zero_length() {
        assert!(Dataset::new(0).is_err());
        assert!(Dataset::from_flat(vec![], 0).is_err());
    }

    #[test]
    fn push_and_get() {
        let ds = sample();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.get(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.get(1), &[4.0, 5.0, 6.0]);
        assert_eq!(ds.series_len(), 3);
        assert!(!ds.is_empty());
    }

    #[test]
    fn push_rejects_wrong_length() {
        let mut ds = sample();
        let err = ds.push(&[1.0]).unwrap_err();
        assert_eq!(
            err,
            SeriesError::LengthMismatch {
                expected: 3,
                actual: 1
            }
        );
    }

    #[test]
    fn try_get_bounds() {
        let ds = sample();
        assert!(ds.try_get(1).is_ok());
        assert_eq!(
            ds.try_get(2),
            Err(SeriesError::OutOfBounds { index: 2, len: 2 })
        );
    }

    #[test]
    fn from_flat_checks_divisibility() {
        assert!(Dataset::from_flat(vec![0.0; 6], 3).is_ok());
        let err = Dataset::from_flat(vec![0.0; 7], 3).unwrap_err();
        assert_eq!(
            err,
            SeriesError::RaggedBuffer {
                buffer_len: 7,
                series_len: 3
            }
        );
    }

    #[test]
    fn iter_yields_all_series() {
        let ds = sample();
        let collected: Vec<&[f32]> = ds.iter().collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[1], &[4.0, 5.0, 6.0]);
        assert_eq!(ds.iter().len(), 2);
    }

    #[test]
    fn znormalize_all_normalizes_each_series() {
        let mut ds = sample();
        ds.znormalize_all();
        for s in ds.iter() {
            let mean: f32 = s.iter().sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-6);
        }
    }

    #[test]
    fn empty_dataset_iterates_nothing() {
        let ds = Dataset::new(4).unwrap();
        assert_eq!(ds.len(), 0);
        assert!(ds.is_empty());
        assert_eq!(ds.iter().count(), 0);
        assert!(ds.position_ranges(4).is_empty());
    }

    #[test]
    fn split_ranges_covers_everything_disjointly() {
        for total in [0usize, 1, 2, 7, 24, 100] {
            for parts in [1usize, 2, 3, 8, 24] {
                let ranges = split_ranges(total, parts);
                let mut covered = 0;
                let mut prev_end = 0;
                for r in &ranges {
                    assert_eq!(r.start, prev_end, "ranges must be contiguous");
                    assert!(!r.is_empty());
                    covered += r.len();
                    prev_end = r.end;
                }
                assert_eq!(covered, total);
                // Near-equal: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(std::ops::Range::len).min(),
                    ranges.iter().map(std::ops::Range::len).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "parts must be non-zero")]
    fn split_ranges_zero_parts_panics() {
        let _ = split_ranges(10, 0);
    }

    #[test]
    fn with_capacity_preallocates() {
        let ds = Dataset::with_capacity(8, 100).unwrap();
        assert_eq!(ds.len(), 0);
        assert!(ds.into_flat().capacity() >= 800);
    }

    #[test]
    fn into_flat_round_trips() {
        let ds = sample();
        let flat = ds.clone().into_flat();
        let back = Dataset::from_flat(flat, 3).unwrap();
        assert_eq!(back, ds);
    }
}
