//! Z-normalization: rescaling a series to mean 0 and standard deviation 1.
//!
//! Similarity search on data series conventionally compares z-normalized
//! series (UCR Suite, iSAX line of work). The iSAX breakpoints are N(0, 1)
//! quantiles precisely because indexed series are z-normalized.

/// Standard deviations below this are treated as zero (constant series).
///
/// Matches the UCR Suite guard: a (near-)constant series z-normalizes to all
/// zeros instead of exploding.
pub const STD_EPSILON: f64 = 1e-8;

/// Returns `(mean, std)` of a series, accumulated in `f64` for stability.
///
/// The standard deviation is the population one (divide by `n`), matching
/// the UCR Suite and the iSAX implementations. Returns `(0.0, 0.0)` for an
/// empty slice.
#[must_use]
pub fn mean_std(series: &[f32]) -> (f64, f64) {
    if series.is_empty() {
        return (0.0, 0.0);
    }
    let n = series.len() as f64;
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for &v in series {
        let v = f64::from(v);
        sum += v;
        sum_sq += v * v;
    }
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    (mean, var.sqrt())
}

/// Z-normalizes a series in place.
///
/// Constant series (std below [`STD_EPSILON`]) become all zeros.
pub fn znormalize(series: &mut [f32]) {
    let (mean, std) = mean_std(series);
    if std < STD_EPSILON {
        series.fill(0.0);
        return;
    }
    // Subtract in f64: at large offsets (say 1e6) an f32 mean carries ~0.03
    // of rounding error, which would leak into every normalized point.
    let inv = 1.0 / std;
    for v in series.iter_mut() {
        *v = ((f64::from(*v) - mean) * inv) as f32;
    }
}

/// Writes the z-normalized form of `src` into `dst` (lengths must match).
///
/// # Panics
/// Panics if `src.len() != dst.len()`.
pub fn znormalize_into(src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "znormalize_into length mismatch");
    let (mean, std) = mean_std(src);
    if std < STD_EPSILON {
        dst.fill(0.0);
        return;
    }
    let inv = 1.0 / std;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = ((f64::from(s) - mean) * inv) as f32;
    }
}

/// Checks whether a series is already z-normalized within `tolerance`.
///
/// The all-zero series (our normalization of constants) is accepted.
#[must_use]
pub fn is_znormalized(series: &[f32], tolerance: f64) -> bool {
    if series.is_empty() {
        return true;
    }
    let (mean, std) = mean_std(series);
    if mean.abs() > tolerance {
        return false;
    }
    std < STD_EPSILON || (std - 1.0).abs() <= tolerance
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-9);
        assert!((s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mean_std_empty() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn znormalize_constant_becomes_zeros() {
        let mut s = [3.25; 16];
        znormalize(&mut s);
        assert!(s.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn znormalize_single_point_becomes_zero() {
        let mut s = [42.0];
        znormalize(&mut s);
        assert_eq!(s, [0.0]);
    }

    #[test]
    fn znormalize_into_matches_in_place() {
        let src = [1.0f32, 5.0, -3.0, 2.0, 0.5];
        let mut a = src;
        znormalize(&mut a);
        let mut b = [0.0f32; 5];
        znormalize_into(&src, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn znormalize_into_length_mismatch_panics() {
        let mut dst = [0.0f32; 3];
        znormalize_into(&[1.0, 2.0], &mut dst);
    }

    #[test]
    fn is_znormalized_detects() {
        let mut s = vec![1.0f32, 9.0, -4.0, 3.0, 2.0, -1.0];
        assert!(!is_znormalized(&s, 1e-4));
        znormalize(&mut s);
        assert!(is_znormalized(&s, 1e-4));
        assert!(is_znormalized(&[0.0; 8], 1e-4));
        assert!(is_znormalized(&[], 1e-4));
    }

    #[test]
    fn znormalize_is_idempotent_within_tolerance() {
        let mut s: Vec<f32> = (0..64)
            .map(|i| (i as f32 * 0.37).sin() * 3.0 + 1.0)
            .collect();
        znormalize(&mut s);
        let once = s.clone();
        znormalize(&mut s);
        for (a, b) in once.iter().zip(&s) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn znormalize_large_offset_is_stable() {
        // f32 catastrophic cancellation guard: accumulate in f64.
        let mut s: Vec<f32> = (0..128).map(|i| 1.0e6 + (i % 7) as f32).collect();
        znormalize(&mut s);
        assert!(is_znormalized(&s, 1e-2));
    }
}
