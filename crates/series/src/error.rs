//! Error type for series-level operations.

use std::fmt;

/// Errors produced by series and dataset operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesError {
    /// A series had a different length than the dataset / operation expects.
    LengthMismatch {
        /// Length required by the container or operation.
        expected: usize,
        /// Length that was actually supplied.
        actual: usize,
    },
    /// A zero-length series was supplied where a non-empty one is required.
    EmptySeries,
    /// A value was NaN or infinite at the given point.
    NonFinite {
        /// Index of the offending point within the series.
        index: usize,
        /// The offending value.
        value: f32,
    },
    /// A flat buffer's length is not a multiple of the series length.
    RaggedBuffer {
        /// Length of the flat buffer.
        buffer_len: usize,
        /// Series length it should be divisible by.
        series_len: usize,
    },
    /// An index was out of bounds for the dataset.
    OutOfBounds {
        /// The requested series index.
        index: usize,
        /// Number of series in the dataset.
        len: usize,
    },
    /// A filesystem operation failed while loading or writing raw series
    /// data (path and cause, stringified so the error stays comparable).
    Io(String),
}

impl fmt::Display for SeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SeriesError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "series length mismatch: expected {expected}, got {actual}"
                )
            }
            SeriesError::EmptySeries => write!(f, "series must be non-empty"),
            SeriesError::NonFinite { index, value } => {
                write!(f, "non-finite value {value} at point {index}")
            }
            SeriesError::RaggedBuffer {
                buffer_len,
                series_len,
            } => {
                write!(
                    f,
                    "flat buffer of {buffer_len} values is not a multiple of series length {series_len}"
                )
            }
            SeriesError::OutOfBounds { index, len } => {
                write!(f, "series index {index} out of bounds for dataset of {len}")
            }
            SeriesError::Io(ref message) => write!(f, "raw series I/O failed: {message}"),
        }
    }
}

impl std::error::Error for SeriesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SeriesError::LengthMismatch {
            expected: 256,
            actual: 128,
        };
        assert!(e.to_string().contains("256"));
        assert!(e.to_string().contains("128"));
        let e = SeriesError::RaggedBuffer {
            buffer_len: 10,
            series_len: 3,
        };
        assert!(e.to_string().contains("10"));
        let e = SeriesError::OutOfBounds { index: 5, len: 2 };
        assert!(e.to_string().contains('5'));
        assert!(SeriesError::EmptySeries.to_string().contains("non-empty"));
        let e = SeriesError::NonFinite {
            index: 1,
            value: f32::NAN,
        };
        assert!(e.to_string().contains("point 1"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SeriesError::EmptySeries);
    }
}
