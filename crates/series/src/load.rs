//! Loading (and writing) the standard raw binary dataset format.
//!
//! The collections used by the paper and its successors (Seismic from the
//! IRIS archive, SALD, the 100M-series random walks) are distributed as
//! *raw binary f32 files*: consecutive records of `series_len` IEEE-754
//! single-precision values, little-endian, no header. This module reads
//! that format into a [`Dataset`] — whole files or a bounded slice of
//! records — so the harness can ingest the real collections instead of
//! only the in-repo generators.

use crate::dataset::Dataset;
use crate::error::SeriesError;
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom, Write as _};
use std::path::Path;

/// Bytes per stored value (IEEE-754 single precision).
const VALUE_BYTES: u64 = 4;

fn io_err(e: &std::io::Error, path: &Path) -> SeriesError {
    SeriesError::Io(format!("{}: {e}", path.display()))
}

/// Number of records in a raw binary f32 file of `series_len`-point
/// series.
///
/// # Errors
/// [`SeriesError::EmptySeries`] if `series_len == 0`,
/// [`SeriesError::RaggedBuffer`] if the file size is not a whole number of
/// records, [`SeriesError::Io`] on filesystem failures.
pub fn raw_f32_record_count(
    path: impl AsRef<Path>,
    series_len: usize,
) -> Result<usize, SeriesError> {
    let path = path.as_ref();
    if series_len == 0 {
        return Err(SeriesError::EmptySeries);
    }
    let bytes = std::fs::metadata(path).map_err(|e| io_err(&e, path))?.len();
    let record_bytes = series_len as u64 * VALUE_BYTES;
    if bytes % record_bytes != 0 {
        return Err(SeriesError::RaggedBuffer {
            buffer_len: (bytes / VALUE_BYTES) as usize,
            series_len,
        });
    }
    Ok((bytes / record_bytes) as usize)
}

/// Reads a whole raw binary f32 file as a [`Dataset`] of
/// `series_len`-point series.
///
/// # Errors
/// See [`raw_f32_record_count`].
pub fn load_raw_f32(path: impl AsRef<Path>, series_len: usize) -> Result<Dataset, SeriesError> {
    let count = raw_f32_record_count(path.as_ref(), series_len)?;
    load_raw_f32_range(path, series_len, 0, count)
}

/// Reads `count` records starting at record `start` from a raw binary f32
/// file. Reading past the end is clipped (a `start` beyond the file yields
/// an empty dataset), so callers can cap huge collections with
/// `count = usize::MAX`.
///
/// # Errors
/// See [`raw_f32_record_count`].
pub fn load_raw_f32_range(
    path: impl AsRef<Path>,
    series_len: usize,
    start: usize,
    count: usize,
) -> Result<Dataset, SeriesError> {
    let path = path.as_ref();
    let total = raw_f32_record_count(path, series_len)?;
    let start = start.min(total);
    let count = count.min(total - start);
    let mut file = BufReader::new(File::open(path).map_err(|e| io_err(&e, path))?);
    let record_bytes = series_len as u64 * VALUE_BYTES;
    file.seek(SeekFrom::Start(start as u64 * record_bytes))
        .map_err(|e| io_err(&e, path))?;
    let mut ds = Dataset::with_capacity(series_len, count)?;
    let mut buf = vec![0u8; series_len * VALUE_BYTES as usize];
    let mut record = vec![0.0f32; series_len];
    for _ in 0..count {
        file.read_exact(&mut buf).map_err(|e| io_err(&e, path))?;
        for (v, chunk) in record
            .iter_mut()
            .zip(buf.chunks_exact(VALUE_BYTES as usize))
        {
            *v = f32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ds.push(&record)?;
    }
    Ok(ds)
}

/// Writes a [`Dataset`] in the raw binary f32 format (the exact inverse of
/// [`load_raw_f32`]): consecutive little-endian records, no header.
///
/// # Errors
/// [`SeriesError::Io`] on filesystem failures.
pub fn write_raw_f32(path: impl AsRef<Path>, data: &Dataset) -> Result<(), SeriesError> {
    let path = path.as_ref();
    let file = File::create(path).map_err(|e| io_err(&e, path))?;
    let mut out = std::io::BufWriter::new(file);
    for &v in data.as_flat() {
        out.write_all(&v.to_le_bytes())
            .map_err(|e| io_err(&e, path))?;
    }
    out.flush().map_err(|e| io_err(&e, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::DatasetKind;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dsidx-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trips_a_dataset() {
        let data = DatasetKind::Sald.generate(37, 24, 5);
        let path = tmp("roundtrip.f32");
        write_raw_f32(&path, &data).unwrap();
        assert_eq!(raw_f32_record_count(&path, 24).unwrap(), 37);
        let back = load_raw_f32(&path, 24).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn range_reads_clip_to_the_file() {
        let data = DatasetKind::Synthetic.generate(20, 8, 9);
        let path = tmp("range.f32");
        write_raw_f32(&path, &data).unwrap();
        let mid = load_raw_f32_range(&path, 8, 5, 10).unwrap();
        assert_eq!(mid.len(), 10);
        assert_eq!(mid.get(0), data.get(5));
        assert_eq!(mid.get(9), data.get(14));
        // Clipped tail and capped count.
        assert_eq!(
            load_raw_f32_range(&path, 8, 15, usize::MAX).unwrap().len(),
            5
        );
        assert_eq!(load_raw_f32_range(&path, 8, 99, 3).unwrap().len(), 0);
    }

    #[test]
    fn wrong_length_is_rejected_as_ragged() {
        let data = DatasetKind::Seismic.generate(10, 12, 3);
        let path = tmp("ragged.f32");
        write_raw_f32(&path, &data).unwrap();
        // 120 values split as 7-point series: not a whole record count.
        let err = load_raw_f32(&path, 7).unwrap_err();
        assert_eq!(
            err,
            SeriesError::RaggedBuffer {
                buffer_len: 120,
                series_len: 7
            }
        );
        assert_eq!(
            load_raw_f32(&path, 0).unwrap_err(),
            SeriesError::EmptySeries
        );
    }

    #[test]
    fn missing_file_reports_io() {
        let err = load_raw_f32(tmp("does-not-exist.f32"), 8).unwrap_err();
        assert!(matches!(err, SeriesError::Io(_)));
        assert!(err.to_string().contains("does-not-exist"));
    }

    #[test]
    fn format_is_little_endian_headerless() {
        let mut ds = Dataset::new(2).unwrap();
        ds.push(&[1.0, -2.5]).unwrap();
        let path = tmp("le.f32");
        write_raw_f32(&path, &ds).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 8);
        assert_eq!(&bytes[0..4], &1.0f32.to_le_bytes());
        assert_eq!(&bytes[4..8], &(-2.5f32).to_le_bytes());
    }
}
