//! Property-based tests for the series substrate.

use dsidx_series::distance::{
    abandon_order, dtw, euclidean, euclidean_sq, euclidean_sq_bounded, euclidean_sq_ordered, scalar,
};
use dsidx_series::znorm::{is_znormalized, znormalize, STD_EPSILON};
use proptest::prelude::*;

fn finite_series(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..max_len)
}

fn series_pair(max_len: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (1..max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(-100.0f32..100.0, n),
            prop::collection::vec(-100.0f32..100.0, n),
        )
    })
}

/// Lengths covering every remainder class the SIMD kernels branch on
/// (`n mod 32`: the 32-wide abandon blocks, 16- and 8-wide main loops, and
/// the scalar tail all change shape with the remainder).
fn remainder_class_pair() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (0usize..6, 0usize..32).prop_flat_map(|(blocks, rem)| {
        let n = (blocks * 32 + rem).max(1);
        (
            prop::collection::vec(-100.0f32..100.0, n),
            prop::collection::vec(-100.0f32..100.0, n),
        )
    })
}

proptest! {
    #[test]
    fn znormalize_always_yields_znormalized_or_zero(mut s in finite_series(300)) {
        znormalize(&mut s);
        prop_assert!(s.iter().all(|v| v.is_finite()));
        // Either properly normalized or the constant-series zero vector.
        let (mean, std) = dsidx_series::znorm::mean_std(&s);
        if std < STD_EPSILON {
            prop_assert!(s.iter().all(|&v| v == 0.0));
        } else {
            prop_assert!(is_znormalized(&s, 1e-3), "mean={mean} std={std}");
        }
    }

    #[test]
    fn euclidean_is_symmetric_and_nonnegative((a, b) in series_pair(256)) {
        let ab = euclidean_sq(&a, &b);
        let ba = euclidean_sq(&b, &a);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() <= ab.abs() * 1e-5 + 1e-5);
    }

    #[test]
    fn euclidean_self_distance_is_zero(a in finite_series(256)) {
        prop_assert_eq!(euclidean_sq(&a, &a), 0.0);
    }

    #[test]
    fn triangle_inequality_on_unsquared_distance(
        (a, b) in series_pair(64),
        c_seed in 0u64..1000,
    ) {
        // Third series derived deterministically with the same length.
        let c: Vec<f32> = a
            .iter()
            .enumerate()
            .map(|(i, &v)| v * 0.5 + ((i as u64 + c_seed) % 17) as f32 - 8.0)
            .collect();
        let ab = euclidean(&a, &b);
        let ac = euclidean(&a, &c);
        let cb = euclidean(&c, &b);
        prop_assert!(ab <= ac + cb + 1e-3, "ab={ab} ac={ac} cb={cb}");
    }

    #[test]
    fn bounded_distance_decision_matches_full(
        (a, b) in series_pair(256),
        frac in 0.0f32..2.0,
    ) {
        let full = euclidean_sq(&a, &b);
        let limit = full * frac + 0.001;
        let got = euclidean_sq_bounded(&a, &b, limit);
        // Strictly-below semantics, with float tolerance at the boundary.
        let near_boundary = (full - limit).abs() <= full * 1e-4 + 1e-4;
        match got {
            Some(d) => prop_assert!(
                near_boundary || ((d - full).abs() <= full * 1e-4 + 1e-5 && full < limit)
            ),
            None => prop_assert!(near_boundary || full >= limit),
        }
    }

    #[test]
    fn ordered_distance_agrees_with_plain((a, b) in series_pair(200)) {
        let order = abandon_order(&a);
        let full = euclidean_sq(&a, &b);
        let got = euclidean_sq_ordered(&a, &b, &order, full + 1.0);
        prop_assert!(got.is_some());
        let d = got.unwrap();
        prop_assert!((d - full).abs() <= full * 1e-4 + 1e-4);
    }

    #[test]
    fn dtw_never_exceeds_euclidean((a, b) in series_pair(128), band in 0usize..32) {
        let ed = euclidean_sq(&a, &b);
        let d = dtw::dtw_sq(&a, &b, band);
        prop_assert!(d <= ed + ed.abs() * 1e-4 + 1e-4, "dtw={d} ed={ed}");
    }

    #[test]
    fn lb_keogh_lower_bounds_dtw((q, c) in series_pair(96), band in 0usize..16) {
        let mut lo = Vec::new();
        let mut up = Vec::new();
        dtw::envelope(&q, band, &mut lo, &mut up);
        let lb = dtw::lb_keogh_sq(&c, &lo, &up);
        let d = dtw::dtw_sq(&q, &c, band);
        prop_assert!(lb <= d + d.abs() * 1e-4 + 1e-3, "lb={lb} dtw={d}");
    }

    #[test]
    fn envelope_contains_series(s in finite_series(200), band in 0usize..24) {
        let mut lo = Vec::new();
        let mut up = Vec::new();
        dtw::envelope(&s, band, &mut lo, &mut up);
        for i in 0..s.len() {
            prop_assert!(lo[i] <= s[i] && s[i] <= up[i]);
        }
    }

    #[test]
    fn abandon_order_is_a_permutation(q in finite_series(200)) {
        let order = abandon_order(&q);
        let mut seen = vec![false; q.len()];
        for &i in &order {
            prop_assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    // ---- SIMD kernels vs scalar oracles -------------------------------
    //
    // On non-AVX2 hosts the dispatchers resolve to the scalar kernels and
    // these properties collapse to `x == x`; on AVX2 hosts they pin the
    // vector kernels to the scalar oracles across every `n mod 32`
    // remainder class.

    #[test]
    fn simd_euclidean_matches_scalar_oracle((a, b) in remainder_class_pair()) {
        let simd = euclidean_sq(&a, &b);
        let oracle = scalar::euclidean_sq(&a, &b);
        prop_assert!(
            (simd - oracle).abs() <= oracle.abs() * 1e-4 + 1e-5,
            "simd={simd} scalar={oracle}"
        );
    }

    #[test]
    fn simd_lb_keogh_matches_scalar_oracle(
        (q, c) in remainder_class_pair(),
        band in 0usize..16,
    ) {
        let mut lo = Vec::new();
        let mut up = Vec::new();
        dtw::envelope(&q, band, &mut lo, &mut up);
        let simd = dtw::lb_keogh_sq(&c, &lo, &up);
        let oracle = dtw::lb_keogh_sq_scalar(&c, &lo, &up);
        prop_assert!(
            (simd - oracle).abs() <= oracle.abs() * 1e-4 + 1e-5,
            "simd={simd} scalar={oracle}"
        );
    }

    #[test]
    fn simd_lb_keogh_bounded_decision_matches_scalar(
        (q, c) in remainder_class_pair(),
        band in 0usize..16,
        frac in 0.0f32..2.0,
    ) {
        let mut lo = Vec::new();
        let mut up = Vec::new();
        dtw::envelope(&q, band, &mut lo, &mut up);
        let full = dtw::lb_keogh_sq_scalar(&c, &lo, &up);
        let limit = full * frac + 0.001;
        let simd = dtw::lb_keogh_sq_bounded(&c, &lo, &up, limit);
        let oracle = dtw::lb_keogh_sq_bounded_scalar(&c, &lo, &up, limit);
        // Away from the limit boundary the Some/None decision must agree;
        // right at it, lane-grouped accumulation may legitimately differ.
        let near_boundary = (full - limit).abs() <= full.abs() * 1e-4 + 1e-4;
        if !near_boundary {
            prop_assert_eq!(simd.is_some(), oracle.is_some());
        }
        if let (Some(s), Some(o)) = (simd, oracle) {
            prop_assert!((s - o).abs() <= o.abs() * 1e-4 + 1e-5, "simd={s} scalar={o}");
        }
    }

    #[test]
    fn simd_dtw_is_bit_identical_to_scalar(
        (a, b) in remainder_class_pair(),
        band in 0usize..24,
        frac in 0.0f32..2.0,
    ) {
        // The vector DTW kernel performs the same float ops in the same
        // order as the scalar recurrence, so it must agree to the bit —
        // including the Some/None early-abandon decision at every limit.
        let full = dtw::dtw_sq(&a, &b, band);
        for limit in [full * frac + 0.001, f32::INFINITY] {
            let simd = dtw::dtw_sq_bounded(&a, &b, band, limit);
            let oracle = dtw::dtw_sq_bounded_scalar(&a, &b, band, limit);
            prop_assert_eq!(
                simd.map(f32::to_bits),
                oracle.map(f32::to_bits),
                "limit={} simd={:?} scalar={:?}",
                limit,
                simd,
                oracle
            );
        }
    }
}
