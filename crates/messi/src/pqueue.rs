//! Sharded minimum priority queues for MESSI query answering.
//!
//! Leaves are inserted round-robin across shards ("each thread inserts
//! elements in the priority queues in a round-robin fashion so that load
//! balancing is achieved"); each worker then pops from one shard at a
//! time. A shard whose minimum exceeds the BSF is *closed* — every
//! remaining element is provably prunable.

use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Histogram: leaves one worker popped in one [`drain_best_first`] call —
/// the per-worker share of a MESSI queue drain.
pub const DRAIN_POPS: &str = "dsidx_messi_drain_pops";

fn drain_pops_histogram() -> &'static dsidx_obs::registry::Histogram {
    static HIST: OnceLock<&'static dsidx_obs::registry::Histogram> = OnceLock::new();
    HIST.get_or_init(|| {
        dsidx_obs::registry::histogram(
            DRAIN_POPS,
            "Leaves popped by one worker in one best-bound-first drain",
            // 1 .. ~2M pops in 4x steps.
            &dsidx_obs::registry::exponential_bounds(1, 4, 11),
        )
    })
}

/// Heap item ordered by a non-negative `f32` key via its bit pattern
/// (valid because non-negative IEEE-754 floats order like their bits).
struct Item<T> {
    key_bits: u32,
    payload: T,
}

impl<T> PartialEq for Item<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key_bits == other.key_bits
    }
}
impl<T> Eq for Item<T> {}
impl<T> PartialOrd for Item<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Item<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key_bits.cmp(&other.key_bits)
    }
}

/// A fixed set of sharded min-queues with round-robin insertion.
pub struct MinQueues<T> {
    shards: Vec<Mutex<BinaryHeap<Reverse<Item<T>>>>>,
    open: Vec<AtomicBool>,
    open_count: AtomicUsize,
    rr: AtomicUsize,
}

impl<T> MinQueues<T> {
    /// Creates `n` empty open shards (`n >= 1`).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one queue");
        let mut shards = Vec::with_capacity(n);
        shards.resize_with(n, || Mutex::new(BinaryHeap::new()));
        let mut open = Vec::with_capacity(n);
        open.resize_with(n, || AtomicBool::new(true));
        Self {
            shards,
            open,
            open_count: AtomicUsize::new(n),
            rr: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Inserts into the next shard round-robin.
    ///
    /// # Panics
    /// Panics if `key` is negative (lower bounds are non-negative).
    pub fn push_rr(&self, key: f32, payload: T) {
        assert!(key >= 0.0, "queue keys are non-negative lower bounds");
        // ORDERING: relaxed — the round-robin cursor only spreads load;
        // any interleaving is correct and the payload travels under the
        // shard's mutex.
        let shard = self.rr.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[shard].lock().push(Reverse(Item {
            key_bits: key.to_bits(),
            payload,
        }));
    }

    /// Pops the minimum of one shard, or `None` if it is empty.
    pub fn pop_min(&self, shard: usize) -> Option<(f32, T)> {
        let Reverse(item) = self.shards[shard].lock().pop()?;
        Some((f32::from_bits(item.key_bits), item.payload))
    }

    /// Marks a shard closed (exhausted or abandoned). Returns `true` if
    /// this call closed it.
    pub fn close(&self, shard: usize) -> bool {
        if self.open[shard].swap(false, Ordering::AcqRel) {
            self.open_count.fetch_sub(1, Ordering::AcqRel);
            true
        } else {
            false
        }
    }

    /// `true` while the shard has not been closed.
    #[must_use]
    pub fn is_open(&self, shard: usize) -> bool {
        self.open[shard].load(Ordering::Acquire)
    }

    /// `true` once every shard is closed.
    #[must_use]
    pub fn all_closed(&self) -> bool {
        self.open_count.load(Ordering::Acquire) == 0
    }
}

/// What a processing worker decided about one popped queue minimum.
pub enum Drain {
    /// The item was handled (processed or discarded); keep draining this
    /// shard.
    Processed,
    /// The popped minimum proves everything left in this shard is
    /// prunable: close the shard and move on.
    Abandon,
}

/// The best-bound-first processing schedule shared by every MESSI query
/// path: starting from the worker's home shard, pop minima and hand them
/// to `on_pop`; close a shard when it empties or `on_pop` abandons it;
/// migrate to the next open shard; spin briefly then yield while other
/// workers drain the rest. Returns once every shard is closed.
pub fn drain_best_first<T>(
    queues: &MinQueues<T>,
    worker: usize,
    mut on_pop: impl FnMut(f32, T) -> Drain,
) {
    let n = queues.shard_count();
    let mut shard = worker % n;
    let mut idle_cycles = 0u32;
    let mut pops = 0u64;
    loop {
        if queues.all_closed() {
            if dsidx_obs::enabled() {
                drain_pops_histogram().observe(pops);
            }
            return;
        }
        if !queues.is_open(shard) {
            shard = (shard + 1) % n;
            idle_cycles += 1;
            if idle_cycles > n as u32 {
                // Every shard is closed or being drained by another
                // worker; yield instead of hammering shared lines.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
            continue;
        }
        idle_cycles = 0;
        match queues.pop_min(shard) {
            None => {
                queues.close(shard);
                shard = (shard + 1) % n;
            }
            Some((key, item)) => {
                pops += 1;
                if matches!(on_pop(key, item), Drain::Abandon) {
                    queues.close(shard);
                    shard = (shard + 1) % n;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_ascending_key_order() {
        let q: MinQueues<u32> = MinQueues::new(1);
        for (k, v) in [(3.0, 30), (1.0, 10), (2.0, 20), (0.5, 5)] {
            q.push_rr(k, v);
        }
        let mut keys = Vec::new();
        while let Some((k, _)) = q.pop_min(0) {
            keys.push(k);
        }
        assert_eq!(keys, vec![0.5, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn round_robin_balances_shards() {
        let q: MinQueues<usize> = MinQueues::new(4);
        for i in 0..40 {
            q.push_rr(i as f32, i);
        }
        for shard in 0..4 {
            let mut n = 0;
            while q.pop_min(shard).is_some() {
                n += 1;
            }
            assert_eq!(n, 10, "shard {shard} imbalance");
        }
    }

    #[test]
    fn close_is_idempotent_and_counted() {
        let q: MinQueues<u8> = MinQueues::new(2);
        assert!(!q.all_closed());
        assert!(q.close(0));
        assert!(!q.close(0), "second close is a no-op");
        assert!(q.is_open(1));
        assert!(!q.all_closed());
        assert!(q.close(1));
        assert!(q.all_closed());
    }

    #[test]
    fn zero_key_allowed() {
        let q: MinQueues<u8> = MinQueues::new(1);
        q.push_rr(0.0, 1);
        assert_eq!(q.pop_min(0), Some((0.0, 1)));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_key_panics() {
        let q: MinQueues<u8> = MinQueues::new(1);
        q.push_rr(-1.0, 0);
    }

    #[test]
    fn drain_best_first_visits_everything_and_honors_abandon() {
        let q: MinQueues<usize> = MinQueues::new(2);
        for i in 0..20 {
            q.push_rr(i as f32, i);
        }
        // No abandoning: every item is handed out exactly once.
        let mut seen = [false; 20];
        drain_best_first(&q, 0, |_, v| {
            assert!(!seen[v], "duplicate {v}");
            seen[v] = true;
            Drain::Processed
        });
        assert!(seen.iter().all(|&b| b));
        assert!(q.all_closed());

        // Abandoning at a key closes the shard wholesale: later items of
        // that shard are never handed out.
        let q: MinQueues<usize> = MinQueues::new(1);
        for i in 0..10 {
            q.push_rr(i as f32, i);
        }
        let mut popped = Vec::new();
        drain_best_first(&q, 0, |k, v| {
            popped.push(v);
            if k >= 4.0 {
                Drain::Abandon
            } else {
                Drain::Processed
            }
        });
        assert_eq!(popped, vec![0, 1, 2, 3, 4]);
        assert!(q.all_closed());
    }

    #[test]
    fn concurrent_push_pop_preserves_items() {
        let q: MinQueues<usize> = MinQueues::new(3);
        std::thread::scope(|s| {
            for t in 0..6usize {
                let q = &q;
                s.spawn(move || {
                    for i in 0..500 {
                        q.push_rr((t * 500 + i) as f32, t * 500 + i);
                    }
                });
            }
        });
        let mut seen = vec![false; 3000];
        for shard in 0..3 {
            while let Some((_, v)) = q.pop_min(shard) {
                assert!(!seen[v], "duplicate {v}");
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }
}
