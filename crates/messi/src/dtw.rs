//! DTW exact query answering over the MESSI index — the paper's "current
//! work" extension (§V): "no changes are required in the index structure:
//! we can index a dataset once, and then use this index to answer both
//! Euclidean and DTW similarity search queries."
//!
//! The pruning cascade per candidate: iSAX-envelope lower bound (node and
//! entry level) → LB_Keogh on the raw series → early-abandoned banded DTW.
//!
//! Like the ED paths ([`crate::query`]), every entry point is generic
//! over [`RawSource`]: the cascade's first stage prunes from the leaf
//! summaries alone, so an on-disk source pays positioned reads only for
//! entries that survive the iSAX bound — this is what gives exact DTW an
//! on-disk schedule. Mid-query read failures surface as `Err` through the
//! worker pool's shared [`ErrorSlot`].

use crate::build::MessiIndex;
use crate::config::MessiConfig;
use crate::pqueue::{drain_best_first, Drain, MinQueues};
use crate::traverse::{BatchLeaf, BatchTraversal};
use dsidx_isax::NodeMindistTable;
use dsidx_obs::phase::{Phase, PhaseBreakdown, PhaseClock};
use dsidx_query::{
    approx_leaf_flat, batch_process_leaf_entries_dtw, batch_seed_positions_dtw, finish_knn,
    process_leaf_entries_dtw, seed_from_entries_dtw, AtomicQueryStats, BatchStats, DtwPrepared,
    ErrorSlot, QueryBatch, QueryStats, SeriesFetcher, ShardView, SharedTopK,
};
use dsidx_series::Match;
use dsidx_storage::{RawSource, StorageError};
use dsidx_sync::{AtomicBest, Pruner, SpinBarrier};

/// The shared DTW schedule behind [`exact_nn_dtw`] and [`exact_knn_dtw`],
/// generic over [`Pruner`] exactly like the ED paths: the same traversal +
/// priority-queue scheduling, with the iSAX-envelope → LB_Keogh → banded
/// DTW cascade at the leaves pruning against `best.threshold_sq()`.
/// Returns `Ok(None)` for an empty index.
fn run_exact_dtw<P: Pruner>(
    messi: &MessiIndex,
    source: &impl RawSource,
    query: &[f32],
    band: usize,
    cfg: &MessiConfig,
    best: &P,
) -> Result<Option<QueryStats>, StorageError> {
    let config = messi.index.config();
    assert_eq!(query.len(), config.series_len(), "query length mismatch");
    cfg.validate();
    let flat = &messi.flat;
    if flat.entry_count() == 0 {
        return Ok(None);
    }
    let quantizer = config.quantizer();
    let mut clock = PhaseClock::start();
    let mut phase = PhaseBreakdown::new();

    // Query envelope, its PAA bounds, and the interval MINDIST tables.
    let prep = DtwPrepared::new(quantizer, query, band);
    let node_table = prep.node_table(quantizer);
    let pool = dsidx_sync::pool::global(cfg.threads);
    phase.record(Phase::Prepare, clock.lap());

    // Initial BSF from the query's own leaf (approximate answer): the
    // kernel's ED descent locates the leaf, seeding pays DTW distances.
    let query_word = quantizer.word(query);
    let approx_idx =
        approx_leaf_flat(flat, &query_word).expect("non-empty index has a non-empty leaf");
    let mut fetcher = SeriesFetcher::new(source);
    let approx_real = seed_from_entries_dtw(
        flat.leaf_entries(flat.node(approx_idx)),
        &mut fetcher,
        query,
        band,
        best,
    )
    .map_err(|e| e.in_phase(Phase::Seed.name()))?;
    phase.record(Phase::Seed, clock.lap());

    let shared = AtomicQueryStats::new();
    let queues: MinQueues<u32> = MinQueues::new(cfg.effective_queues());
    let traversal = crate::traverse::Traversal::new(flat, &node_table, best, &queues);
    let phase_barrier = SpinBarrier::new(cfg.threads);
    let errors = ErrorSlot::for_phase(Phase::DtwCascade);

    pool.broadcast(&|worker| {
        // Workers accumulate locally and merge once (see `AtomicQueryStats`).
        let mut local = QueryStats::default();
        // Traversal phase (cooperative; see `crate::traverse`).
        let st = traversal.run_worker();
        local.nodes_pruned = st.pruned;
        local.leaves_enqueued = st.enqueued;
        phase_barrier.wait();

        // Processing phase.
        let mut fetcher = SeriesFetcher::new(source);
        drain_best_first(&queues, worker, |lb, idx| {
            if errors.is_set() || lb >= best.threshold_sq() {
                local.leaves_discarded += 1;
                return Drain::Abandon;
            }
            local.leaves_processed += 1;
            let entries = flat.leaf_entries(flat.node(idx));
            match process_leaf_entries_dtw(
                entries,
                &prep,
                &mut fetcher,
                query,
                band,
                best,
                &mut local,
            ) {
                Ok(()) => Drain::Processed,
                Err(e) => {
                    errors.record(e);
                    Drain::Abandon
                }
            }
        });
        shared.merge(&local);
    });
    errors.take()?;
    phase.record(Phase::DtwCascade, clock.lap());

    let mut stats = shared.snapshot();
    stats.real_computed += approx_real;
    stats.phase = stats.phase.merged(&phase);
    Ok(Some(stats))
}

/// Exact 1-NN under banded DTW through the MESSI index over any
/// [`RawSource`], with the unified per-query work counters: the
/// tree-traversal counters plus the DTW cascade's LB_Keogh prunes and
/// early-abandoned DTWs — so the `ext-dtw` experiment reports like the ED
/// ones.
///
/// Returns `Ok(None)` for an empty index.
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// Panics if the query length differs from the configured series length.
pub fn exact_nn_dtw(
    messi: &MessiIndex,
    source: &impl RawSource,
    query: &[f32],
    band: usize,
    cfg: &MessiConfig,
) -> Result<Option<(Match, QueryStats)>, StorageError> {
    let best = AtomicBest::new();
    match run_exact_dtw(messi, source, query, band, cfg, &best)? {
        None => Ok(None),
        Some(stats) => {
            let (dist_sq, pos) = best.get();
            Ok(Some((Match::new(pos, dist_sq), stats)))
        }
    }
}

/// Exact k-NN under banded DTW through the MESSI index: the same
/// traversal and priority-queue schedule as [`exact_nn_dtw`], pruning the
/// whole cascade (iSAX envelope bound, LB_Keogh, early-abandoned DTW)
/// against the k-th best DTW distance (a [`SharedTopK`]).
///
/// Returns the up-to-`k` nearest series sorted ascending by
/// `(distance, position)` — fewer than `k` when the collection is smaller,
/// empty for an empty index. Deterministic across runs, thread counts and
/// queue counts (distance ties prefer the lowest position).
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// Panics if the query length differs from the configured series length or
/// `k == 0`.
pub fn exact_knn_dtw(
    messi: &MessiIndex,
    source: &impl RawSource,
    query: &[f32],
    band: usize,
    k: usize,
    cfg: &MessiConfig,
) -> Result<(Vec<Match>, QueryStats), StorageError> {
    let topk = SharedTopK::new(k);
    let stats = run_exact_dtw(messi, source, query, band, cfg, &topk)?;
    Ok(finish_knn(&topk, stats))
}

/// Exact k-NN under banded DTW for a *batch* of queries in **one** pool
/// broadcast — the DTW cell of the batched query plane: the tree is
/// traversed once for the whole batch using per-query *interval* node
/// tables (a node is pruned only when every query's threshold beats its
/// envelope bound), priority-queue entries carry the per-query node
/// mindists, and a popped leaf pays the full DTW cascade (interval iSAX
/// bound → LB_Keogh → early-abandoned banded DTW) once per entry for every
/// query whose leaf-level bound survived, fetching the entry from the
/// source at most once per leaf visit.
///
/// Answers are element-wise identical to calling [`exact_knn_dtw`] per
/// query, deterministic across runs, thread counts and queue counts.
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// Panics if any query length differs from the configured series length or
/// `k == 0`.
pub fn exact_knn_dtw_batch(
    messi: &MessiIndex,
    source: &impl RawSource,
    queries: &[&[f32]],
    band: usize,
    k: usize,
    cfg: &MessiConfig,
) -> Result<(Vec<Vec<Match>>, BatchStats), StorageError> {
    exact_knn_dtw_batch_shared(messi, source, queries, band, k, cfg, None)
}

/// [`exact_knn_dtw_batch`] with an optional cross-shard pruner view (see
/// [`SharedPruners`](dsidx_query::SharedPruners)): with `shard` set, the
/// whole DTW cascade prunes against thresholds that other shards tighten
/// mid-flight, and recorded positions are rebased to global. The returned
/// matches then reflect the whole gather so far; the coordinator uses this
/// return value for stats and reads the final answer from the shared
/// pruners after every shard joined.
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// As [`exact_knn_dtw_batch`].
pub fn exact_knn_dtw_batch_shared(
    messi: &MessiIndex,
    source: &impl RawSource,
    queries: &[&[f32]],
    band: usize,
    k: usize,
    cfg: &MessiConfig,
    shard: Option<ShardView<'_>>,
) -> Result<(Vec<Vec<Match>>, BatchStats), StorageError> {
    let config = messi.index.config();
    for q in queries {
        assert_eq!(q.len(), config.series_len(), "query length mismatch");
    }
    cfg.validate();
    let flat = &messi.flat;
    let quantizer = config.quantizer();
    let mut clock = PhaseClock::start();
    let batch = QueryBatch::for_shard(quantizer, queries, k, shard);
    let prepare_nanos = clock.lap();
    if flat.entry_count() == 0 || batch.is_empty() {
        return Ok(batch.finish(0, QueryStats::default()));
    }
    batch.phases().record(Phase::Prepare, prepare_nanos);
    let preps: Vec<DtwPrepared> = batch
        .slots()
        .iter()
        .map(|s| DtwPrepared::new(quantizer, s.values, band))
        .collect();
    let node_tables: Vec<NodeMindistTable> =
        preps.iter().map(|p| p.node_table(quantizer)).collect();
    let pool = dsidx_sync::pool::global(cfg.threads);
    clock.lap_into(batch.phases(), Phase::Prepare);

    // Initial thresholds from the union of the batch's own leaves
    // (distinct leaves only), cross-seeded into every pruner with
    // early-abandoned DTW distances.
    let mut leaf_idxs: Vec<u32> = batch
        .slots()
        .iter()
        .map(|slot| {
            approx_leaf_flat(flat, &slot.prep.word).expect("non-empty index has a non-empty leaf")
        })
        .collect();
    leaf_idxs.sort_unstable();
    leaf_idxs.dedup();
    let mut positions: Vec<u32> = leaf_idxs
        .iter()
        .flat_map(|&idx| flat.leaf_entries(flat.node(idx)).iter().map(|e| e.pos))
        .collect();
    positions.sort_unstable();
    positions.dedup();
    let mut fetcher = SeriesFetcher::new(source);
    batch_seed_positions_dtw(&positions, &mut fetcher, &batch, band)
        .map_err(|e| e.in_phase(Phase::Seed.name()))?;
    clock.lap_into(batch.phases(), Phase::Seed);

    // Phase A: one cooperative traversal for the whole batch over the
    // interval tables; Phase B: best-bound-first processing, once per leaf
    // for the whole batch, the DTW cascade per surviving query. One
    // broadcast, phases separated by a spin barrier — exactly the ED batch
    // schedule with the DTW leaf kernel. A failed raw read closes the
    // worker's queue and surfaces after the join.
    let shared = AtomicQueryStats::new();
    let queues: MinQueues<BatchLeaf> = MinQueues::new(cfg.effective_queues());
    let traversal = BatchTraversal::new(flat, &node_tables, &batch, &queues);
    let phase_barrier = SpinBarrier::new(cfg.threads);
    let errors = ErrorSlot::for_phase(Phase::DtwCascade);

    pool.broadcast(&|worker| {
        let mut shared_local = QueryStats::default();
        let mut locals = vec![QueryStats::default(); batch.len()];
        let st = traversal.run_worker();
        shared_local.nodes_pruned = st.pruned;
        shared_local.leaves_enqueued = st.enqueued;
        phase_barrier.wait();

        let mut fetcher = SeriesFetcher::new(source);
        let mut active: Vec<usize> = Vec::with_capacity(batch.len());
        drain_best_first(&queues, worker, |min_lb, leaf: BatchLeaf| {
            if errors.is_set() || min_lb >= batch.max_threshold_sq() {
                shared_local.leaves_discarded += 1;
                return Drain::Abandon;
            }
            active.clear();
            for (qi, slot) in batch.slots().iter().enumerate() {
                if leaf.lbs[qi] < slot.topk.threshold_sq() {
                    active.push(qi);
                }
            }
            if active.is_empty() {
                shared_local.leaves_discarded += 1;
                return Drain::Processed;
            }
            shared_local.leaves_processed += 1;
            let entries = flat.leaf_entries(flat.node(leaf.idx));
            match batch_process_leaf_entries_dtw(
                entries,
                &mut fetcher,
                &batch,
                &active,
                &preps,
                band,
                &mut locals,
            ) {
                Ok(()) => Drain::Processed,
                Err(e) => {
                    errors.record(e);
                    Drain::Abandon
                }
            }
        });
        batch.merge_locals(&locals);
        shared.merge(&shared_local);
    });
    errors.take()?;
    clock.lap_into(batch.phases(), Phase::DtwCascade);

    Ok(batch.finish(1, shared.snapshot()))
}

/// *Approximate* k-NN under banded DTW: descend to the query's own leaf
/// and return the k nearest of its entries by full banded-DTW distance —
/// no traversal, no pool broadcast, one leaf's worth of fetches. Every
/// reported distance is a real DTW distance, so it is never below the
/// exact answer at the same rank. Returns fewer than `k` matches when the
/// leaf holds fewer entries, empty for an empty index.
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// Panics if the query length differs from the configured series length or
/// `k == 0`.
pub fn approx_knn_dtw(
    messi: &MessiIndex,
    source: &impl RawSource,
    query: &[f32],
    band: usize,
    k: usize,
) -> Result<(Vec<Match>, QueryStats), StorageError> {
    crate::query::approx_leaf_visit(messi, query, k, |entries, topk| {
        let mut fetcher = SeriesFetcher::new(source);
        seed_from_entries_dtw(entries, &mut fetcher, query, band, topk)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use crate::config::MessiConfig;
    use dsidx_series::distance::dtw::dtw_sq;
    use dsidx_series::gen::DatasetKind;
    use dsidx_series::Dataset;
    use dsidx_storage::FlakySource;
    use dsidx_tree::TreeConfig;
    use dsidx_ucr::dtw::brute_force_dtw;

    fn cfg(threads: usize) -> MessiConfig {
        MessiConfig::new(TreeConfig::new(64, 8, 16).unwrap(), threads).with_chunk_series(64)
    }

    #[test]
    fn dtw_exact_on_all_dataset_kinds() {
        for kind in DatasetKind::ALL {
            let data = kind.generate(300, 64, 61);
            let (messi, _) = build(&data, &cfg(4));
            let queries = kind.queries(4, 64, 61);
            for band in [0usize, 3, 6] {
                for q in queries.iter() {
                    let want = brute_force_dtw(&data, q, band).unwrap();
                    let (got, _) = exact_nn_dtw(&messi, &data, q, band, &cfg(4))
                        .unwrap()
                        .unwrap();
                    assert_eq!(got.pos, want.pos, "{} band={band}", kind.name());
                    assert!((got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4);
                }
            }
        }
    }

    #[test]
    fn knn_dtw_equals_brute_force_topk() {
        let data = DatasetKind::Synthetic.generate(250, 64, 83);
        let (messi, _) = build(&data, &cfg(4));
        let queries = DatasetKind::Synthetic.queries(3, 64, 83);
        for q in queries.iter() {
            for k in [1usize, 6, 30, 300] {
                let want = dsidx_ucr::brute_force_dtw_knn(&data, q, 4, k);
                for threads in [1usize, 4] {
                    let c = cfg(threads);
                    let (got, stats) = exact_knn_dtw(&messi, &data, q, 4, k, &c).unwrap();
                    assert_eq!(got.len(), want.len(), "k={k} x{threads}");
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.pos, w.pos, "k={k} x{threads}");
                        assert!((g.dist_sq - w.dist_sq).abs() <= w.dist_sq * 1e-4 + 1e-4);
                    }
                    assert!(stats.real_computed >= 1);
                }
            }
        }
    }

    #[test]
    fn knn_dtw_at_k1_matches_nn_dtw() {
        let data = DatasetKind::Seismic.generate(200, 64, 29);
        let (messi, _) = build(&data, &cfg(3));
        let queries = DatasetKind::Seismic.queries(4, 64, 29);
        for q in queries.iter() {
            let (nn, _) = exact_nn_dtw(&messi, &data, q, 5, &cfg(3)).unwrap().unwrap();
            let (knn, _) = exact_knn_dtw(&messi, &data, q, 5, 1, &cfg(3)).unwrap();
            assert_eq!(knn.len(), 1);
            assert_eq!(knn[0].pos, nn.pos);
        }
    }

    #[test]
    fn knn_dtw_batch_equals_sequential_knn_dtw() {
        let data = DatasetKind::Synthetic.generate(300, 64, 91);
        let (messi, _) = build(&data, &cfg(4));
        let qs = DatasetKind::Synthetic.queries(5, 64, 91);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        for band in [0usize, 4] {
            for k in [1usize, 6, 20] {
                for threads in [1usize, 4] {
                    let c = cfg(threads);
                    let (batched, stats) =
                        exact_knn_dtw_batch(&messi, &data, &qrefs, band, k, &c).unwrap();
                    assert_eq!(stats.broadcasts, 1, "one broadcast for the whole DTW batch");
                    assert!(stats.broadcasts_per_query() < 1.0);
                    for (qi, q) in qs.iter().enumerate() {
                        let (single, _) = exact_knn_dtw(&messi, &data, q, band, k, &c).unwrap();
                        assert_eq!(
                            batched[qi].iter().map(|m| m.pos).collect::<Vec<_>>(),
                            single.iter().map(|m| m.pos).collect::<Vec<_>>(),
                            "q{qi} band={band} k={k} x{threads}"
                        );
                    }
                    // Traversal counters live in the shared slice.
                    assert!(
                        stats.shared.leaves_processed + stats.shared.leaves_discarded
                            <= stats.shared.leaves_enqueued
                    );
                }
            }
        }
    }

    #[test]
    fn knn_dtw_batch_equals_brute_force() {
        let data = DatasetKind::Sald.generate(200, 64, 47);
        let (messi, _) = build(&data, &cfg(3));
        let qs = DatasetKind::Sald.queries(4, 64, 47);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        let (batched, _) = exact_knn_dtw_batch(&messi, &data, &qrefs, 5, 7, &cfg(3)).unwrap();
        for (qi, q) in qs.iter().enumerate() {
            let want = dsidx_ucr::brute_force_dtw_knn(&data, q, 5, 7);
            assert_eq!(
                batched[qi].iter().map(|m| m.pos).collect::<Vec<_>>(),
                want.iter().map(|m| m.pos).collect::<Vec<_>>(),
                "q{qi}"
            );
        }
    }

    #[test]
    fn knn_dtw_batch_deterministic_across_queue_counts() {
        let data = DatasetKind::Seismic.generate(250, 64, 61);
        let (messi, _) = build(&data, &cfg(4));
        let qs = DatasetKind::Seismic.queries(4, 64, 61);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        let (first, _) = exact_knn_dtw_batch(&messi, &data, &qrefs, 4, 6, &cfg(1)).unwrap();
        for queues in [1usize, 2, 8] {
            let c = cfg(4).with_queues(queues);
            let (got, _) = exact_knn_dtw_batch(&messi, &data, &qrefs, 4, 6, &c).unwrap();
            assert_eq!(got, first, "queues={queues}");
        }
    }

    #[test]
    fn knn_dtw_batch_on_empty_index_or_batch_is_empty() {
        let empty = Dataset::new(64).unwrap();
        let (messi, _) = build(&empty, &cfg(2));
        let q = vec![0.0f32; 64];
        let (got, stats) = exact_knn_dtw_batch(&messi, &empty, &[&q], 3, 2, &cfg(2)).unwrap();
        assert_eq!(got, vec![Vec::new()]);
        assert_eq!(stats.broadcasts, 0);
        let data = DatasetKind::Synthetic.generate(50, 64, 9);
        let (messi, _) = build(&data, &cfg(2));
        let (got, _) = exact_knn_dtw_batch(&messi, &data, &[], 3, 2, &cfg(2)).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn approx_knn_dtw_never_beats_exact() {
        let data = DatasetKind::Synthetic.generate(400, 64, 33);
        let (messi, _) = build(&data, &cfg(3));
        let queries = DatasetKind::Synthetic.queries(4, 64, 33);
        for q in queries.iter() {
            for k in [1usize, 5] {
                let exact = dsidx_ucr::brute_force_dtw_knn(&data, q, 4, k);
                let (approx, stats) = approx_knn_dtw(&messi, &data, q, 4, k).unwrap();
                assert!(!approx.is_empty() && approx.len() <= k);
                for (a, e) in approx.iter().zip(&exact) {
                    assert!(a.dist_sq >= e.dist_sq - e.dist_sq * 1e-6);
                    // And each reported distance is the true DTW distance.
                    let true_d = dtw_sq(q, data.get(a.pos as usize), 4);
                    assert!((a.dist_sq - true_d).abs() <= true_d * 1e-5 + 1e-5);
                }
                assert!(stats.real_computed >= approx.len() as u64);
                assert_eq!(stats.leaves_enqueued, 0, "no traversal in approximate mode");
            }
        }
    }

    #[test]
    fn knn_dtw_on_empty_index_is_empty() {
        let data = Dataset::new(64).unwrap();
        let (messi, _) = build(&data, &cfg(2));
        let (got, stats) = exact_knn_dtw(&messi, &data, &vec![0.0; 64], 3, 5, &cfg(2)).unwrap();
        assert!(got.is_empty());
        assert_eq!(stats, QueryStats::default());
    }

    #[test]
    fn same_index_answers_both_measures() {
        // "Index a dataset once, answer both ED and DTW."
        let data = DatasetKind::Synthetic.generate(400, 64, 71);
        let (messi, _) = build(&data, &cfg(4));
        let q = DatasetKind::Synthetic.queries(1, 64, 71);
        let ed = crate::query::exact_nn(&messi, &data, q.get(0), &cfg(4))
            .unwrap()
            .unwrap()
            .0;
        let (dtw, _) = exact_nn_dtw(&messi, &data, q.get(0), 5, &cfg(4))
            .unwrap()
            .unwrap();
        // DTW distance never exceeds ED distance.
        assert!(dtw.dist_sq <= ed.dist_sq + ed.dist_sq * 1e-4 + 1e-4);
    }

    #[test]
    fn empty_index_returns_none() {
        let data = Dataset::new(64).unwrap();
        let (messi, _) = build(&data, &cfg(2));
        assert!(exact_nn_dtw(&messi, &data, &vec![0.0; 64], 3, &cfg(2))
            .unwrap()
            .is_none());
    }

    #[test]
    fn dtw_stats_account_the_cascade() {
        let data = DatasetKind::Sald.generate(400, 64, 9);
        let (messi, _) = build(&data, &cfg(3));
        let queries = DatasetKind::Sald.queries(3, 64, 9);
        for q in queries.iter() {
            let (_, stats) = exact_nn_dtw(&messi, &data, q, 4, &cfg(3)).unwrap().unwrap();
            // Seeding pays at least one full DTW.
            assert!(stats.real_computed >= 1);
            // Each LB_Keogh survivor resolves to an abandoned or a fully
            // paid DTW (seeding reals are counted on top).
            assert!(stats.lb_keogh_pruned <= stats.lb_keogh_computed);
            assert!(
                stats.dtw_abandoned + stats.real_computed
                    >= stats.lb_keogh_computed - stats.lb_keogh_pruned
            );
            // The cascade only sees entries that survived the iSAX bound.
            assert!(stats.lb_keogh_computed <= stats.lb_entry_computed);
            // Traversal counters report through the same struct.
            assert!(stats.leaves_processed + stats.leaves_discarded <= stats.leaves_enqueued);
            // Scan-only counters stay zero for the tree-based engine.
            assert_eq!(stats.lb_computed, 0);
            assert_eq!(stats.candidates, 0);
        }
    }

    #[test]
    fn band_zero_matches_ed_answer() {
        let data = DatasetKind::Seismic.generate(250, 64, 19);
        let (messi, _) = build(&data, &cfg(3));
        let queries = DatasetKind::Seismic.queries(3, 64, 19);
        for q in queries.iter() {
            let ed = crate::query::exact_nn(&messi, &data, q, &cfg(3))
                .unwrap()
                .unwrap()
                .0;
            let (dtw, _) = exact_nn_dtw(&messi, &data, q, 0, &cfg(3)).unwrap().unwrap();
            assert_eq!(ed.pos, dtw.pos);
        }
    }

    #[test]
    fn mid_query_dtw_read_failure_is_an_error_not_a_panic() {
        let data = DatasetKind::Synthetic.generate(400, 64, 7);
        let (messi, _) = build(&data, &cfg(4));
        let qs = DatasetKind::Synthetic.queries(2, 64, 7);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        // Budget 0 fails in seeding; small budgets fail inside the
        // broadcast's DTW cascade — both must surface as Err.
        for budget in [0u64, 1, 16, 48] {
            let flaky = FlakySource::new(data.clone(), budget);
            assert!(
                exact_knn_dtw_batch(&messi, &flaky, &qrefs, 4, 40, &cfg(4)).is_err(),
                "budget {budget} cannot cover a k=40 DTW batch over 400 series"
            );
        }
        // An unconstrained budget answers exactly like the dataset itself.
        let flaky = FlakySource::new(data.clone(), u64::MAX);
        let (via_flaky, _) = exact_knn_dtw(&messi, &flaky, qs.get(0), 4, 5, &cfg(4)).unwrap();
        let (via_data, _) = exact_knn_dtw(&messi, &data, qs.get(0), 4, 5, &cfg(4)).unwrap();
        assert_eq!(via_flaky, via_data);
    }
}
