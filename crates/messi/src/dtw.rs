//! DTW exact query answering over the MESSI index — the paper's "current
//! work" extension (§V): "no changes are required in the index structure:
//! we can index a dataset once, and then use this index to answer both
//! Euclidean and DTW similarity search queries."
//!
//! The pruning cascade per candidate: iSAX-envelope lower bound (node and
//! entry level) → LB_Keogh on the raw series → early-abandoned banded DTW.

use crate::build::MessiIndex;
use crate::config::MessiConfig;
use crate::pqueue::MinQueues;
use dsidx_isax::paa::envelope_paa_bounds;
use dsidx_isax::{MindistTable, NodeMindistTable};
use dsidx_query::{finish_knn, AtomicQueryStats, QueryStats, SharedTopK};
use dsidx_series::distance::dtw::{dtw_sq, dtw_sq_bounded, envelope, lb_keogh_sq_bounded};
use dsidx_series::{Dataset, Match};
use dsidx_sync::{AtomicBest, Pruner, SpinBarrier};

/// The shared DTW schedule behind [`exact_nn_dtw`] and [`exact_knn_dtw`],
/// generic over [`Pruner`] exactly like the ED paths: the same traversal +
/// priority-queue scheduling, with the iSAX-envelope → LB_Keogh → banded
/// DTW cascade at the leaves pruning against `pruner.threshold_sq()`.
/// Returns `None` for an empty index.
fn run_exact_dtw<P: Pruner>(
    messi: &MessiIndex,
    data: &Dataset,
    query: &[f32],
    band: usize,
    cfg: &MessiConfig,
    best: &P,
) -> Option<QueryStats> {
    let config = messi.index.config();
    assert_eq!(query.len(), config.series_len(), "query length mismatch");
    cfg.validate();
    let flat = &messi.flat;
    if flat.entry_count() == 0 {
        return None;
    }
    let quantizer = config.quantizer();
    let seg_lens = quantizer.segment_lens();
    let segments = config.segments();

    // Query envelope and its PAA bounds.
    let mut lo_env = Vec::new();
    let mut hi_env = Vec::new();
    envelope(query, band, &mut lo_env, &mut hi_env);
    let mut lo_paa = vec![0.0f32; segments];
    let mut hi_paa = vec![0.0f32; segments];
    envelope_paa_bounds(&lo_env, &hi_env, &mut lo_paa, &mut hi_paa);
    let table = MindistTable::new_interval(&lo_paa, &hi_paa, seg_lens);
    let node_table = NodeMindistTable::new_interval(&lo_paa, &hi_paa, seg_lens);
    let pool = dsidx_sync::pool::global(cfg.threads);

    // Initial BSF from the query's own leaf (approximate answer): the
    // kernel's ED descent locates the leaf, seeding pays DTW distances.
    let mut paa = vec![0.0f32; segments];
    quantizer.paa_into(query, &mut paa);
    let query_word = quantizer.word_from_paa(&paa);
    let approx_idx = dsidx_query::approx_leaf_flat(flat, &query_word)
        .expect("non-empty index has a non-empty leaf");
    let approx_entries = flat.leaf_entries(flat.node(approx_idx));
    for e in approx_entries {
        best.insert(dtw_sq(query, data.get(e.pos as usize), band), e.pos);
    }
    let approx_real = approx_entries.len() as u64;

    let shared = AtomicQueryStats::new();
    let queues: MinQueues<u32> = MinQueues::new(cfg.effective_queues());
    let traversal = crate::traverse::Traversal::new(flat, &node_table, best, &queues);
    let phase_barrier = SpinBarrier::new(cfg.threads);

    pool.broadcast(&|worker| {
        // Workers accumulate locally and merge once (see `AtomicQueryStats`).
        let mut local = QueryStats::default();
        // Traversal phase (cooperative; see `crate::traverse`).
        let st = traversal.run_worker();
        local.nodes_pruned = st.pruned;
        local.leaves_enqueued = st.enqueued;
        phase_barrier.wait();

        // Processing phase.
        let n = queues.shard_count();
        let mut shard = worker % n;
        let mut idle_cycles = 0u32;
        loop {
            if queues.all_closed() {
                break;
            }
            if !queues.is_open(shard) {
                shard = (shard + 1) % n;
                idle_cycles += 1;
                if idle_cycles > n as u32 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
                continue;
            }
            idle_cycles = 0;
            match queues.pop_min(shard) {
                None => {
                    queues.close(shard);
                    shard = (shard + 1) % n;
                }
                Some((lb, idx)) => {
                    if lb >= best.threshold_sq() {
                        local.leaves_discarded += 1;
                        queues.close(shard);
                        shard = (shard + 1) % n;
                        continue;
                    }
                    local.leaves_processed += 1;
                    for e in flat.leaf_entries(flat.node(idx)) {
                        let limit = best.threshold_sq();
                        local.lb_entry_computed += 1;
                        if table.lookup(&e.word) >= limit {
                            continue;
                        }
                        let series = data.get(e.pos as usize);
                        local.lb_keogh_computed += 1;
                        if lb_keogh_sq_bounded(series, &lo_env, &hi_env, limit).is_none() {
                            local.lb_keogh_pruned += 1;
                            continue;
                        }
                        if let Some(d) = dtw_sq_bounded(query, series, band, limit) {
                            local.real_computed += 1;
                            best.insert(d, e.pos);
                        } else {
                            local.dtw_abandoned += 1;
                        }
                    }
                }
            }
        }
        shared.merge(&local);
    });

    let mut stats = shared.snapshot();
    stats.real_computed += approx_real;
    Some(stats)
}

/// Exact 1-NN under banded DTW through the MESSI index, with the unified
/// per-query work counters: the tree-traversal counters plus the DTW
/// cascade's LB_Keogh prunes and early-abandoned DTWs — so the `ext-dtw`
/// experiment reports like the ED ones.
///
/// Returns `None` for an empty index.
///
/// # Panics
/// Panics if the query length differs from the configured series length.
#[must_use]
pub fn exact_nn_dtw(
    messi: &MessiIndex,
    data: &Dataset,
    query: &[f32],
    band: usize,
    cfg: &MessiConfig,
) -> Option<(Match, QueryStats)> {
    let best = AtomicBest::new();
    let stats = run_exact_dtw(messi, data, query, band, cfg, &best)?;
    let (dist_sq, pos) = best.get();
    Some((Match::new(pos, dist_sq), stats))
}

/// Exact k-NN under banded DTW through the MESSI index: the same
/// traversal and priority-queue schedule as [`exact_nn_dtw`], pruning the
/// whole cascade (iSAX envelope bound, LB_Keogh, early-abandoned DTW)
/// against the k-th best DTW distance (a
/// [`SharedTopK`](dsidx_query::SharedTopK)).
///
/// Returns the up-to-`k` nearest series sorted ascending by
/// `(distance, position)` — fewer than `k` when the collection is smaller,
/// empty for an empty index. Deterministic across runs, thread counts and
/// queue counts (distance ties prefer the lowest position).
///
/// # Panics
/// Panics if the query length differs from the configured series length or
/// `k == 0`.
#[must_use]
pub fn exact_knn_dtw(
    messi: &MessiIndex,
    data: &Dataset,
    query: &[f32],
    band: usize,
    k: usize,
    cfg: &MessiConfig,
) -> (Vec<Match>, QueryStats) {
    let topk = SharedTopK::new(k);
    let stats = run_exact_dtw(messi, data, query, band, cfg, &topk);
    finish_knn(&topk, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use crate::config::MessiConfig;
    use dsidx_series::gen::DatasetKind;
    use dsidx_tree::TreeConfig;
    use dsidx_ucr::dtw::brute_force_dtw;

    fn cfg(threads: usize) -> MessiConfig {
        MessiConfig::new(TreeConfig::new(64, 8, 16).unwrap(), threads).with_chunk_series(64)
    }

    #[test]
    fn dtw_exact_on_all_dataset_kinds() {
        for kind in DatasetKind::ALL {
            let data = kind.generate(300, 64, 61);
            let (messi, _) = build(&data, &cfg(4));
            let queries = kind.queries(4, 64, 61);
            for band in [0usize, 3, 6] {
                for q in queries.iter() {
                    let want = brute_force_dtw(&data, q, band).unwrap();
                    let (got, _) = exact_nn_dtw(&messi, &data, q, band, &cfg(4)).unwrap();
                    assert_eq!(got.pos, want.pos, "{} band={band}", kind.name());
                    assert!((got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4);
                }
            }
        }
    }

    #[test]
    fn knn_dtw_equals_brute_force_topk() {
        let data = DatasetKind::Synthetic.generate(250, 64, 83);
        let (messi, _) = build(&data, &cfg(4));
        let queries = DatasetKind::Synthetic.queries(3, 64, 83);
        for q in queries.iter() {
            for k in [1usize, 6, 30, 300] {
                let want = dsidx_ucr::brute_force_dtw_knn(&data, q, 4, k);
                for threads in [1usize, 4] {
                    let c = cfg(threads);
                    let (got, stats) = exact_knn_dtw(&messi, &data, q, 4, k, &c);
                    assert_eq!(got.len(), want.len(), "k={k} x{threads}");
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.pos, w.pos, "k={k} x{threads}");
                        assert!((g.dist_sq - w.dist_sq).abs() <= w.dist_sq * 1e-4 + 1e-4);
                    }
                    assert!(stats.real_computed >= 1);
                }
            }
        }
    }

    #[test]
    fn knn_dtw_at_k1_matches_nn_dtw() {
        let data = DatasetKind::Seismic.generate(200, 64, 29);
        let (messi, _) = build(&data, &cfg(3));
        let queries = DatasetKind::Seismic.queries(4, 64, 29);
        for q in queries.iter() {
            let (nn, _) = exact_nn_dtw(&messi, &data, q, 5, &cfg(3)).unwrap();
            let (knn, _) = exact_knn_dtw(&messi, &data, q, 5, 1, &cfg(3));
            assert_eq!(knn.len(), 1);
            assert_eq!(knn[0].pos, nn.pos);
        }
    }

    #[test]
    fn knn_dtw_on_empty_index_is_empty() {
        let data = Dataset::new(64).unwrap();
        let (messi, _) = build(&data, &cfg(2));
        let (got, stats) = exact_knn_dtw(&messi, &data, &vec![0.0; 64], 3, 5, &cfg(2));
        assert!(got.is_empty());
        assert_eq!(stats, QueryStats::default());
    }

    #[test]
    fn same_index_answers_both_measures() {
        // "Index a dataset once, answer both ED and DTW."
        let data = DatasetKind::Synthetic.generate(400, 64, 71);
        let (messi, _) = build(&data, &cfg(4));
        let q = DatasetKind::Synthetic.queries(1, 64, 71);
        let ed = crate::query::exact_nn(&messi, &data, q.get(0), &cfg(4))
            .unwrap()
            .0;
        let (dtw, _) = exact_nn_dtw(&messi, &data, q.get(0), 5, &cfg(4)).unwrap();
        // DTW distance never exceeds ED distance.
        assert!(dtw.dist_sq <= ed.dist_sq + ed.dist_sq * 1e-4 + 1e-4);
    }

    #[test]
    fn empty_index_returns_none() {
        let data = Dataset::new(64).unwrap();
        let (messi, _) = build(&data, &cfg(2));
        assert!(exact_nn_dtw(&messi, &data, &vec![0.0; 64], 3, &cfg(2)).is_none());
    }

    #[test]
    fn dtw_stats_account_the_cascade() {
        let data = DatasetKind::Sald.generate(400, 64, 9);
        let (messi, _) = build(&data, &cfg(3));
        let queries = DatasetKind::Sald.queries(3, 64, 9);
        for q in queries.iter() {
            let (_, stats) = exact_nn_dtw(&messi, &data, q, 4, &cfg(3)).unwrap();
            // Seeding pays at least one full DTW.
            assert!(stats.real_computed >= 1);
            // Each LB_Keogh survivor resolves to an abandoned or a fully
            // paid DTW (seeding reals are counted on top).
            assert!(stats.lb_keogh_pruned <= stats.lb_keogh_computed);
            assert!(
                stats.dtw_abandoned + stats.real_computed
                    >= stats.lb_keogh_computed - stats.lb_keogh_pruned
            );
            // The cascade only sees entries that survived the iSAX bound.
            assert!(stats.lb_keogh_computed <= stats.lb_entry_computed);
            // Traversal counters report through the same struct.
            assert!(stats.leaves_processed + stats.leaves_discarded <= stats.leaves_enqueued);
            // Scan-only counters stay zero for the tree-based engine.
            assert_eq!(stats.lb_computed, 0);
            assert_eq!(stats.candidates, 0);
        }
    }

    #[test]
    fn band_zero_matches_ed_answer() {
        let data = DatasetKind::Seismic.generate(250, 64, 19);
        let (messi, _) = build(&data, &cfg(3));
        let queries = DatasetKind::Seismic.queries(3, 64, 19);
        for q in queries.iter() {
            let ed = crate::query::exact_nn(&messi, &data, q, &cfg(3)).unwrap().0;
            let (dtw, _) = exact_nn_dtw(&messi, &data, q, 0, &cfg(3)).unwrap();
            assert_eq!(ed.pos, dtw.pos);
        }
    }
}
