//! Cooperative index traversal (phase A of query answering).
//!
//! Work units are root subtrees, claimed by Fetch&Inc as in the paper. The
//! paper keeps subtree granularity because *construction* inside a subtree
//! would need synchronization; query-time traversal is read-only, so a
//! worker whose depth-first stack grows large **donates** half of it to a
//! shared overflow stack that idle workers drain. Without this, one giant
//! root subtree (random-walk data clusters heavily on first bits) sets the
//! whole phase's critical path.

use crate::pqueue::MinQueues;
use dsidx_isax::NodeMindistTable;
use dsidx_query::QueryBatch;
use dsidx_sync::{Pruner, WorkQueue};
use dsidx_tree::FlatTree;
use parking_lot::Mutex;

/// Tuning: local stack size beyond which half is donated.
const DONATE_ABOVE: usize = 32;
/// Tuning: how often (in node visits) the donation check runs.
const DONATE_CHECK_MASK: u64 = 0x3F;

/// Per-worker traversal outcome counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct TraverseStats {
    /// Nodes (roots included) pruned by their lower bound.
    pub pruned: u64,
    /// Leaves pushed into the queues.
    pub enqueued: u64,
}

/// Shared state for one traversal phase. Generic over [`Pruner`], so the
/// same traversal prunes against the single best (1-NN) or the k-th best
/// distance (k-NN).
pub struct Traversal<'a, P: Pruner> {
    flat: &'a FlatTree,
    node_table: &'a NodeMindistTable,
    /// Root-level contribution per segment for key bits 0/1.
    root_contrib: Vec<(f32, f32)>,
    best: &'a P,
    queues: &'a MinQueues<u32>,
    root_queue: WorkQueue,
    /// Overflow work: node indices donated by overloaded workers.
    shared: Mutex<Vec<u32>>,
}

impl<'a, P: Pruner> Traversal<'a, P> {
    /// Prepares a traversal over `flat`'s occupied roots.
    #[must_use]
    pub fn new(
        flat: &'a FlatTree,
        node_table: &'a NodeMindistTable,
        best: &'a P,
        queues: &'a MinQueues<u32>,
    ) -> Self {
        let segments = flat.segments();
        let root_contrib = (0..segments).map(|s| node_table.root_pair(s)).collect();
        Self {
            flat,
            node_table,
            root_contrib,
            best,
            queues,
            root_queue: WorkQueue::new(flat.roots().len()),
            shared: Mutex::new(Vec::new()),
        }
    }

    #[inline]
    fn root_lb(&self, key: u16) -> f32 {
        let segments = self.root_contrib.len();
        let mut sum = 0.0f32;
        for (seg, &(zero, one)) in self.root_contrib.iter().enumerate() {
            let bit = (key >> (segments - 1 - seg)) & 1;
            sum += if bit == 0 { zero } else { one };
        }
        sum
    }

    /// Runs one worker's share of the traversal. Returns when every root
    /// has been claimed and every donated item drained (see module docs for
    /// why that is sound: the holder of remaining work drains the shared
    /// stack before returning).
    pub fn run_worker(&self) -> TraverseStats {
        let mut stats = TraverseStats::default();
        let mut stack: Vec<u32> = Vec::new();
        let mut visits = 0u64;
        // Claim root chunks first.
        while let Some(range) = self.root_queue.claim_chunk(64) {
            for i in range {
                let (key, root_idx) = self.flat.roots()[i];
                if self.root_lb(key) >= self.best.threshold_sq() {
                    stats.pruned += 1;
                    continue;
                }
                stack.push(root_idx);
                self.drain_stack(&mut stack, &mut visits, &mut stats);
            }
        }
        // Help with donated work until none remains anywhere.
        loop {
            let item = self.shared.lock().pop();
            match item {
                Some(idx) => {
                    stack.push(idx);
                    self.drain_stack(&mut stack, &mut visits, &mut stats);
                }
                None => return stats,
            }
        }
    }

    fn drain_stack(&self, stack: &mut Vec<u32>, visits: &mut u64, stats: &mut TraverseStats) {
        while let Some(idx) = stack.pop() {
            *visits += 1;
            if *visits & DONATE_CHECK_MASK == 0 && stack.len() > DONATE_ABOVE {
                // Donate the shallow half (closer to the root => bigger
                // subtrees) to whoever is idle.
                let keep = stack.len() / 2;
                let mut shared = self.shared.lock();
                shared.extend(stack.drain(..keep));
            }
            let node = self.flat.node(idx);
            let lb = node.mindist_sq(self.node_table);
            if lb >= self.best.threshold_sq() {
                stats.pruned += 1;
                continue;
            }
            if node.is_leaf() {
                if !node.entry_range().is_empty() {
                    stats.enqueued += 1;
                    self.queues.push_rr(lb, idx);
                }
            } else {
                let (zero, one) = node.children(idx);
                stack.push(one);
                stack.push(zero);
            }
        }
    }
}

/// A leaf surviving a batched traversal, as queued for the processing
/// phase: the flat-tree node index plus the node-level lower bound for
/// *every* query in the batch (index-aligned with the batch's slots), so
/// processing knows per query whether the leaf can still contribute
/// without recomputing bounds.
pub struct BatchLeaf {
    /// Flat-tree node index of the leaf.
    pub idx: u32,
    /// Per-query node-level MINDIST (squared).
    pub lbs: Box<[f32]>,
}

/// Shared state for one *batched* traversal phase: the tree is walked once
/// for the whole batch, a node is pruned only when **every** query's
/// threshold beats its bound, and surviving leaves are enqueued with their
/// per-query mindists. The same root-claiming and work-donation schedule
/// as [`Traversal`] (its batch-of-one specialization).
pub struct BatchTraversal<'a, 'q> {
    flat: &'a FlatTree,
    tables: &'a [NodeMindistTable],
    /// Root-level contribution per query, per segment, for key bits 0/1.
    root_contribs: Vec<Vec<(f32, f32)>>,
    batch: &'a QueryBatch<'q>,
    queues: &'a MinQueues<BatchLeaf>,
    root_queue: WorkQueue,
    /// Overflow work: node indices donated by overloaded workers.
    shared: Mutex<Vec<u32>>,
}

impl<'a, 'q> BatchTraversal<'a, 'q> {
    /// Prepares a batched traversal over `flat`'s occupied roots.
    /// `tables` holds one node-level MINDIST table per query,
    /// index-aligned with the batch's slots.
    ///
    /// # Panics
    /// Panics if `tables` is not one table per query.
    #[must_use]
    pub fn new(
        flat: &'a FlatTree,
        tables: &'a [NodeMindistTable],
        batch: &'a QueryBatch<'q>,
        queues: &'a MinQueues<BatchLeaf>,
    ) -> Self {
        assert_eq!(tables.len(), batch.len(), "one node table per query");
        let segments = flat.segments();
        let root_contribs = tables
            .iter()
            .map(|t| (0..segments).map(|s| t.root_pair(s)).collect())
            .collect();
        Self {
            flat,
            tables,
            root_contribs,
            batch,
            queues,
            root_queue: WorkQueue::new(flat.roots().len()),
            shared: Mutex::new(Vec::new()),
        }
    }

    #[inline]
    fn root_lb(&self, qi: usize, key: u16) -> f32 {
        let contrib = &self.root_contribs[qi];
        let segments = contrib.len();
        let mut sum = 0.0f32;
        for (seg, &(zero, one)) in contrib.iter().enumerate() {
            let bit = (key >> (segments - 1 - seg)) & 1;
            sum += if bit == 0 { zero } else { one };
        }
        sum
    }

    /// `true` iff no query in the batch can benefit from the subtree under
    /// `key` — every query's root-level bound meets its own threshold.
    #[inline]
    fn root_pruned_for_all(&self, key: u16) -> bool {
        self.batch
            .slots()
            .iter()
            .enumerate()
            .all(|(qi, slot)| self.root_lb(qi, key) >= slot.topk.threshold_sq())
    }

    /// Runs one worker's share of the batched traversal (same contract as
    /// [`Traversal::run_worker`]).
    pub fn run_worker(&self) -> TraverseStats {
        let mut stats = TraverseStats::default();
        let mut stack: Vec<u32> = Vec::new();
        let mut visits = 0u64;
        while let Some(range) = self.root_queue.claim_chunk(64) {
            for i in range {
                let (key, root_idx) = self.flat.roots()[i];
                if self.root_pruned_for_all(key) {
                    stats.pruned += 1;
                    continue;
                }
                stack.push(root_idx);
                self.drain_stack(&mut stack, &mut visits, &mut stats);
            }
        }
        loop {
            let item = self.shared.lock().pop();
            match item {
                Some(idx) => {
                    stack.push(idx);
                    self.drain_stack(&mut stack, &mut visits, &mut stats);
                }
                None => return stats,
            }
        }
    }

    fn drain_stack(&self, stack: &mut Vec<u32>, visits: &mut u64, stats: &mut TraverseStats) {
        while let Some(idx) = stack.pop() {
            *visits += 1;
            if *visits & DONATE_CHECK_MASK == 0 && stack.len() > DONATE_ABOVE {
                let keep = stack.len() / 2;
                let mut shared = self.shared.lock();
                shared.extend(stack.drain(..keep));
            }
            let node = self.flat.node(idx);
            if node.is_leaf() {
                if node.entry_range().is_empty() {
                    continue;
                }
                // Leaves need every query's bound (the queue payload), so
                // compute them all; the min orders the queue.
                let mut lbs = Vec::with_capacity(self.batch.len());
                let mut min_lb = f32::INFINITY;
                let mut survives = false;
                for (qi, slot) in self.batch.slots().iter().enumerate() {
                    let lb = node.mindist_sq(&self.tables[qi]);
                    min_lb = min_lb.min(lb);
                    survives |= lb < slot.topk.threshold_sq();
                    lbs.push(lb);
                }
                if !survives {
                    stats.pruned += 1;
                    continue;
                }
                stats.enqueued += 1;
                self.queues.push_rr(
                    min_lb,
                    BatchLeaf {
                        idx,
                        lbs: lbs.into_boxed_slice(),
                    },
                );
            } else {
                // Internal nodes only need the "any query survives" test.
                let survives =
                    self.batch.slots().iter().enumerate().any(|(qi, slot)| {
                        node.mindist_sq(&self.tables[qi]) < slot.topk.threshold_sq()
                    });
                if !survives {
                    stats.pruned += 1;
                    continue;
                }
                let (zero, one) = node.children(idx);
                stack.push(one);
                stack.push(zero);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use crate::config::MessiConfig;
    use dsidx_isax::paa::paa;
    use dsidx_series::gen::DatasetKind;
    use dsidx_sync::AtomicBest;
    use dsidx_tree::TreeConfig;

    #[test]
    fn cooperative_traversal_enqueues_same_leaves_as_serial() {
        let data = DatasetKind::Synthetic.generate(2000, 64, 3);
        let cfg = MessiConfig::new(TreeConfig::new(64, 8, 16).unwrap(), 4);
        let (messi, _) = build(&data, &cfg);
        let q = DatasetKind::Synthetic.queries(1, 64, 3);
        let paa_q = paa(q.get(0), 8);
        let node_table = NodeMindistTable::new_point(&paa_q, cfg.tree.quantizer().segment_lens());

        // With an infinite BSF nothing is pruned, so every non-empty leaf
        // must be enqueued exactly once no matter how many workers help.
        let total_leaves = messi
            .flat
            .nodes()
            .iter()
            .filter(|n| n.is_leaf() && !n.entry_range().is_empty())
            .count() as u64;
        for threads in [1usize, 4, 8] {
            let best = AtomicBest::new();
            let queues: MinQueues<u32> = MinQueues::new(threads);
            let traversal = Traversal::new(&messi.flat, &node_table, &best, &queues);
            let enqueued = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let traversal = &traversal;
                    let enqueued = &enqueued;
                    s.spawn(move || {
                        let st = traversal.run_worker();
                        enqueued.fetch_add(st.enqueued, std::sync::atomic::Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(
                enqueued.load(std::sync::atomic::Ordering::Relaxed),
                total_leaves,
                "threads={threads}"
            );
            // And every queued index is a distinct leaf.
            let mut seen = std::collections::HashSet::new();
            for shard in 0..threads {
                while let Some((_, idx)) = queues.pop_min(shard) {
                    assert!(seen.insert(idx), "leaf {idx} enqueued twice");
                }
            }
            assert_eq!(seen.len() as u64, total_leaves);
        }
    }

    #[test]
    fn tight_bsf_prunes_everything() {
        let data = DatasetKind::Synthetic.generate(500, 64, 9);
        let cfg = MessiConfig::new(TreeConfig::new(64, 8, 16).unwrap(), 2);
        let (messi, _) = build(&data, &cfg);
        let q = DatasetKind::Synthetic.queries(1, 64, 9);
        let paa_q = paa(q.get(0), 8);
        let node_table = NodeMindistTable::new_point(&paa_q, cfg.tree.quantizer().segment_lens());
        let best = AtomicBest::with_initial(0.0, 0); // perfect BSF
        let queues: MinQueues<u32> = MinQueues::new(2);
        let traversal = Traversal::new(&messi.flat, &node_table, &best, &queues);
        let st = traversal.run_worker();
        assert_eq!(st.enqueued, 0, "zero BSF must prune every subtree");
    }
}
