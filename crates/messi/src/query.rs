//! MESSI exact query answering (stage 3 of Fig. 3).
//!
//! Two phases, executed by one pool broadcast with a spin-barrier between:
//!
//! * **Traversal** — workers claim root subtrees by Fetch&Inc and prune
//!   with node-level lower bounds against the shared BSF; the root level
//!   (tens of thousands of one-bit words) is scanned flat from the key
//!   bits alone, without touching tree memory. Surviving leaves enter the
//!   minimum priority queues round-robin.
//! * **Processing** — workers pop leaves best-bound-first; a popped bound
//!   above the BSF abandons the whole queue (everything behind it is
//!   farther). Surviving entries pay an entry-level lower bound, then an
//!   early-abandoned real distance.
//!
//! Query preparation, approximate-descent seeding and the per-entry
//! verify loop come from the shared kernel (`dsidx-query`); this module
//! contributes the MESSI scheduling — cooperative traversal plus
//! best-bound-first queue draining. All tree reads go through the
//! flattened view ([`dsidx_tree::flat`]).
//!
//! Every entry point is generic over [`RawSource`]: the tree prunes the
//! same way wherever the raw values live, and only the surviving
//! candidates pay a fetch — zero-copy against an in-memory [`Dataset`],
//! device-charged positioned reads against a
//! [`DatasetFile`](dsidx_storage::DatasetFile). A read failing mid-query
//! (a device dying under load) surfaces as `Err`: each worker records the
//! first failure in a shared [`ErrorSlot`], its peers drain their queues
//! without paying further I/O, and the broadcast's coordinator returns the
//! error.
//!
//! [`Dataset`]: dsidx_series::Dataset

use crate::build::MessiIndex;
use crate::config::MessiConfig;
use crate::pqueue::{drain_best_first, Drain, MinQueues};
use crate::traverse::{BatchLeaf, BatchTraversal};
use dsidx_obs::phase::{Phase, PhaseBreakdown, PhaseClock};
use dsidx_query::{
    approx_leaf_flat, batch_process_leaf_entries, batch_seed_positions, finish_knn,
    process_leaf_entries, seed_from_entries, AtomicQueryStats, BatchStats, ErrorSlot,
    PreparedQuery, Pruner, QueryBatch, QueryStats, SeriesFetcher, ShardView, SharedTopK,
};
use dsidx_series::Match;
use dsidx_storage::{RawSource, StorageError};
use dsidx_sync::{AtomicBest, SpinBarrier};

/// The MESSI schedule behind [`exact_nn`]: approximate-descent seeding,
/// then one pool broadcast running the cooperative traversal and the
/// best-bound-first queue processing with a spin barrier between. Returns
/// `Ok(None)` for an empty index. (k-NN goes through the batch path —
/// [`exact_knn`] is a batch of one.)
fn run_exact<P: Pruner>(
    messi: &MessiIndex,
    source: &impl RawSource,
    query: &[f32],
    cfg: &MessiConfig,
    best: &P,
) -> Result<Option<QueryStats>, StorageError> {
    let config = messi.index.config();
    assert_eq!(query.len(), config.series_len(), "query length mismatch");
    cfg.validate();
    let flat = &messi.flat;
    if flat.entry_count() == 0 {
        return Ok(None);
    }
    let mut clock = PhaseClock::start();
    let mut phase = PhaseBreakdown::new();
    let quantizer = config.quantizer();
    let prep = PreparedQuery::new(quantizer, query);
    let node_table = prep.node_table(quantizer);
    let pool = dsidx_sync::pool::global(cfg.threads);
    phase.record(Phase::Prepare, clock.lap());

    // Initial threshold from the query's own leaf (approximate answer),
    // routing around empty subtrees.
    let approx_idx =
        approx_leaf_flat(flat, &prep.word).expect("non-empty index has a non-empty leaf");
    let mut fetcher = SeriesFetcher::new(source);
    let approx_real = seed_from_entries(
        flat.leaf_entries(flat.node(approx_idx)),
        &mut fetcher,
        query,
        best,
    )
    .map_err(|e| e.in_phase(Phase::Seed.name()))?;
    phase.record(Phase::Seed, clock.lap());

    // Phase A: cooperative parallel traversal — the root level is scanned
    // flat from the key bits alone, large subtrees are split via work
    // donation (see [`crate::traverse`]); surviving leaves enter the
    // queues with their node-level lower bound. Phase B: pop best-first; a
    // popped minimum above the BSF closes its whole queue; each worker
    // migrates to the next open queue. One broadcast, phases separated by
    // a spin barrier. A failed raw read records into `errors` and closes
    // the worker's queue; peers see `is_set` and close theirs.
    let shared = AtomicQueryStats::new();
    let queues: MinQueues<u32> = MinQueues::new(cfg.effective_queues());
    let traversal = crate::traverse::Traversal::new(flat, &node_table, best, &queues);
    let phase_barrier = SpinBarrier::new(cfg.threads);
    let errors = ErrorSlot::for_phase(Phase::Traversal);

    pool.broadcast(&|worker| {
        // Workers accumulate locally and merge once per phase — shared
        // fetch_adds per leaf would bounce one cache line across every
        // core and dominate these sub-ms phases.
        let mut local = QueryStats::default();
        let st = traversal.run_worker();
        local.nodes_pruned = st.pruned;
        local.leaves_enqueued = st.enqueued;
        phase_barrier.wait();

        // Phase B: best-bound-first processing.
        let mut fetcher = SeriesFetcher::new(source);
        drain_best_first(&queues, worker, |lb, idx| {
            if errors.is_set() || lb >= best.threshold_sq() {
                // Everything left in this queue is at least as far (or a
                // peer already failed): abandon it wholesale.
                local.leaves_discarded += 1;
                return Drain::Abandon;
            }
            local.leaves_processed += 1;
            let entries = flat.leaf_entries(flat.node(idx));
            local.lb_entry_computed += entries.len() as u64;
            match process_leaf_entries(entries, &prep.table, &mut fetcher, query, best) {
                Ok(reals) => {
                    local.real_computed += reals;
                    Drain::Processed
                }
                Err(e) => {
                    errors.record(e);
                    Drain::Abandon
                }
            }
        });
        shared.merge(&local);
    });
    errors.take()?;
    phase.record(Phase::Traversal, clock.lap());

    let mut stats = shared.snapshot();
    stats.real_computed += approx_real;
    stats.phase = stats.phase.merged(&phase);
    Ok(Some(stats))
}

/// Exact 1-NN through the MESSI index over any [`RawSource`].
///
/// Returns `Ok(None)` for an empty index.
///
/// # Errors
/// Propagates raw-source I/O failures (the in-memory path is infallible).
///
/// # Panics
/// Panics if the query length differs from the configured series length.
pub fn exact_nn(
    messi: &MessiIndex,
    source: &impl RawSource,
    query: &[f32],
    cfg: &MessiConfig,
) -> Result<Option<(Match, QueryStats)>, StorageError> {
    let best = AtomicBest::new();
    match run_exact(messi, source, query, cfg, &best)? {
        None => Ok(None),
        Some(stats) => {
            let (dist_sq, pos) = best.get();
            Ok(Some((Match::new(pos, dist_sq), stats)))
        }
    }
}

/// Exact k-NN through the MESSI index: the same traversal + priority-queue
/// schedule, pruning against the k-th best distance (a [`SharedTopK`])
/// instead of the single best.
///
/// Returns the up-to-`k` nearest series sorted ascending by
/// `(distance, position)` — fewer than `k` when the collection is smaller,
/// empty for an empty index. The answer is deterministic across runs,
/// thread counts and queue counts (distance ties prefer the lowest
/// position).
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// Panics if the query length differs from the configured series length or
/// `k == 0`.
pub fn exact_knn(
    messi: &MessiIndex,
    source: &impl RawSource,
    query: &[f32],
    k: usize,
    cfg: &MessiConfig,
) -> Result<(Vec<Match>, QueryStats), StorageError> {
    let (mut matches, stats) = exact_knn_batch(messi, source, &[query], k, cfg)?;
    Ok((matches.pop().expect("batch of one"), stats.into_single()))
}

/// Exact k-NN for a *batch* of queries in **one** pool broadcast: the tree
/// is traversed once for the whole batch (a node is pruned only when every
/// query's threshold beats its bound), priority-queue entries carry the
/// per-query node mindists, and a popped leaf is processed once — each
/// entry's series fetched from the source at most once per leaf visit and
/// checked against every query whose leaf-level bound survived.
///
/// Answers are element-wise identical to calling [`exact_knn`] per query,
/// deterministic across runs, thread counts and queue counts. The
/// traversal counters ([`QueryStats::nodes_pruned`], `leaves_*`) describe
/// work done once for the whole batch and are reported in
/// [`BatchStats::shared`]; per-query counters sit in
/// [`BatchStats::per_query`].
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// Panics if any query length differs from the configured series length or
/// `k == 0`.
pub fn exact_knn_batch(
    messi: &MessiIndex,
    source: &impl RawSource,
    queries: &[&[f32]],
    k: usize,
    cfg: &MessiConfig,
) -> Result<(Vec<Vec<Match>>, BatchStats), StorageError> {
    exact_knn_batch_shared(messi, source, queries, k, cfg, None)
}

/// [`exact_knn_batch`] with an optional cross-shard pruner view (see
/// [`SharedPruners`](dsidx_query::SharedPruners)): with `shard` set, the
/// traversal and queue-processing phases prune against thresholds that
/// other shards tighten mid-flight, and recorded positions are rebased to
/// global. The returned matches then reflect the whole gather so far; the
/// coordinator uses this return value for stats and reads the final answer
/// from the shared pruners after every shard joined.
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// As [`exact_knn_batch`].
pub fn exact_knn_batch_shared(
    messi: &MessiIndex,
    source: &impl RawSource,
    queries: &[&[f32]],
    k: usize,
    cfg: &MessiConfig,
    shard: Option<ShardView<'_>>,
) -> Result<(Vec<Vec<Match>>, BatchStats), StorageError> {
    let config = messi.index.config();
    for q in queries {
        assert_eq!(q.len(), config.series_len(), "query length mismatch");
    }
    cfg.validate();
    let flat = &messi.flat;
    let quantizer = config.quantizer();
    let mut clock = PhaseClock::start();
    let batch = QueryBatch::for_shard(quantizer, queries, k, shard);
    let prepare_nanos = clock.lap();
    if flat.entry_count() == 0 || batch.is_empty() {
        return Ok(batch.finish(0, QueryStats::default()));
    }
    batch.phases().record(Phase::Prepare, prepare_nanos);
    let tables: Vec<_> = batch
        .slots()
        .iter()
        .map(|s| s.prep.node_table(quantizer))
        .collect();
    let pool = dsidx_sync::pool::global(cfg.threads);
    clock.lap_into(batch.phases(), Phase::Prepare);

    // Initial thresholds from the union of the batch's own leaves
    // (distinct leaves only), cross-seeded into every pruner. Positions
    // are deduplicated and fetched in position order (sequential-friendly
    // for on-disk sources).
    let mut leaf_idxs: Vec<u32> = batch
        .slots()
        .iter()
        .map(|slot| {
            approx_leaf_flat(flat, &slot.prep.word).expect("non-empty index has a non-empty leaf")
        })
        .collect();
    leaf_idxs.sort_unstable();
    leaf_idxs.dedup();
    let mut positions: Vec<u32> = leaf_idxs
        .iter()
        .flat_map(|&idx| flat.leaf_entries(flat.node(idx)).iter().map(|e| e.pos))
        .collect();
    positions.sort_unstable();
    positions.dedup();
    let mut fetcher = SeriesFetcher::new(source);
    batch_seed_positions(&positions, &mut fetcher, &batch)
        .map_err(|e| e.in_phase(Phase::Seed.name()))?;
    clock.lap_into(batch.phases(), Phase::Seed);

    // Phase A: one cooperative traversal for the whole batch (see
    // [`crate::traverse::BatchTraversal`]); surviving leaves enter the
    // queues keyed by their minimum per-query bound. Phase B: pop
    // best-first; a popped minimum at or above every query's threshold
    // closes its whole queue; an entry pays per-query bounds and
    // early-abandoned distances only for queries whose leaf bound
    // survived. One broadcast, phases separated by a spin barrier; a
    // failed raw read closes the worker's queue and surfaces after the
    // join.
    let shared = AtomicQueryStats::new();
    let queues: MinQueues<BatchLeaf> = MinQueues::new(cfg.effective_queues());
    let traversal = BatchTraversal::new(flat, &tables, &batch, &queues);
    let phase_barrier = SpinBarrier::new(cfg.threads);
    let errors = ErrorSlot::for_phase(Phase::Traversal);

    pool.broadcast(&|worker| {
        // Workers accumulate locally and merge once per phase (see
        // `AtomicQueryStats`).
        let mut shared_local = QueryStats::default();
        let mut locals = vec![QueryStats::default(); batch.len()];
        let st = traversal.run_worker();
        shared_local.nodes_pruned = st.pruned;
        shared_local.leaves_enqueued = st.enqueued;
        phase_barrier.wait();

        // Phase B: best-bound-first processing, once per leaf for the
        // whole batch.
        let mut fetcher = SeriesFetcher::new(source);
        let mut active: Vec<usize> = Vec::with_capacity(batch.len());
        drain_best_first(&queues, worker, |min_lb, leaf: BatchLeaf| {
            if errors.is_set() || min_lb >= batch.max_threshold_sq() {
                // Every remaining leaf in this queue is at least as far
                // for every query (or a peer already failed): abandon it
                // wholesale.
                shared_local.leaves_discarded += 1;
                return Drain::Abandon;
            }
            active.clear();
            for (qi, slot) in batch.slots().iter().enumerate() {
                if leaf.lbs[qi] < slot.topk.threshold_sq() {
                    active.push(qi);
                }
            }
            if active.is_empty() {
                // No query can benefit from this one leaf, but the queue's
                // minimum key still beat some threshold — keep draining it.
                shared_local.leaves_discarded += 1;
                return Drain::Processed;
            }
            shared_local.leaves_processed += 1;
            let entries = flat.leaf_entries(flat.node(leaf.idx));
            match batch_process_leaf_entries(entries, &mut fetcher, &batch, &active, &mut locals) {
                Ok(()) => Drain::Processed,
                Err(e) => {
                    errors.record(e);
                    Drain::Abandon
                }
            }
        });
        batch.merge_locals(&locals);
        shared.merge(&shared_local);
    });
    errors.take()?;
    clock.lap_into(batch.phases(), Phase::Traversal);

    Ok(batch.finish(1, shared.snapshot()))
}

/// *Approximate* k-NN through the MESSI index: descend to the query's own
/// leaf (the paper's approximate answer — "the most promising leaf") and
/// return the k nearest of its entries by real Euclidean distance, without
/// the exact traversal/processing phases. No pool broadcast is issued; on
/// an on-disk source only the one leaf's entries are fetched.
///
/// Every reported distance is a real distance to a real series, so it is
/// never below the exact answer at the same rank; the positions may
/// differ. Returns fewer than `k` matches when the leaf holds fewer
/// entries, empty for an empty index.
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// Panics if the query length differs from the configured series length or
/// `k == 0`.
pub fn approx_knn(
    messi: &MessiIndex,
    source: &impl RawSource,
    query: &[f32],
    k: usize,
) -> Result<(Vec<Match>, QueryStats), StorageError> {
    approx_leaf_visit(messi, query, k, |entries, topk| {
        let mut fetcher = SeriesFetcher::new(source);
        seed_from_entries(entries, &mut fetcher, query, topk)
    })
}

/// The shared best-leaf visit behind both approximate measures (ED here,
/// DTW in [`crate::dtw`]): locate the query's leaf, let `pay` charge one
/// real distance per entry into the collector.
pub(crate) fn approx_leaf_visit(
    messi: &MessiIndex,
    query: &[f32],
    k: usize,
    pay: impl FnOnce(&[dsidx_tree::LeafEntry], &SharedTopK) -> Result<u64, StorageError>,
) -> Result<(Vec<Match>, QueryStats), StorageError> {
    let config = messi.index.config();
    assert_eq!(query.len(), config.series_len(), "query length mismatch");
    let topk = SharedTopK::new(k);
    let flat = &messi.flat;
    if flat.entry_count() == 0 {
        return Ok(finish_knn(&topk, None));
    }
    let word = config.quantizer().word(query);
    let idx = approx_leaf_flat(flat, &word).expect("non-empty index has a non-empty leaf");
    let stats = QueryStats {
        real_computed: pay(flat.leaf_entries(flat.node(idx)), &topk)?,
        ..QueryStats::default()
    };
    Ok(finish_knn(&topk, Some(stats)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use crate::config::MessiConfig;
    use dsidx_series::gen::DatasetKind;
    use dsidx_series::Dataset;
    use dsidx_storage::FlakySource;
    use dsidx_tree::TreeConfig;
    use dsidx_ucr::brute_force;

    fn cfg(threads: usize) -> MessiConfig {
        MessiConfig::new(TreeConfig::new(64, 8, 16).unwrap(), threads).with_chunk_series(64)
    }

    #[test]
    fn exact_on_all_dataset_kinds() {
        for kind in DatasetKind::ALL {
            let data = kind.generate(700, 64, 51);
            let (messi, _) = build(&data, &cfg(4));
            let queries = kind.queries(8, 64, 51);
            for q in queries.iter() {
                let want = brute_force(&data, q).unwrap();
                for threads in [1usize, 4] {
                    let c = cfg(threads);
                    let (got, _) = exact_nn(&messi, &data, q, &c).unwrap().unwrap();
                    assert_eq!(got.pos, want.pos, "{} x{threads}", kind.name());
                    assert!((got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4);
                }
            }
        }
    }

    #[test]
    fn knn_equals_brute_force_topk() {
        let data = DatasetKind::Synthetic.generate(600, 64, 43);
        let (messi, _) = build(&data, &cfg(4));
        let queries = DatasetKind::Synthetic.queries(3, 64, 43);
        for q in queries.iter() {
            for k in [1usize, 10, 50, 700] {
                let want = dsidx_ucr::brute_force_knn(&data, q, k);
                for threads in [1usize, 4] {
                    let c = cfg(threads);
                    let (got, stats) = exact_knn(&messi, &data, q, k, &c).unwrap();
                    assert_eq!(got.len(), want.len(), "k={k} x{threads}");
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.pos, w.pos, "k={k} x{threads}");
                        assert!((g.dist_sq - w.dist_sq).abs() <= w.dist_sq * 1e-4 + 1e-4);
                    }
                    assert!(stats.real_computed >= got.len() as u64);
                }
            }
        }
    }

    #[test]
    fn knn_batch_equals_sequential_knn() {
        let data = DatasetKind::Synthetic.generate(700, 64, 57);
        let (messi, _) = build(&data, &cfg(4));
        let qs = DatasetKind::Synthetic.queries(7, 64, 57);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        for k in [1usize, 8, 40] {
            for threads in [1usize, 4] {
                let c = cfg(threads);
                let (batched, stats) = exact_knn_batch(&messi, &data, &qrefs, k, &c).unwrap();
                assert_eq!(stats.broadcasts, 1, "one broadcast for the whole batch");
                assert!(stats.broadcasts_per_query() < 1.0);
                for (qi, q) in qs.iter().enumerate() {
                    let (single, _) = exact_knn(&messi, &data, q, k, &c).unwrap();
                    assert_eq!(
                        batched[qi].iter().map(|m| m.pos).collect::<Vec<_>>(),
                        single.iter().map(|m| m.pos).collect::<Vec<_>>(),
                        "q{qi} k={k} x{threads}"
                    );
                }
                // Traversal ran once for the batch: structural counters
                // live in the shared slice, per-query ones per slot.
                assert!(
                    stats.shared.leaves_processed + stats.shared.leaves_discarded
                        <= stats.shared.leaves_enqueued
                );
                assert_eq!(stats.shared.lb_computed, 0);
            }
        }
    }

    #[test]
    fn knn_batch_deterministic_across_queue_counts() {
        let data = DatasetKind::Seismic.generate(400, 64, 71);
        let (messi, _) = build(&data, &cfg(4));
        let qs = DatasetKind::Seismic.queries(5, 64, 71);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        let (first, _) = exact_knn_batch(&messi, &data, &qrefs, 9, &cfg(1)).unwrap();
        for queues in [1usize, 2, 8, 32] {
            let c = cfg(4).with_queues(queues);
            let (got, _) = exact_knn_batch(&messi, &data, &qrefs, 9, &c).unwrap();
            assert_eq!(got, first, "queues={queues}");
        }
    }

    #[test]
    fn knn_deterministic_across_queue_counts() {
        let data = DatasetKind::Seismic.generate(500, 64, 3);
        let (messi, _) = build(&data, &cfg(4));
        let q = DatasetKind::Seismic.queries(1, 64, 3);
        let (first, _) = exact_knn(&messi, &data, q.get(0), 12, &cfg(1)).unwrap();
        assert_eq!(first.len(), 12);
        for queues in [1usize, 2, 8, 32] {
            let c = cfg(4).with_queues(queues);
            for _ in 0..2 {
                let (m, _) = exact_knn(&messi, &data, q.get(0), 12, &c).unwrap();
                assert_eq!(m, first, "queues={queues}");
            }
        }
    }

    #[test]
    fn approx_knn_never_beats_exact_and_is_broadcast_free() {
        let data = DatasetKind::Synthetic.generate(800, 64, 23);
        let (messi, _) = build(&data, &cfg(4));
        let queries = DatasetKind::Synthetic.queries(5, 64, 23);
        for q in queries.iter() {
            for k in [1usize, 5, 12] {
                let exact = dsidx_ucr::brute_force_knn(&data, q, k);
                let (approx, stats) = approx_knn(&messi, &data, q, k).unwrap();
                assert!(approx.len() <= k);
                assert!(!approx.is_empty());
                // Rank-wise: the approximate i-th distance never falls
                // below the exact i-th (real distances of real series).
                for (a, e) in approx.iter().zip(&exact) {
                    assert!(a.dist_sq >= e.dist_sq - e.dist_sq * 1e-6);
                }
                // Approximate work is the leaf visit only.
                assert!(stats.real_computed >= approx.len() as u64);
                assert_eq!(stats.nodes_pruned, 0);
                assert_eq!(stats.leaves_enqueued, 0);
            }
        }
    }

    #[test]
    fn approx_knn_finds_indexed_series_exactly() {
        let data = DatasetKind::Sald.generate(300, 64, 6);
        let (messi, _) = build(&data, &cfg(3));
        for pos in [0usize, 123, 299] {
            let (m, _) = approx_knn(&messi, &data, data.get(pos), 1).unwrap();
            assert_eq!(m[0].pos as usize, pos);
            assert_eq!(m[0].dist_sq, 0.0);
        }
    }

    #[test]
    fn approx_knn_on_empty_index_is_empty() {
        let data = Dataset::new(64).unwrap();
        let (messi, _) = build(&data, &cfg(2));
        let (got, stats) = approx_knn(&messi, &data, &vec![0.0; 64], 4).unwrap();
        assert!(got.is_empty());
        assert_eq!(stats, QueryStats::default());
    }

    #[test]
    fn knn_on_empty_index_is_empty() {
        let data = Dataset::new(64).unwrap();
        let (messi, _) = build(&data, &cfg(2));
        let (got, stats) = exact_knn(&messi, &data, &vec![0.0; 64], 4, &cfg(2)).unwrap();
        assert!(got.is_empty());
        assert_eq!(stats, QueryStats::default());
    }

    #[test]
    fn queue_count_does_not_change_the_answer() {
        let data = DatasetKind::Synthetic.generate(500, 64, 8);
        let (messi, _) = build(&data, &cfg(4));
        let queries = DatasetKind::Synthetic.queries(4, 64, 8);
        for q in queries.iter() {
            let want = brute_force(&data, q).unwrap();
            for queues in [1usize, 2, 8, 32] {
                let c = cfg(4).with_queues(queues);
                let (got, _) = exact_nn(&messi, &data, q, &c).unwrap().unwrap();
                assert_eq!(got.pos, want.pos, "queues={queues}");
            }
        }
    }

    #[test]
    fn stats_show_pruning() {
        let data = dsidx_series::gen::sines(1000, 64, 3);
        let (messi, _) = build(&data, &cfg(4));
        let queries = dsidx_series::gen::sines(3, 64, 77);
        for q in queries.iter() {
            let (_, stats) = exact_nn(&messi, &data, q, &cfg(4)).unwrap().unwrap();
            // On clusterable data the queues + tree bounds must discard
            // most real-distance work.
            assert!(
                stats.real_computed < 500,
                "expected strong pruning, computed {} real distances",
                stats.real_computed
            );
            assert!(stats.leaves_processed + stats.leaves_discarded <= stats.leaves_enqueued);
            // Scan-only counters stay zero for the tree-based engine.
            assert_eq!(stats.lb_computed, 0);
            assert_eq!(stats.candidates, 0);
        }
    }

    #[test]
    fn query_for_indexed_series_finds_itself() {
        let data = DatasetKind::Sald.generate(300, 64, 6);
        let (messi, _) = build(&data, &cfg(3));
        for pos in [0usize, 123, 299] {
            let (m, _) = exact_nn(&messi, &data, data.get(pos), &cfg(3))
                .unwrap()
                .unwrap();
            assert_eq!(m.pos as usize, pos);
            assert_eq!(m.dist_sq, 0.0);
        }
    }

    #[test]
    fn empty_index_returns_none() {
        let data = Dataset::new(64).unwrap();
        let (messi, _) = build(&data, &cfg(2));
        assert!(exact_nn(&messi, &data, &vec![0.0; 64], &cfg(2))
            .unwrap()
            .is_none());
    }

    #[test]
    fn deterministic_across_runs() {
        let data = DatasetKind::Seismic.generate(600, 64, 13);
        let (messi, _) = build(&data, &cfg(8));
        let q = DatasetKind::Seismic.queries(1, 64, 13);
        let (first, _) = exact_nn(&messi, &data, q.get(0), &cfg(1)).unwrap().unwrap();
        for _ in 0..5 {
            let (m, _) = exact_nn(&messi, &data, q.get(0), &cfg(8)).unwrap().unwrap();
            assert_eq!(m, first);
        }
    }

    #[test]
    fn query_with_missing_root_subtree_still_exact() {
        // Construct a dataset occupying few subtrees, query from a pattern
        // whose root key is absent.
        let data = dsidx_series::gen::sines(100, 64, 5);
        let (messi, _) = build(&data, &cfg(2));
        let q = DatasetKind::Seismic.queries(1, 64, 123);
        let want = brute_force(&data, q.get(0)).unwrap();
        let (got, _) = exact_nn(&messi, &data, q.get(0), &cfg(2)).unwrap().unwrap();
        assert_eq!(got.pos, want.pos);
    }

    #[test]
    fn mid_query_read_failure_is_an_error_not_a_panic() {
        let data = DatasetKind::Synthetic.generate(500, 64, 91);
        let (messi, _) = build(&data, &cfg(4));
        let q = DatasetKind::Synthetic.queries(2, 64, 91);
        let qrefs: Vec<&[f32]> = q.iter().collect();
        // Budget 0: the very first fetch (approximate-leaf seeding) fails,
        // and the error carries the phase it happened in.
        let flaky = FlakySource::new(data.clone(), 0);
        let err = exact_nn(&messi, &flaky, q.get(0), &cfg(4)).unwrap_err();
        assert!(matches!(err.root_cause(), StorageError::Io(_)));
        assert!(err.to_string().starts_with("during seed:"), "{err}");
        // Budgets that survive seeding but die inside the broadcast's
        // processing phase: the error must surface through the pool join
        // as `Err` — a worker panic would abort the whole process here.
        for budget in [1u64, 8, 32, 64] {
            let flaky = FlakySource::new(data.clone(), budget);
            assert!(
                exact_knn_batch(&messi, &flaky, &qrefs, 50, &cfg(4)).is_err(),
                "budget {budget} cannot cover a k=50 batch over 500 series"
            );
            assert!(flaky.tripped());
        }
        // An unconstrained budget answers exactly like the dataset itself.
        let flaky = FlakySource::new(data.clone(), u64::MAX);
        let (via_flaky, _) = exact_knn(&messi, &flaky, q.get(0), 7, &cfg(4)).unwrap();
        let (via_data, _) = exact_knn(&messi, &data, q.get(0), 7, &cfg(4)).unwrap();
        assert_eq!(via_flaky, via_data);
    }
}
