//! MESSI index construction (stages 1–2 of Fig. 3).
//!
//! Two build paths share stage 2 (parallel subtree construction):
//! [`build`] summarizes an in-memory dataset with the paper's Fetch&Inc
//! chunk claiming, [`build_from_file`] streams sequential blocks of a
//! [`DatasetFile`] (reads charged to the modeled device) — the on-disk
//! ingestion that lets `DiskIndex` host a MESSI tree. Both produce
//! **identical trees for identical raw data**: stage 2 inserts each
//! subtree's entries in position order, so the split decisions (which
//! depend on the entries present at overflow time) never depend on worker
//! timing or on which path summarized the data. That determinism is what
//! makes on-disk answers bit-identical to in-memory answers, approximate
//! fidelity included (the approximate answer is "the query's own leaf" —
//! a tree-shape-dependent notion).

use crate::config::{BufferMode, MessiConfig};
use dsidx_isax::Word;
use dsidx_series::Dataset;
use dsidx_storage::{DatasetFile, StorageError};
use dsidx_sync::{SyncSlice, WorkQueue};
use dsidx_tree::{FlatTree, Index, LeafEntry, Node, NodeWord, SaxArray};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// A built MESSI index.
#[derive(Debug)]
pub struct MessiIndex {
    /// The iSAX tree (fully resident).
    pub index: Index,
    /// Cache-conscious flattened view of the tree — what query answering
    /// actually traverses (see [`dsidx_tree::flat`]).
    pub flat: FlatTree,
    /// Position-ordered iSAX words (not used by MESSI's own query path,
    /// which reads summaries from the leaves, but kept for cross-engine
    /// tooling and ablations).
    pub sax: SaxArray,
}

/// Wall-clock phase breakdown (Fig. 5's two stacked components).
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildPhases {
    /// Stage 1: "Calculate iSAX Representations".
    pub summarize: Duration,
    /// Stage 2: "Tree Index Construction".
    pub tree_build: Duration,
    /// Total wall time.
    pub total: Duration,
}

/// Builds a MESSI index over an in-memory dataset.
///
/// # Panics
/// Panics on configuration mismatches (series length, zero threads).
#[must_use]
pub fn build(data: &Dataset, cfg: &MessiConfig) -> (MessiIndex, BuildPhases) {
    cfg.validate();
    assert_eq!(
        data.series_len(),
        cfg.tree.series_len(),
        "series length mismatch"
    );
    let t0 = Instant::now();
    let (words, parts) = match cfg.buffer_mode {
        BufferMode::PerThreadParts => summarize_per_thread(data, cfg),
        BufferMode::LockedShared => summarize_locked(data, cfg),
    };
    let summarize = t0.elapsed();

    let t1 = Instant::now();
    let index = build_tree(cfg, &parts);
    let flat = FlatTree::from_index(&index);
    let tree_build = t1.elapsed();

    (
        MessiIndex {
            index,
            flat,
            sax: SaxArray::new(words),
        },
        BuildPhases {
            summarize,
            tree_build,
            total: t0.elapsed(),
        },
    )
}

/// Builds a MESSI index by *streaming* an on-disk dataset file: stage 1
/// reads sequential blocks of `block_series` series (each read charged to
/// the file's device) and summarizes them into per-subtree buffers, then
/// stage 2 builds the subtrees with the same parallel schedule as the
/// in-memory path. The counterpart of `dsidx_ads::build_from_file`, with
/// MESSI's parallel tree construction.
///
/// The resulting tree is **identical** to what [`build`] produces over the
/// same raw data (see the module docs), so queries — exact and
/// approximate — answer bit-identically on either.
///
/// # Errors
/// Propagates I/O failures.
///
/// # Panics
/// Panics on configuration mismatches (series length, zero threads) or
/// `block_series == 0`.
pub fn build_from_file(
    file: &DatasetFile,
    cfg: &MessiConfig,
    block_series: usize,
) -> Result<(MessiIndex, BuildPhases), StorageError> {
    cfg.validate();
    assert_eq!(
        file.series_len(),
        cfg.tree.series_len(),
        "series length mismatch"
    );
    assert!(block_series > 0, "block size must be non-zero");
    let t0 = Instant::now();
    let segments = cfg.tree.segments();
    let root_count = cfg.tree.root_count();
    let quantizer = cfg.tree.quantizer();
    let series_len = cfg.tree.series_len();
    let mut paa = vec![0.0f32; segments];
    let mut words: Vec<Word> = Vec::with_capacity(file.count());
    let mut buffers: Buffers = Vec::new();
    buffers.resize_with(root_count, Vec::new);
    let mut block = Vec::new();
    let mut start = 0;
    while start < file.count() {
        let count = block_series.min(file.count() - start);
        file.read_block(start, count, &mut block)?;
        for (i, series) in block.chunks_exact(series_len).enumerate() {
            let pos = start + i;
            let word = quantizer.word_into(series, &mut paa);
            words.push(word);
            let parts = &mut buffers[word.root_key() as usize];
            if parts.is_empty() {
                parts.push(Vec::new());
            }
            parts[0].push(LeafEntry::new(word, pos as u32));
        }
        start += count;
    }
    let summarize = t0.elapsed();

    let t1 = Instant::now();
    let index = build_tree(cfg, &buffers);
    let flat = FlatTree::from_index(&index);
    let tree_build = t1.elapsed();

    Ok((
        MessiIndex {
            index,
            flat,
            sax: SaxArray::new(words),
        },
        BuildPhases {
            summarize,
            tree_build,
            total: t0.elapsed(),
        },
    ))
}

/// Per-subtree buffers: `buffers[key]` holds one or more parts, each the
/// private output of one worker (one part total in locked mode).
type Buffers = Vec<Vec<Vec<LeafEntry>>>;

/// Stage 1, MESSI layout: every worker owns a full array of buffer parts.
fn summarize_per_thread(data: &Dataset, cfg: &MessiConfig) -> (Vec<Word>, Buffers) {
    let segments = cfg.tree.segments();
    let root_count = cfg.tree.root_count();
    let quantizer = cfg.tree.quantizer();
    let filler = Word::new(&vec![0u8; segments]);
    let sax = SyncSlice::new(vec![filler; data.len()]);
    let queue = WorkQueue::new(data.len());

    let pool = dsidx_sync::pool::global(cfg.threads);
    let mut slots: Vec<Mutex<Vec<Vec<LeafEntry>>>> = Vec::new();
    slots.resize_with(cfg.threads, || Mutex::new(Vec::new()));
    pool.broadcast(&|worker| {
        let mut paa = vec![0.0f32; segments];
        let mut parts: Vec<Vec<LeafEntry>> = Vec::new();
        parts.resize_with(root_count, Vec::new);
        while let Some(range) = queue.claim_chunk(cfg.chunk_series) {
            for pos in range {
                let word = quantizer.word_into(data.get(pos), &mut paa);
                // SAFETY: chunk claims are disjoint; each position is
                // written exactly once.
                unsafe { sax.write(pos, word) };
                parts[word.root_key() as usize].push(LeafEntry::new(word, pos as u32));
            }
        }
        *slots[worker].lock() = parts;
    });
    let per_worker: Vec<Vec<Vec<LeafEntry>>> = slots
        .into_iter()
        .map(parking_lot::Mutex::into_inner)
        .collect();

    // Regroup: buffers[key] = the workers' parts for that subtree.
    let mut buffers: Buffers = Vec::new();
    buffers.resize_with(root_count, Vec::new);
    for worker_parts in per_worker {
        for (key, part) in worker_parts.into_iter().enumerate() {
            if !part.is_empty() {
                buffers[key].push(part);
            }
        }
    }
    (sax.into_inner(), buffers)
}

/// Stage 1, rejected layout (paper footnote 2): one locked buffer per
/// subtree, contended by all workers.
fn summarize_locked(data: &Dataset, cfg: &MessiConfig) -> (Vec<Word>, Buffers) {
    let segments = cfg.tree.segments();
    let root_count = cfg.tree.root_count();
    let quantizer = cfg.tree.quantizer();
    let filler = Word::new(&vec![0u8; segments]);
    let sax = SyncSlice::new(vec![filler; data.len()]);
    let queue = WorkQueue::new(data.len());
    let mut locked: Vec<Mutex<Vec<LeafEntry>>> = Vec::new();
    locked.resize_with(root_count, || Mutex::new(Vec::new()));

    let pool = dsidx_sync::pool::global(cfg.threads);
    pool.broadcast(&|_worker| {
        let mut paa = vec![0.0f32; segments];
        while let Some(range) = queue.claim_chunk(cfg.chunk_series) {
            for pos in range {
                let word = quantizer.word_into(data.get(pos), &mut paa);
                // SAFETY: chunk claims are disjoint.
                unsafe { sax.write(pos, word) };
                locked[word.root_key() as usize]
                    .lock()
                    .push(LeafEntry::new(word, pos as u32));
            }
        }
    });

    let mut buffers: Buffers = Vec::new();
    buffers.resize_with(root_count, Vec::new);
    for (key, m) in locked.into_iter().enumerate() {
        let part = m.into_inner();
        if !part.is_empty() {
            buffers[key].push(part);
        }
    }
    (sax.into_inner(), buffers)
}

/// Stage 2: workers claim subtrees by Fetch&Inc and build them
/// independently ("all index workers process distinct subtrees of the
/// index ... with no need for synchronization").
///
/// Each subtree's entries are inserted in **position order**, whatever
/// order the parts arrived in: leaf-split decisions depend on the entries
/// present at overflow time, so insertion order shapes the tree — and the
/// tree's shape is observable (the approximate answer is the query's own
/// leaf). Position-ordered insertion makes every build path (per-thread
/// parts, locked buffers, streaming-from-file) produce the same tree for
/// the same raw data, deterministic across runs and thread counts. The
/// sort is per-subtree and runs inside the parallel claim, so it rides the
/// same cores as the inserts it orders.
fn build_tree(cfg: &MessiConfig, buffers: &Buffers) -> Index {
    let segments = cfg.tree.segments();
    let occupied: Vec<u16> = buffers
        .iter()
        .enumerate()
        .filter(|(_, parts)| !parts.is_empty())
        .map(|(key, _)| key as u16)
        .collect();
    let roots: SyncSlice<Option<Box<Node>>> =
        SyncSlice::new((0..cfg.tree.root_count()).map(|_| None).collect());
    let queue = WorkQueue::new(occupied.len());
    let tree_cfg = &cfg.tree;
    let pool = dsidx_sync::pool::global(cfg.threads);
    pool.broadcast(&|_worker| {
        while let Some(i) = queue.claim() {
            let key = occupied[i];
            let mut node = Box::new(Node::new_leaf(NodeWord::root(key, segments)));
            let mut entries: Vec<LeafEntry> = buffers[key as usize]
                .iter()
                .flat_map(|part| part.iter().copied())
                .collect();
            entries.sort_unstable_by_key(|e| e.pos);
            for e in entries {
                node.insert(e, tree_cfg);
            }
            // SAFETY: each occupied key is claimed exactly once.
            unsafe { roots.write(key as usize, Some(node)) };
        }
    });
    Index::from_roots(cfg.tree.clone(), roots.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_series::gen::DatasetKind;
    use dsidx_tree::stats::{index_stats, validate};
    use dsidx_tree::TreeConfig;

    fn cfg(threads: usize) -> MessiConfig {
        MessiConfig::new(TreeConfig::new(64, 8, 16).unwrap(), threads).with_chunk_series(50)
    }

    #[test]
    fn build_indexes_every_series() {
        let data = DatasetKind::Synthetic.generate(700, 64, 2);
        let (messi, phases) = build(&data, &cfg(4));
        assert_eq!(messi.index.len(), 700);
        assert_eq!(messi.sax.len(), 700);
        validate(&messi.index);
        assert!(phases.total >= phases.summarize);
        let q = cfg(1).tree;
        for (pos, series) in data.iter().enumerate() {
            assert_eq!(messi.sax.word(pos), &q.quantizer().word(series));
        }
    }

    #[test]
    fn both_buffer_modes_build_identical_trees() {
        let data = DatasetKind::Sald.generate(500, 64, 9);
        let (a, _) = build(&data, &cfg(4));
        let (b, _) = build(&data, &cfg(4).with_buffer_mode(BufferMode::LockedShared));
        assert_eq!(a.index.len(), b.index.len());
        assert_eq!(a.sax.words(), b.sax.words());
        assert_eq!(a.index.occupied_roots(), b.index.occupied_roots());
        // Position-ordered stage-2 insertion makes the trees *identical*,
        // not merely statistically alike.
        let sa = index_stats(&a.index);
        let sb = index_stats(&b.index);
        assert_eq!(sa.entry_count, sb.entry_count);
        assert_eq!(sa.root_subtrees, sb.root_subtrees);
        assert_eq!(sa.leaf_count, sb.leaf_count);
        assert_eq!(a.flat.nodes().len(), b.flat.nodes().len());
    }

    #[test]
    fn parallel_build_is_deterministic_across_runs_and_threads() {
        let data = DatasetKind::Synthetic.generate(800, 64, 17);
        let (first, _) = build(&data, &cfg(1));
        for threads in [2usize, 4, 8] {
            for _ in 0..2 {
                let (again, _) = build(&data, &cfg(threads));
                assert_eq!(
                    first.index, again.index,
                    "tree shape must not depend on worker timing (x{threads})"
                );
            }
        }
    }

    #[test]
    fn file_build_matches_memory_build_exactly() {
        use dsidx_storage::{write_dataset, Device};
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!("dsidx-messi-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("build.dsidx");
        let data = DatasetKind::Sald.generate(400, 64, 9);
        write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let device = Arc::new(Device::unthrottled());
        let file = DatasetFile::open(&path, Arc::clone(&device)).unwrap();
        let (mem, _) = build(&data, &cfg(4));
        let (disk, phases) = build_from_file(&file, &cfg(4), 77).unwrap();
        // Identical words AND an identical tree: the determinism the
        // disk==memory query equivalence rests on.
        assert_eq!(mem.sax.words(), disk.sax.words());
        assert_eq!(mem.index, disk.index);
        assert!(phases.total >= phases.summarize);
        // Streaming reads were charged to the device.
        assert_eq!(device.stats().bytes_read, 400 * 64 * 4);
        validate(&disk.index);
    }

    #[test]
    fn file_build_of_empty_dataset_is_empty() {
        use dsidx_storage::{write_dataset, Device};
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!("dsidx-messi-e{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.dsidx");
        write_dataset(
            &path,
            &Dataset::new(64).unwrap(),
            Arc::new(Device::unthrottled()),
        )
        .unwrap();
        let file = DatasetFile::open(&path, Arc::new(Device::unthrottled())).unwrap();
        let (messi, _) = build_from_file(&file, &cfg(2), 64).unwrap();
        assert!(messi.index.is_empty());
    }

    #[test]
    fn matches_serial_baseline_structure() {
        let data = DatasetKind::Seismic.generate(400, 64, 21);
        let (messi, _) = build(&data, &cfg(6));
        let (ads, _) = dsidx_ads::build_from_dataset(&data, &cfg(1).tree);
        assert_eq!(messi.index.len(), ads.index.len());
        assert_eq!(messi.index.occupied_roots(), ads.index.occupied_roots());
        assert_eq!(messi.sax.words(), ads.sax.words());
    }

    #[test]
    fn single_thread_build_works() {
        let data = DatasetKind::Synthetic.generate(100, 64, 4);
        let (messi, _) = build(&data, &cfg(1));
        assert_eq!(messi.index.len(), 100);
        validate(&messi.index);
    }

    #[test]
    fn empty_dataset() {
        let data = Dataset::new(64).unwrap();
        let (messi, _) = build(&data, &cfg(4));
        assert!(messi.index.is_empty());
    }

    #[test]
    #[should_panic(expected = "series length mismatch")]
    fn wrong_series_length_panics() {
        let data = DatasetKind::Synthetic.generate(10, 32, 1);
        let _ = build(&data, &cfg(2));
    }
}
