//! MESSI: the paper's in-memory parallel data series index.
//!
//! MESSI differs from ParIS/ParIS+ in both phases (§III):
//!
//! * **Construction** — raw data lives in an in-memory array split into
//!   chunks claimed by Fetch&Inc; workers store iSAX summaries in *their
//!   own parts* of the per-subtree buffers ("to reduce synchronization
//!   cost, each iSAX buffer is split into parts and each worker works on
//!   its own part"), then build distinct subtrees in parallel with no
//!   synchronization. The locked-buffer alternative the paper rejected in
//!   footnote 2 is kept as [`config::BufferMode::LockedShared`] for the
//!   ablation.
//! * **Query answering** — tree-based, not scan-based: workers traverse
//!   subtrees pruning with node-level lower bounds against a shared BSF,
//!   insert surviving leaves into a set of minimum priority queues
//!   (round-robin, for load balancing), then repeatedly pop the most
//!   promising leaves; a popped bound above the BSF abandons the whole
//!   queue. This ordering is why MESSI computes far fewer real distances
//!   than ParIS — the effect Fig. 12 quantifies.
//!
//! The paper positions MESSI as in-memory; this reproduction additionally
//! makes every query path generic over `dsidx_storage::RawSource` and adds
//! a streaming build path ([`build_from_file`]), so the same schedules
//! answer from an on-disk dataset file with candidate reads charged to the
//! modeled device — the storage blend the paper's successor systems
//! (Hercules, SING) explore. Raw-read failures mid-query surface as
//! `Err(StorageError)`, never a worker panic.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod build;
pub mod config;
pub mod dtw;
pub mod pqueue;
pub mod query;
pub mod traverse;

pub use build::{build, build_from_file, BuildPhases, MessiIndex};
pub use config::{BufferMode, MessiConfig};
pub use dsidx_query::{BatchStats, QueryStats};
pub use dtw::{
    approx_knn_dtw, exact_knn_dtw, exact_knn_dtw_batch, exact_knn_dtw_batch_shared, exact_nn_dtw,
};
pub use query::{approx_knn, exact_knn, exact_knn_batch, exact_knn_batch_shared, exact_nn};
