//! MESSI configuration.

use dsidx_tree::TreeConfig;

/// How summarization workers store iSAX summaries before tree construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferMode {
    /// Each worker appends to its own part of every subtree's buffer — no
    /// synchronization (MESSI's design).
    PerThreadParts,
    /// One locked buffer per subtree shared by all workers — the
    /// alternative the paper measured and rejected (footnote 2); kept for
    /// the `abl-buffers` ablation.
    LockedShared,
}

/// Configuration for MESSI builds and queries.
#[derive(Debug, Clone)]
pub struct MessiConfig {
    /// Tree shape (series length, segments, leaf capacity).
    pub tree: TreeConfig,
    /// Worker thread count.
    pub threads: usize,
    /// Series per Fetch&Inc chunk during summarization.
    pub chunk_series: usize,
    /// Number of priority queues at query time (0 = one per thread).
    pub queues: usize,
    /// Buffer layout during construction.
    pub buffer_mode: BufferMode,
}

impl MessiConfig {
    /// A configuration with the paper's defaults.
    #[must_use]
    pub fn new(tree: TreeConfig, threads: usize) -> Self {
        Self {
            tree,
            threads,
            chunk_series: 1024,
            queues: 0,
            buffer_mode: BufferMode::PerThreadParts,
        }
    }

    /// Sets the summarization chunk size.
    #[must_use]
    pub fn with_chunk_series(mut self, chunk_series: usize) -> Self {
        assert!(chunk_series > 0, "chunk size must be non-zero");
        self.chunk_series = chunk_series;
        self
    }

    /// Sets the priority-queue count (0 = one per thread).
    #[must_use]
    pub fn with_queues(mut self, queues: usize) -> Self {
        self.queues = queues;
        self
    }

    /// Sets the buffer layout.
    #[must_use]
    pub fn with_buffer_mode(mut self, buffer_mode: BufferMode) -> Self {
        self.buffer_mode = buffer_mode;
        self
    }

    /// Effective queue count.
    #[must_use]
    pub fn effective_queues(&self) -> usize {
        if self.queues == 0 {
            self.threads
        } else {
            self.queues
        }
    }

    pub(crate) fn validate(&self) {
        assert!(self.threads > 0, "thread count must be non-zero");
        assert!(self.chunk_series > 0, "chunk size must be non-zero");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_defaults() {
        let tree = TreeConfig::new(64, 8, 10).unwrap();
        let cfg = MessiConfig::new(tree, 8);
        assert_eq!(cfg.effective_queues(), 8);
        let cfg = cfg
            .with_queues(3)
            .with_chunk_series(64)
            .with_buffer_mode(BufferMode::LockedShared);
        assert_eq!(cfg.effective_queues(), 3);
        assert_eq!(cfg.chunk_series, 64);
        assert_eq!(cfg.buffer_mode, BufferMode::LockedShared);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn zero_threads_rejected() {
        let tree = TreeConfig::new(64, 8, 10).unwrap();
        MessiConfig::new(tree, 0).validate();
    }
}
