//! DTW query preparation and the batched DTW kernel loops.
//!
//! A banded-DTW query carries more prepared state than a Euclidean one:
//! the LB_Keogh envelope of the query, the PAA bounds of that envelope,
//! and the *interval* MINDIST tables built from those bounds (a point
//! query lower-bounds candidates from its own PAA; a warped query must
//! lower-bound them from everything the band allows). [`DtwPrepared`]
//! packages all of it, built once per query.
//!
//! The batch loops here are the DTW generalizations of the ED loops in
//! [`batch`](crate::batch): a [`QueryBatch`] supplies the per-query
//! pruners and counters, a `&[DtwPrepared]` (index-aligned with the
//! batch's slots) supplies the per-query envelopes, and each fetched
//! series pays the cascade — interval iSAX bound → LB_Keogh → early-
//! abandoned banded DTW — against every active query in one data pass.

use crate::batch::QueryBatch;
use crate::fetch::SeriesFetcher;
use crate::stats::QueryStats;
use dsidx_isax::paa::envelope_paa_bounds;
use dsidx_isax::{MindistTable, NodeMindistTable, Quantizer};
use dsidx_series::distance::dtw::{dtw_sq, dtw_sq_bounded, envelope, lb_keogh_sq_bounded};
use dsidx_storage::{RawSource, StorageError};
use dsidx_sync::Pruner;
use dsidx_tree::LeafEntry;

/// Everything a banded-DTW query needs before touching index structures:
/// the query envelope (for LB_Keogh), its per-segment PAA bounds, and the
/// interval word-level MINDIST table (for SAX-array and leaf-entry
/// bounds). The DTW counterpart of [`PreparedQuery`](crate::PreparedQuery).
#[derive(Debug, Clone)]
pub struct DtwPrepared {
    /// Lower envelope of the query under the band (length = series length).
    pub lo_env: Vec<f32>,
    /// Upper envelope of the query under the band.
    pub hi_env: Vec<f32>,
    /// Segment-min of the lower envelope (PAA bound).
    lo_paa: Vec<f32>,
    /// Segment-max of the upper envelope (PAA bound).
    hi_paa: Vec<f32>,
    /// Interval word-level MINDIST table — a sound DTW lower bound.
    pub table: MindistTable,
}

impl DtwPrepared {
    /// Builds the DTW prepared state for `query` under a Sakoe-Chiba band
    /// of half-width `band`.
    ///
    /// # Panics
    /// Panics if the query length differs from the quantizer's series
    /// length (engines assert this at their API boundary).
    #[must_use]
    pub fn new(quantizer: &Quantizer, query: &[f32], band: usize) -> Self {
        let mut lo_env = Vec::new();
        let mut hi_env = Vec::new();
        envelope(query, band, &mut lo_env, &mut hi_env);
        let segments = quantizer.segment_lens().len();
        let mut lo_paa = vec![0.0f32; segments];
        let mut hi_paa = vec![0.0f32; segments];
        envelope_paa_bounds(&lo_env, &hi_env, &mut lo_paa, &mut hi_paa);
        let table = MindistTable::new_interval(&lo_paa, &hi_paa, quantizer.segment_lens());
        Self {
            lo_env,
            hi_env,
            lo_paa,
            hi_paa,
            table,
        }
    }

    /// Builds the interval node-level table for tree-traversing engines
    /// (MESSI). Separate from construction because scan-based consumers
    /// never need it.
    #[must_use]
    pub fn node_table(&self, quantizer: &Quantizer) -> NodeMindistTable {
        NodeMindistTable::new_interval(&self.lo_paa, &self.hi_paa, quantizer.segment_lens())
    }
}

/// Seeds the pruner with the full banded-DTW distance of every entry in
/// the approximate leaf — the DTW counterpart of
/// [`seed_from_entries`](crate::seed::seed_from_entries). Returns the
/// number of real (full) DTW distances computed.
///
/// # Errors
/// Propagates raw-source I/O failures.
pub fn seed_from_entries_dtw<P: Pruner>(
    entries: &[LeafEntry],
    fetcher: &mut SeriesFetcher<'_, impl RawSource>,
    query: &[f32],
    band: usize,
    pruner: &P,
) -> Result<u64, StorageError> {
    for e in entries {
        let series = fetcher.fetch(e.pos as usize)?;
        pruner.insert(dtw_sq(query, series, band), e.pos);
    }
    Ok(entries.len() as u64)
}

/// The LB_Keogh → early-abandoned banded DTW tail of the cascade over one
/// leaf's entries for a single query (MESSI's DTW processing phase),
/// paying a fetch only for entries whose iSAX bound survives. Counter
/// updates land in `stats` (`lb_entry_computed`, `lb_keogh_*`,
/// `real_computed`, `dtw_abandoned`) — the single-query counterpart of
/// [`batch_process_leaf_entries_dtw`] and the DTW counterpart of
/// [`process_leaf_entries`](crate::scan::process_leaf_entries).
///
/// # Errors
/// Propagates raw-source I/O failures.
pub fn process_leaf_entries_dtw<P: Pruner>(
    entries: &[LeafEntry],
    prep: &DtwPrepared,
    fetcher: &mut SeriesFetcher<'_, impl RawSource>,
    query: &[f32],
    band: usize,
    pruner: &P,
    stats: &mut QueryStats,
) -> Result<(), StorageError> {
    for e in entries {
        let limit = pruner.threshold_sq();
        stats.lb_entry_computed += 1;
        if prep.table.lookup(&e.word) >= limit {
            continue;
        }
        let series = fetcher.fetch(e.pos as usize)?;
        stats.lb_keogh_computed += 1;
        if lb_keogh_sq_bounded(series, &prep.lo_env, &prep.hi_env, limit).is_none() {
            stats.lb_keogh_pruned += 1;
            continue;
        }
        if let Some(d) = dtw_sq_bounded(query, series, band, limit) {
            stats.real_computed += 1;
            pruner.insert(d, e.pos);
        } else {
            stats.dtw_abandoned += 1;
        }
    }
    Ok(())
}

/// Seeds every query in a DTW batch from the (deduplicated) `positions`:
/// each series is fetched once and pays an early-abandoned banded DTW
/// against every query — the DTW counterpart of
/// [`batch_seed_positions`](crate::batch::batch_seed_positions).
///
/// # Errors
/// Propagates raw-source I/O failures.
pub fn batch_seed_positions_dtw(
    positions: &[u32],
    fetcher: &mut SeriesFetcher<'_, impl RawSource>,
    batch: &QueryBatch<'_>,
    band: usize,
) -> Result<(), StorageError> {
    if batch.is_empty() || positions.is_empty() {
        return Ok(());
    }
    let mut locals = vec![QueryStats::default(); batch.len()];
    for &pos in positions {
        let series = fetcher.fetch(pos as usize)?;
        for (slot, local) in batch.slots().iter().zip(&mut locals) {
            let limit = slot.topk.threshold_sq();
            if let Some(d) = dtw_sq_bounded(slot.values, series, band, limit) {
                slot.topk.insert(d, pos);
                local.real_computed += 1;
            } else {
                local.dtw_abandoned += 1;
            }
        }
    }
    batch.merge_locals(&locals);
    batch.count_io(
        positions.len() as u64,
        positions.len() as u64 * batch.len() as u64,
    );
    Ok(())
}

/// The full DTW pruning cascade over one leaf's entries for every query in
/// `active` (indices into the batch's slots whose leaf-level bound
/// survived): interval iSAX bound → LB_Keogh on the raw series →
/// early-abandoned banded DTW, each stage pruning against that query's
/// current threshold. The leaf is processed *once* for the whole batch,
/// and a surviving entry is fetched once from the [`RawSource`] for every
/// query that still wants it — the DTW counterpart of
/// [`batch_process_leaf_entries`](crate::batch::batch_process_leaf_entries).
///
/// `preps` is index-aligned with the batch's slots.
///
/// # Errors
/// Propagates raw-source I/O failures.
///
/// # Panics
/// Panics if `preps` is not one prepared state per query.
#[allow(clippy::too_many_arguments)] // mirrors the ED batch loop + band
pub fn batch_process_leaf_entries_dtw(
    entries: &[LeafEntry],
    fetcher: &mut SeriesFetcher<'_, impl RawSource>,
    batch: &QueryBatch<'_>,
    active: &[usize],
    preps: &[DtwPrepared],
    band: usize,
    locals: &mut [QueryStats],
) -> Result<(), StorageError> {
    assert_eq!(preps.len(), batch.len(), "one DtwPrepared per query");
    let (mut fetches, mut requests) = (0u64, 0u64);
    let mut survivors: Vec<usize> = Vec::with_capacity(active.len());
    for e in entries {
        survivors.clear();
        for &qi in active {
            let slot = &batch.slots()[qi];
            locals[qi].lb_entry_computed += 1;
            if preps[qi].table.lookup(&e.word) < slot.topk.threshold_sq() {
                survivors.push(qi);
            }
        }
        if survivors.is_empty() {
            continue;
        }
        let series = fetcher.fetch(e.pos as usize)?;
        fetches += 1;
        for &qi in &survivors {
            let slot = &batch.slots()[qi];
            let prep = &preps[qi];
            let limit = slot.topk.threshold_sq();
            requests += 1;
            locals[qi].lb_keogh_computed += 1;
            if lb_keogh_sq_bounded(series, &prep.lo_env, &prep.hi_env, limit).is_none() {
                locals[qi].lb_keogh_pruned += 1;
                continue;
            }
            if let Some(d) = dtw_sq_bounded(slot.values, series, band, limit) {
                slot.topk.insert(d, e.pos);
                locals[qi].real_computed += 1;
            } else {
                locals[qi].dtw_abandoned += 1;
            }
        }
    }
    batch.count_io(fetches, requests);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::QueryStats;
    use dsidx_series::gen::DatasetKind;
    use dsidx_series::Dataset;
    use dsidx_tree::TreeConfig;

    fn fixture(n: usize) -> (Dataset, TreeConfig) {
        let config = TreeConfig::new(64, 8, 16).unwrap();
        let data = DatasetKind::Synthetic.generate(n, 64, 5);
        (data, config)
    }

    fn brute_dtw_topk(data: &Dataset, q: &[f32], band: usize, k: usize) -> Vec<(f32, u32)> {
        let mut all: Vec<(f32, u32)> = data
            .iter()
            .enumerate()
            .map(|(pos, s)| (dtw_sq(q, s, band), pos as u32))
            .collect();
        all.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    #[test]
    fn interval_table_lower_bounds_dtw() {
        let (data, config) = fixture(200);
        let quantizer = config.quantizer();
        let qs = DatasetKind::Synthetic.queries(3, 64, 9);
        for band in [0usize, 3, 6] {
            for q in qs.iter() {
                let prep = DtwPrepared::new(quantizer, q, band);
                for s in data.iter() {
                    let word = quantizer.word(s);
                    let lb = prep.table.lookup(&word);
                    let d = dtw_sq(q, s, band);
                    assert!(
                        lb <= d + d.abs() * 1e-4 + 1e-4,
                        "interval bound {lb} exceeds DTW {d} (band {band})"
                    );
                }
            }
        }
    }

    #[test]
    fn envelope_matches_direct_computation() {
        let (_, config) = fixture(1);
        let q = DatasetKind::Sald.queries(1, 64, 3);
        let prep = DtwPrepared::new(config.quantizer(), q.get(0), 4);
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        envelope(q.get(0), 4, &mut lo, &mut hi);
        assert_eq!(prep.lo_env, lo);
        assert_eq!(prep.hi_env, hi);
    }

    #[test]
    fn seed_from_entries_dtw_finds_leaf_minimum() {
        let (data, config) = fixture(100);
        let quantizer = config.quantizer();
        let entries: Vec<LeafEntry> = (0..20u32)
            .map(|pos| LeafEntry::new(quantizer.word(data.get(pos as usize)), pos))
            .collect();
        let q = data.get(7);
        let topk = dsidx_sync::SharedTopK::new(1);
        let mut fetcher = SeriesFetcher::new(&data);
        let reals = seed_from_entries_dtw(&entries, &mut fetcher, q, 3, &topk).unwrap();
        assert_eq!(reals, 20);
        // Series 7 is among the entries, so its DTW distance of 0 wins.
        assert_eq!(topk.matches(), vec![(0.0, 7)]);
    }

    #[test]
    fn single_query_leaf_cascade_equals_brute_force() {
        let (data, config) = fixture(220);
        let quantizer = config.quantizer();
        let entries: Vec<LeafEntry> = data
            .iter()
            .enumerate()
            .map(|(pos, s)| LeafEntry::new(quantizer.word(s), pos as u32))
            .collect();
        let qs = DatasetKind::Synthetic.queries(3, 64, 21);
        let band = 4;
        for q in qs.iter() {
            let prep = DtwPrepared::new(quantizer, q, band);
            let topk = dsidx_sync::SharedTopK::new(6);
            let mut fetcher = SeriesFetcher::new(&data);
            let mut stats = QueryStats::default();
            process_leaf_entries_dtw(&entries, &prep, &mut fetcher, q, band, &topk, &mut stats)
                .unwrap();
            let want = brute_dtw_topk(&data, q, band, 6);
            assert_eq!(
                topk.matches().iter().map(|m| m.1).collect::<Vec<_>>(),
                want.iter().map(|w| w.1).collect::<Vec<_>>()
            );
            // Every entry pays the entry bound; survivors resolve to
            // pruned, abandoned, or fully paid DTWs.
            assert_eq!(stats.lb_entry_computed, 220);
            assert_eq!(
                stats.lb_keogh_pruned + stats.dtw_abandoned + stats.real_computed,
                stats.lb_keogh_computed
            );
        }
    }

    #[test]
    fn batched_leaf_cascade_equals_brute_force() {
        let (data, config) = fixture(250);
        let quantizer = config.quantizer();
        let entries: Vec<LeafEntry> = data
            .iter()
            .enumerate()
            .map(|(pos, s)| LeafEntry::new(quantizer.word(s), pos as u32))
            .collect();
        let qs = DatasetKind::Synthetic.queries(4, 64, 13);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        let band = 4;
        for k in [1usize, 5] {
            let batch = QueryBatch::new(quantizer, &qrefs, k);
            let preps: Vec<DtwPrepared> = qrefs
                .iter()
                .map(|q| DtwPrepared::new(quantizer, q, band))
                .collect();
            let active: Vec<usize> = (0..batch.len()).collect();
            let mut locals = vec![QueryStats::default(); batch.len()];
            let mut fetcher = SeriesFetcher::new(&data);
            batch_process_leaf_entries_dtw(
                &entries,
                &mut fetcher,
                &batch,
                &active,
                &preps,
                band,
                &mut locals,
            )
            .unwrap();
            batch.merge_locals(&locals);
            let (matches, stats) = batch.finish(0, QueryStats::default());
            for (qi, q) in qs.iter().enumerate() {
                let want = brute_dtw_topk(&data, q, band, k);
                assert_eq!(
                    matches[qi].iter().map(|m| m.pos).collect::<Vec<_>>(),
                    want.iter().map(|w| w.1).collect::<Vec<_>>(),
                    "q{qi} k={k}"
                );
                // Every entry paid an entry-level bound; survivors resolve
                // to pruned, abandoned, or fully paid DTWs.
                assert_eq!(stats.per_query[qi].lb_entry_computed, 250);
                let q = &stats.per_query[qi];
                assert_eq!(
                    q.lb_keogh_pruned + q.dtw_abandoned + q.real_computed,
                    q.lb_keogh_computed
                );
            }
        }
    }

    #[test]
    fn batch_seeding_dtw_tightens_every_query() {
        let (data, config) = fixture(60);
        let qs = DatasetKind::Synthetic.queries(3, 64, 11);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        let batch = QueryBatch::new(config.quantizer(), &qrefs, 2);
        let mut fetcher = SeriesFetcher::new(&data);
        batch_seed_positions_dtw(&[3, 7, 19], &mut fetcher, &batch, 4).unwrap();
        for slot in batch.slots() {
            assert_eq!(slot.topk.len(), 2);
            assert!(slot.topk.threshold_sq().is_finite());
        }
        let (_, stats) = batch.finish(0, QueryStats::default());
        assert_eq!(stats.series_fetched, 3);
        assert_eq!(stats.series_requests, 9);
        for q in &stats.per_query {
            // Every position resolves to a full or an abandoned DTW.
            assert_eq!(q.real_computed + q.dtw_abandoned, 3);
            assert!(q.real_computed >= 2);
        }
    }

    #[test]
    fn empty_batch_and_empty_positions_are_no_ops() {
        let (data, config) = fixture(10);
        let batch = QueryBatch::new(config.quantizer(), &[], 2);
        let mut fetcher = SeriesFetcher::new(&data);
        batch_seed_positions_dtw(&[1, 2], &mut fetcher, &batch, 3).unwrap();
        let qs = DatasetKind::Synthetic.queries(1, 64, 1);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        let batch = QueryBatch::new(config.quantizer(), &qrefs, 2);
        batch_seed_positions_dtw(&[], &mut fetcher, &batch, 3).unwrap();
        let (_, stats) = batch.finish(0, QueryStats::default());
        assert_eq!(stats.series_fetched, 0);
    }
}
