//! Shared k-NN result assembly: every engine's `exact_knn` ends the same
//! way, so the collector-to-answer conversion lives here once.

use crate::stats::QueryStats;
use dsidx_series::Match;
use dsidx_sync::SharedTopK;

/// Turns a finished [`SharedTopK`] plus the schedule's outcome into the
/// engine-level k-NN answer: the held pairs as [`Match`]es sorted
/// ascending by `(distance, position)`, or the empty answer (with zeroed
/// stats) when the schedule reported an empty index (`None`).
#[must_use]
pub fn finish_knn(topk: &SharedTopK, stats: Option<QueryStats>) -> (Vec<Match>, QueryStats) {
    match stats {
        None => (Vec::new(), QueryStats::default()),
        Some(stats) => (
            topk.matches()
                .into_iter()
                .map(|(dist_sq, pos)| Match::new(pos, dist_sq))
                .collect(),
            stats,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_sync::Pruner;

    #[test]
    fn empty_schedule_yields_empty_answer() {
        let topk = SharedTopK::new(3);
        topk.insert(1.0, 7); // ignored: the schedule saw an empty index
        let (matches, stats) = finish_knn(&topk, None);
        assert!(matches.is_empty());
        assert_eq!(stats, QueryStats::default());
    }

    #[test]
    fn matches_come_out_sorted_with_stats() {
        let topk = SharedTopK::new(2);
        topk.insert(5.0, 1);
        topk.insert(2.0, 9);
        topk.insert(3.0, 4);
        let stats = QueryStats {
            real_computed: 3,
            ..QueryStats::default()
        };
        let (matches, got) = finish_knn(&topk, Some(stats));
        assert_eq!(matches, vec![Match::new(9, 2.0), Match::new(4, 3.0)]);
        assert_eq!(got, stats);
    }
}
