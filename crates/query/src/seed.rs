//! Approximate-descent BSF seeding: locate the leaf the query's own word
//! descends to and pay real distances for its entries, so the exact phase
//! starts from a tight best-so-far instead of infinity.

use crate::fetch::SeriesFetcher;
use dsidx_isax::Word;
use dsidx_series::distance::euclidean_sq;
use dsidx_storage::{RawSource, StorageError};
use dsidx_sync::Pruner;
use dsidx_tree::{FlatTree, Index, LeafEntry, Node};

/// The most promising leaf for `word` in a pointer tree: the query's own
/// non-empty leaf, or any non-empty leaf when the query's subtree is empty.
/// `None` only for an empty index.
#[must_use]
pub fn approx_leaf<'i>(index: &'i Index, word: &Word) -> Option<&'i Node> {
    index.non_empty_leaf_for(word).or_else(|| index.any_leaf())
}

/// The most promising leaf for `word` in a flattened tree (node index
/// form), routing around empty subtrees. `None` only for an empty index.
#[must_use]
pub fn approx_leaf_flat(flat: &FlatTree, word: &Word) -> Option<u32> {
    let roots = flat.roots();
    if roots.is_empty() {
        return None;
    }
    let start_root = match roots.binary_search_by_key(&word.root_key(), |&(k, _)| k) {
        Ok(i) => i,
        Err(i) => i.min(roots.len() - 1), // absent subtree: nearest key
    };
    flat.descend_non_empty(roots[start_root].1, word)
        .or_else(|| {
            roots
                .iter()
                .find_map(|&(_, r)| flat.descend_non_empty(r, word))
        })
}

/// Seeds the pruner with the full real distance of every entry in the
/// approximate leaf. Returns the number of real distances computed (all of
/// them — seeding never abandons, the threshold may start at infinity).
///
/// # Errors
/// Propagates raw-source I/O failures.
pub fn seed_from_entries<P: Pruner>(
    entries: &[LeafEntry],
    fetcher: &mut SeriesFetcher<'_, impl RawSource>,
    query: &[f32],
    pruner: &P,
) -> Result<u64, StorageError> {
    for e in entries {
        let series = fetcher.fetch(e.pos as usize)?;
        pruner.insert(euclidean_sq(query, series), e.pos);
    }
    Ok(entries.len() as u64)
}

/// Pays (early-abandoned) real distances for the position-order prefix
/// `0..prefix`, feeding improvements to the pruner. Returns the number of
/// *full* real distances computed.
///
/// Leaf seeding alone leaves a k-NN threshold at `+inf` whenever the
/// approximate leaf holds fewer than k entries — harmless for engines
/// that interleave pruning with insertion (ADS+'s scan, MESSI's
/// best-first processing), but pathological for a batch lower-bound phase
/// like ParIS's collect, which would then materialize the *entire*
/// collection as candidates. Warming over a prefix a few times k puts the
/// threshold at a low quantile of the sampled distance distribution
/// instead of the sample maximum, restoring pruning power before any
/// batch phase runs. Once the collector fills, the loop early-abandons
/// against the tightening threshold, so oversampling stays cheap.
///
/// # Errors
/// Propagates raw-source I/O failures.
pub fn seed_prefix<P: Pruner>(
    prefix: usize,
    fetcher: &mut SeriesFetcher<'_, impl RawSource>,
    query: &[f32],
    pruner: &P,
) -> Result<u64, StorageError> {
    let mut paid = 0u64;
    for pos in 0..prefix {
        let limit = pruner.threshold_sq();
        let series = fetcher.fetch(pos)?;
        if let Some(d) = dsidx_series::distance::euclidean_sq_bounded(query, series, limit) {
            pruner.insert(d, pos as u32);
            paid += 1;
        }
    }
    Ok(paid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_series::gen::DatasetKind;
    use dsidx_sync::AtomicBest;
    use dsidx_tree::TreeConfig;

    fn build_index(n: usize) -> (dsidx_series::Dataset, Index) {
        let config = TreeConfig::new(64, 8, 16).unwrap();
        let data = DatasetKind::Synthetic.generate(n, 64, 77);
        let quantizer = config.quantizer().clone();
        let mut index = Index::new(config);
        for (pos, series) in data.iter().enumerate() {
            index.insert(LeafEntry::new(quantizer.word(series), pos as u32));
        }
        (data, index)
    }

    #[test]
    fn empty_index_has_no_leaf() {
        let (_, index) = build_index(0);
        let word = Word::new(&[0u8; 8]);
        assert!(approx_leaf(&index, &word).is_none());
        let flat = FlatTree::from_index(&index);
        assert!(approx_leaf_flat(&flat, &word).is_none());
    }

    #[test]
    fn flat_and_pointer_descent_agree() {
        let (data, index) = build_index(500);
        let flat = FlatTree::from_index(&index);
        let quantizer = index.config().quantizer();
        for pos in [0usize, 123, 499] {
            let word = quantizer.word(data.get(pos));
            let leaf = approx_leaf(&index, &word).expect("non-empty");
            let flat_idx = approx_leaf_flat(&flat, &word).expect("non-empty");
            let mut flat_positions: Vec<u32> = flat
                .leaf_entries(flat.node(flat_idx))
                .iter()
                .map(|e| e.pos)
                .collect();
            let mut tree_positions: Vec<u32> =
                leaf.entries().unwrap().iter().map(|e| e.pos).collect();
            flat_positions.sort_unstable();
            tree_positions.sort_unstable();
            assert_eq!(flat_positions, tree_positions);
            // The query's own leaf contains the queried series.
            assert!(tree_positions.contains(&(pos as u32)));
        }
    }

    #[test]
    fn seeding_finds_the_leaf_minimum() {
        let (data, index) = build_index(300);
        let quantizer = index.config().quantizer();
        let q = data.get(42);
        let word = quantizer.word(q);
        let leaf = approx_leaf(&index, &word).expect("non-empty");
        let entries = leaf.entries().expect("resident leaf");
        let best = AtomicBest::new();
        let mut fetcher = SeriesFetcher::new(&data);
        let reals = seed_from_entries(entries, &mut fetcher, q, &best).unwrap();
        assert_eq!(reals, entries.len() as u64);
        // Series 42 is in its own leaf, so seeding must find distance 0.
        let (dist_sq, pos) = best.get();
        assert_eq!(pos, 42);
        assert_eq!(dist_sq, 0.0);
    }
}
