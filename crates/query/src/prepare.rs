//! Per-query preparation shared by every engine: PAA summary, iSAX word,
//! and the MINDIST lookup tables.

use dsidx_isax::{MindistTable, NodeMindistTable, Quantizer, Word};

/// Everything an exact-NN query needs before touching index structures.
///
/// Built once per query; engines then consume the pieces their algorithm
/// uses (the word for descent, the word-level table for entry/SAX-array
/// bounds, the node-level table for tree traversal).
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// The query's PAA summary (`segments` values).
    pub paa: Vec<f32>,
    /// The query's full-cardinality iSAX word (drives approximate descent).
    pub word: Word,
    /// Word-level MINDIST lookup table (SAX-array scans, leaf entries).
    pub table: MindistTable,
}

impl PreparedQuery {
    /// Summarizes `query` under `quantizer`.
    ///
    /// # Panics
    /// Panics if the query length differs from the quantizer's series
    /// length (engines assert this at their API boundary).
    #[must_use]
    pub fn new(quantizer: &Quantizer, query: &[f32]) -> Self {
        let mut paa = vec![0.0f32; quantizer.segment_lens().len()];
        quantizer.paa_into(query, &mut paa);
        let word = quantizer.word_from_paa(&paa);
        let table = MindistTable::new_point(&paa, quantizer.segment_lens());
        Self { paa, word, table }
    }

    /// Builds the node-level table for tree-traversing engines (MESSI).
    /// Separate from construction because scan-based engines never need it.
    #[must_use]
    pub fn node_table(&self, quantizer: &Quantizer) -> NodeMindistTable {
        NodeMindistTable::new_point(&self.paa, quantizer.segment_lens())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_isax::mindist::mindist_paa_word_sq;
    use dsidx_series::znorm::znormalize;

    fn series(seed: u64, n: usize) -> Vec<f32> {
        let mut state = seed | 1;
        let mut v: Vec<f32> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / 16_777_216.0) * 4.0 - 2.0
            })
            .collect();
        znormalize(&mut v);
        v
    }

    #[test]
    fn matches_direct_quantizer_calls() {
        let quantizer = Quantizer::new(64, 8).unwrap();
        let q = series(3, 64);
        let prep = PreparedQuery::new(&quantizer, &q);
        assert_eq!(prep.word, quantizer.word(&q));
        // Table lookups equal the direct word-level MINDIST.
        let c = series(9, 64);
        let word_c = quantizer.word(&c);
        let direct = mindist_paa_word_sq(&prep.paa, &word_c, quantizer.segment_lens());
        let looked = prep.table.lookup(&word_c);
        assert!((direct - looked).abs() <= direct.abs() * 1e-5 + 1e-6);
    }

    #[test]
    fn node_table_bounds_word_table() {
        let quantizer = Quantizer::new(64, 8).unwrap();
        let q = series(5, 64);
        let prep = PreparedQuery::new(&quantizer, &q);
        let node_table = prep.node_table(&quantizer);
        let c = series(11, 64);
        let word_c = quantizer.word(&c);
        let root = dsidx_isax::NodeWord::root(word_c.root_key(), 8);
        // Node-level (coarse) bound never exceeds the word-level bound.
        let coarse = node_table.lookup(&root);
        let fine = prep.table.lookup(&word_c);
        assert!(coarse <= fine + fine.abs() * 1e-5 + 1e-5);
    }
}
