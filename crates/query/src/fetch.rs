//! Raw-series access for query-time verification, uniform over in-memory
//! datasets and on-disk files.

use dsidx_series::Dataset;
use dsidx_storage::{RawSource, StorageError};

/// Fetches raw series from a [`RawSource`], taking the zero-copy path when
/// the source is an in-memory dataset and reading through a reusable
/// scratch buffer (charged to the device model) otherwise.
#[derive(Debug)]
pub struct SeriesFetcher<'a, S: RawSource> {
    source: &'a S,
    memory: Option<&'a Dataset>,
    scratch: Vec<f32>,
}

impl<'a, S: RawSource> SeriesFetcher<'a, S> {
    /// Wraps a source; the on-disk path gets one scratch buffer, the
    /// zero-copy in-memory path allocates nothing.
    #[must_use]
    pub fn new(source: &'a S) -> Self {
        let memory = source.as_memory();
        let scratch = if memory.is_some() {
            Vec::new()
        } else {
            vec![0.0f32; source.series_len()]
        };
        Self {
            source,
            memory,
            scratch,
        }
    }

    /// Returns the raw values of series `pos`.
    ///
    /// # Errors
    /// Propagates I/O failures (the in-memory path is infallible for
    /// in-bounds positions).
    #[inline]
    pub fn fetch(&mut self, pos: usize) -> Result<&[f32], StorageError> {
        if let Some(ds) = self.memory {
            return Ok(ds.get(pos));
        }
        self.source.read_into(pos, &mut self.scratch)?;
        Ok(&self.scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_series::gen::sines;

    #[test]
    fn memory_fetch_is_zero_copy() {
        let ds = sines(4, 16, 1);
        let mut fetcher = SeriesFetcher::new(&ds);
        assert_eq!(fetcher.fetch(2).unwrap(), ds.get(2));
        assert!(std::ptr::eq(
            fetcher.fetch(3).unwrap().as_ptr(),
            ds.get(3).as_ptr()
        ));
    }
}
