//! The early-abandoned real-distance candidate loops — the exact phase
//! every engine runs after seeding, in three shapes: the serial interleaved
//! SIMS scan (ADS+), the two-phase collect/verify split (ParIS chunks), and
//! the per-leaf entry loop (MESSI).
//!
//! Every loop is generic over [`Pruner`], so the same code answers 1-NN
//! (an [`AtomicBest`](dsidx_sync::AtomicBest) best-so-far) and k-NN (a
//! [`SharedTopK`](dsidx_sync::SharedTopK) whose threshold is the k-th best
//! distance).

use crate::fetch::SeriesFetcher;
use crate::stats::QueryStats;
use dsidx_isax::MindistTable;
use dsidx_series::distance::euclidean_sq_bounded;
use dsidx_storage::{RawSource, StorageError};
use dsidx_sync::Pruner;
use dsidx_tree::LeafEntry;
use std::ops::Range;

/// Verifies one candidate position: re-checks its lower bound against the
/// *current* threshold (it may have improved since the bound was computed),
/// fetches the raw values, computes the early-abandoned real distance, and
/// records improvements. Returns `true` iff a full real distance was paid.
///
/// # Errors
/// Propagates raw-source I/O failures.
#[inline]
pub fn verify_candidate<P: Pruner>(
    pos: u32,
    lb: f32,
    fetcher: &mut SeriesFetcher<'_, impl RawSource>,
    query: &[f32],
    pruner: &P,
) -> Result<bool, StorageError> {
    let limit = pruner.threshold_sq();
    if lb >= limit {
        return Ok(false);
    }
    let series = fetcher.fetch(pos as usize)?;
    match euclidean_sq_bounded(query, series, limit) {
        Some(d) => {
            pruner.insert(d, pos);
            Ok(true)
        }
        None => Ok(false),
    }
}

/// SIMS-style serial scan (ADS+): lower-bound every SAX word in position
/// order and verify survivors immediately. Fills `lb_computed`,
/// `candidates` and `real_computed`.
///
/// # Errors
/// Propagates raw-source I/O failures.
pub fn scan_sax_serial<P: Pruner>(
    words: &[dsidx_isax::Word],
    table: &MindistTable,
    fetcher: &mut SeriesFetcher<'_, impl RawSource>,
    query: &[f32],
    pruner: &P,
    stats: &mut QueryStats,
) -> Result<(), StorageError> {
    // Bound a block of words at a time (the SIMD batch kernel is
    // bit-identical to the per-word scalar loop, so blocking never changes
    // a pruning decision), then test each bound against the live threshold.
    let mut bounds = [0.0f32; LB_BLOCK];
    for (start, block) in words.chunks(LB_BLOCK).enumerate() {
        table.lookup_many(block, &mut bounds);
        stats.lb_computed += block.len() as u64;
        for (off, &lb) in bounds[..block.len()].iter().enumerate() {
            if lb >= pruner.threshold_sq() {
                continue;
            }
            stats.candidates += 1;
            let pos = (start * LB_BLOCK + off) as u32;
            if verify_candidate(pos, lb, fetcher, query, pruner)? {
                stats.real_computed += 1;
            }
        }
    }
    Ok(())
}

/// Words lower-bounded per batched-kernel call in the scan loops.
const LB_BLOCK: usize = 256;

/// Lower-bound filter over one Fetch&Inc chunk of the SAX array (ParIS
/// phase 2): appends `(position, bound)` survivors to `out`. The threshold
/// is sampled once per chunk — the paper's granularity for refreshing the
/// pruning threshold.
pub fn collect_candidates<P: Pruner>(
    words: &[dsidx_isax::Word],
    range: Range<usize>,
    table: &MindistTable,
    pruner: &P,
    out: &mut Vec<(u32, f32)>,
) {
    let limit = pruner.threshold_sq();
    let mut bounds = [0.0f32; LB_BLOCK];
    let mut pos = range.start;
    for block in words[range].chunks(LB_BLOCK) {
        table.lookup_many(block, &mut bounds);
        for &lb in &bounds[..block.len()] {
            if lb < limit {
                out.push((pos as u32, lb));
            }
            pos += 1;
        }
    }
}

/// Verifies one Fetch&Inc chunk of a collected candidate list (ParIS
/// phase 3). Returns the number of full real distances paid.
///
/// # Errors
/// Propagates raw-source I/O failures.
pub fn verify_candidates<P: Pruner>(
    candidates: &[(u32, f32)],
    range: Range<usize>,
    fetcher: &mut SeriesFetcher<'_, impl RawSource>,
    query: &[f32],
    pruner: &P,
) -> Result<u64, StorageError> {
    let mut reals = 0u64;
    for &(pos, lb) in &candidates[range] {
        if verify_candidate(pos, lb, fetcher, query, pruner)? {
            reals += 1;
        }
    }
    Ok(reals)
}

/// Entry-level bound + early-abandoned real distance over one leaf's
/// entries (MESSI processing phase), fetching survivors from any
/// [`RawSource`] — zero-copy in memory, device-charged reads on disk. The
/// pruning threshold refreshes after every improvement. Returns the number
/// of full real distances paid; the caller counts `entries.len()` bounds.
///
/// # Errors
/// Propagates raw-source I/O failures.
pub fn process_leaf_entries<P: Pruner>(
    entries: &[LeafEntry],
    table: &MindistTable,
    fetcher: &mut SeriesFetcher<'_, impl RawSource>,
    query: &[f32],
    pruner: &P,
) -> Result<u64, StorageError> {
    let mut reals = 0u64;
    let mut limit = pruner.threshold_sq();
    for e in entries {
        if table.lookup(&e.word) >= limit {
            continue;
        }
        let series = fetcher.fetch(e.pos as usize)?;
        if let Some(d) = euclidean_sq_bounded(query, series, limit) {
            reals += 1;
            pruner.insert(d, e.pos);
        }
        limit = pruner.threshold_sq();
    }
    Ok(reals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare::PreparedQuery;
    use dsidx_series::distance::euclidean_sq;
    use dsidx_series::gen::DatasetKind;
    use dsidx_sync::{AtomicBest, SharedTopK};
    use dsidx_tree::TreeConfig;

    fn fixture(n: usize) -> (dsidx_series::Dataset, Vec<dsidx_isax::Word>, TreeConfig) {
        let config = TreeConfig::new(64, 8, 16).unwrap();
        let data = DatasetKind::Synthetic.generate(n, 64, 5);
        let quantizer = config.quantizer();
        let words = data.iter().map(|s| quantizer.word(s)).collect();
        (data, words, config)
    }

    fn brute(data: &dsidx_series::Dataset, q: &[f32]) -> (f32, u32) {
        let mut best = (f32::INFINITY, u32::MAX);
        for (pos, s) in data.iter().enumerate() {
            let d = euclidean_sq(q, s);
            if d < best.0 {
                best = (d, pos as u32);
            }
        }
        best
    }

    fn brute_topk(data: &dsidx_series::Dataset, q: &[f32], k: usize) -> Vec<(f32, u32)> {
        let mut all: Vec<(f32, u32)> = data
            .iter()
            .enumerate()
            .map(|(pos, s)| (euclidean_sq(q, s), pos as u32))
            .collect();
        all.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    #[test]
    fn serial_scan_is_exact_and_accounts_correctly() {
        let (data, words, config) = fixture(400);
        let queries = DatasetKind::Synthetic.queries(5, 64, 5);
        for q in queries.iter() {
            let prep = PreparedQuery::new(config.quantizer(), q);
            let best = AtomicBest::new();
            let mut fetcher = SeriesFetcher::new(&data);
            let mut stats = QueryStats::default();
            scan_sax_serial(&words, &prep.table, &mut fetcher, q, &best, &mut stats).unwrap();
            let want = brute(&data, q);
            let (dist_sq, pos) = best.get();
            assert_eq!(pos, want.1);
            assert!((dist_sq - want.0).abs() <= want.0 * 1e-4 + 1e-4);
            // Accounting invariants: every position pays a bound; only
            // survivors can pay a real distance.
            assert_eq!(stats.lb_computed, 400);
            assert!(stats.candidates <= stats.lb_computed);
            assert!(stats.real_computed <= stats.candidates);
            assert_eq!(stats.lb_total(), 400);
        }
    }

    #[test]
    fn serial_scan_with_topk_equals_brute_force_topk() {
        let (data, words, config) = fixture(350);
        let queries = DatasetKind::Synthetic.queries(4, 64, 19);
        for q in queries.iter() {
            for k in [1usize, 5, 20, 350, 400] {
                let prep = PreparedQuery::new(config.quantizer(), q);
                let topk = SharedTopK::new(k);
                let mut fetcher = SeriesFetcher::new(&data);
                let mut stats = QueryStats::default();
                scan_sax_serial(&words, &prep.table, &mut fetcher, q, &topk, &mut stats).unwrap();
                let want = brute_topk(&data, q, k);
                let got = topk.matches();
                assert_eq!(got.len(), want.len(), "k={k}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.1, w.1, "k={k}");
                    assert!((g.0 - w.0).abs() <= w.0 * 1e-4 + 1e-4);
                }
            }
        }
    }

    #[test]
    fn collect_then_verify_matches_serial_scan() {
        let (data, words, config) = fixture(300);
        let queries = DatasetKind::Synthetic.queries(3, 64, 9);
        for q in queries.iter() {
            let prep = PreparedQuery::new(config.quantizer(), q);
            // Two-phase (ParIS shape), chunked.
            let best = AtomicBest::new();
            let mut candidates = Vec::new();
            for start in (0..words.len()).step_by(64) {
                let end = (start + 64).min(words.len());
                collect_candidates(&words, start..end, &prep.table, &best, &mut candidates);
            }
            let mut fetcher = SeriesFetcher::new(&data);
            let mut reals = 0;
            for start in (0..candidates.len()).step_by(16) {
                let end = (start + 16).min(candidates.len());
                reals +=
                    verify_candidates(&candidates, start..end, &mut fetcher, q, &best).unwrap();
            }
            assert!(reals <= candidates.len() as u64);
            let want = brute(&data, q);
            assert_eq!(best.get().1, want.1);
        }
    }

    #[test]
    fn collect_then_verify_with_topk_is_exact() {
        let (data, words, config) = fixture(280);
        let queries = DatasetKind::Synthetic.queries(3, 64, 41);
        for q in queries.iter() {
            let prep = PreparedQuery::new(config.quantizer(), q);
            let k = 7;
            let topk = SharedTopK::new(k);
            let mut candidates = Vec::new();
            for start in (0..words.len()).step_by(64) {
                let end = (start + 64).min(words.len());
                collect_candidates(&words, start..end, &prep.table, &topk, &mut candidates);
            }
            let mut fetcher = SeriesFetcher::new(&data);
            for start in (0..candidates.len()).step_by(16) {
                let end = (start + 16).min(candidates.len());
                let _ = verify_candidates(&candidates, start..end, &mut fetcher, q, &topk).unwrap();
            }
            let want = brute_topk(&data, q, k);
            let got = topk.matches();
            assert_eq!(
                got.iter().map(|m| m.1).collect::<Vec<_>>(),
                want.iter().map(|m| m.1).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn verify_candidate_skips_stale_bounds() {
        let (data, _, _) = fixture(10);
        let q = data.get(0).to_vec();
        let best = AtomicBest::with_initial(1.0, 999);
        let mut fetcher = SeriesFetcher::new(&data);
        // A bound at/above the BSF is pruned without touching the source.
        assert!(!verify_candidate(3, 1.0, &mut fetcher, &q, &best).unwrap());
        assert_eq!(best.get().1, 999);
        // A bound below lets the real distance through (series 0 itself).
        assert!(verify_candidate(0, 0.0, &mut fetcher, &q, &best).unwrap());
        assert_eq!(best.get(), (0.0, 0));
    }

    #[test]
    fn leaf_entry_processing_is_exact_over_the_leaf() {
        let (data, words, config) = fixture(200);
        let entries: Vec<LeafEntry> = words
            .iter()
            .enumerate()
            .map(|(pos, w)| LeafEntry::new(*w, pos as u32))
            .collect();
        let queries = DatasetKind::Synthetic.queries(3, 64, 31);
        for q in queries.iter() {
            let prep = PreparedQuery::new(config.quantizer(), q);
            let best = AtomicBest::new();
            let mut fetcher = SeriesFetcher::new(&data);
            let reals =
                process_leaf_entries(&entries, &prep.table, &mut fetcher, q, &best).unwrap();
            assert!(reals <= entries.len() as u64);
            let want = brute(&data, q);
            assert_eq!(best.get().1, want.1);
        }
    }

    #[test]
    fn leaf_entry_processing_with_topk_is_exact_over_the_leaf() {
        let (data, words, config) = fixture(200);
        let entries: Vec<LeafEntry> = words
            .iter()
            .enumerate()
            .map(|(pos, w)| LeafEntry::new(*w, pos as u32))
            .collect();
        let queries = DatasetKind::Synthetic.queries(2, 64, 13);
        for q in queries.iter() {
            let prep = PreparedQuery::new(config.quantizer(), q);
            let k = 9;
            let topk = SharedTopK::new(k);
            let mut fetcher = SeriesFetcher::new(&data);
            let _ = process_leaf_entries(&entries, &prep.table, &mut fetcher, q, &topk).unwrap();
            let want = brute_topk(&data, q, k);
            assert_eq!(
                topk.matches().iter().map(|m| m.1).collect::<Vec<_>>(),
                want.iter().map(|m| m.1).collect::<Vec<_>>()
            );
        }
    }
}
