//! First-error capture for parallel schedules.
//!
//! A pool broadcast fans a fallible closure out to every worker, but the
//! broadcast itself returns `()` — an I/O failure inside a worker has no
//! return channel. An [`ErrorSlot`] is that channel: workers `record` the
//! first failure (later ones are dropped — one actionable error beats a
//! pile of cascading ones), peers poll `is_set` to stop claiming work
//! early, and the coordinating thread `take`s the outcome after the
//! broadcast joins.

use dsidx_storage::StorageError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A write-once slot for the first [`StorageError`] of a parallel phase.
#[derive(Debug, Default)]
pub struct ErrorSlot {
    set: AtomicBool,
    slot: Mutex<Option<StorageError>>,
}

impl ErrorSlot {
    /// An empty slot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `e` if no error has been recorded yet; later errors are
    /// dropped (the first failure is the actionable one).
    pub fn record(&self, e: StorageError) {
        let mut slot = self.slot.lock().expect("error slot poisoned");
        if slot.is_none() {
            *slot = Some(e);
            self.set.store(true, Ordering::Release);
        }
    }

    /// `true` once any worker recorded an error — the cheap signal for
    /// other workers to stop claiming work.
    #[must_use]
    pub fn is_set(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    /// Consumes the slot: `Err` with the recorded error, `Ok(())` when the
    /// phase completed cleanly. Call after the parallel phase has joined.
    ///
    /// # Errors
    /// Returns the first error any worker recorded.
    pub fn take(self) -> Result<(), StorageError> {
        match self.slot.into_inner().expect("error slot poisoned") {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slot_is_ok() {
        let slot = ErrorSlot::new();
        assert!(!slot.is_set());
        assert!(slot.take().is_ok());
    }

    #[test]
    fn first_error_wins() {
        let slot = ErrorSlot::new();
        slot.record(StorageError::BadMagic);
        assert!(slot.is_set());
        slot.record(StorageError::BadVersion(9));
        assert!(matches!(slot.take(), Err(StorageError::BadMagic)));
    }

    #[test]
    fn concurrent_records_keep_exactly_one() {
        let slot = ErrorSlot::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let slot = &slot;
                s.spawn(move || {
                    for _ in 0..100 {
                        slot.record(StorageError::BadMagic);
                    }
                });
            }
        });
        assert!(slot.is_set());
        assert!(slot.take().is_err());
    }
}
