//! First-error capture for parallel schedules.
//!
//! A pool broadcast fans a fallible closure out to every worker, but the
//! broadcast itself returns `()` — an I/O failure inside a worker has no
//! return channel. An [`ErrorSlot`] is that channel: workers `record` the
//! first failure (later ones are dropped — one actionable error beats a
//! pile of cascading ones), peers poll `is_set` to stop claiming work
//! early, and the coordinating thread `take`s the outcome after the
//! broadcast joins.
//!
//! A slot created with [`ErrorSlot::for_phase`] knows which query phase it
//! guards: recorded errors are annotated with that phase (and whichever
//! batch query index the call site attributes via
//! [`record_for_query`](ErrorSlot::record_for_query)), so the error an
//! operator finally sees reads "during verify (query 3): I/O error: ...".
//! Every recorded trip also emits an `error_slot` trace event when the
//! [trace stream](dsidx_obs::trace) is on.

use dsidx_obs::phase::Phase;
use dsidx_obs::trace;
use dsidx_storage::StorageError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A write-once slot for the first [`StorageError`] of a parallel phase.
#[derive(Debug, Default)]
pub struct ErrorSlot {
    set: AtomicBool,
    slot: Mutex<Option<StorageError>>,
    phase: Option<Phase>,
}

impl ErrorSlot {
    /// An empty slot with no phase context.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty slot guarding one query phase: every recorded error is
    /// annotated with `phase` (unless the call site already attached one).
    #[must_use]
    pub fn for_phase(phase: Phase) -> Self {
        Self {
            phase: Some(phase),
            ..Self::default()
        }
    }

    /// Records `e` if no error has been recorded yet; later errors are
    /// dropped (the first failure is the actionable one).
    pub fn record(&self, e: StorageError) {
        let e = match self.phase {
            Some(p) => e.in_phase(p.name()),
            None => e,
        };
        if trace::enabled() {
            trace::emit(
                "error_slot",
                &[
                    (
                        "phase",
                        trace::Value::Str(self.phase.map_or("unknown", Phase::name)),
                    ),
                    ("error", trace::Value::Str(&e.to_string())),
                    ("first", trace::Value::Bool(!self.is_set())),
                ],
            );
        }
        let mut slot = self.slot.lock().expect("error slot poisoned");
        if slot.is_none() {
            *slot = Some(e);
            self.set.store(true, Ordering::Release);
        }
    }

    /// Records `e` attributed to batch query `query` (on top of the
    /// slot's phase context).
    pub fn record_for_query(&self, e: StorageError, query: usize) {
        self.record(e.for_query(query as u64));
    }

    /// `true` once any worker recorded an error — the cheap signal for
    /// other workers to stop claiming work.
    #[must_use]
    pub fn is_set(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    /// Consumes the slot: `Err` with the recorded error, `Ok(())` when the
    /// phase completed cleanly. Call after the parallel phase has joined.
    ///
    /// # Errors
    /// Returns the first error any worker recorded.
    pub fn take(self) -> Result<(), StorageError> {
        match self.slot.into_inner().expect("error slot poisoned") {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slot_is_ok() {
        let slot = ErrorSlot::new();
        assert!(!slot.is_set());
        assert!(slot.take().is_ok());
    }

    #[test]
    fn first_error_wins() {
        let slot = ErrorSlot::new();
        slot.record(StorageError::BadMagic);
        assert!(slot.is_set());
        slot.record(StorageError::BadVersion(9));
        assert!(matches!(slot.take(), Err(StorageError::BadMagic)));
    }

    #[test]
    fn phase_slot_annotates_recorded_errors() {
        let slot = ErrorSlot::for_phase(Phase::Verify);
        slot.record_for_query(StorageError::BadMagic, 3);
        let err = slot.take().unwrap_err();
        assert_eq!(
            err.to_string(),
            "during verify (query 3): not a dsidx dataset file (bad magic)"
        );
        assert!(matches!(err.root_cause(), StorageError::BadMagic));
    }

    #[test]
    fn concurrent_records_keep_exactly_one() {
        let slot = ErrorSlot::for_phase(Phase::Collect);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let slot = &slot;
                s.spawn(move || {
                    for _ in 0..100 {
                        slot.record(StorageError::BadMagic);
                    }
                });
            }
        });
        assert!(slot.is_set());
        let err = slot.take().unwrap_err();
        assert!(err.to_string().starts_with("during collect:"));
    }
}
