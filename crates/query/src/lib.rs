//! The shared exact-NN query kernel.
//!
//! ADS+, ParIS/ParIS+ and MESSI answer exact 1-NN queries with the same
//! scaffolding in different parallel shapes (§III–§IV of the paper):
//!
//! 1. **prepare** — summarize the query (PAA), derive its iSAX word, build
//!    the per-query MINDIST lookup tables ([`PreparedQuery`]);
//! 2. **seed** — descend to the query's own leaf and pay real distances
//!    for its entries, so pruning starts from a tight best-so-far
//!    ([`seed`]);
//! 3. **scan** — lower-bound candidates (SAX-array entries or leaf
//!    entries), early-abandon real distances for survivors, and fold
//!    improvements into the shared BSF ([`scan`]).
//!
//! The engines differ only in *scheduling*: ADS+ runs step 3 serially in
//! position order, ParIS splits it into parallel collect/verify phases
//! over Fetch&Inc chunks, MESSI replaces the scan with a tree traversal
//! feeding priority queues but pays the same per-entry loop at the leaves.
//! Those loops live here once; engines keep only their scheduling. One
//! [`QueryStats`] reports all of them uniformly.
//!
//! Every loop is generic over [`Pruner`] — the abstraction of "threshold
//! read + candidate insert" — so the same kernel answers exact 1-NN (an
//! [`AtomicBest`](dsidx_sync::AtomicBest) best-so-far) and exact k-NN (a
//! [`SharedTopK`] whose threshold is the k-th best
//! distance so far).
//!
//! The [`batch`] module generalizes all of it to query *batches*: a
//! [`QueryBatch`] holds per-query prepared state, pruners and stats, and
//! the batch kernel loops check each fetched series/SAX word against every
//! query in one data pass, so an engine answers B queries inside a single
//! schedule (and a single pool broadcast set). The single-query loops here
//! are the lean B = 1 specializations.

pub mod batch;
pub mod dtw;
pub mod errslot;
pub mod fetch;
pub mod knn;
pub mod prepare;
pub mod scan;
pub mod seed;
pub mod stats;

pub use batch::{
    batch_collect_candidates, batch_process_leaf_entries, batch_scan_sax_serial,
    batch_seed_positions, batch_seed_prefix, batch_verify_candidates, BatchCandidate, BatchSlot,
    BatchStats, QueryBatch, ShardView, SharedPruners,
};
pub use dtw::{
    batch_process_leaf_entries_dtw, batch_seed_positions_dtw, process_leaf_entries_dtw,
    seed_from_entries_dtw, DtwPrepared,
};
pub use errslot::ErrorSlot;
pub use fetch::SeriesFetcher;
pub use knn::finish_knn;
pub use prepare::PreparedQuery;
pub use scan::{
    collect_candidates, process_leaf_entries, scan_sax_serial, verify_candidate, verify_candidates,
};
pub use seed::{approx_leaf, approx_leaf_flat, seed_from_entries, seed_prefix};
pub use stats::{AtomicQueryStats, QueryStats};

pub use dsidx_sync::{OffsetTopK, Pruner, SharedTopK};
