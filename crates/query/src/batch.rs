//! Batched query execution: one pass over the data answers many queries.
//!
//! A single exact query is dominated by fixed costs — the pool broadcast
//! that wakes every worker, the walk over the SAX array or tree, the raw
//! fetch per surviving candidate. A [`QueryBatch`] shares all of them
//! across B queries: each fetched series (or scanned SAX word, or visited
//! tree node) is checked against *every* query in the batch — one data
//! pass, B threshold checks — instead of re-walking the data per query.
//! Engines run the whole batch inside one schedule (ADS+ one serial scan,
//! ParIS one collect + one verify broadcast, MESSI one traversal
//! broadcast), so the per-query broadcast cost drops to `1/B` of the
//! single-query path.
//!
//! Per-query state is exactly the single-query state, vectorized: a
//! [`PreparedQuery`], a [`SharedTopK`] pruner (k-NN shaped; 1-NN batches
//! are k = 1), and an [`AtomicQueryStats`]. The loops in this module are
//! the batch generalizations of the single-query kernel loops in
//! [`seed`](crate::seed) and [`scan`](crate::scan) — those remain as the
//! lean B = 1 specializations used by the `exact_nn` paths.
//!
//! [`BatchStats`] makes the amortization observable: broadcasts issued for
//! the whole batch, raw series fetched once versus the per-query requests
//! they served, plus the per-query [`QueryStats`].

use crate::fetch::SeriesFetcher;
use crate::prepare::PreparedQuery;
use crate::stats::{AtomicQueryStats, QueryStats};
use dsidx_isax::{Quantizer, Word};
use dsidx_obs::phase::PhaseAcc;
use dsidx_series::distance::euclidean_sq_bounded;
use dsidx_series::Match;
use dsidx_storage::{RawSource, StorageError};
use dsidx_sync::{OffsetTopK, SharedTopK};
use dsidx_tree::LeafEntry;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-query state inside a [`QueryBatch`]: the query's raw values, its
/// prepared summaries, its own pruner and its own work counters.
pub struct BatchSlot<'q> {
    /// The raw (z-normalized) query values.
    pub values: &'q [f32],
    /// PAA summary, iSAX word and MINDIST table for this query.
    pub prep: PreparedQuery,
    /// This query's top-k collector — its threshold prunes only for this
    /// query, never for its batch-mates. An [`OffsetTopK`] view: a plain
    /// per-batch collector for an ordinary batch, or a rebasing view into
    /// one cross-shard [`SharedPruners`] collector for a sharded search.
    pub topk: OffsetTopK,
    /// This query's work counters (shared-counter form, so parallel phases
    /// merge worker-local tallies without locks).
    pub stats: AtomicQueryStats,
}

/// One cross-shard pruner per query: the mid-flight BSF-sharing channel of
/// a scatter-gather search.
///
/// Each shard builds its [`QueryBatch`] with
/// [`QueryBatch::with_shared`], so all shards' kernel loops for query `i`
/// feed `topks[i]` — a tight match found in one shard immediately raises
/// the threshold every other shard prunes against. Positions inside the
/// collectors are **global** (each shard's view rebases by its first
/// global position), so the position-dedup and lowest-position tie-break
/// operate on the concatenated dataset exactly as a monolithic index
/// would.
#[derive(Debug)]
pub struct SharedPruners {
    topks: Vec<Arc<SharedTopK>>,
}

impl SharedPruners {
    /// One fresh k-collector per query.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(queries: usize, k: usize) -> Self {
        Self {
            topks: (0..queries).map(|_| Arc::new(SharedTopK::new(k))).collect(),
        }
    }

    /// Number of queries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.topks.len()
    }

    /// `true` for zero queries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.topks.is_empty()
    }

    /// The per-query collectors, index-aligned with the queries.
    #[must_use]
    pub fn topks(&self) -> &[Arc<SharedTopK>] {
        &self.topks
    }

    /// Per-query answers so far (sorted ascending by `(distance, global
    /// position)`) — the gather step, read once after every shard joins.
    #[must_use]
    pub fn matches(&self) -> Vec<Vec<Match>> {
        self.topks
            .iter()
            .map(|t| {
                t.matches()
                    .into_iter()
                    .map(|(dist_sq, pos)| Match::new(pos, dist_sq))
                    .collect()
            })
            .collect()
    }

    /// A shard's rebasing view: pass to an engine's batch entry point so
    /// its kernels record positions as `base + local`.
    #[must_use]
    pub fn view(&self, base: u32) -> ShardView<'_> {
        ShardView {
            pruners: self,
            base,
        }
    }
}

/// One shard's handle on the cross-shard [`SharedPruners`]: the pruners
/// plus this shard's first global position. Engines' batch entry points
/// take `Option<ShardView>` — `None` is the ordinary standalone batch.
#[derive(Debug, Clone, Copy)]
pub struct ShardView<'a> {
    /// The per-query cross-shard collectors.
    pub pruners: &'a SharedPruners,
    /// Global position of this shard's local position 0.
    pub base: u32,
}

/// A batch of exact k-NN queries answered by one shared schedule.
pub struct QueryBatch<'q> {
    slots: Vec<BatchSlot<'q>>,
    fetches: AtomicU64,
    requests: AtomicU64,
    phases: PhaseAcc,
}

impl<'q> QueryBatch<'q> {
    /// Prepares every query in `queries` for a k-NN batch under
    /// `quantizer`.
    ///
    /// # Panics
    /// Panics if `k == 0` or any query length differs from the quantizer's
    /// series length (engines also assert this at their API boundary).
    #[must_use]
    pub fn new(quantizer: &Quantizer, queries: &[&'q [f32]], k: usize) -> Self {
        Self::build(quantizer, queries, |_| OffsetTopK::fresh(k))
    }

    /// Prepares a batch whose per-query pruners are rebasing views into
    /// `shared` (see [`SharedPruners`]): this batch's local position `p`
    /// is recorded as global `base + p`. Used once per shard of a
    /// scatter-gather search, with `base` the shard's first global
    /// position.
    ///
    /// # Panics
    /// Panics if `shared` does not hold exactly one pruner per query.
    #[must_use]
    pub fn with_shared(
        quantizer: &Quantizer,
        queries: &[&'q [f32]],
        shared: &SharedPruners,
        base: u32,
    ) -> Self {
        assert_eq!(shared.len(), queries.len(), "one shared pruner per query");
        Self::build(quantizer, queries, |qi| {
            OffsetTopK::shared(Arc::clone(&shared.topks()[qi]), base)
        })
    }

    /// [`new`](Self::new) or [`with_shared`](Self::with_shared), chosen by
    /// whether a shard view is present — the one-line dispatch every
    /// engine's batch entry point uses.
    ///
    /// # Panics
    /// As [`new`](Self::new) / [`with_shared`](Self::with_shared).
    #[must_use]
    pub fn for_shard(
        quantizer: &Quantizer,
        queries: &[&'q [f32]],
        k: usize,
        shard: Option<ShardView<'_>>,
    ) -> Self {
        match shard {
            Some(v) => Self::with_shared(quantizer, queries, v.pruners, v.base),
            None => Self::new(quantizer, queries, k),
        }
    }

    fn build(
        quantizer: &Quantizer,
        queries: &[&'q [f32]],
        mut topk: impl FnMut(usize) -> OffsetTopK,
    ) -> Self {
        let slots = queries
            .iter()
            .enumerate()
            .map(|(qi, &values)| BatchSlot {
                values,
                prep: PreparedQuery::new(quantizer, values),
                topk: topk(qi),
                stats: AtomicQueryStats::new(),
            })
            .collect();
        Self {
            slots,
            fetches: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            phases: PhaseAcc::new(),
        }
    }

    /// Number of queries in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` for a batch of zero queries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The per-query slots.
    #[must_use]
    pub fn slots(&self) -> &[BatchSlot<'q>] {
        &self.slots
    }

    /// The batch-level phase-time accumulator. The engine's coordinating
    /// thread laps its [`PhaseClock`](dsidx_obs::phase::PhaseClock) into
    /// this at each schedule boundary; [`finish`](Self::finish) folds it
    /// into the batch's shared stats.
    #[must_use]
    pub fn phases(&self) -> &PhaseAcc {
        &self.phases
    }

    /// The loosest pruning threshold across the batch. A candidate whose
    /// lower bound reaches it cannot improve *any* query — the sound
    /// batch-wide pruning test (per-query tests prune more; this one gates
    /// work shared by the whole batch, like a MESSI queue abandonment).
    #[must_use]
    pub fn max_threshold_sq(&self) -> f32 {
        self.slots
            .iter()
            .map(|s| s.topk.threshold_sq())
            .fold(0.0f32, f32::max)
    }

    /// Adds raw-fetch accounting: `fetches` series actually read, serving
    /// `requests` per-query distance attempts.
    pub fn count_io(&self, fetches: u64, requests: u64) {
        // ORDERING: relaxed — read only in `finish`, after the schedule's
        // join point; the join is the happens-before edge.
        self.fetches.fetch_add(fetches, Ordering::Relaxed);
        self.requests.fetch_add(requests, Ordering::Relaxed);
    }

    /// Merges one worker's per-query local tallies (index-aligned with
    /// [`slots`](Self::slots)) into the shared per-query counters.
    ///
    /// # Panics
    /// Panics if `locals` is not exactly one entry per query.
    pub fn merge_locals(&self, locals: &[QueryStats]) {
        assert_eq!(locals.len(), self.slots.len(), "one local per query");
        for (slot, local) in self.slots.iter().zip(locals) {
            slot.stats.merge(local);
        }
    }

    /// Finishes the batch: per-query answers (sorted ascending by
    /// `(distance, position)`) plus the [`BatchStats`]. `shared` carries
    /// counters for work done once for the whole batch (a tree engine's
    /// traversal); scan engines pass [`QueryStats::default()`]. Phase
    /// times lapped into [`phases`](Self::phases) are folded into the
    /// shared stats here (the schedule ran once for the whole batch).
    #[must_use]
    pub fn finish(self, broadcasts: u64, mut shared: QueryStats) -> (Vec<Vec<Match>>, BatchStats) {
        shared.phase = shared.phase.merged(&self.phases.snapshot());
        let mut matches = Vec::with_capacity(self.slots.len());
        let mut per_query = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            matches.push(
                slot.topk
                    .matches()
                    .into_iter()
                    .map(|(dist_sq, pos)| Match::new(pos, dist_sq))
                    .collect(),
            );
            per_query.push(slot.stats.snapshot());
        }
        let stats = BatchStats {
            broadcasts,
            // ORDERING: relaxed — `finish` consumes `self` after the
            // schedule joined every worker, so all counts are visible.
            series_fetched: self.fetches.load(Ordering::Relaxed),
            series_requests: self.requests.load(Ordering::Relaxed),
            shared,
            per_query,
        };
        (matches, stats)
    }
}

/// Work accounting for one answered [`QueryBatch`] — the observable form
/// of the amortization: how many pool broadcasts the whole batch cost, and
/// how many raw-series fetches were shared across queries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Pool broadcasts issued for the whole batch (0 for the serial
    /// engine; constant per batch for the parallel ones, so
    /// broadcasts-per-query shrinks as `1/B`).
    pub broadcasts: u64,
    /// Raw series actually fetched, each at most once per scan/verify
    /// step whatever the batch size.
    pub series_fetched: u64,
    /// Per-query real-distance attempts those fetches served — what B
    /// independent queries would each have fetched for. `series_requests
    /// >= series_fetched`; the gap is the sharing.
    pub series_requests: u64,
    /// Counters for work done once for the whole batch (tree traversal
    /// for MESSI: nodes pruned, leaves enqueued/processed/discarded);
    /// zero for the scan engines.
    pub shared: QueryStats,
    /// Per-query counters, index-aligned with the batch's queries.
    pub per_query: Vec<QueryStats>,
}

impl BatchStats {
    /// Broadcasts issued per query — below 1 whenever batching amortizes
    /// (B queries per broadcast set).
    #[must_use]
    pub fn broadcasts_per_query(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)] // display-only ratio
        if self.per_query.is_empty() {
            0.0
        } else {
            self.broadcasts as f64 / self.per_query.len() as f64
        }
    }

    /// Query `i`'s counters including its share of the batch-level work —
    /// the view that matches what a single-query run would have reported.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn query_stats(&self, i: usize) -> QueryStats {
        self.shared.merged(&self.per_query[i])
    }

    /// Collapses a batch-of-one into the single-query [`QueryStats`] —
    /// how the single-query facade methods are re-expressed over the
    /// batch path.
    ///
    /// # Panics
    /// Panics if the batch did not hold exactly one query.
    #[must_use]
    pub fn into_single(self) -> QueryStats {
        assert_eq!(self.per_query.len(), 1, "batch of one");
        self.shared.merged(&self.per_query[0])
    }

    /// Field-wise total over the whole batch (shared + every query).
    #[must_use]
    pub fn total(&self) -> QueryStats {
        self.per_query
            .iter()
            .fold(self.shared, |acc, q| acc.merged(q))
    }
}

/// Seeds every query in the batch from the (deduplicated, typically
/// union-of-approximate-leaves) `positions`: each series is fetched once
/// and pays an early-abandoned real distance against every query, so
/// every pruner starts from a threshold at least as tight as its own-leaf
/// seed. Abandoning against each query's own threshold is result-identical
/// to full distances (the pruner rejects anything at or above it anyway)
/// and caps the cross-seeding cost once a query's top-k fills.
///
/// # Errors
/// Propagates raw-source I/O failures.
pub fn batch_seed_positions(
    positions: &[u32],
    fetcher: &mut SeriesFetcher<'_, impl RawSource>,
    batch: &QueryBatch<'_>,
) -> Result<(), StorageError> {
    if batch.is_empty() || positions.is_empty() {
        return Ok(());
    }
    let mut locals = vec![QueryStats::default(); batch.len()];
    for &pos in positions {
        let series = fetcher.fetch(pos as usize)?;
        for (slot, local) in batch.slots().iter().zip(&mut locals) {
            let limit = slot.topk.threshold_sq();
            if let Some(d) = euclidean_sq_bounded(slot.values, series, limit) {
                slot.topk.insert(d, pos);
                local.real_computed += 1;
            }
        }
    }
    batch.merge_locals(&locals);
    batch.count_io(
        positions.len() as u64,
        positions.len() as u64 * batch.len() as u64,
    );
    Ok(())
}

/// Warms every k-NN threshold in the batch over the position-order prefix
/// `0..prefix` (see [`seed_prefix`](crate::seed::seed_prefix) for why a
/// batch lower-bound phase needs this): one fetch per position, an
/// early-abandoned real distance per query.
///
/// # Errors
/// Propagates raw-source I/O failures.
pub fn batch_seed_prefix(
    prefix: usize,
    fetcher: &mut SeriesFetcher<'_, impl RawSource>,
    batch: &QueryBatch<'_>,
) -> Result<(), StorageError> {
    if batch.is_empty() || prefix == 0 {
        return Ok(());
    }
    let mut locals = vec![QueryStats::default(); batch.len()];
    for pos in 0..prefix {
        let series = fetcher.fetch(pos)?;
        for (slot, local) in batch.slots().iter().zip(&mut locals) {
            let limit = slot.topk.threshold_sq();
            if let Some(d) = euclidean_sq_bounded(slot.values, series, limit) {
                slot.topk.insert(d, pos as u32);
                local.real_computed += 1;
            }
        }
    }
    batch.merge_locals(&locals);
    batch.count_io(prefix as u64, prefix as u64 * batch.len() as u64);
    Ok(())
}

/// SIMS-style serial scan, batched (the ADS+ schedule): every SAX word is
/// lower-bounded against every query; a position is fetched at most once,
/// then verified for each query whose bound survived. The batch
/// generalization of [`scan_sax_serial`](crate::scan::scan_sax_serial).
///
/// # Errors
/// Propagates raw-source I/O failures.
pub fn batch_scan_sax_serial(
    words: &[Word],
    fetcher: &mut SeriesFetcher<'_, impl RawSource>,
    batch: &QueryBatch<'_>,
) -> Result<(), StorageError> {
    if batch.is_empty() {
        return Ok(());
    }
    let mut locals = vec![QueryStats::default(); batch.len()];
    let mut survivors: Vec<(usize, f32)> = Vec::with_capacity(batch.len());
    let (mut fetches, mut requests) = (0u64, 0u64);
    for (pos, word) in words.iter().enumerate() {
        survivors.clear();
        for (qi, slot) in batch.slots().iter().enumerate() {
            locals[qi].lb_computed += 1;
            let lb = slot.prep.table.lookup(word);
            if lb < slot.topk.threshold_sq() {
                locals[qi].candidates += 1;
                survivors.push((qi, lb));
            }
        }
        if survivors.is_empty() {
            continue;
        }
        let series = fetcher.fetch(pos)?;
        fetches += 1;
        for &(qi, _) in &survivors {
            let slot = &batch.slots()[qi];
            // No stale-bound re-check needed: this loop is serial, each
            // query appears at most once per position, and verifications
            // for other queries never touch this query's threshold. (A
            // cross-shard sharer may tighten it concurrently — that only
            // prunes more; the insert-time comparison stays authoritative.)
            let limit = slot.topk.threshold_sq();
            requests += 1;
            if let Some(d) = euclidean_sq_bounded(slot.values, series, limit) {
                slot.topk.insert(d, pos as u32);
                locals[qi].real_computed += 1;
            }
        }
    }
    batch.merge_locals(&locals);
    batch.count_io(fetches, requests);
    Ok(())
}

/// One surviving `(position, query, bound)` triple from a batched ParIS
/// collect phase. Triples for one position are emitted contiguously, so
/// the verify phase can share one fetch across every query that kept the
/// position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchCandidate {
    /// SAX-array position of the candidate series.
    pub pos: u32,
    /// Index of the query (into the batch's slots) that kept it.
    pub query: u32,
    /// The lower bound that beat that query's threshold.
    pub lb: f32,
}

/// Lower-bound filter over one Fetch&Inc chunk of the SAX array, batched
/// (ParIS collect): each word in `range` is bounded against every query;
/// survivors append one [`BatchCandidate`] per `(position, query)` pair.
/// Thresholds are sampled once per chunk — the paper's granularity for
/// refreshing the pruning threshold. The batch generalization of
/// [`collect_candidates`](crate::scan::collect_candidates).
pub fn batch_collect_candidates(
    words: &[Word],
    range: Range<usize>,
    batch: &QueryBatch<'_>,
    locals: &mut [QueryStats],
    out: &mut Vec<BatchCandidate>,
) {
    let limits: Vec<f32> = batch
        .slots()
        .iter()
        .map(|s| s.topk.threshold_sq())
        .collect();
    for pos in range {
        let word = &words[pos];
        for (qi, slot) in batch.slots().iter().enumerate() {
            let lb = slot.prep.table.lookup(word);
            if lb < limits[qi] {
                locals[qi].candidates += 1;
                out.push(BatchCandidate {
                    pos: pos as u32,
                    query: qi as u32,
                    lb,
                });
            }
        }
    }
}

/// Verifies one Fetch&Inc chunk of a batched candidate list (ParIS
/// verify): bounds are re-checked against each query's *current*
/// threshold, and a run of triples sharing a position pays one fetch for
/// all of them. The batch generalization of
/// [`verify_candidates`](crate::scan::verify_candidates).
///
/// # Errors
/// Propagates raw-source I/O failures.
pub fn batch_verify_candidates(
    candidates: &[BatchCandidate],
    range: Range<usize>,
    fetcher: &mut SeriesFetcher<'_, impl RawSource>,
    batch: &QueryBatch<'_>,
    locals: &mut [QueryStats],
) -> Result<(), StorageError> {
    let cs = &candidates[range];
    let (mut fetches, mut requests) = (0u64, 0u64);
    let mut i = 0;
    while i < cs.len() {
        let pos = cs[i].pos;
        let mut j = i + 1;
        while j < cs.len() && cs[j].pos == pos {
            j += 1;
        }
        let run = &cs[i..j];
        i = j;
        // Skip the fetch entirely when every query's threshold has moved
        // below its recorded bound since collection.
        if !run
            .iter()
            .any(|c| c.lb < batch.slots()[c.query as usize].topk.threshold_sq())
        {
            continue;
        }
        let series = fetcher.fetch(pos as usize)?;
        fetches += 1;
        for c in run {
            let slot = &batch.slots()[c.query as usize];
            let limit = slot.topk.threshold_sq();
            if c.lb >= limit {
                continue;
            }
            requests += 1;
            if let Some(d) = euclidean_sq_bounded(slot.values, series, limit) {
                slot.topk.insert(d, c.pos);
                locals[c.query as usize].real_computed += 1;
            }
        }
    }
    batch.count_io(fetches, requests);
    Ok(())
}

/// Entry-level bound + early-abandoned real distance over one leaf's
/// entries for every query in `active` (indices into the batch's slots
/// whose leaf-level bound survived) — the leaf is processed *once* for the
/// whole batch, and a surviving entry is fetched once from the
/// [`RawSource`] for every query that still wants it. The batch
/// generalization of
/// [`process_leaf_entries`](crate::scan::process_leaf_entries).
///
/// # Errors
/// Propagates raw-source I/O failures.
pub fn batch_process_leaf_entries(
    entries: &[LeafEntry],
    fetcher: &mut SeriesFetcher<'_, impl RawSource>,
    batch: &QueryBatch<'_>,
    active: &[usize],
    locals: &mut [QueryStats],
) -> Result<(), StorageError> {
    let (mut fetches, mut requests) = (0u64, 0u64);
    let mut survivors: Vec<usize> = Vec::with_capacity(active.len());
    for e in entries {
        survivors.clear();
        for &qi in active {
            let slot = &batch.slots()[qi];
            locals[qi].lb_entry_computed += 1;
            if slot.prep.table.lookup(&e.word) < slot.topk.threshold_sq() {
                survivors.push(qi);
            }
        }
        if survivors.is_empty() {
            continue;
        }
        let series = fetcher.fetch(e.pos as usize)?;
        fetches += 1;
        for &qi in &survivors {
            let slot = &batch.slots()[qi];
            let limit = slot.topk.threshold_sq();
            requests += 1;
            if let Some(d) = euclidean_sq_bounded(slot.values, series, limit) {
                slot.topk.insert(d, e.pos);
                locals[qi].real_computed += 1;
            }
        }
    }
    batch.count_io(fetches, requests);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_series::distance::euclidean_sq;
    use dsidx_series::gen::DatasetKind;
    use dsidx_series::Dataset;
    use dsidx_tree::TreeConfig;

    fn fixture(n: usize) -> (Dataset, Vec<Word>, TreeConfig) {
        let config = TreeConfig::new(64, 8, 16).unwrap();
        let data = DatasetKind::Synthetic.generate(n, 64, 5);
        let quantizer = config.quantizer();
        let words = data.iter().map(|s| quantizer.word(s)).collect();
        (data, words, config)
    }

    fn brute_topk(data: &Dataset, q: &[f32], k: usize) -> Vec<(f32, u32)> {
        let mut all: Vec<(f32, u32)> = data
            .iter()
            .enumerate()
            .map(|(pos, s)| (euclidean_sq(q, s), pos as u32))
            .collect();
        all.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    #[test]
    fn batch_serial_scan_equals_per_query_brute_force() {
        let (data, words, config) = fixture(400);
        let qs = DatasetKind::Synthetic.queries(6, 64, 7);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        for k in [1usize, 4, 17] {
            let batch = QueryBatch::new(config.quantizer(), &qrefs, k);
            let mut fetcher = SeriesFetcher::new(&data);
            batch_scan_sax_serial(&words, &mut fetcher, &batch).unwrap();
            let (matches, stats) = batch.finish(0, QueryStats::default());
            assert_eq!(matches.len(), qrefs.len());
            for (qi, q) in qs.iter().enumerate() {
                let want = brute_topk(&data, q, k);
                let got = &matches[qi];
                assert_eq!(got.len(), want.len(), "q{qi} k={k}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.pos, w.1, "q{qi} k={k}");
                    assert!((g.dist_sq - w.0).abs() <= w.0 * 1e-4 + 1e-4);
                }
                // Every query paid one bound per position.
                assert_eq!(stats.per_query[qi].lb_computed, 400);
            }
            // Fetches are shared: never more than one per position, and
            // never fewer than any single query's needs.
            assert!(stats.series_fetched <= 400);
            assert!(stats.series_requests >= stats.series_fetched);
        }
    }

    #[test]
    fn batch_collect_verify_equals_brute_force() {
        let (data, words, config) = fixture(300);
        let qs = DatasetKind::Synthetic.queries(4, 64, 9);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        let k = 5;
        let batch = QueryBatch::new(config.quantizer(), &qrefs, k);
        let mut fetcher = SeriesFetcher::new(&data);
        // Warm the thresholds like the ParIS schedule does, or the collect
        // phase materializes everything.
        batch_seed_prefix(4 * k, &mut fetcher, &batch).unwrap();
        let mut locals = vec![QueryStats::default(); batch.len()];
        let mut candidates = Vec::new();
        for start in (0..words.len()).step_by(64) {
            let end = (start + 64).min(words.len());
            batch_collect_candidates(&words, start..end, &batch, &mut locals, &mut candidates);
        }
        for start in (0..candidates.len()).step_by(16) {
            let end = (start + 16).min(candidates.len());
            batch_verify_candidates(&candidates, start..end, &mut fetcher, &batch, &mut locals)
                .unwrap();
        }
        batch.merge_locals(&locals);
        let (matches, stats) = batch.finish(2, QueryStats::default());
        for (qi, q) in qs.iter().enumerate() {
            let want = brute_topk(&data, q, k);
            assert_eq!(
                matches[qi].iter().map(|m| m.pos).collect::<Vec<_>>(),
                want.iter().map(|m| m.1).collect::<Vec<_>>(),
                "q{qi}"
            );
        }
        assert_eq!(stats.broadcasts, 2);
        assert!((stats.broadcasts_per_query() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn batch_seeding_tightens_every_query() {
        let (data, _, config) = fixture(50);
        let qs = DatasetKind::Synthetic.queries(3, 64, 11);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        let batch = QueryBatch::new(config.quantizer(), &qrefs, 2);
        let mut fetcher = SeriesFetcher::new(&data);
        batch_seed_positions(&[3, 7, 19], &mut fetcher, &batch).unwrap();
        for slot in batch.slots() {
            assert_eq!(slot.topk.len(), 2);
            assert!(slot.topk.threshold_sq().is_finite());
        }
        let (_, stats) = batch.finish(0, QueryStats::default());
        assert_eq!(stats.series_fetched, 3);
        assert_eq!(stats.series_requests, 9);
        for q in &stats.per_query {
            // At least k full distances fill the collector; the rest may
            // early-abandon against the tightened threshold.
            assert!(q.real_computed >= 2 && q.real_computed <= 3);
        }
    }

    #[test]
    fn batch_leaf_processing_respects_active_set() {
        let (data, words, config) = fixture(120);
        let entries: Vec<LeafEntry> = words
            .iter()
            .enumerate()
            .map(|(pos, w)| LeafEntry::new(*w, pos as u32))
            .collect();
        let qs = DatasetKind::Synthetic.queries(3, 64, 13);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        let k = 4;
        let batch = QueryBatch::new(config.quantizer(), &qrefs, k);
        let mut locals = vec![QueryStats::default(); batch.len()];
        let mut fetcher = SeriesFetcher::new(&data);
        // Only queries 0 and 2 are active for this "leaf".
        batch_process_leaf_entries(&entries, &mut fetcher, &batch, &[0, 2], &mut locals).unwrap();
        batch.merge_locals(&locals);
        let (matches, stats) = batch.finish(1, QueryStats::default());
        for qi in [0usize, 2] {
            let want = brute_topk(&data, qs.get(qi), k);
            assert_eq!(
                matches[qi].iter().map(|m| m.pos).collect::<Vec<_>>(),
                want.iter().map(|m| m.1).collect::<Vec<_>>(),
                "q{qi}"
            );
            assert_eq!(stats.per_query[qi].lb_entry_computed, 120);
        }
        assert!(matches[1].is_empty(), "inactive query untouched");
        assert_eq!(stats.per_query[1], QueryStats::default());
    }

    #[test]
    fn stats_views_compose() {
        let shared = QueryStats {
            nodes_pruned: 7,
            ..QueryStats::default()
        };
        let q0 = QueryStats {
            real_computed: 3,
            ..QueryStats::default()
        };
        let stats = BatchStats {
            broadcasts: 1,
            series_fetched: 5,
            series_requests: 9,
            shared,
            per_query: vec![q0],
        };
        assert_eq!(stats.query_stats(0).nodes_pruned, 7);
        assert_eq!(stats.query_stats(0).real_computed, 3);
        assert_eq!(stats.total(), stats.query_stats(0));
        assert!((stats.broadcasts_per_query() - 1.0).abs() < 1e-9);
        assert_eq!(stats.into_single().real_computed, 3);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (data, words, config) = fixture(20);
        let batch = QueryBatch::new(config.quantizer(), &[], 3);
        assert!(batch.is_empty());
        let mut fetcher = SeriesFetcher::new(&data);
        batch_seed_positions(&[1, 2], &mut fetcher, &batch).unwrap();
        batch_seed_prefix(5, &mut fetcher, &batch).unwrap();
        batch_scan_sax_serial(&words, &mut fetcher, &batch).unwrap();
        let (matches, stats) = batch.finish(0, QueryStats::default());
        assert!(matches.is_empty());
        assert_eq!(stats.series_fetched, 0);
        assert!((stats.broadcasts_per_query() - 0.0).abs() < 1e-9);
    }
}
