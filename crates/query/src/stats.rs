//! The unified per-query counter set shared by every engine.

use dsidx_obs::phase::{PhaseAcc, PhaseBreakdown};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters from one exact query, uniform across engines.
///
/// Engines touch the counters their algorithm has: the scan-based engines
/// (ADS+, ParIS) fill the SAX-array counters and leave the tree-traversal
/// ones at zero; MESSI does the opposite; the DTW cascade fills the
/// LB_Keogh/DTW counters on top of whichever family answered.
/// `real_computed` is meaningful everywhere, so cross-engine comparisons
/// (Fig. 12) read one type.
///
/// Alongside the work counters rides the [`PhaseBreakdown`]: wall-clock
/// nanoseconds per query phase, recorded by the coordinating thread as
/// contiguous intervals. Counters are deterministic across runs at exact
/// fidelity; the phase times are not (they are wall time), so equality
/// between two *live* runs is generally false — determinism tests compare
/// matches, and empty/early-return paths report the all-zero default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Lower bounds evaluated over the SAX array (scan-based engines).
    pub lb_computed: u64,
    /// Positions whose lower bound beat the BSF (candidate list size).
    pub candidates: u64,
    /// Nodes (roots included) pruned during tree traversal (MESSI).
    pub nodes_pruned: u64,
    /// Leaves inserted into the priority queues (MESSI).
    pub leaves_enqueued: u64,
    /// Leaves actually examined — popped and below the BSF (MESSI).
    pub leaves_processed: u64,
    /// Leaves discarded by queue abandonment at pop time (MESSI).
    pub leaves_discarded: u64,
    /// Entry-level lower bounds computed (MESSI).
    pub lb_entry_computed: u64,
    /// LB_Keogh envelope bounds evaluated (DTW cascade).
    pub lb_keogh_computed: u64,
    /// Candidates pruned by LB_Keogh before any DTW work (DTW cascade).
    pub lb_keogh_pruned: u64,
    /// Banded DTW computations abandoned early against the BSF (DTW
    /// cascade).
    pub dtw_abandoned: u64,
    /// Real distances fully evaluated (not early-abandoned) — Euclidean or
    /// DTW, per the query.
    pub real_computed: u64,
    /// Wall-clock nanoseconds per query phase (prepare, seed, scan /
    /// collect / verify / traversal, DTW cascade), measured on the
    /// coordinating thread.
    pub phase: PhaseBreakdown,
}

impl QueryStats {
    /// Total lower-bound evaluations, whatever their granularity: SAX-array
    /// entries for the scan-based engines; node bounds (a visited node is
    /// either pruned or enqueued) plus entry bounds for MESSI; LB_Keogh
    /// envelope bounds for the DTW cascade. The uniform "lower-bound work"
    /// column of the Fig. 12 comparison.
    #[must_use]
    pub fn lb_total(&self) -> u64 {
        self.lb_computed
            + self.nodes_pruned
            + self.leaves_enqueued
            + self.lb_entry_computed
            + self.lb_keogh_computed
    }

    /// Field-wise sum (aggregating a query batch into one report row).
    #[must_use]
    pub fn merged(&self, other: &QueryStats) -> QueryStats {
        // Destructure exhaustively: adding a counter without deciding how
        // it merges is a compile error here, not a silently dropped stat.
        let QueryStats {
            lb_computed,
            candidates,
            nodes_pruned,
            leaves_enqueued,
            leaves_processed,
            leaves_discarded,
            lb_entry_computed,
            lb_keogh_computed,
            lb_keogh_pruned,
            dtw_abandoned,
            real_computed,
            phase,
        } = *other;
        QueryStats {
            lb_computed: self.lb_computed + lb_computed,
            candidates: self.candidates + candidates,
            nodes_pruned: self.nodes_pruned + nodes_pruned,
            leaves_enqueued: self.leaves_enqueued + leaves_enqueued,
            leaves_processed: self.leaves_processed + leaves_processed,
            leaves_discarded: self.leaves_discarded + leaves_discarded,
            lb_entry_computed: self.lb_entry_computed + lb_entry_computed,
            lb_keogh_computed: self.lb_keogh_computed + lb_keogh_computed,
            lb_keogh_pruned: self.lb_keogh_pruned + lb_keogh_pruned,
            dtw_abandoned: self.dtw_abandoned + dtw_abandoned,
            real_computed: self.real_computed + real_computed,
            phase: self.phase.merged(&phase),
        }
    }
}

/// Shared-counter form of [`QueryStats`] for parallel query phases.
///
/// Workers accumulate *locally* and flush once per phase — per-item
/// `fetch_add`s on these would bounce one cache line across every core,
/// which dominates sub-millisecond phases.
#[derive(Debug, Default)]
pub struct AtomicQueryStats {
    lb_computed: AtomicU64,
    candidates: AtomicU64,
    nodes_pruned: AtomicU64,
    leaves_enqueued: AtomicU64,
    leaves_processed: AtomicU64,
    leaves_discarded: AtomicU64,
    lb_entry_computed: AtomicU64,
    lb_keogh_computed: AtomicU64,
    lb_keogh_pruned: AtomicU64,
    dtw_abandoned: AtomicU64,
    real_computed: AtomicU64,
    phase: PhaseAcc,
}

impl AtomicQueryStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a worker's local tally.
    pub fn merge(&self, local: &QueryStats) {
        // Destructure exhaustively — see `QueryStats::merged`.
        let QueryStats {
            lb_computed,
            candidates,
            nodes_pruned,
            leaves_enqueued,
            leaves_processed,
            leaves_discarded,
            lb_entry_computed,
            lb_keogh_computed,
            lb_keogh_pruned,
            dtw_abandoned,
            real_computed,
            phase,
        } = *local;
        // Relaxed: counters are only read after the pool broadcast joins,
        // which is already a synchronization point.
        self.lb_computed.fetch_add(lb_computed, Ordering::Relaxed);
        self.candidates.fetch_add(candidates, Ordering::Relaxed);
        self.nodes_pruned.fetch_add(nodes_pruned, Ordering::Relaxed);
        self.leaves_enqueued
            .fetch_add(leaves_enqueued, Ordering::Relaxed);
        self.leaves_processed
            .fetch_add(leaves_processed, Ordering::Relaxed);
        self.leaves_discarded
            .fetch_add(leaves_discarded, Ordering::Relaxed);
        self.lb_entry_computed
            .fetch_add(lb_entry_computed, Ordering::Relaxed);
        self.lb_keogh_computed
            .fetch_add(lb_keogh_computed, Ordering::Relaxed);
        self.lb_keogh_pruned
            .fetch_add(lb_keogh_pruned, Ordering::Relaxed);
        self.dtw_abandoned
            .fetch_add(dtw_abandoned, Ordering::Relaxed);
        self.real_computed
            .fetch_add(real_computed, Ordering::Relaxed);
        self.phase.add(&phase);
    }

    /// Adds to `real_computed` alone (the only counter some phases touch).
    pub fn add_real_computed(&self, n: u64) {
        self.real_computed.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads the counters out as a plain [`QueryStats`].
    #[must_use]
    pub fn snapshot(&self) -> QueryStats {
        QueryStats {
            lb_computed: self.lb_computed.load(Ordering::Relaxed),
            candidates: self.candidates.load(Ordering::Relaxed),
            nodes_pruned: self.nodes_pruned.load(Ordering::Relaxed),
            leaves_enqueued: self.leaves_enqueued.load(Ordering::Relaxed),
            leaves_processed: self.leaves_processed.load(Ordering::Relaxed),
            leaves_discarded: self.leaves_discarded.load(Ordering::Relaxed),
            lb_entry_computed: self.lb_entry_computed.load(Ordering::Relaxed),
            lb_keogh_computed: self.lb_keogh_computed.load(Ordering::Relaxed),
            lb_keogh_pruned: self.lb_keogh_pruned.load(Ordering::Relaxed),
            dtw_abandoned: self.dtw_abandoned.load(Ordering::Relaxed),
            real_computed: self.real_computed.load(Ordering::Relaxed),
            phase: self.phase.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_obs::phase::Phase;

    fn sample(k: u64) -> QueryStats {
        let mut phase = PhaseBreakdown::new();
        phase.record(Phase::Seed, 12 * k);
        phase.record(Phase::Verify, 13 * k);
        QueryStats {
            lb_computed: k,
            candidates: 2 * k,
            nodes_pruned: 3 * k,
            leaves_enqueued: 4 * k,
            leaves_processed: 5 * k,
            leaves_discarded: 6 * k,
            lb_entry_computed: 7 * k,
            lb_keogh_computed: 8 * k,
            lb_keogh_pruned: 9 * k,
            dtw_abandoned: 10 * k,
            real_computed: 11 * k,
            phase,
        }
    }

    #[test]
    fn merged_sums_every_field() {
        let m = sample(1).merged(&sample(10));
        assert_eq!(m, sample(11));
    }

    #[test]
    fn merged_sums_phase_times() {
        let m = sample(1).merged(&sample(10));
        assert_eq!(m.phase.nanos(Phase::Seed), 12 * 11);
        assert_eq!(m.phase.nanos(Phase::Verify), 13 * 11);
        assert_eq!(m.phase.nanos(Phase::Traversal), 0);
    }

    #[test]
    fn lb_total_spans_both_engine_families() {
        // Scan-based shape: only SAX-array bounds.
        let scan = QueryStats {
            lb_computed: 100,
            ..QueryStats::default()
        };
        assert_eq!(scan.lb_total(), 100);
        // Tree-based shape: node bounds + entry bounds.
        let tree = QueryStats {
            nodes_pruned: 10,
            leaves_enqueued: 5,
            lb_entry_computed: 40,
            ..QueryStats::default()
        };
        assert_eq!(tree.lb_total(), 55);
        // DTW cascade shape: LB_Keogh bounds count as lower-bound work too.
        let dtw = QueryStats {
            lb_entry_computed: 20,
            lb_keogh_computed: 12,
            lb_keogh_pruned: 9,
            dtw_abandoned: 2,
            ..QueryStats::default()
        };
        assert_eq!(dtw.lb_total(), 32);
    }

    #[test]
    fn atomic_merge_and_snapshot_roundtrip() {
        let shared = AtomicQueryStats::new();
        shared.merge(&sample(1));
        shared.merge(&sample(2));
        shared.add_real_computed(4);
        let got = shared.snapshot();
        let mut want = sample(3);
        want.real_computed += 4;
        assert_eq!(got, want);
    }

    #[test]
    fn atomic_merge_is_thread_safe() {
        let shared = AtomicQueryStats::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let shared = &shared;
                s.spawn(move || {
                    for _ in 0..1000 {
                        shared.merge(&sample(1));
                    }
                });
            }
        });
        assert_eq!(shared.snapshot(), sample(8000));
    }
}
