//! Shared infrastructure for the `repro` harness: scales, dataset caching,
//! table/CSV output, timing helpers.
//!
//! Every experiment regenerates one of the paper's figures at a chosen
//! [`Scale`]; see DESIGN.md §4 for the experiment ↔ figure map and
//! EXPERIMENTS.md for recorded results.

pub mod experiments;

use dsidx::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Dataset sizes for one harness run.
///
/// The paper uses 100M-series (100 GB) collections; these presets keep the
/// *shape* of every figure while fitting a laptop. `paper` documents the
/// original sizes — runnable if you have the disk, the RAM and the time.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Preset name.
    pub name: &'static str,
    /// Series count for on-disk experiments (Figs. 4, 6, 8, 10, 11).
    pub disk_series: usize,
    /// Series count for in-memory experiments (Figs. 5, 7, 9, 12).
    pub mem_series: usize,
    /// Series length (SALD uses 128, like the paper's EEG data).
    pub series_len: usize,
    /// Queries per on-disk measurement.
    pub disk_queries: usize,
    /// Queries per in-memory measurement.
    pub mem_queries: usize,
}

impl Scale {
    /// CI-sized: seconds per experiment.
    pub const TINY: Scale = Scale {
        name: "tiny",
        disk_series: 5_000,
        mem_series: 20_000,
        series_len: 128,
        disk_queries: 2,
        mem_queries: 5,
    };

    /// Quick laptop runs. The on-disk collection sits just above the
    /// scan-vs-seek crossover of the modeled HDD (~55K series), so the
    /// query figures already show the paper's ordering.
    pub const SMALL: Scale = Scale {
        name: "small",
        disk_series: 60_000,
        mem_series: 100_000,
        series_len: 256,
        disk_queries: 3,
        mem_queries: 10,
    };

    /// The default: minutes for the full suite, shapes clearly visible.
    pub const DEFAULT: Scale = Scale {
        name: "default",
        disk_series: 200_000,
        mem_series: 500_000,
        series_len: 256,
        disk_queries: 3,
        mem_queries: 10,
    };

    /// The paper's sizes (documented; expect hours and ~100 GB of disk).
    pub const PAPER: Scale = Scale {
        name: "paper",
        disk_series: 100_000_000,
        mem_series: 100_000_000,
        series_len: 256,
        disk_queries: 100,
        mem_queries: 100,
    };

    /// Parses a preset name.
    ///
    /// # Errors
    /// Returns the unknown name.
    pub fn parse(s: &str) -> Result<Scale, String> {
        match s {
            "tiny" => Ok(Scale::TINY),
            "small" => Ok(Scale::SMALL),
            "default" => Ok(Scale::DEFAULT),
            "paper" => Ok(Scale::PAPER),
            other => Err(format!("unknown scale: {other} (tiny|small|default|paper)")),
        }
    }

    /// Series length for a dataset family (SALD is 128-point like the
    /// paper's collection, unless the scale's length is already shorter).
    #[must_use]
    pub fn len_for(&self, kind: DatasetKind) -> usize {
        match kind {
            DatasetKind::Sald => self.series_len.min(128),
            _ => self.series_len,
        }
    }
}

/// Core counts to sweep: the paper's ladder, capped at this machine.
#[must_use]
pub fn core_ladder(points: &[usize]) -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut v: Vec<usize> = points.iter().copied().filter(|&c| c <= max).collect();
    if v.is_empty() {
        v.push(max);
    }
    v
}

/// Directory for cached dataset files.
#[must_use]
pub fn data_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("dsidx-bench-data");
    std::fs::create_dir_all(&dir).expect("create bench data dir");
    dir
}

/// Directory for result CSVs (workspace `results/`).
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Returns (writing if missing) the cached dataset file for a family/size.
#[must_use]
pub fn disk_dataset(kind: DatasetKind, count: usize, len: usize) -> PathBuf {
    let path = data_dir().join(format!(
        "{}-{count}x{len}.dsidx",
        kind.name().to_lowercase()
    ));
    if !path.exists() {
        eprintln!(
            "  [gen] writing {} ({count} x {len}) to {}",
            kind.name(),
            path.display()
        );
        let data = kind.generate(count, len, dataset_seed(kind));
        dsidx::storage::write_dataset(&path, &data, Arc::new(Device::unthrottled()))
            .expect("write cached dataset");
    }
    path
}

/// Fixed per-family seeds, so every experiment sees the same collections.
#[must_use]
pub fn dataset_seed(kind: DatasetKind) -> u64 {
    match kind {
        DatasetKind::Synthetic => 0x5EED_0001,
        DatasetKind::Sald => 0x5EED_0002,
        DatasetKind::Seismic => 0x5EED_0003,
    }
}

/// Path to a real raw-binary-f32 collection for a family, if the operator
/// pointed `DSIDX_DATA_DIR` at a directory containing `<family>.f32` files
/// (the standard headerless little-endian format the paper's collections
/// are distributed in — e.g. `synthetic.f32`, `sald.f32`, `seismic.f32`).
#[must_use]
pub fn real_dataset_path(kind: DatasetKind) -> Option<PathBuf> {
    let dir = std::env::var_os("DSIDX_DATA_DIR")?;
    let path = PathBuf::from(dir).join(format!("{}.f32", kind.name().to_lowercase()));
    path.exists().then_some(path)
}

/// The in-memory dataset for a family at a scale: the real collection
/// (first `mem_series` records of `$DSIDX_DATA_DIR/<family>.f32`, see
/// [`real_dataset_path`]) when available, the in-repo generator otherwise.
///
/// # Panics
/// Panics when a provided real file cannot be read at the scale's series
/// length — a misconfiguration worth failing loudly on, not silently
/// substituting synthetic data for.
#[must_use]
pub fn mem_dataset(kind: DatasetKind, scale: &Scale) -> Dataset {
    let len = scale.len_for(kind);
    if let Some(path) = real_dataset_path(kind) {
        eprintln!(
            "  [load] {} from {} (<= {} x {len})",
            kind.name(),
            path.display(),
            scale.mem_series,
        );
        let mut data = dsidx::series::load::load_raw_f32_range(&path, len, 0, scale.mem_series)
            .unwrap_or_else(|e| panic!("loading {}: {e}", path.display()));
        data.znormalize_all();
        return data;
    }
    eprintln!(
        "  [gen] {} in memory ({} x {len})",
        kind.name(),
        scale.mem_series,
    );
    kind.generate(scale.mem_series, len, dataset_seed(kind))
}

/// Query workload for a family: fresh draws from the same generative
/// process (the paper's setup for the in-memory figures).
#[must_use]
pub fn queries(kind: DatasetKind, count: usize, len: usize) -> Dataset {
    kind.queries(count, len, dataset_seed(kind))
}

/// Planted query workload: perturbed copies of collection members
/// (template-matching queries — "have we seen this before?").
///
/// Used for the on-disk figures: their shape depends on the index pruning
/// away almost all random accesses, which at the paper's 100M-series scale
/// happens even for distribution-drawn queries (the space is densely
/// sampled, so some member is always close). A 1000x smaller collection
/// loses that density; planted queries restore the same candidate-set
/// proportions. See EXPERIMENTS.md.
#[must_use]
pub fn queries_planted(kind: DatasetKind, count: usize, scale: &Scale) -> Dataset {
    use dsidx_series::gen::rng::NormalGen;
    let len = scale.len_for(kind);
    let data = kind.generate(scale.disk_series, len, dataset_seed(kind));
    let mut normal = NormalGen::new(dataset_seed(kind) ^ 0x9E37_79B9);
    let mut out = Dataset::with_capacity(len, count).expect("valid len");
    for i in 0..count {
        // i+1 so no twin sits at position 0 (a position-ordered scan would
        // find it on its first read, flattering the serial baselines).
        let pos = ((i + 1) * 2_654_435_761) % data.len().max(1);
        let mut q: Vec<f32> = data.get(pos).to_vec();
        for v in &mut q {
            *v += 0.05 * normal.next_f32();
        }
        dsidx::series::znorm::znormalize(&mut q);
        out.push(&q).expect("same length");
    }
    out
}

/// Milliseconds as a float (for tables and CSV).
#[must_use]
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Times one closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Mean wall time of running `f` once per query in `qs`.
pub fn time_queries(qs: &Dataset, mut f: impl FnMut(&[f32])) -> Duration {
    let t = Instant::now();
    for q in qs.iter() {
        f(q);
    }
    t.elapsed() / qs.len().max(1) as u32
}

/// A simple aligned table that also lands in `results/<name>.csv`.
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given CSV name and column headers.
    #[must_use]
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Self {
            name: name.to_owned(),
            headers: headers.iter().map(|&s| s.to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Prints the table and writes the CSV plus a machine-readable
    /// `BENCH_<name>.json` next to it; returns the CSV path.
    ///
    /// The JSON carries one object per row keyed by header, with cells
    /// that parse as finite floats emitted as numbers — so the perf
    /// trajectory can be tracked across PRs by tooling instead of living
    /// in commit messages.
    pub fn finish(&self) -> PathBuf {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.headers));
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            println!("{}", line(row));
        }
        // Unit tests write to a scratch dir so `results/` holds only
        // real experiment output.
        let out_dir = if cfg!(test) {
            std::env::temp_dir()
        } else {
            results_dir()
        };
        let csv_path = out_dir.join(format!("{}.csv", self.name));
        let mut csv = String::new();
        csv.push_str(&self.headers.join(","));
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        std::fs::write(&csv_path, csv).expect("write csv");
        println!("  -> {}", csv_path.display());
        let json_path = out_dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&json_path, self.to_json()).expect("write json");
        println!("  -> {}", json_path.display());
        csv_path
    }

    fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"experiment\": {},\n", json_string(&self.name)));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {");
            for (j, (header, cell)) in self.headers.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_string(header));
                out.push_str(": ");
                out.push_str(&json_cell(cell));
            }
            out.push('}');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// A JSON string literal (escapes quotes, backslashes, control bytes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A cell as a JSON value: a number when it parses as a finite float,
/// a string otherwise.
fn json_cell(cell: &str) -> String {
    match cell.parse::<f64>() {
        Ok(v) if v.is_finite() => cell.to_owned(),
        _ => json_string(cell),
    }
}

/// Formats a float cell.
#[must_use]
pub fn f(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse() {
        assert_eq!(Scale::parse("tiny").unwrap().name, "tiny");
        assert_eq!(Scale::parse("default").unwrap().name, "default");
        assert!(Scale::parse("nope").is_err());
    }

    #[test]
    fn core_ladder_caps_at_machine() {
        let v = core_ladder(&[1, 2, 4, 100_000]);
        assert!(v.contains(&1));
        assert!(!v.is_empty());
        assert!(v.iter().all(|&c| c <= 100_000));
    }

    #[test]
    fn sald_length_is_capped() {
        assert_eq!(Scale::DEFAULT.len_for(DatasetKind::Sald), 128);
        assert_eq!(Scale::DEFAULT.len_for(DatasetKind::Synthetic), 256);
        assert_eq!(Scale::TINY.len_for(DatasetKind::Sald), 128);
    }

    #[test]
    fn table_formats_and_writes() {
        let mut t = Table::new("test-table", &["a", "bee"]);
        t.row(&["1".into(), "2.5".into()]);
        let path = t.finish();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("a,bee"));
        assert!(content.contains("1,2.5"));
        let json_path = path.with_file_name("BENCH_test-table.json");
        let json = std::fs::read_to_string(json_path).unwrap();
        assert!(json.contains("\"experiment\": \"test-table\""));
        assert!(json.contains("\"a\": 1, \"bee\": 2.5"));
    }

    #[test]
    fn json_cells_distinguish_numbers_from_strings() {
        assert_eq!(json_cell("3.25"), "3.25");
        assert_eq!(json_cell("-7"), "-7");
        assert_eq!(json_cell("NaN"), "\"NaN\"");
        assert_eq!(json_cell("messi"), "\"messi\"");
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\u000a\"");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1234.6), "1235");
        assert_eq!(f(12.345), "12.35");
        assert_eq!(f(0.1234), "0.1234");
    }
}
