//! The `repro` harness: regenerates every figure of the paper's evaluation
//! at a configurable scale.
//!
//! ```text
//! cargo run --release -p dsidx-bench --bin repro -- all --scale small
//! cargo run --release -p dsidx-bench --bin repro -- fig9 fig12
//! cargo run --release -p dsidx-bench --bin repro -- --list
//! ```
//!
//! Results print as tables and land as CSVs in `results/`.

use dsidx_bench::{experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::SMALL;
    let mut selected: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| usage("missing value for --scale"));
                scale = Scale::parse(value).unwrap_or_else(|e| usage(&e));
            }
            "--list" => {
                for (id, figure, _) in experiments::ALL {
                    println!("{id:<12} {figure}");
                }
                return;
            }
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag {other}")),
            other => selected.push(other.to_owned()),
        }
    }
    if selected.is_empty() {
        usage("no experiment selected");
    }
    if selected.iter().any(|s| s == "all") {
        selected = experiments::ALL
            .iter()
            .map(|(id, _, _)| (*id).to_owned())
            .collect();
    }

    println!(
        "== dsidx repro: scale `{}` (disk {} / mem {} series, len {}), {} cores ==",
        scale.name,
        scale.disk_series,
        scale.mem_series,
        scale.series_len,
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    );
    let t0 = std::time::Instant::now();
    for id in &selected {
        let Some((name, figure, runner)) = experiments::find(id) else {
            usage(&format!("unknown experiment {id}"));
        };
        println!("\n==== {name}: {figure} ====");
        let t = std::time::Instant::now();
        runner(&scale);
        println!("  [{name} took {:.1?}]", t.elapsed());
    }
    println!("\nall selected experiments done in {:.1?}", t0.elapsed());
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [--scale tiny|small|default|paper] [--list] <experiment...|all>\n\
         experiments:"
    );
    for (id, figure, _) in experiments::ALL {
        eprintln!("  {id:<12} {figure}");
    }
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
