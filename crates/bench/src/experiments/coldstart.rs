//! Cold-start: build-from-raw vs snapshot `open`, per engine on a
//! modeled SSD.
//!
//! The snapshot work's headline claim: a built index saved as a snapshot
//! artifact reopens with **no tree construction** — positioned reads
//! reconstruct the tree — so process restart costs milliseconds instead
//! of a full rebuild's raw-data scan plus construction. This experiment
//! pins the claim with two self-assertions:
//!
//! * **speed** — summed across the four engines, `open` is at least 10×
//!   faster than the build it replaces (per-engine ratios are reported as
//!   rows; the on-disk ParIS family, whose builds pay per-flush leaf
//!   writes, is far beyond 10× on its own);
//! * **fidelity** — every opened index answers the full query-plane
//!   matrix (measure × fidelity × single/batch) bit-identically to the
//!   index it was saved from.
//!
//! Device bytes make the *why* visible: the build reads every raw series
//! (512 B each at tiny scale) while the open reads only the snapshot
//! (tens of bytes per series).

use crate::{disk_dataset, f, ms, queries_planted, time, Scale, Table};
use dsidx::prelude::*;
use std::time::Duration;

/// Reopens per engine; the row reports the fastest (steady-state) open.
const OPEN_REPS: usize = 5;
/// The speed self-assertion: summed builds vs summed (fastest) opens.
const MIN_SPEEDUP: f64 = 10.0;

/// Every (measure × fidelity) cell, k = 1 and k = 5.
fn plane_specs(band: usize) -> Vec<QuerySpec> {
    let mut specs = Vec::new();
    for k in [1usize, 5] {
        for measure in [Measure::Euclidean, Measure::Dtw { band }] {
            for fidelity in [Fidelity::Exact, Fidelity::Approximate] {
                specs.push(QuerySpec::knn(k).measure(measure).fidelity(fidelity));
            }
        }
    }
    specs
}

/// Runs this experiment at the given scale, printing its table and CSV.
///
/// # Panics
/// Panics (self-assertion) if the summed opens are not at least 10×
/// faster than the summed builds, or if any opened index's answers differ
/// from the built index's anywhere in the query-plane matrix.
pub fn run(scale: &Scale) {
    let kind = DatasetKind::Synthetic;
    let len = scale.len_for(kind);
    let path = disk_dataset(kind, scale.disk_series, len);
    let workdir = crate::data_dir();
    let options = Options::default().with_threads(0);
    let qs = queries_planted(kind, scale.disk_queries, scale);
    let batch: Vec<&[f32]> = qs.iter().collect();
    let single: Vec<&[f32]> = vec![qs.get(0)];
    let band = len / 20;

    let mut table = Table::new(
        "coldstart",
        &[
            "engine",
            "build_ms",
            "open_ms",
            "speedup",
            "build_bytes_read",
            "open_bytes_read",
            "snapshot_bytes",
        ],
    );
    let mut build_total = Duration::ZERO;
    let mut open_total = Duration::ZERO;
    for engine in Engine::ALL {
        let (built, build_time) = time(|| {
            DiskIndex::build(&path, &workdir, engine, &options, DeviceProfile::SSD)
                .expect("on-disk build")
        });
        let build_bytes = built.file().device().stats().bytes_read;
        let snap = workdir.join(format!(
            "coldstart-{}.snap",
            engine.name().replace('+', "p")
        ));
        let snapshot_bytes = built.save(&snap).expect("snapshot save");

        let mut best_open = Duration::MAX;
        let mut open_bytes = 0;
        let mut opened = None;
        for _ in 0..OPEN_REPS {
            let (idx, open_time) = time(|| {
                DiskIndex::open(&snap, &path, &Options::default(), DeviceProfile::SSD)
                    .expect("snapshot open")
            });
            if open_time < best_open {
                best_open = open_time;
            }
            open_bytes = idx.file().device().stats().bytes_read;
            opened = Some(idx);
        }
        let opened = opened.expect("at least one open rep");

        // Fidelity self-assertion: the opened index answers the whole
        // query-plane matrix bit-identically to the built one.
        for spec in plane_specs(band) {
            for queries in [&batch, &single] {
                let want = built.search(queries, &spec).expect("built query");
                let got = opened.search(queries, &spec).expect("opened query");
                assert_eq!(
                    got.matches(),
                    want.matches(),
                    "{} answers drifted after reopen for {spec:?}",
                    engine.name()
                );
            }
        }

        build_total += build_time;
        open_total += best_open;
        table.row(&[
            engine.name().to_owned(),
            f(ms(build_time)),
            f(ms(best_open)),
            f(ms(build_time) / ms(best_open)),
            build_bytes.to_string(),
            open_bytes.to_string(),
            snapshot_bytes.to_string(),
        ]);
    }
    table.finish();

    let speedup = ms(build_total) / ms(open_total);
    assert!(
        speedup >= MIN_SPEEDUP,
        "cold-start speedup regressed: opens took {:.2?} vs {:.2?} of builds ({speedup:.1}x < \
         {MIN_SPEEDUP}x)",
        open_total,
        build_total
    );
    println!(
        "cold-start speedup across all engines: {speedup:.1}x (self-asserted >= {MIN_SPEEDUP}x)"
    );
}
