//! Fig. 12 — in-memory exact query answering across datasets: UCR Suite-p
//! vs (in-memory) ParIS vs MESSI.
//!
//! Besides wall time, this table reports the *computation counters* behind
//! the paper's explanation of MESSI's win: "MESSI applies pruning when
//! performing the lower bound distance calculations ... as a side effect,
//! MESSI also performs less real distance calculations" (§IV). At
//! miniature scale, fixed per-query costs (thread wake-ups, queue
//! machinery) compress the wall-clock gap between the two indexes — the
//! lb/real counters show the asymptotic behaviour directly.

use crate::{core_ladder, f, mem_dataset, ms, queries, time_queries, Scale, Table};
use dsidx::messi::MessiConfig;
use dsidx::obs::phase::Phase;
use dsidx::paris::ParisConfig;
use dsidx::prelude::*;

/// Runs this experiment at the given scale, printing its table and CSV.
pub fn run(scale: &Scale) {
    let cores = *core_ladder(&[24]).last().expect("non-empty");
    dsidx::sync::pool::global(cores).broadcast(&|_| {});
    let mut table = Table::new(
        "fig12",
        &[
            "dataset",
            "engine",
            "avg_query_ms",
            "lb_computed",
            "real_computed",
            "seed_ms",
            "search_ms",
        ],
    );
    for kind in DatasetKind::ALL {
        let data = mem_dataset(kind, scale);
        let len = data.series_len();
        let tree = Options::default().tree_config(len).expect("valid config");
        let qs = queries(kind, scale.mem_queries, len);

        let (paris, _) =
            dsidx::paris::build_in_memory(&data, &ParisConfig::new(tree.clone(), cores));
        let mcfg = MessiConfig::new(tree.clone(), cores);
        let (messi, _) = dsidx::messi::build(&data, &mcfg);

        // Warm up all engines once (pool wake + caches).
        let w = qs.get(0);
        let _ = dsidx::ucr::scan_ed_parallel(&data, w, cores);
        let _ = dsidx::paris::exact_nn(&paris, &data, w, cores).expect("warm");
        let _ = dsidx::messi::exact_nn(&messi, &data, w, &mcfg);

        let ucr = time_queries(&qs, |q| {
            let _ = dsidx::ucr::scan_ed_parallel(&data, q, cores);
        });
        let paris_t = time_queries(&qs, |q| {
            let _ = dsidx::paris::exact_nn(&paris, &data, q, cores).expect("query");
        });
        let messi_t = time_queries(&qs, |q| {
            let _ = dsidx::messi::exact_nn(&messi, &data, q, &mcfg);
        });

        // Work counters, averaged over the workload — both engines report
        // through the unified `QueryStats`, so aggregation is uniform.
        let mut paris_stats = dsidx::query::QueryStats::default();
        let mut messi_stats = dsidx::query::QueryStats::default();
        for q in qs.iter() {
            let (_, ps) = dsidx::paris::exact_nn(&paris, &data, q, cores)
                .expect("query")
                .unwrap();
            paris_stats = paris_stats.merged(&ps);
            let (_, ms_) = dsidx::messi::exact_nn(&messi, &data, q, &mcfg)
                .expect("in-memory query")
                .unwrap();
            messi_stats = messi_stats.merged(&ms_);
        }
        let (p_lb, p_real) = (paris_stats.lb_total(), paris_stats.real_computed);
        let (m_lb, m_real) = (messi_stats.lb_total(), messi_stats.real_computed);
        let nq = qs.len() as u64;
        // Average per-query phase times: the seeding pass vs everything
        // after it (collect+verify for ParIS, traversal for MESSI).
        #[allow(clippy::cast_precision_loss)] // display-only averages
        let phase_cols = |st: &dsidx::query::QueryStats| {
            let seed = st.phase.nanos(Phase::Seed);
            let rest = st.phase.total_nanos() - seed - st.phase.nanos(Phase::Prepare);
            [
                f(seed as f64 / nq as f64 / 1e6),
                f(rest as f64 / nq as f64 / 1e6),
            ]
        };
        let [p_seed, p_search] = phase_cols(&paris_stats);
        let [m_seed, m_search] = phase_cols(&messi_stats);
        table.row(&[
            kind.name().into(),
            "UCR Suite-p".into(),
            f(ms(ucr)),
            (data.len() as u64).to_string(),
            (data.len() as u64).to_string(),
            "-".into(),
            "-".into(),
        ]);
        table.row(&[
            kind.name().into(),
            "ParIS".into(),
            f(ms(paris_t)),
            (p_lb / nq).to_string(),
            (p_real / nq).to_string(),
            p_seed,
            p_search,
        ]);
        table.row(&[
            kind.name().into(),
            "MESSI".into(),
            f(ms(messi_t)),
            (m_lb / nq).to_string(),
            (m_real / nq).to_string(),
            m_seed,
            m_search,
        ]);
    }
    table.finish();
    println!(
        "shape check: both indexes far below UCR Suite-p; MESSI's lb_computed and\n\
         real_computed columns are a fraction of ParIS's (the paper's stated mechanism)."
    );
}
