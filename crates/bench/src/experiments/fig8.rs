//! Fig. 8 — ParIS+ exact query answering vs cores, on HDD and on SSD.
//!
//! Expected shape: both curves fall with more cores; the SSD curve sits
//! roughly an order of magnitude below the HDD curve (random reads for
//! non-pruned candidates dominate, and the modeled SSD seek is ~95x
//! cheaper).

use crate::{core_ladder, disk_dataset, f, ms, time_queries, Scale, Table};
use dsidx::paris::{build_on_disk, exact_nn, Overlap, ParisConfig};
use dsidx::prelude::*;
use dsidx::storage::DatasetFile;
use std::sync::Arc;

/// Runs this experiment at the given scale, printing its table and CSV.
pub fn run(scale: &Scale) {
    let kind = DatasetKind::Synthetic;
    let len = scale.len_for(kind);
    let path = disk_dataset(kind, scale.disk_series, len);
    let tree = Options::default()
        .with_leaf_capacity(20)
        .tree_config(len)
        .expect("valid config");
    let qs = crate::queries_planted(kind, scale.disk_queries, scale);

    let mut table = Table::new("fig8", &["device", "cores", "avg_query_ms"]);
    for profile in [DeviceProfile::HDD, DeviceProfile::SSD] {
        let device = Arc::new(Device::new(profile));
        let file = DatasetFile::open(&path, device).expect("open dataset");
        let cfg = ParisConfig::new(tree.clone(), 8.min(core_ladder(&[8])[0]))
            .with_block_series(1024.min(scale.disk_series))
            .with_generation_series((scale.disk_series / 4).max(1024));
        let store = crate::data_dir().join(format!("fig8-{}.leaf", profile.name));
        let (paris, _) =
            build_on_disk(&file, &store, &cfg, Overlap::ParisPlus).expect("paris build");
        for &cores in &core_ladder(&[2, 4, 6, 12, 24]) {
            dsidx::sync::pool::global(cores).broadcast(&|_| {});
            let avg = time_queries(&qs, |q| {
                let _ = exact_nn(&paris, &file, q, cores).expect("query");
            });
            table.row(&[profile.name.into(), cores.to_string(), f(ms(avg))]);
        }
    }
    table.finish();
    println!(
        "shape check: SSD rows sit far below HDD rows (the paper\x27s order-of-magnitude gap).\n         The modeled HDD serializes its single actuator, so HDD times stay flat\n         with cores; SSD benefits from parallel random reads."
    );
}
