//! Kernel microbenchmarks — scalar vs SIMD ns/call for every distance
//! kernel the lower-bound pipeline dispatches on, plus an end-to-end k-NN
//! before/after comparison.
//!
//! The harness times each kernel through its *public dispatcher* with the
//! process-wide SIMD gate forced off, then on
//! ([`dsidx::series::distance::set_simd_enabled`]), so what is measured is
//! exactly what the engines execute. Decision-equivalence between the two
//! modes (the Some/None outcome of every bounded kernel at limits away from
//! the float boundary) is asserted unconditionally — on hosts without AVX2
//! both modes are the scalar path and the assertion is trivial, on AVX2
//! hosts it pins the dispatch contract. Speedups are only *reported* when
//! AVX2 is present.

use crate::{f, mem_dataset, ms, queries, time, Scale, Table};
use dsidx::isax::{MindistTable, NodeMindistTable, Quantizer, Word};
use dsidx::prelude::*;
use dsidx::series::distance::{
    dtw, euclidean_sq, euclidean_sq_bounded, hardware_simd_available, set_simd_enabled,
    simd_enabled, simd_kill_switch_active,
};
use std::hint::black_box;
use std::sync::Arc;

/// Swept series lengths.
const LENS: [usize; 3] = [64, 256, 1024];
/// Sakoe-Chiba band as a fraction of length (the common 5%).
const BAND_FRAC: f64 = 0.05;
/// Distinct random pairs per kernel measurement (cycled through).
const PAIRS: usize = 32;
/// Word count for the SAX-array scan measurement (a streaming pass, like
/// the engines' stage-4 scans — not a hot 32-word loop).
const SCAN_WORDS: usize = 16_384;

fn series(seed: u64, n: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut v: Vec<f32> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / 16_777_216.0) * 4.0 - 2.0
        })
        .collect();
    // z-normalize so SAX symbols spread across the alphabet.
    let mean = v.iter().sum::<f32>() / n as f32;
    let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
    let inv = 1.0 / var.sqrt().max(1e-6);
    for x in &mut v {
        *x = (*x - mean) * inv;
    }
    v
}

/// ns/call of `f`, calibrated to run long enough to time reliably.
fn ns_per_call(mut f: impl FnMut()) -> f64 {
    // Warm up and pick an iteration count aiming at ~10ms of work.
    let (_, probe) = time(|| {
        for _ in 0..64 {
            f()
        }
    });
    let per = (probe.as_secs_f64() / 64.0).max(1e-9);
    let iters = ((0.01 / per) as usize).clamp(64, 4_000_000);
    let (_, total) = time(|| {
        for _ in 0..iters {
            f()
        }
    });
    total.as_secs_f64() * 1e9 / iters as f64
}

struct Workload {
    a: Vec<Vec<f32>>,
    b: Vec<Vec<f32>>,
    lo: Vec<Vec<f32>>,
    up: Vec<Vec<f32>>,
    band: usize,
    words: Vec<Word>,
    nodes: Vec<dsidx::isax::NodeWord>,
    /// A large contiguous word array (the SAX-array scan shape).
    scan_words: Vec<Word>,
    table: MindistTable,
    node_table: NodeMindistTable,
    /// Early-abandon limits comfortably away from each pair's exact
    /// distance, so scalar/SIMD rounding cannot flip the Some/None outcome.
    ed_limits: Vec<f32>,
    lb_limits: Vec<f32>,
    dtw_limits: Vec<f32>,
}

fn workload(len: usize) -> Workload {
    let band = ((len as f64 * BAND_FRAC) as usize).max(1);
    let a: Vec<Vec<f32>> = (0..PAIRS).map(|i| series(i as u64 * 2 + 1, len)).collect();
    let b: Vec<Vec<f32>> = (0..PAIRS).map(|i| series(i as u64 * 2 + 2, len)).collect();
    let (mut lo, mut up) = (Vec::new(), Vec::new());
    for q in &a {
        let (mut l, mut u) = (Vec::new(), Vec::new());
        dtw::envelope(q, band, &mut l, &mut u);
        lo.push(l);
        up.push(u);
    }
    let quantizer = Quantizer::new(len, 16).expect("16 segments fit every swept length");
    let words: Vec<Word> = b.iter().map(|s| quantizer.word(s)).collect();
    let nodes: Vec<dsidx::isax::NodeWord> = words
        .iter()
        .map(|w| dsidx::isax::NodeWord::root(w.root_key(), 16))
        .collect();
    let scan_words: Vec<Word> = (0..SCAN_WORDS)
        .map(|i| quantizer.word(&series(i as u64 + 10_000, len)))
        .collect();
    let paa = dsidx::isax::paa::paa(&a[0], 16);
    let table = MindistTable::new_point(&paa, quantizer.segment_lens());
    let node_table = NodeMindistTable::new_point(&paa, quantizer.segment_lens());
    // Limits at half the true value: robustly on the abandon side at 1x,
    // on the keep side at the 4x used by the equivalence checks.
    let ed_limits: Vec<f32> = a
        .iter()
        .zip(&b)
        .map(|(x, y)| euclidean_sq(x, y) * 0.5)
        .collect();
    let lb_limits: Vec<f32> = b
        .iter()
        .enumerate()
        .map(|(i, y)| dtw::lb_keogh_sq(y, &lo[i], &up[i]) * 0.5)
        .collect();
    let dtw_limits: Vec<f32> = a
        .iter()
        .zip(&b)
        .map(|(x, y)| dtw::dtw_sq(x, y, band) * 0.5)
        .collect();
    Workload {
        a,
        b,
        lo,
        up,
        band,
        words,
        nodes,
        scan_words,
        table,
        node_table,
        ed_limits,
        lb_limits,
        dtw_limits,
    }
}

/// Asserts that scalar and SIMD dispatch agree on every bounded kernel's
/// Some/None outcome at limits away from the boundary (and exactly for
/// DTW, whose SIMD kernel is bit-identical by construction). Runs in both
/// modes regardless of hardware: without AVX2 this is trivially true and
/// still exercises every dispatcher.
fn assert_decision_equivalence(w: &Workload) {
    let mut scalar_decisions = Vec::new();
    let mut scalar_dtw = Vec::new();
    for mode in [false, true] {
        set_simd_enabled(mode);
        let mut decisions = Vec::new();
        let mut dtw_vals = Vec::new();
        for i in 0..w.a.len() {
            let (x, y) = (&w.a[i], &w.b[i]);
            for scale in [1.0f32, 4.0] {
                decisions.push(euclidean_sq_bounded(x, y, w.ed_limits[i] * scale).is_some());
                decisions.push(
                    dtw::lb_keogh_sq_bounded(y, &w.lo[i], &w.up[i], w.lb_limits[i] * scale)
                        .is_some(),
                );
                dtw_vals.push(dtw::dtw_sq_bounded(x, y, w.band, w.dtw_limits[i] * scale));
            }
        }
        if mode {
            assert_eq!(
                scalar_decisions, decisions,
                "scalar/SIMD bounded kernels disagree on an abandon decision"
            );
            let same_bits =
                scalar_dtw
                    .iter()
                    .zip(&dtw_vals)
                    .all(|(s, v): (&Option<f32>, &Option<f32>)| {
                        s.map(f32::to_bits) == v.map(f32::to_bits)
                    });
            assert!(same_bits, "DTW SIMD kernel is not bit-identical to scalar");
        } else {
            scalar_decisions = decisions;
            scalar_dtw = dtw_vals;
        }
    }
}

/// Runs this experiment at the given scale, printing its tables and CSVs.
pub fn run(scale: &Scale) {
    let initial = simd_enabled();
    // The DSIDX_NO_SIMD kill-switch overrides set_simd_enabled too, so with
    // it active both columns time the scalar path and a "speedup" would be
    // noise — report n/a exactly as on hardware without AVX2.
    let simd_possible = hardware_simd_available() && !simd_kill_switch_active();
    println!(
        "AVX2/FMA: {} (speedups {})",
        match (hardware_simd_available(), simd_kill_switch_active()) {
            (false, _) => "absent",
            (true, true) => "present but disabled by DSIDX_NO_SIMD",
            (true, false) => "present",
        },
        if simd_possible {
            "measured"
        } else {
            "not applicable — both columns are the scalar path"
        },
    );

    let mut table = Table::new(
        "kernels",
        &["kernel", "len", "scalar_ns", "simd_ns", "speedup"],
    );
    for len in LENS {
        let w = workload(len);
        assert_decision_equivalence(&w);
        println!("  decision-equivalence ok at len {len}");
        let mut scan_out = vec![0.0f32; w.scan_words.len()];
        // (name, units of work per call, body). ns/call is per unit.
        type Kernel<'a> = (&'a str, usize, Box<dyn FnMut() + 'a>);
        let kernels: Vec<Kernel> = vec![
            (
                "euclidean_sq",
                PAIRS,
                Box::new(|| {
                    for i in 0..PAIRS {
                        black_box(euclidean_sq(&w.a[i], &w.b[i]));
                    }
                }),
            ),
            (
                "lb_keogh_sq",
                PAIRS,
                Box::new(|| {
                    for i in 0..PAIRS {
                        black_box(dtw::lb_keogh_sq(&w.b[i], &w.lo[i], &w.up[i]));
                    }
                }),
            ),
            (
                "dtw_sq_bounded",
                PAIRS,
                Box::new(|| {
                    for i in 0..PAIRS {
                        black_box(dtw::dtw_sq_bounded(
                            &w.a[i],
                            &w.b[i],
                            w.band,
                            w.dtw_limits[i] * 4.0,
                        ));
                    }
                }),
            ),
            (
                "mindist_word",
                PAIRS,
                Box::new(|| {
                    for word in &w.words {
                        black_box(w.table.lookup(word));
                    }
                }),
            ),
            (
                "mindist_scan",
                SCAN_WORDS,
                Box::new(|| {
                    // The SAX-array scan shape: one streaming pass bounding
                    // every word (lookup_many batches 8 words per gather
                    // step when SIMD is on).
                    w.table.lookup_many(&w.scan_words, &mut scan_out);
                    black_box(scan_out[SCAN_WORDS / 2]);
                }),
            ),
            (
                "mindist_node",
                PAIRS,
                Box::new(|| {
                    for node in &w.nodes {
                        black_box(w.node_table.lookup(node));
                    }
                }),
            ),
        ];
        for (name, per_call, mut kernel) in kernels {
            set_simd_enabled(false);
            let scalar_ns = ns_per_call(&mut kernel) / per_call as f64;
            set_simd_enabled(true);
            let simd_ns = ns_per_call(&mut kernel) / per_call as f64;
            let speedup = scalar_ns / simd_ns.max(1e-9);
            table.row(&[
                name.into(),
                len.to_string(),
                f(scalar_ns),
                f(simd_ns),
                if simd_possible {
                    f(speedup)
                } else {
                    "n/a".into()
                },
            ]);
            if simd_possible
                && len == 256
                && matches!(name, "lb_keogh_sq" | "mindist_scan" | "mindist_node")
            {
                let status = if speedup >= 2.0 {
                    "ok"
                } else {
                    "below target — gather-weak microarchitecture?"
                };
                println!("  {name}@256: {speedup:.2}x ({status}; target >= 2x)");
            }
        }
    }
    table.finish();

    // End-to-end: the same k-NN workload with the gate off, then on.
    let kind = DatasetKind::Synthetic;
    let data = Arc::new(mem_dataset(kind, scale));
    let len = data.series_len();
    let options = Options::default();
    let qs = queries(kind, scale.mem_queries, len);
    let qrefs: Vec<&[f32]> = qs.iter().collect();
    let spec = QuerySpec::knn(10);
    let mut knn_table = Table::new(
        "kernels-knn",
        &["engine", "scalar_ms", "simd_ms", "speedup"],
    );
    for engine in [Engine::Ads, Engine::Paris, Engine::Messi] {
        let idx = MemoryIndex::build(data.clone(), engine, &options).expect("valid config");
        let _ = idx.search(&qrefs[..1], &spec).expect("warm");
        set_simd_enabled(false);
        let (_, scalar_t) = time(|| {
            for q in &qrefs {
                black_box(idx.search(&[q], &spec).expect("query"));
            }
        });
        set_simd_enabled(true);
        let (_, simd_t) = time(|| {
            for q in &qrefs {
                black_box(idx.search(&[q], &spec).expect("query"));
            }
        });
        let nq = qrefs.len() as f64;
        knn_table.row(&[
            engine.name().into(),
            f(ms(scalar_t) / nq),
            f(ms(simd_t) / nq),
            if simd_possible {
                f(scalar_t.as_secs_f64() / simd_t.as_secs_f64().max(1e-9))
            } else {
                "n/a".into()
            },
        ]);
    }
    knn_table.finish();
    println!(
        "shape check: the bound kernels (LB_Keogh, mindist) gain the most from\n\
         SIMD — branch-free lane math and table gathers — while dtw_sq_bounded\n\
         gains less (its recurrence keeps a serial dependency by design, to stay\n\
         bit-identical to scalar)."
    );

    set_simd_enabled(initial);
}
