//! Fig. 6 — on-disk index creation time across datasets: ADS+ vs ParIS vs
//! ParIS+ (all at full cores, HDD profile).
//!
//! Expected shape: ParIS+ fastest on every dataset (the paper reports
//! 2.3x-3.2x over ADS+), ParIS between the two.

use crate::{core_ladder, disk_dataset, f, ms, Scale, Table};
use dsidx::paris::{build_on_disk, Overlap, ParisConfig};
use dsidx::prelude::*;
use dsidx::storage::DatasetFile;
use std::sync::Arc;

/// Runs this experiment at the given scale, printing its table and CSV.
pub fn run(scale: &Scale) {
    let cores = *core_ladder(&[24]).last().expect("non-empty ladder");
    let mut table = Table::new("fig6", &["dataset", "engine", "cores", "total_ms"]);
    for kind in DatasetKind::ALL {
        let len = scale.len_for(kind);
        let path = disk_dataset(kind, scale.disk_series, len);
        let tree = Options::default()
            .with_leaf_capacity(20)
            .tree_config(len)
            .expect("valid config");
        let generation = (scale.disk_series / 8).max(1024);

        // ADS+ (serial).
        let device = Arc::new(Device::new(DeviceProfile::HDD));
        let file = DatasetFile::open(&path, device).expect("open dataset");
        let (_, rep) = dsidx::ads::build_from_file(&file, &tree, 1024).expect("ads build");
        table.row(&[
            kind.name().into(),
            "ADS+".into(),
            "1".into(),
            f(ms(rep.total)),
        ]);

        for mode in [Overlap::Paris, Overlap::ParisPlus] {
            let device = Arc::new(Device::new(DeviceProfile::HDD));
            let file = DatasetFile::open(&path, device).expect("open dataset");
            let cfg = ParisConfig::new(tree.clone(), cores)
                .with_block_series(1024.min(scale.disk_series))
                .with_generation_series(generation);
            let store =
                crate::data_dir().join(format!("fig6-{}-{}.leaf", kind.name(), mode.name()));
            let (_, rep) = build_on_disk(&file, &store, &cfg, mode).expect("paris build");
            table.row(&[
                kind.name().into(),
                mode.name().into(),
                cores.to_string(),
                f(ms(rep.total)),
            ]);
        }
    }
    table.finish();
    println!("shape check: on every dataset ParIS+ < ParIS < ADS+ in total_ms.");
}
