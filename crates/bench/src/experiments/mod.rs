//! One module per regenerated figure/ablation. See DESIGN.md §4.

pub mod abl_buffers;
pub mod abl_queues;
pub mod coldstart;
pub mod ext_dtw;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod kernels;
pub mod knn;
pub mod obs;
pub mod ondisk;
pub mod shards;
pub mod throughput;

use crate::Scale;

/// One registry entry: `(id, paper figure, runner)`.
pub type Experiment = (&'static str, &'static str, fn(&Scale));

/// Experiment registry.
pub const ALL: &[Experiment] = &[
    (
        "fig4",
        "Fig. 4: ParIS/ParIS+ index creation vs cores (HDD), read/write/CPU breakdown",
        fig4::run,
    ),
    (
        "fig5",
        "Fig. 5: MESSI index creation vs cores, phase breakdown",
        fig5::run,
    ),
    (
        "fig6",
        "Fig. 6: on-disk index creation across datasets (ADS+/ParIS/ParIS+)",
        fig6::run,
    ),
    (
        "fig7",
        "Fig. 7: in-memory index creation across datasets (ParIS/MESSI)",
        fig7::run,
    ),
    (
        "fig8",
        "Fig. 8: ParIS+ query answering vs cores on HDD & SSD",
        fig8::run,
    ),
    (
        "fig9",
        "Fig. 9: in-memory query answering vs cores (UCR-p/ParIS/MESSI)",
        fig9::run,
    ),
    (
        "fig10",
        "Fig. 10: on-disk query answering per dataset, HDD (UCR/ADS+/ParIS+)",
        fig10::run,
    ),
    (
        "fig11",
        "Fig. 11: on-disk query answering per dataset, SSD (UCR/ADS+/ParIS+)",
        fig11::run,
    ),
    (
        "fig12",
        "Fig. 12: in-memory query answering per dataset (UCR-p/ParIS/MESSI)",
        fig12::run,
    ),
    (
        "ext-dtw",
        "§V extension: DTW query answering on the ED-built index",
        ext_dtw::run,
    ),
    (
        "kernels",
        "Extension: scalar vs SIMD ns/call per distance kernel + k-NN before/after",
        kernels::run,
    ),
    (
        "knn",
        "Extension: exact k-NN sweep (k in {1,5,10,50,100}) per engine",
        knn::run,
    ),
    (
        "throughput",
        "Extension: batched query throughput (B in {1,4,16,64}) per engine",
        throughput::run,
    ),
    (
        "ondisk",
        "Extension: the closed engine matrix on DiskIndex (broadcasts + device bytes)",
        ondisk::run,
    ),
    (
        "obs",
        "Extension: observability self-measurement (phase coverage, plane overhead, trace)",
        obs::run,
    ),
    (
        "coldstart",
        "Extension: build-from-raw vs snapshot open (wall time + device bytes, >=10x asserted)",
        coldstart::run,
    ),
    (
        "shards",
        "Extension: scatter-gather sharding sweep (N in {1,2,4,8}) with BSF sharing A/B",
        shards::run,
    ),
    (
        "abl-buffers",
        "Ablation (footnote 2): locked shared buffers vs per-thread parts",
        abl_buffers::run,
    ),
    (
        "abl-queues",
        "Ablation: number of priority queues in MESSI query answering",
        abl_queues::run,
    ),
];

/// Looks up an experiment by id.
#[must_use]
pub fn find(id: &str) -> Option<&'static Experiment> {
    ALL.iter().find(|(name, _, _)| *name == id)
}
