//! The closed engine matrix on disk — all four engines answering from the
//! same dataset file through `DiskIndex`, with raw reads charged to the
//! modeled device.
//!
//! The paper keeps MESSI in memory; this workspace genericizes its query
//! paths over `RawSource`, so the tree-based schedule competes with
//! ADS+/ParIS/ParIS+ on one storage plane. The observable claims this
//! experiment pins, per engine and measure:
//!
//! * **broadcasts per query** — the batch amortization survives the move
//!   to disk (MESSI still answers a whole batch in ≤ 1 traversal
//!   broadcast; ParIS keeps its 2; serial ADS+ stays at 0) — self-asserted;
//! * **device-charged bytes read** — how much raw data each engine's
//!   pruning actually touches, the paper's reason tree-based query
//!   answering wins on slow devices.

use crate::{disk_dataset, f, ms, queries_planted, time, Scale, Table};
use dsidx::prelude::*;

/// Neighbors per query.
const K: usize = 5;
/// Sakoe-Chiba half-width for the DTW rows, as a fraction of length.
const BAND_DIVISOR: usize = 20;

/// Runs this experiment at the given scale, printing its table and CSV.
///
/// # Panics
/// Panics (self-assertion) if on-disk MESSI issues more than one broadcast
/// per batch.
pub fn run(scale: &Scale) {
    let kind = DatasetKind::Synthetic;
    let len = scale.len_for(kind);
    let path = disk_dataset(kind, scale.disk_series, len);
    let workdir = crate::data_dir();
    let options = Options::default().with_threads(0);
    let qs = queries_planted(kind, scale.disk_queries, scale);
    let batch: Vec<&[f32]> = qs.iter().collect();
    let band = len / BAND_DIVISOR;

    let mut table = Table::new(
        "ondisk",
        &[
            "engine",
            "measure",
            "avg_query_ms",
            "broadcasts_per_query",
            "bytes_read_per_query",
            "real_per_query",
            "phase_ms_per_query",
            "phase_top",
        ],
    );
    let nq = batch.len() as u64;
    for engine in Engine::ALL {
        let idx = DiskIndex::build(&path, &workdir, engine, &options, DeviceProfile::SSD)
            .expect("on-disk build");
        for measure in [Measure::Euclidean, Measure::Dtw { band }] {
            let spec = QuerySpec::knn(K).measure(measure).with_stats();
            idx.file().device().reset_stats();
            let (answers, t) = time(|| idx.search(&batch, &spec).expect("on-disk query"));
            let stats = answers.stats().expect("stats requested");
            let bytes = idx.file().device().stats().bytes_read;
            #[allow(clippy::cast_precision_loss)] // display-only ratio
            let bpq = stats.broadcasts as f64 / nq as f64;
            let phase = stats.total().phase;
            let phase_top = phase
                .iter()
                .max_by_key(|&(_, nanos)| nanos)
                .filter(|&(_, nanos)| nanos > 0)
                .map_or("-", |(p, _)| p.name());
            #[allow(clippy::cast_precision_loss)] // display-only average
            let phase_ms = phase.total_nanos() as f64 / nq as f64 / 1e6;
            table.row(&[
                engine.name().into(),
                match measure {
                    Measure::Dtw { .. } => "DTW".into(),
                    _ => "ED".into(),
                },
                f(ms(t) / nq as f64),
                f(bpq),
                (bytes / nq).to_string(),
                (stats.total().real_computed / nq).to_string(),
                f(phase_ms),
                phase_top.into(),
            ]);
            if engine == Engine::Messi {
                assert!(
                    stats.broadcasts <= 1,
                    "on-disk MESSI must answer a batch in <= 1 broadcast \
                     ({measure:?}: {} broadcasts for {nq} queries)",
                    stats.broadcasts
                );
            }
        }
    }
    table.finish();
    println!(
        "shape check: the engine matrix is closed — every engine answers both measures\n\
         on disk. MESSI keeps its <=1-broadcast-per-batch invariant (self-asserted) and\n\
         its tree pruning reads the fewest device-charged bytes of the pool engines."
    );
}
