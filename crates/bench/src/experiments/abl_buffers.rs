//! Ablation (paper footnote 2) — iSAX buffer layout during MESSI
//! construction: per-thread buffer parts (MESSI's design) vs one locked
//! buffer per subtree shared by all workers (the rejected alternative:
//! "this resulted in worse performance due to contention").
//!
//! Expected shape: per-thread parts at least as fast everywhere, with the
//! gap widening as the core count grows (contention scales with threads).

use crate::{core_ladder, f, mem_dataset, ms, Scale, Table};
use dsidx::messi::{build, BufferMode, MessiConfig};
use dsidx::prelude::*;

/// Runs this experiment at the given scale, printing its table and CSV.
pub fn run(scale: &Scale) {
    let kind = DatasetKind::Synthetic;
    let data = mem_dataset(kind, scale);
    let tree = Options::default()
        .tree_config(data.series_len())
        .expect("valid config");

    let mut table = Table::new(
        "abl-buffers",
        &["cores", "per_thread_ms", "locked_ms", "locked_slowdown"],
    );
    for &cores in &core_ladder(&[2, 4, 8, 12, 24]) {
        dsidx::sync::pool::global(cores).broadcast(&|_| {});
        let per_thread = {
            let cfg = MessiConfig::new(tree.clone(), cores);
            let (_, phases) = build(&data, &cfg);
            phases.summarize
        };
        let locked = {
            let cfg =
                MessiConfig::new(tree.clone(), cores).with_buffer_mode(BufferMode::LockedShared);
            let (_, phases) = build(&data, &cfg);
            phases.summarize
        };
        table.row(&[
            cores.to_string(),
            f(ms(per_thread)),
            f(ms(locked)),
            f(locked.as_secs_f64() / per_thread.as_secs_f64()),
        ]);
    }
    table.finish();
    println!("shape check: locked_slowdown >= ~1 and generally grows with cores.");
}
