//! Fig. 9 — in-memory exact query answering vs cores: parallel UCR Suite
//! vs (in-memory) ParIS vs MESSI.
//!
//! Expected shape: MESSI below ParIS below UCR Suite-p at every core
//! count, all three improving with cores (log-scale y-axis in the paper).

use crate::{core_ladder, f, mem_dataset, ms, queries, time_queries, Scale, Table};
use dsidx::messi::MessiConfig;
use dsidx::paris::ParisConfig;
use dsidx::prelude::*;

/// Runs this experiment at the given scale, printing its table and CSV.
pub fn run(scale: &Scale) {
    let kind = DatasetKind::Synthetic;
    let data = mem_dataset(kind, scale);
    let len = data.series_len();
    let tree = Options::default().tree_config(len).expect("valid config");
    let qs = queries(kind, scale.mem_queries, len);

    let build_cores = *core_ladder(&[24]).last().expect("non-empty");
    let (paris, _) =
        dsidx::paris::build_in_memory(&data, &ParisConfig::new(tree.clone(), build_cores));
    let (messi, _) = dsidx::messi::build(&data, &MessiConfig::new(tree.clone(), build_cores));

    let mut table = Table::new("fig9", &["cores", "ucr_p_ms", "paris_ms", "messi_ms"]);
    for &cores in &core_ladder(&[2, 4, 6, 8, 12, 18, 24]) {
        dsidx::sync::pool::global(cores).broadcast(&|_| {});
        let ucr = time_queries(&qs, |q| {
            let _ = dsidx::ucr::scan_ed_parallel(&data, q, cores);
        });
        let paris_t = time_queries(&qs, |q| {
            let _ = dsidx::paris::exact_nn(&paris, &data, q, cores).expect("query");
        });
        let mcfg = MessiConfig::new(tree.clone(), cores);
        let messi_t = time_queries(&qs, |q| {
            let _ = dsidx::messi::exact_nn(&messi, &data, q, &mcfg);
        });
        table.row(&[
            cores.to_string(),
            f(ms(ucr)),
            f(ms(paris_t)),
            f(ms(messi_t)),
        ]);
    }
    table.finish();
    println!("shape check: per row, messi_ms < paris_ms < ucr_p_ms.");
}
