//! Observability self-measurement — the instrumented query plane measured
//! against itself, at three contracts the `dsidx-obs` plane promises:
//!
//! * **coverage** — the [`PhaseBreakdown`](dsidx::obs::phase::PhaseBreakdown)
//!   a search returns accounts for the wall time of the call (within 10%,
//!   self-asserted) for every engine × measure, so the phase columns in
//!   the other experiments can be trusted as a decomposition and not a
//!   sample;
//! * **overhead** — running with the whole metrics/phase plane enabled
//!   costs < 2% on the exact-k-NN workload versus `DSIDX_NO_OBS`
//!   (self-asserted on the aggregate across engines, min-of-reps per
//!   side so scheduler noise cancels);
//! * **trace** — routing the structured stream at a file and searching
//!   produces valid JSON-lines events including the `search` event
//!   (self-asserted), then costs one relaxed load once disabled again.

use crate::{core_ladder, f, mem_dataset, queries, time, Scale, Table};
use dsidx::obs;
use dsidx::prelude::*;
use std::sync::Arc;

/// Neighbors per query.
const K: usize = 10;
/// Interleaved A/B repetitions for the overhead measurement; comparing
/// min-of-reps per side suppresses scheduler noise.
const REPS: usize = 9;
/// Sakoe-Chiba half-width for the DTW rows, as a fraction of length.
const BAND_DIVISOR: usize = 20;

/// Runs this experiment at the given scale, printing its table and CSV.
///
/// # Panics
/// Panics (self-assertion) if phase coverage leaves the 90–110% window,
/// the enabled-plane overhead reaches 2%, or the trace stream emits a
/// malformed line.
pub fn run(scale: &Scale) {
    let cores = *core_ladder(&[24]).last().expect("non-empty");
    dsidx::sync::pool::global(cores).broadcast(&|_| {});
    let kind = DatasetKind::Synthetic;
    let data = Arc::new(mem_dataset(kind, scale));
    let len = data.series_len();
    let options = Options::default().with_threads(cores);
    let qs = queries(kind, scale.mem_queries, len);
    let qrefs: Vec<&[f32]> = qs.iter().collect();
    let band = len / BAND_DIVISOR;

    let engines = [Engine::Ads, Engine::Paris, Engine::Messi];
    let indexes: Vec<MemoryIndex> = engines
        .iter()
        .map(|&e| MemoryIndex::build(data.clone(), e, &options).expect("valid config"))
        .collect();

    // Warm up every engine once (pool wake + caches + lazily registered
    // metrics), with the plane on so registration cost stays out of the
    // measured runs.
    obs::set_enabled(true);
    obs::trace::disable();
    for idx in &indexes {
        let _ = idx.search(&qrefs[..1], &QuerySpec::knn(K)).expect("warm");
    }

    let mut table = Table::new(
        "obs",
        &[
            "engine",
            "measure",
            "wall_ms",
            "phase_ms",
            "coverage_pct",
            "obs_on_ms",
            "obs_off_ms",
            "overhead_pct",
        ],
    );

    // (a) Phase coverage per engine × measure. Wall time and phase sum
    // come from the same call; best-of-3 keeps a one-off scheduler stall
    // in the unmeasured tail from failing the run.
    let mut rows = Vec::new();
    for idx in &indexes {
        for measure in [Measure::Euclidean, Measure::Dtw { band }] {
            let spec = QuerySpec::knn(K).measure(measure).with_stats();
            let mut best: Option<(f64, f64, f64)> = None;
            for _ in 0..3 {
                let (answers, t) = time(|| idx.search(&qrefs, &spec).expect("query"));
                let wall_ms = t.as_secs_f64() * 1e3;
                #[allow(clippy::cast_precision_loss)] // display-only ratio
                let phase_ms = answers
                    .phase_breakdown()
                    .expect("stats requested")
                    .total_nanos() as f64
                    / 1e6;
                let cov = 100.0 * phase_ms / wall_ms;
                if best.is_none_or(|(.., c)| (cov - 100.0).abs() < (c - 100.0).abs()) {
                    best = Some((wall_ms, phase_ms, cov));
                }
            }
            let (wall_ms, phase_ms, cov) = best.expect("three attempts");
            assert!(
                (90.0..=110.0).contains(&cov),
                "{} {measure:?}: phase sum {phase_ms:.3}ms covers {cov:.1}% of \
                 wall {wall_ms:.3}ms (want 90-110%)",
                idx.engine().name()
            );
            rows.push((idx.engine(), measure, wall_ms, phase_ms, cov));
        }
    }

    // (b) Enabled-vs-disabled overhead on the ED k-NN workload,
    // interleaved — and alternating which side runs first each rep — so
    // warmup drift hits both sides equally.
    let spec = QuerySpec::knn(K);
    let mut on_off = Vec::new();
    for idx in &indexes {
        let (mut on_min, mut off_min) = (f64::INFINITY, f64::INFINITY);
        for rep in 0..REPS {
            let order = if rep % 2 == 0 {
                [true, false]
            } else {
                [false, true]
            };
            for on in order {
                obs::set_enabled(on);
                let (_, t) = time(|| idx.search(&qrefs, &spec).expect("query"));
                let elapsed = t.as_secs_f64() * 1e3;
                if on {
                    on_min = on_min.min(elapsed);
                } else {
                    off_min = off_min.min(elapsed);
                }
            }
        }
        on_off.push((on_min, off_min));
    }
    obs::set_enabled(true);
    let on_total: f64 = on_off.iter().map(|&(on, _)| on).sum();
    let off_total: f64 = on_off.iter().map(|&(_, off)| off).sum();
    let overhead_pct = 100.0 * (on_total - off_total) / off_total;
    assert!(
        overhead_pct < 2.0,
        "observability plane costs {overhead_pct:.2}% on the k-NN workload (want < 2%)"
    );

    for (i, &(engine, measure, wall_ms, phase_ms, cov)) in rows.iter().enumerate() {
        let ed = matches!(measure, Measure::Euclidean);
        let (on_min, off_min) = on_off[i / 2];
        table.row(&[
            engine.name().into(),
            match measure {
                Measure::Dtw { .. } => "DTW".into(),
                _ => "ED".into(),
            },
            f(wall_ms),
            f(phase_ms),
            f(cov),
            if ed { f(on_min) } else { "-".into() },
            if ed { f(off_min) } else { "-".into() },
            if ed { f(overhead_pct) } else { "-".into() },
        ]);
    }
    table.finish();

    // (c) The trace stream end to end: route at a file, search, validate
    // every emitted line as a JSON object carrying the fixed fields.
    let trace_path = crate::data_dir().join(format!("obs-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&trace_path);
    obs::trace::route_to_file(&trace_path).expect("open trace file");
    let _ = indexes[engines.len() - 1]
        .search(&qrefs, &QuerySpec::knn(K).with_stats())
        .expect("traced query");
    obs::trace::disable();
    let text = std::fs::read_to_string(&trace_path).expect("read trace file");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "traced search emitted no events");
    for line in &lines {
        assert!(
            line.starts_with("{\"ts_us\":") && line.ends_with('}') && line.contains("\"event\":\""),
            "malformed trace line: {line}"
        );
    }
    assert!(
        lines.iter().any(|l| l.contains("\"event\":\"search\"")),
        "no `search` event in the trace stream"
    );
    let _ = std::fs::remove_file(&trace_path);

    println!(
        "shape check: phase sums cover 90-110% of wall per engine x measure, the \n\
         enabled plane costs {overhead_pct:.2}% (< 2%) on k-NN, and the trace stream \n\
         emitted {} valid JSON-lines events.",
        lines.len()
    );
}
