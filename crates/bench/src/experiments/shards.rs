//! Scatter-gather sharding sweep — one MESSI index versus the same data
//! split over `N` shards with mid-flight BSF sharing, at `N` in
//! {1, 2, 4, 8} over a fixed total.
//!
//! Reports per shard count: build time, exact k-NN batch latency, and
//! candidates verified with sharing on versus off (the number the shared
//! BSF shrinks). Self-asserts the two contracts the `ShardedIndex`
//! promises:
//!
//! * every sharded answer — sharing on or off — is element-wise
//!   **bit-identical** to the monolithic index over the concatenated
//!   dataset;
//! * at `N >= 2`, sharing verifies **strictly fewer** candidates than `N`
//!   independent shard searches (sharing only tightens thresholds, and a
//!   tight match from one shard prunes the others mid-flight).

use crate::{core_ladder, f, mem_dataset, queries, time, Scale, Table};
use dsidx::prelude::*;
use dsidx::ShardedIndex;

/// Neighbors per query.
const K: usize = 10;
/// Shard counts swept over the fixed total.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Latency repetitions (min-of-reps per cell).
const REPS: usize = 3;

/// Candidates verified (real distances fully computed) across a batch.
fn verified(stats: &BatchStats) -> u64 {
    stats.shared.real_computed + stats.per_query.iter().map(|q| q.real_computed).sum::<u64>()
}

/// Runs this experiment at the given scale, printing its table and CSV.
///
/// # Panics
/// Panics (self-assertion) if any sharded answer differs from the
/// monolith's, or if BSF sharing fails to verify strictly fewer
/// candidates than isolated shards at `N >= 2`.
pub fn run(scale: &Scale) {
    let cores = *core_ladder(&[24]).last().expect("non-empty");
    dsidx::sync::pool::global(cores).broadcast(&|_| {});
    let kind = DatasetKind::Synthetic;
    let data = mem_dataset(kind, scale);
    let len = data.series_len();
    let options = Options::default().with_threads(cores);
    let qs = queries(kind, scale.mem_queries, len);
    let qrefs: Vec<&[f32]> = qs.iter().collect();
    let spec = QuerySpec::knn(K).with_stats();

    let monolith = MemoryIndex::build(data.clone(), Engine::Messi, &options).expect("valid config");
    let want = monolith.search(&qrefs, &spec).expect("monolith query");
    let (_, mono_t) = time(|| monolith.search(&qrefs, &spec).expect("monolith query"));

    let mut table = Table::new(
        "shards",
        &[
            "shards",
            "build_ms",
            "search_ms",
            "verified_shared",
            "verified_isolated",
            "saved_pct",
        ],
    );

    for n in SHARD_COUNTS {
        let (sharded, build_t) = time(|| {
            ShardedIndex::build_in_memory(&data, n, Engine::Messi, &options).expect("valid config")
        });

        // Sharing on (the default): answers must match the monolith
        // bit-for-bit, in every cell of the sweep.
        let answers = sharded.search(&qrefs, &spec).expect("sharded query");
        assert_eq!(
            want.matches(),
            answers.matches(),
            "sharded (sharing on, n={n}) diverged from the monolith"
        );
        let on = verified(answers.stats().expect("stats requested"));
        let mut search_ms = f64::INFINITY;
        for _ in 0..REPS {
            let (_, t) = time(|| sharded.search(&qrefs, &spec).expect("sharded query"));
            search_ms = search_ms.min(t.as_secs_f64() * 1e3);
        }

        // Sharing off: same answers, more work — the A/B the toggle
        // exists for.
        let isolated = sharded.with_bsf_sharing(false);
        let answers = isolated.search(&qrefs, &spec).expect("isolated query");
        assert_eq!(
            want.matches(),
            answers.matches(),
            "sharded (sharing off, n={n}) diverged from the monolith"
        );
        let off = verified(answers.stats().expect("stats requested"));
        if n >= 2 {
            assert!(
                on < off,
                "BSF sharing verified {on} candidates at n={n}, not strictly \
                 below the {off} of isolated shards"
            );
        }

        #[allow(clippy::cast_precision_loss)] // display-only ratio
        let saved_pct = 100.0 * (off.saturating_sub(on)) as f64 / off.max(1) as f64;
        table.row(&[
            n.to_string(),
            f(build_t.as_secs_f64() * 1e3),
            f(search_ms),
            on.to_string(),
            off.to_string(),
            f(saved_pct),
        ]);
    }
    table.finish();

    println!(
        "shape check: every sharded answer is bit-identical to the monolith \n\
         ({:.1} ms for the monolithic batch), and BSF sharing verifies strictly \n\
         fewer candidates than isolated shards at every n >= 2.",
        mono_t.as_secs_f64() * 1e3
    );
}
