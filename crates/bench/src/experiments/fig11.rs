//! Fig. 11 — the Fig. 10 comparison on SSD: low random-access latency
//! helps both index engines; the paper reports ParIS+ 15x over ADS+ and
//! ~2000x over the serial scan.
//!
//! Expected shape: same ordering as Fig. 10 with every index row much
//! faster than its HDD counterpart.

use crate::Scale;
use dsidx::prelude::DeviceProfile;

/// Runs this experiment at the given scale, printing its table and CSV.
pub fn run(scale: &Scale) {
    super::fig10::run_profile(scale, DeviceProfile::SSD, "fig11");
}
