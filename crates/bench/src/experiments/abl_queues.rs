//! Ablation — how many priority queues should MESSI query answering use?
//!
//! The paper motivates multiple queues for load balancing (one shared
//! queue contends; too many weaken the best-first order and its pruning).
//! Sweeps the queue count at full cores and reports wall time plus the
//! pruning counters.

use crate::{core_ladder, f, mem_dataset, ms, queries, time_queries, Scale, Table};
use dsidx::messi::{build, MessiConfig};
use dsidx::prelude::*;

/// Runs this experiment at the given scale, printing its table and CSV.
pub fn run(scale: &Scale) {
    let cores = *core_ladder(&[24]).last().expect("non-empty");
    dsidx::sync::pool::global(cores).broadcast(&|_| {});
    let kind = DatasetKind::Synthetic;
    let data = mem_dataset(kind, scale);
    let len = data.series_len();
    let tree = Options::default().tree_config(len).expect("valid config");
    let qs = queries(kind, scale.mem_queries, len);
    let (messi, _) = build(&data, &MessiConfig::new(tree.clone(), cores));

    let mut table = Table::new(
        "abl-queues",
        &[
            "queues",
            "avg_query_ms",
            "leaves_processed",
            "real_computed",
        ],
    );
    for queues in [1usize, cores.div_ceil(2), cores, 2 * cores, 4 * cores] {
        let cfg = MessiConfig::new(tree.clone(), cores).with_queues(queues);
        let _ = dsidx::messi::exact_nn(&messi, &data, qs.get(0), &cfg); // warm
        let avg = time_queries(&qs, |q| {
            let _ = dsidx::messi::exact_nn(&messi, &data, q, &cfg);
        });
        let mut processed = 0u64;
        let mut real = 0u64;
        for q in qs.iter() {
            let (_, st) = dsidx::messi::exact_nn(&messi, &data, q, &cfg)
                .expect("in-memory query")
                .unwrap();
            processed += st.leaves_processed;
            real += st.real_computed;
        }
        let nq = qs.len() as u64;
        table.row(&[
            queues.to_string(),
            f(ms(avg)),
            (processed / nq).to_string(),
            (real / nq).to_string(),
        ]);
    }
    table.finish();
    println!(
        "shape check: a single queue pays contention; queue counts near the core\n\
         count balance load while keeping the best-first order's pruning power."
    );
}
