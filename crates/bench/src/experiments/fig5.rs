//! Fig. 5 — MESSI index creation time vs cores, split into its two phases
//! ("Calculate iSAX Representations" and "Tree Index Construction").
//!
//! Expected shape: total time drops ~linearly with the core count.

use crate::{core_ladder, f, mem_dataset, ms, Scale, Table};
use dsidx::messi::{build, MessiConfig};
use dsidx::prelude::*;

/// Runs this experiment at the given scale, printing its table and CSV.
pub fn run(scale: &Scale) {
    let kind = DatasetKind::Synthetic;
    let data = mem_dataset(kind, scale);
    let tree = Options::default()
        .tree_config(data.series_len())
        .expect("valid config");

    let mut table = Table::new(
        "fig5",
        &["cores", "total_ms", "summarize_ms", "tree_ms", "speedup"],
    );
    let mut base = None;
    for &cores in &core_ladder(&[1, 4, 6, 12, 24]) {
        let cfg = MessiConfig::new(tree.clone(), cores);
        // Warm the pool so the first build is not charged thread spawns.
        dsidx::sync::pool::global(cores).broadcast(&|_| {});
        let (_, phases) = build(&data, &cfg);
        let total = ms(phases.total);
        let base_total = *base.get_or_insert(total);
        table.row(&[
            cores.to_string(),
            f(total),
            f(ms(phases.summarize)),
            f(ms(phases.tree_build)),
            f(base_total / total),
        ]);
    }
    table.finish();
    println!("shape check: total_ms should fall near-linearly with cores (speedup ~ cores).");
}
