//! §V extension — DTW query answering over the ED-built index.
//!
//! "No changes are required in the index structure: we can index a dataset
//! once, and then use this index to answer both Euclidean and DTW
//! similarity search queries." Compares the facade's DTW query plane
//! (`QuerySpec::nn().measure(Measure::Dtw { band })` on a MESSI
//! `MemoryIndex`) against the serial and parallel UCR-DTW scans for
//! several warping bands, then answers the whole query set as ONE batched
//! DTW search — a single pool broadcast for B queries, asserted below.

use crate::{core_ladder, f, mem_dataset, ms, queries, time, time_queries, Scale, Table};
use dsidx::prelude::*;
use std::sync::Arc;

/// Runs this experiment at the given scale, printing its table and CSV.
pub fn run(scale: &Scale) {
    let cores = *core_ladder(&[24]).last().expect("non-empty");
    dsidx::sync::pool::global(cores).broadcast(&|_| {});
    let kind = DatasetKind::Synthetic;
    // DTW is O(n * band) per candidate; keep the collection smaller.
    let reduced = Scale {
        mem_series: scale.mem_series / 5,
        ..*scale
    };
    let data = Arc::new(mem_dataset(kind, &reduced));
    let len = data.series_len();
    let qs = queries(kind, scale.mem_queries.min(5), len);
    let qrefs: Vec<&[f32]> = qs.iter().collect();
    let options = Options::default().with_threads(cores);
    let index = MemoryIndex::build(data.clone(), Engine::Messi, &options).expect("valid config");

    let mut table = Table::new(
        "ext-dtw",
        &[
            "band_pct",
            "ucr_dtw_serial_ms",
            "ucr_dtw_p_ms",
            "messi_dtw_ms",
            "keogh_pruned",
            "dtw_abandoned",
            "real_computed",
        ],
    );
    let nq = qs.len() as u64;
    for band_pct in [2usize, 5, 10] {
        let band = len * band_pct / 100;
        let spec = QuerySpec::nn().measure(Measure::Dtw { band }).with_stats();
        let _ = index.search(&qrefs[..1], &spec).expect("warm");
        let serial = time_queries(&qs, |q| {
            let _ = dsidx::ucr::scan_dtw(&data, q, band);
        });
        let parallel = time_queries(&qs, |q| {
            let _ = dsidx::ucr::scan_dtw_parallel(&data, q, band, cores);
        });
        let mut stats = QueryStats::default();
        let messi_t = time_queries(&qs, |q| {
            let answers = index.search(&[q], &spec).expect("query");
            stats = stats.merged(&answers.query_stats(0).expect("stats requested"));
        });
        table.row(&[
            band_pct.to_string(),
            f(ms(serial)),
            f(ms(parallel)),
            f(ms(messi_t)),
            (stats.lb_keogh_pruned / nq).to_string(),
            (stats.dtw_abandoned / nq).to_string(),
            (stats.real_computed / nq).to_string(),
        ]);
    }
    table.finish();
    println!(
        "shape check: the index answers DTW queries far below the serial scan and\n\
         below the parallel scan; the gap grows with the band (scan DTW cost grows,\n\
         index pruning still avoids most of it). The counters show the cascade:\n\
         LB_Keogh prunes most survivors, early abandoning kills most DTWs, and only\n\
         real_computed full DTWs remain — the same QueryStats the ED figures report."
    );

    // Batched DTW: the missing cell of the old method matrix. The whole
    // query set goes through MESSI's cascade as one batch — per-query
    // envelopes ride in the prepared state, and the entire batch costs at
    // most ONE pool broadcast (asserted: this is the acceptance bar).
    let mut batched = Table::new(
        "ext-dtw-batch",
        &[
            "band_pct",
            "batch",
            "seq_ms_per_q",
            "batch_ms_per_q",
            "broadcasts_per_batch",
        ],
    );
    for band_pct in [2usize, 5, 10] {
        let band = len * band_pct / 100;
        let spec = QuerySpec::knn(5)
            .measure(Measure::Dtw { band })
            .with_stats();
        let (seq_answers, seq_t) = time(|| {
            qrefs
                .iter()
                .map(|q| index.search(&[q], &spec).expect("query").into_single())
                .collect::<Vec<_>>()
        });
        let (answers, batch_t) = time(|| index.search(&qrefs, &spec).expect("query"));
        let stats = answers.stats().expect("stats requested");
        assert!(
            stats.broadcasts <= 1,
            "batched DTW must cost at most one broadcast per batch (got {})",
            stats.broadcasts
        );
        for (qi, seq) in seq_answers.iter().enumerate() {
            assert_eq!(
                answers.matches()[qi],
                *seq,
                "batched DTW diverged from sequential DTW at query {qi}"
            );
        }
        batched.row(&[
            band_pct.to_string(),
            qrefs.len().to_string(),
            f(ms(seq_t) / nq as f64),
            f(ms(batch_t) / nq as f64),
            stats.broadcasts.to_string(),
        ]);
    }
    batched.finish();
    println!(
        "shape check: batched DTW answers B queries inside one traversal broadcast\n\
         (broadcasts_per_batch <= 1, element-wise equal to the sequential answers);\n\
         the fixed per-query costs (broadcast, traversal) amortize across the batch,\n\
         which shows up in wall time as cores grow."
    );
}
