//! §V extension — DTW query answering over the ED-built index.
//!
//! "No changes are required in the index structure: we can index a dataset
//! once, and then use this index to answer both Euclidean and DTW
//! similarity search queries." Compares the MESSI DTW path against the
//! serial and parallel UCR-DTW scans, for several warping bands.

use crate::{core_ladder, f, mem_dataset, ms, queries, time_queries, Scale, Table};
use dsidx::messi::MessiConfig;
use dsidx::prelude::*;

/// Runs this experiment at the given scale, printing its table and CSV.
pub fn run(scale: &Scale) {
    let cores = *core_ladder(&[24]).last().expect("non-empty");
    dsidx::sync::pool::global(cores).broadcast(&|_| {});
    let kind = DatasetKind::Synthetic;
    // DTW is O(n * band) per candidate; keep the collection smaller.
    let reduced = Scale {
        mem_series: scale.mem_series / 5,
        ..*scale
    };
    let data = mem_dataset(kind, &reduced);
    let len = data.series_len();
    let tree = Options::default().tree_config(len).expect("valid config");
    let qs = queries(kind, scale.mem_queries.min(5), len);
    let mcfg = MessiConfig::new(tree, cores);
    let (messi, _) = dsidx::messi::build(&data, &mcfg);

    let mut table = Table::new(
        "ext-dtw",
        &[
            "band_pct",
            "ucr_dtw_serial_ms",
            "ucr_dtw_p_ms",
            "messi_dtw_ms",
            "keogh_pruned",
            "dtw_abandoned",
            "real_computed",
        ],
    );
    for band_pct in [2usize, 5, 10] {
        let band = len * band_pct / 100;
        let _ = dsidx::messi::exact_nn_dtw(&messi, &data, qs.get(0), band, &mcfg); // warm
        let serial = time_queries(&qs, |q| {
            let _ = dsidx::ucr::scan_dtw(&data, q, band);
        });
        let parallel = time_queries(&qs, |q| {
            let _ = dsidx::ucr::scan_dtw_parallel(&data, q, band, cores);
        });
        let mut stats = dsidx::query::QueryStats::default();
        let messi_t = time_queries(&qs, |q| {
            let (_, s) =
                dsidx::messi::exact_nn_dtw(&messi, &data, q, band, &mcfg).expect("non-empty");
            stats = stats.merged(&s);
        });
        let nq = qs.len() as u64;
        table.row(&[
            band_pct.to_string(),
            f(ms(serial)),
            f(ms(parallel)),
            f(ms(messi_t)),
            (stats.lb_keogh_pruned / nq).to_string(),
            (stats.dtw_abandoned / nq).to_string(),
            (stats.real_computed / nq).to_string(),
        ]);
    }
    table.finish();
    println!(
        "shape check: the index answers DTW queries far below the serial scan and\n\
         below the parallel scan; the gap grows with the band (scan DTW cost grows,\n\
         index pruning still avoids most of it). The counters show the cascade:\n\
         LB_Keogh prunes most survivors, early abandoning kills most DTWs, and only\n\
         real_computed full DTWs remain — the same QueryStats the ED figures report."
    );
}
