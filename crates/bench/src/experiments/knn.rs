//! k-NN sweep — how pruning power decays as k grows, plus the price of
//! exactness (exact vs approximate fidelity).
//!
//! The pruning threshold of an exact k-NN query is the *k-th* best
//! distance, which is looser than the best: as k grows, lower bounds prune
//! fewer candidates and more real distances get paid. This experiment
//! drives the facade's query plane (`Search::search` with a `QuerySpec`),
//! sweeping k ∈ {1, 5, 10, 50, 100} per engine and reporting wall time
//! plus the unified work counters, then re-runs a fixed k at
//! `Fidelity::Approximate` — a best-leaf visit (ADS+, MESSI) or
//! sketch-nearest probing (ParIS) — which must come back faster than the
//! exact spelling while never reporting a distance below it.

use crate::{core_ladder, f, mem_dataset, ms, queries, time, Scale, Table};
use dsidx::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// The swept k values.
const KS: [usize; 5] = [1, 5, 10, 50, 100];
/// The k the fidelity comparison runs at.
const FIDELITY_K: usize = 10;

/// Runs this experiment at the given scale, printing its table and CSV.
pub fn run(scale: &Scale) {
    let cores = *core_ladder(&[24]).last().expect("non-empty");
    dsidx::sync::pool::global(cores).broadcast(&|_| {});
    let kind = DatasetKind::Synthetic;
    let data = Arc::new(mem_dataset(kind, scale));
    let len = data.series_len();
    let options = Options::default().with_threads(cores);
    let qs = queries(kind, scale.mem_queries, len);
    let qrefs: Vec<&[f32]> = qs.iter().collect();

    let engines = [Engine::Ads, Engine::Paris, Engine::Messi];
    let indexes: Vec<MemoryIndex> = engines
        .iter()
        .map(|&e| MemoryIndex::build(data.clone(), e, &options).expect("valid config"))
        .collect();

    // Warm up the pool-backed engines once.
    for idx in &indexes {
        let _ = idx.search(&qrefs[..1], &QuerySpec::nn()).expect("warm");
    }

    let mut table = Table::new(
        "knn",
        &[
            "engine",
            "k",
            "avg_query_ms",
            "lb_total",
            "candidates",
            "real_computed",
        ],
    );
    let nq = qs.len() as u64;
    for k in KS {
        let spec = QuerySpec::knn(k).with_stats();
        for idx in &indexes {
            let mut stats = QueryStats::default();
            let (_, t) = time(|| {
                for q in &qrefs {
                    let answers = idx.search(&[q], &spec).expect("query");
                    stats = stats.merged(&answers.query_stats(0).expect("stats requested"));
                }
            });
            table.row(&[
                idx.engine().name().into(),
                k.to_string(),
                f(ms(t) / nq as f64),
                (stats.lb_total() / nq).to_string(),
                (stats.candidates / nq).to_string(),
                (stats.real_computed / nq).to_string(),
            ]);
        }
    }
    table.finish();
    println!(
        "shape check: real_computed (and ParIS's candidate list) grow with k —\n\
         the k-th-best threshold is looser than the best — while the indexes stay\n\
         far below the full collection size even at k=100."
    );

    // Fidelity comparison: the same spec at Fidelity::Approximate must be
    // cheaper than exact (it skips the exact phases entirely) and must
    // never report a distance below the exact answer at the same rank.
    let exact_spec = QuerySpec::knn(FIDELITY_K);
    let approx_spec = QuerySpec::knn(FIDELITY_K).fidelity(Fidelity::Approximate);
    let mut fidelity = Table::new(
        "knn-fidelity",
        &["engine", "exact_ms", "approx_ms", "speedup"],
    );
    let (mut exact_total, mut approx_total) = (Duration::ZERO, Duration::ZERO);
    for idx in &indexes {
        let mut exact_answers = Vec::new();
        let (_, exact_t) = time(|| {
            for q in &qrefs {
                exact_answers.push(idx.search(&[q], &exact_spec).expect("query").into_single());
            }
        });
        let mut approx_answers = Vec::new();
        let (_, approx_t) = time(|| {
            for q in &qrefs {
                approx_answers.push(idx.search(&[q], &approx_spec).expect("query").into_single());
            }
        });
        for (exact, approx) in exact_answers.iter().zip(&approx_answers) {
            for (a, e) in approx.iter().zip(exact) {
                assert!(
                    a.dist_sq >= e.dist_sq - e.dist_sq * 1e-6,
                    "{}: approximate distance below exact",
                    idx.engine().name()
                );
            }
        }
        fidelity.row(&[
            idx.engine().name().into(),
            f(ms(exact_t) / nq as f64),
            f(ms(approx_t) / nq as f64),
            f(exact_t.as_secs_f64() / approx_t.as_secs_f64().max(1e-9)),
        ]);
        exact_total += exact_t;
        approx_total += approx_t;
    }
    fidelity.finish();
    assert!(
        approx_total < exact_total,
        "approximate mode must return in less than exact time \
         (approx {approx_total:?} vs exact {exact_total:?})"
    );
    println!(
        "shape check: approximate fidelity answers from the best leaf (ADS+, MESSI)\n\
         or a sketch-nearest probe set (ParIS) — a fraction of exact time — and its\n\
         distances are real distances, so they never undercut the exact answer."
    );
}
