//! k-NN sweep — how pruning power decays as k grows.
//!
//! The pruning threshold of an exact k-NN query is the *k-th* best
//! distance, which is looser than the best: as k grows, lower bounds prune
//! fewer candidates and more real distances get paid. This experiment
//! sweeps k ∈ {1, 5, 10, 50, 100} per engine and reports wall time plus
//! the unified work counters, so the decay is visible in both dimensions.

use crate::{core_ladder, f, mem_dataset, ms, queries, time_queries, Scale, Table};
use dsidx::messi::MessiConfig;
use dsidx::paris::ParisConfig;
use dsidx::prelude::*;

/// The swept k values.
const KS: [usize; 5] = [1, 5, 10, 50, 100];

/// Runs this experiment at the given scale, printing its table and CSV.
pub fn run(scale: &Scale) {
    let cores = *core_ladder(&[24]).last().expect("non-empty");
    dsidx::sync::pool::global(cores).broadcast(&|_| {});
    let kind = DatasetKind::Synthetic;
    let data = mem_dataset(kind, scale);
    let len = data.series_len();
    let tree = Options::default().tree_config(len).expect("valid config");
    let qs = queries(kind, scale.mem_queries, len);

    let (ads, _) = dsidx::ads::build_from_dataset(&data, &tree);
    let (paris, _) = dsidx::paris::build_in_memory(&data, &ParisConfig::new(tree.clone(), cores));
    let mcfg = MessiConfig::new(tree.clone(), cores);
    let (messi, _) = dsidx::messi::build(&data, &mcfg);

    // Warm up the pool-backed engines once.
    let w = qs.get(0);
    let _ = dsidx::paris::exact_knn(&paris, &data, w, 1, cores).expect("warm");
    let _ = dsidx::messi::exact_knn(&messi, &data, w, 1, &mcfg);

    let mut table = Table::new(
        "knn",
        &[
            "engine",
            "k",
            "avg_query_ms",
            "lb_total",
            "candidates",
            "real_computed",
        ],
    );
    for k in KS {
        let mut row = |engine: &str, t: std::time::Duration, stats: QueryStats| {
            let nq = qs.len() as u64;
            table.row(&[
                engine.into(),
                k.to_string(),
                f(ms(t)),
                (stats.lb_total() / nq).to_string(),
                (stats.candidates / nq).to_string(),
                (stats.real_computed / nq).to_string(),
            ]);
        };

        let mut ads_stats = QueryStats::default();
        let ads_t = time_queries(&qs, |q| {
            let (_, s) = dsidx::ads::exact_knn(&ads, &data, q, k).expect("query");
            ads_stats = ads_stats.merged(&s);
        });
        row("ADS+", ads_t, ads_stats);

        let mut paris_stats = QueryStats::default();
        let paris_t = time_queries(&qs, |q| {
            let (_, s) = dsidx::paris::exact_knn(&paris, &data, q, k, cores).expect("query");
            paris_stats = paris_stats.merged(&s);
        });
        row("ParIS", paris_t, paris_stats);

        let mut messi_stats = QueryStats::default();
        let messi_t = time_queries(&qs, |q| {
            let (_, s) = dsidx::messi::exact_knn(&messi, &data, q, k, &mcfg);
            messi_stats = messi_stats.merged(&s);
        });
        row("MESSI", messi_t, messi_stats);
    }
    table.finish();
    println!(
        "shape check: real_computed (and ParIS's candidate list) grow with k —\n\
         the k-th-best threshold is looser than the best — while the indexes stay\n\
         far below the full collection size even at k=100."
    );
}
