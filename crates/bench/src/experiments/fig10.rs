//! Fig. 10 — exact query answering on HDD across datasets: UCR Suite
//! (serial scan) vs ADS+ vs ParIS+.
//!
//! Expected shape: ParIS+ fastest on every dataset; ADS+ between; the
//! serial scan slowest (the paper reports ParIS+ up to an order of
//! magnitude over ADS+ and >2 orders over UCR Suite at 100 GB).

use crate::{disk_dataset, f, ms, time_queries, Scale, Table};
use dsidx::paris::{build_on_disk, Overlap, ParisConfig};
use dsidx::prelude::*;
use dsidx::storage::DatasetFile;
use std::sync::Arc;

/// Runs this experiment at the given scale, printing its table and CSV.
pub fn run(scale: &Scale) {
    run_profile(scale, DeviceProfile::HDD, "fig10");
}

pub(crate) fn run_profile(scale: &Scale, profile: DeviceProfile, table_name: &str) {
    let cores = *crate::core_ladder(&[24]).last().expect("non-empty");
    dsidx::sync::pool::global(cores).broadcast(&|_| {});
    let mut table = Table::new(
        table_name,
        &["dataset", "engine", "avg_query_ms", "vs_parisplus"],
    );
    for kind in DatasetKind::ALL {
        let len = scale.len_for(kind);
        let path = disk_dataset(kind, scale.disk_series, len);
        let tree = Options::default()
            .with_leaf_capacity(20)
            .tree_config(len)
            .expect("valid config");
        let qs = crate::queries_planted(kind, scale.disk_queries, scale);

        // UCR Suite: serial sequential scan over the file.
        let device = Arc::new(Device::new(profile));
        let file = DatasetFile::open(&path, device).expect("open dataset");
        let ucr = time_queries(&qs, |q| {
            let _ = dsidx::ucr::scan_ed_file(&file, q, 4096).expect("scan");
        });

        // ADS+: serial index query (index built unthrottled; Fig. 10
        // measures query answering).
        let device = Arc::new(Device::new(profile));
        let file = DatasetFile::open(&path, device).expect("open dataset");
        let (ads, _) = {
            let unthrottled =
                DatasetFile::open(&path, Arc::new(Device::unthrottled())).expect("open");
            dsidx::ads::build_from_file(&unthrottled, &tree, 4096).expect("ads build")
        };
        let ads_t = time_queries(&qs, |q| {
            let _ = dsidx::ads::exact_nn(&ads, &file, q).expect("query");
        });

        // ParIS+: parallel index query.
        let device = Arc::new(Device::new(profile));
        let file = DatasetFile::open(&path, device).expect("open dataset");
        let cfg = ParisConfig::new(tree.clone(), cores)
            .with_block_series(1024.min(scale.disk_series))
            .with_generation_series((scale.disk_series / 4).max(1024));
        let store = crate::data_dir().join(format!("{table_name}-{}.leaf", kind.name()));
        let (paris, _) = {
            let unthrottled =
                DatasetFile::open(&path, Arc::new(Device::unthrottled())).expect("open");
            build_on_disk(&unthrottled, &store, &cfg, Overlap::ParisPlus).expect("build")
        };
        let paris_t = time_queries(&qs, |q| {
            let _ = dsidx::paris::exact_nn(&paris, &file, q, cores).expect("query");
        });

        let ratio = |d: std::time::Duration| d.as_secs_f64() / paris_t.as_secs_f64();
        table.row(&[
            kind.name().into(),
            "UCR Suite".into(),
            f(ms(ucr)),
            f(ratio(ucr)),
        ]);
        table.row(&[
            kind.name().into(),
            "ADS+".into(),
            f(ms(ads_t)),
            f(ratio(ads_t)),
        ]);
        table.row(&[
            kind.name().into(),
            "ParIS+".into(),
            f(ms(paris_t)),
            "1.00".into(),
        ]);
    }
    table.finish();
    println!("shape check: per dataset, ParIS+ < ADS+ < UCR Suite in avg_query_ms.");
}
