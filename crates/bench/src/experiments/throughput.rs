//! Batched query throughput — how much of a query's cost is the fixed
//! per-query overhead that batching amortizes.
//!
//! For sub-millisecond queries the pool broadcast (waking and joining
//! every worker) dominates; a batch of B queries pays it once. This
//! experiment drives the facade's query plane (`Search::search` with a
//! `QuerySpec`), sweeping the batch size B ∈ {1, 4, 16, 64} per engine at
//! fixed k and reporting wall time per query plus the amortization
//! counters: broadcasts per query (constant per batch ⇒ shrinking as 1/B
//! for the pool engines, 0 for serial ADS+) and raw series fetched once
//! versus the per-query requests they served.

use crate::{core_ladder, f, mem_dataset, ms, queries, time, Scale, Table};
use dsidx::prelude::*;
use std::sync::Arc;

/// The swept batch sizes.
const BATCH_SIZES: [usize; 4] = [1, 4, 16, 64];
/// Neighbors per query.
const K: usize = 10;

/// Field-wise accumulation of one engine × batch-size cell.
#[derive(Default)]
struct Cell {
    broadcasts: u64,
    fetched: u64,
    requests: u64,
    real: u64,
    phase_nanos: u64,
}

impl Cell {
    fn add(&mut self, stats: &BatchStats) {
        self.broadcasts += stats.broadcasts;
        self.fetched += stats.series_fetched;
        self.requests += stats.series_requests;
        let total = stats.total();
        self.real += total.real_computed;
        self.phase_nanos += total.phase.total_nanos();
    }
}

/// Runs this experiment at the given scale, printing its table and CSV.
pub fn run(scale: &Scale) {
    let cores = *core_ladder(&[24]).last().expect("non-empty");
    dsidx::sync::pool::global(cores).broadcast(&|_| {});
    let kind = DatasetKind::Synthetic;
    let data = Arc::new(mem_dataset(kind, scale));
    let len = data.series_len();
    let options = Options::default().with_threads(cores);
    // Enough queries to fill the largest batch.
    let qs = queries(kind, *BATCH_SIZES.last().expect("non-empty"), len);
    let qrefs: Vec<&[f32]> = qs.iter().collect();

    let engines = [Engine::Ads, Engine::Paris, Engine::Messi];
    let indexes: Vec<MemoryIndex> = engines
        .iter()
        .map(|&e| MemoryIndex::build(data.clone(), e, &options).expect("valid config"))
        .collect();

    // Warm up the pool-backed engines once.
    let spec = QuerySpec::knn(K).with_stats();
    for idx in &indexes {
        let _ = idx.search(&qrefs[..1], &spec).expect("warm");
    }

    let mut table = Table::new(
        "throughput",
        &[
            "engine",
            "batch",
            "avg_query_ms",
            "broadcasts_per_query",
            "fetched_per_query",
            "requests_per_query",
            "real_per_query",
            "phase_ms_per_query",
        ],
    );
    let nq = qrefs.len() as u64;
    let mut amortized = true;
    for b in BATCH_SIZES {
        for idx in &indexes {
            let mut cell = Cell::default();
            let (_, t) = time(|| {
                for chunk in qrefs.chunks(b) {
                    let answers = idx.search(chunk, &spec).expect("query");
                    cell.add(answers.stats().expect("stats requested"));
                }
            });
            #[allow(clippy::cast_precision_loss)] // display-only ratios
            let bpq = cell.broadcasts as f64 / nq as f64;
            #[allow(clippy::cast_precision_loss)] // display-only averages
            table.row(&[
                idx.engine().name().into(),
                b.to_string(),
                f(ms(t) / nq as f64),
                f(bpq),
                (cell.fetched / nq).to_string(),
                (cell.requests / nq).to_string(),
                (cell.real / nq).to_string(),
                f(cell.phase_nanos as f64 / nq as f64 / 1e6),
            ]);
            if idx.engine() != Engine::Ads && b >= 4 && bpq >= 1.0 {
                amortized = false;
            }
        }
    }
    table.finish();
    assert!(
        amortized,
        "pool engines must issue fewer than one broadcast per query at B >= 4"
    );
    println!(
        "shape check: broadcasts_per_query is constant-per-batch (2/B ParIS, 1/B MESSI,\n\
         0 for serial ADS+) and requests_per_query exceeds fetched_per_query as the\n\
         batch shares raw reads — the fixed per-query overhead amortizing away."
    );
}
