//! Fig. 7 — in-memory index creation across datasets: ParIS (in-memory,
//! locked RecBufs) vs MESSI (per-thread buffer parts).
//!
//! Expected shape: MESSI faster on every dataset (the paper reports
//! ~3.6x); the gap is the synchronization cost of the shared buffers plus
//! ParIS's separate stage-3 pass.

use crate::{core_ladder, f, mem_dataset, ms, time, Scale, Table};
use dsidx::messi::{build as messi_build, MessiConfig};
use dsidx::paris::{build_in_memory, ParisConfig};
use dsidx::prelude::*;

/// Runs this experiment at the given scale, printing its table and CSV.
pub fn run(scale: &Scale) {
    let cores = *core_ladder(&[24]).last().expect("non-empty ladder");
    dsidx::sync::pool::global(cores).broadcast(&|_| {});
    let mut table = Table::new(
        "fig7",
        &["dataset", "engine", "cores", "total_ms", "messi_speedup"],
    );
    for kind in DatasetKind::ALL {
        let data = mem_dataset(kind, scale);
        let tree = Options::default()
            .tree_config(data.series_len())
            .expect("valid config");

        let pcfg = ParisConfig::new(tree.clone(), cores);
        let (_, paris_t) = time(|| build_in_memory(&data, &pcfg));
        let mcfg = MessiConfig::new(tree.clone(), cores);
        let (_, messi_t) = time(|| messi_build(&data, &mcfg));

        table.row(&[
            kind.name().into(),
            "ParIS".into(),
            cores.to_string(),
            f(ms(paris_t)),
            String::new(),
        ]);
        table.row(&[
            kind.name().into(),
            "MESSI".into(),
            cores.to_string(),
            f(ms(messi_t)),
            f(paris_t.as_secs_f64() / messi_t.as_secs_f64()),
        ]);
    }
    table.finish();
    println!("shape check: MESSI total_ms below ParIS on every dataset (speedup > 1).");
}
