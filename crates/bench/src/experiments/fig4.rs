//! Fig. 4 — ParIS/ParIS+ index creation time vs cores on HDD, decomposed
//! into Read / Write / CPU, with serial ADS+ as the 1-core reference.
//!
//! Expected shape: ADS+'s bar is tallest (serial CPU on top of reads);
//! ParIS shrinks the CPU component as cores grow but keeps a visible
//! stall; ParIS+'s visible CPU+write goes to ~zero beyond a few cores —
//! "completely removes the (visible) CPU cost when we use more than 6
//! cores".

use crate::{core_ladder, disk_dataset, f, ms, Scale, Table};
use dsidx::paris::{build_on_disk, Overlap, ParisConfig};
use dsidx::prelude::*;
use dsidx::storage::DatasetFile;
use std::sync::Arc;

/// Runs this experiment at the given scale, printing its table and CSV.
pub fn run(scale: &Scale) {
    let kind = DatasetKind::Synthetic;
    let len = scale.len_for(kind);
    let path = disk_dataset(kind, scale.disk_series, len);
    let tree = Options::default()
        .with_leaf_capacity(20)
        .tree_config(len)
        .expect("valid config");
    let generation = (scale.disk_series / 8).max(1024);

    let mut table = Table::new(
        "fig4",
        &[
            "engine",
            "cores",
            "total_ms",
            "read_ms",
            "cpu_ms",
            "write_ms",
            "generations",
        ],
    );

    // ADS+ reference at one core.
    {
        let device = Arc::new(Device::new(DeviceProfile::HDD));
        let file = DatasetFile::open(&path, device).expect("open dataset");
        let (_, rep) = dsidx::ads::build_from_file(&file, &tree, 1024).expect("ads build");
        table.row(&[
            "ADS+".into(),
            "1".into(),
            f(ms(rep.total)),
            f(ms(rep.read)),
            f(ms(rep.cpu)),
            f(0.0),
            "1".into(),
        ]);
    }

    for mode in [Overlap::Paris, Overlap::ParisPlus] {
        for &cores in &core_ladder(&[4, 6, 12, 24]) {
            let device = Arc::new(Device::new(DeviceProfile::HDD));
            let file = DatasetFile::open(&path, device).expect("open dataset");
            let cfg = ParisConfig::new(tree.clone(), cores)
                .with_block_series(1024.min(scale.disk_series))
                .with_generation_series(generation);
            let store = crate::data_dir().join(format!("fig4-{}-{cores}.leaf", mode.name()));
            let (_, rep) = build_on_disk(&file, &store, &cfg, mode).expect("paris build");
            table.row(&[
                mode.name().into(),
                cores.to_string(),
                f(ms(rep.total)),
                f(ms(rep.read)),
                f(ms(rep.visible_cpu())),
                f(ms(rep.visible_write())),
                rep.generations.to_string(),
            ]);
        }
    }
    table.finish();
    println!(
        "shape check: ParIS+ cpu+write columns should collapse towards 0 as cores grow,\n\
         while ParIS keeps a visible stall and ADS+ pays full serial CPU."
    );
}
