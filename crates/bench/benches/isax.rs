//! Microbenchmarks for summarization and lower-bound kernels — the per-
//! series work of index construction (stage 1/2) and the per-word work of
//! query pruning.

use criterion::{criterion_group, criterion_main, Criterion};
use dsidx::isax::{paa::paa, MindistTable, NodeMindistTable, Quantizer};
use dsidx::series::gen::random_walk;
use std::hint::black_box;
use std::time::Duration;

fn bench_isax(c: &mut Criterion) {
    let mut group = c.benchmark_group("isax");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150));
    let len = 256;
    let quantizer = Quantizer::new(len, 16).unwrap();
    let data = random_walk(1024, len, 5);
    let series = data.get(0);

    group.bench_function("paa_256_into_16", |b| {
        let mut out = vec![0.0f32; 16];
        b.iter(|| quantizer.paa_into(black_box(series), &mut out));
    });
    group.bench_function("word_from_series", |b| {
        let mut scratch = vec![0.0f32; 16];
        b.iter(|| quantizer.word_into(black_box(series), &mut scratch));
    });

    let query = random_walk(1, len, 99);
    let qpaa = paa(query.get(0), 16);
    let words: Vec<_> = data.iter().map(|s| quantizer.word(s)).collect();
    let table = MindistTable::new_point(&qpaa, quantizer.segment_lens());
    group.bench_function("mindist_table_build", |b| {
        b.iter(|| MindistTable::new_point(black_box(&qpaa), quantizer.segment_lens()));
    });
    group.bench_function("mindist_lookup_1024_words", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for w in &words {
                acc += table.lookup(black_box(w));
            }
            acc
        });
    });
    let node_table = NodeMindistTable::new_point(&qpaa, quantizer.segment_lens());
    group.bench_function("node_mindist_table_build", |b| {
        b.iter(|| NodeMindistTable::new_point(black_box(&qpaa), quantizer.segment_lens()));
    });
    let root = dsidx::isax::NodeWord::root(words[0].root_key(), 16);
    group.bench_function("node_mindist_lookup", |b| {
        b.iter(|| node_table.lookup(black_box(&root)));
    });
    group.finish();
}

criterion_group!(benches, bench_isax);
criterion_main!(benches);
