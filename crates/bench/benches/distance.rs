//! Microbenchmarks for the distance kernels (the query-time inner loops).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsidx::series::distance::{
    abandon_order, dtw, euclidean_sq, euclidean_sq_bounded, euclidean_sq_ordered,
};
use dsidx::series::gen::random_walk;
use std::hint::black_box;
use std::time::Duration;

fn bench_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150));
    for len in [128usize, 256, 1024] {
        let data = random_walk(2, len, 7);
        let (a, b) = (data.get(0), data.get(1));
        group.bench_with_input(BenchmarkId::new("euclidean_sq", len), &len, |bench, _| {
            bench.iter(|| euclidean_sq(black_box(a), black_box(b)));
        });
        let full = euclidean_sq(a, b);
        group.bench_with_input(BenchmarkId::new("bounded_tight", len), &len, |bench, _| {
            // Tight limit: abandons quickly (the common BSF-loop case).
            bench.iter(|| euclidean_sq_bounded(black_box(a), black_box(b), full * 0.1));
        });
        let order = abandon_order(a);
        group.bench_with_input(BenchmarkId::new("ordered_tight", len), &len, |bench, _| {
            bench.iter(|| euclidean_sq_ordered(black_box(a), black_box(b), &order, full * 0.1));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dtw");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150));
    let data = random_walk(2, 256, 9);
    let (a, b) = (data.get(0), data.get(1));
    for band in [5usize, 13, 26] {
        group.bench_with_input(BenchmarkId::new("banded", band), &band, |bench, &band| {
            bench.iter(|| dtw::dtw_sq(black_box(a), black_box(b), band));
        });
    }
    let mut lo = Vec::new();
    let mut hi = Vec::new();
    dtw::envelope(a, 13, &mut lo, &mut hi);
    group.bench_function("lb_keogh", |bench| {
        bench.iter(|| dtw::lb_keogh_sq(black_box(b), &lo, &hi));
    });
    group.finish();
}

criterion_group!(benches, bench_distance);
criterion_main!(benches);
