//! Query answering benchmarks: every engine on one in-memory collection
//! (laptop-scale slice of Figs. 9 and 12).

use criterion::{criterion_group, criterion_main, Criterion};
use dsidx::messi::MessiConfig;
use dsidx::paris::ParisConfig;
use dsidx::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let data = DatasetKind::Synthetic.generate(50_000, 128, 11);
    let queries = DatasetKind::Synthetic.queries(8, 128, 11);
    let tree = Options::default().tree_config(128).expect("valid");
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    dsidx::sync::pool::global(threads).broadcast(&|_| {});

    let (ads, _) = dsidx::ads::build_from_dataset(&data, &tree);
    let (paris, _) = dsidx::paris::build_in_memory(&data, &ParisConfig::new(tree.clone(), threads));
    let mcfg = MessiConfig::new(tree.clone(), threads);
    let (messi, _) = dsidx::messi::build(&data, &mcfg);

    let mut qi = 0usize;
    let next = move || {
        qi += 1;
        queries.get(qi % 8).to_vec()
    };

    let mut nq = next.clone();
    group.bench_function("ucr_serial", |b| {
        b.iter(|| dsidx::ucr::scan_ed(&data, black_box(&nq())));
    });
    let mut nq = next.clone();
    group.bench_function("ucr_parallel", |b| {
        b.iter(|| dsidx::ucr::scan_ed_parallel(&data, black_box(&nq()), threads));
    });
    let mut nq = next.clone();
    group.bench_function("ads_serial", |b| {
        b.iter(|| dsidx::ads::exact_nn(&ads, &data, black_box(&nq())).unwrap());
    });
    let mut nq = next.clone();
    group.bench_function("paris", |b| {
        b.iter(|| dsidx::paris::exact_nn(&paris, &data, black_box(&nq()), threads).unwrap());
    });
    let mut nq = next.clone();
    group.bench_function("messi", |b| {
        b.iter(|| dsidx::messi::exact_nn(&messi, &data, black_box(&nq()), &mcfg));
    });
    let mut nq = next;
    group.bench_function("messi_dtw_band5pct", |b| {
        b.iter(|| dsidx::messi::exact_nn_dtw(&messi, &data, black_box(&nq()), 6, &mcfg));
    });
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
