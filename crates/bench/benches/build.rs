//! Index construction benchmarks: the serial baseline vs the parallel
//! engines (laptop-scale slice of Figs. 5 and 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsidx::messi::{build as messi_build, MessiConfig};
use dsidx::paris::{build_in_memory, ParisConfig};
use dsidx::prelude::*;
use std::time::Duration;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let data = DatasetKind::Synthetic.generate(20_000, 128, 3);
    let tree = Options::default().tree_config(128).expect("valid");
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    dsidx::sync::pool::global(threads).broadcast(&|_| {});

    group.bench_function("ads_serial_20k", |b| {
        b.iter(|| dsidx::ads::build_from_dataset(&data, &tree));
    });
    group.bench_with_input(
        BenchmarkId::new("paris_in_memory_20k", threads),
        &threads,
        |b, &t| {
            let cfg = ParisConfig::new(tree.clone(), t);
            b.iter(|| build_in_memory(&data, &cfg));
        },
    );
    group.bench_with_input(BenchmarkId::new("messi_20k", threads), &threads, |b, &t| {
        let cfg = MessiConfig::new(tree.clone(), t);
        b.iter(|| messi_build(&data, &cfg));
    });
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
