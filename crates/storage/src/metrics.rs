//! Metric names exported by the storage substrate.
//!
//! Device histograms carry a `profile` label (`hdd`, `ssd`,
//! `unthrottled`), so one scrape separates the modeled hardware tiers.
//! All are registered in the process-wide [`dsidx_obs::registry`] on
//! first device use; scrape them via
//! [`dsidx_obs::registry::prometheus_text`] or
//! [`dsidx_obs::registry::json_snapshot`].

/// Histogram (per `profile` label): modeled nanoseconds charged to a
/// single read, bandwidth plus any seek.
pub const DEVICE_READ_NANOS: &str = "dsidx_device_read_nanos";

/// Histogram (per `profile` label): modeled nanoseconds charged to a
/// single write or append.
pub const DEVICE_WRITE_NANOS: &str = "dsidx_device_write_nanos";

/// Histogram (per `profile` label): bytes transferred by a single read.
pub const DEVICE_READ_BYTES: &str = "dsidx_device_read_bytes";

/// Histogram (per `profile` label): bytes transferred by a single write
/// or append.
pub const DEVICE_WRITE_BYTES: &str = "dsidx_device_write_bytes";

/// Counter: fault-injection budgets exhausted by a
/// [`FlakySource`](crate::FlakySource) — each trip is the start of an
/// injected mid-query device failure.
pub const FLAKY_TRIPS_TOTAL: &str = "dsidx_flaky_trips_total";
