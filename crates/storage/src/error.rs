//! Error type for storage operations.

use std::fmt;

/// Errors produced by dataset files, leaf stores and devices.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The file's format version is not supported.
    BadVersion(u32),
    /// The file is structurally inconsistent (e.g. truncated payload).
    Corrupt(String),
    /// A series index beyond the file's series count was requested.
    OutOfBounds {
        /// Requested position.
        index: u64,
        /// Number of series in the file.
        len: u64,
    },
    /// A series-level validation error.
    Series(dsidx_series::SeriesError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::BadMagic => write!(f, "not a dsidx dataset file (bad magic)"),
            StorageError::BadVersion(v) => write!(f, "unsupported dataset format version {v}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt dataset file: {msg}"),
            StorageError::OutOfBounds { index, len } => {
                write!(f, "series {index} out of bounds for file of {len}")
            }
            StorageError::Series(e) => write!(f, "series error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Series(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<dsidx_series::SeriesError> for StorageError {
    fn from(e: dsidx_series::SeriesError) -> Self {
        StorageError::Series(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = StorageError::BadVersion(9);
        assert!(e.to_string().contains('9'));
        let e = StorageError::OutOfBounds { index: 7, len: 3 };
        assert!(e.to_string().contains('7'));
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        assert!(StorageError::BadMagic.to_string().contains("magic"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: StorageError = std::io::Error::other("inner").into();
        assert!(e.source().is_some());
        assert!(StorageError::BadMagic.source().is_none());
    }
}
