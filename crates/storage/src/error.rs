//! Error type for storage operations.

use std::fmt;

/// Errors produced by dataset files, leaf stores and devices.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The file's format version is not supported.
    BadVersion(u32),
    /// The file is structurally inconsistent (e.g. truncated payload).
    Corrupt(String),
    /// A checksummed region's stored and computed checksums disagree —
    /// the bytes changed after they were written (bit rot, a partial
    /// write, or manual editing).
    ChecksumMismatch {
        /// Which checksummed region failed (a snapshot section id, or
        /// `"header"` for the header + section table).
        section: String,
        /// The checksum recorded in the file.
        stored: u64,
        /// The checksum computed over the bytes actually read.
        computed: u64,
    },
    /// A series index beyond the file's series count was requested.
    OutOfBounds {
        /// Requested position.
        index: u64,
        /// Number of series in the file.
        len: u64,
    },
    /// A series-level validation error.
    Series(dsidx_series::SeriesError),
    /// An error annotated with where in a query schedule it tripped:
    /// which phase, and (for batches) which query. Attached by
    /// `ErrorSlot` and the batch kernels; unwrap with
    /// [`root_cause`](StorageError::root_cause) to match on the
    /// underlying failure.
    Context {
        /// The query phase that was executing (`"seed"`, `"verify"`,
        /// `"traversal"`, ...), when known.
        phase: Option<&'static str>,
        /// The shard whose search tripped the error, when the index is
        /// sharded.
        shard: Option<u64>,
        /// The batch query index whose work tripped the error, when the
        /// failing operation served exactly one query.
        query: Option<u64>,
        /// The underlying error.
        source: Box<StorageError>,
    },
}

impl StorageError {
    /// Annotates this error with the query phase it tripped in. A `None`
    /// phase on an existing [`Context`](StorageError::Context) is filled
    /// in; an already-attributed phase is kept (the innermost call site
    /// knows best).
    #[must_use]
    pub fn in_phase(self, phase: &'static str) -> StorageError {
        match self {
            StorageError::Context {
                phase: None,
                shard,
                query,
                source,
            } => StorageError::Context {
                phase: Some(phase),
                shard,
                query,
                source,
            },
            e @ StorageError::Context { .. } => e,
            e => StorageError::Context {
                phase: Some(phase),
                shard: None,
                query: None,
                source: Box::new(e),
            },
        }
    }

    /// Annotates this error with the batch query index it tripped for
    /// (same first-annotation-wins rule as
    /// [`in_phase`](StorageError::in_phase)).
    #[must_use]
    pub fn for_query(self, query: u64) -> StorageError {
        match self {
            StorageError::Context {
                phase,
                shard,
                query: None,
                source,
            } => StorageError::Context {
                phase,
                shard,
                query: Some(query),
                source,
            },
            e @ StorageError::Context { .. } => e,
            e => StorageError::Context {
                phase: None,
                shard: None,
                query: Some(query),
                source: Box::new(e),
            },
        }
    }

    /// Annotates this error with the shard whose search tripped it (same
    /// first-annotation-wins rule as
    /// [`in_phase`](StorageError::in_phase) — the shard coordinator is
    /// the innermost site that knows the shard number).
    #[must_use]
    pub fn for_shard(self, shard: u64) -> StorageError {
        match self {
            StorageError::Context {
                phase,
                shard: None,
                query,
                source,
            } => StorageError::Context {
                phase,
                shard: Some(shard),
                query,
                source,
            },
            e @ StorageError::Context { .. } => e,
            e => StorageError::Context {
                phase: None,
                shard: Some(shard),
                query: None,
                source: Box::new(e),
            },
        }
    }

    /// The innermost error, with any [`Context`](StorageError::Context)
    /// layers stripped — what error-kind matches should inspect.
    #[must_use]
    pub fn root_cause(&self) -> &StorageError {
        match self {
            StorageError::Context { source, .. } => source.root_cause(),
            e => e,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::BadMagic => write!(f, "not a dsidx dataset file (bad magic)"),
            StorageError::BadVersion(v) => write!(f, "unsupported dataset format version {v}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt dataset file: {msg}"),
            StorageError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in section `{section}`: file records {stored:#018x} but the \
                 bytes hash to {computed:#018x} — the file was corrupted after it was written; \
                 rebuild and re-save the index"
            ),
            StorageError::OutOfBounds { index, len } => {
                write!(f, "series {index} out of bounds for file of {len}")
            }
            StorageError::Series(e) => write!(f, "series error: {e}"),
            StorageError::Context {
                phase,
                shard,
                query,
                source,
            } => {
                let mut tags = String::new();
                if let Some(s) = shard {
                    tags.push_str(&format!("shard {s}"));
                }
                if let Some(q) = query {
                    if !tags.is_empty() {
                        tags.push_str(", ");
                    }
                    tags.push_str(&format!("query {q}"));
                }
                match (phase, tags.is_empty()) {
                    (Some(p), true) => write!(f, "during {p}: ")?,
                    (Some(p), false) => write!(f, "during {p} ({tags}): ")?,
                    (None, false) => write!(f, "for {tags}: ")?,
                    (None, true) => {}
                }
                write!(f, "{source}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Series(e) => Some(e),
            StorageError::Context { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<dsidx_series::SeriesError> for StorageError {
    fn from(e: dsidx_series::SeriesError) -> Self {
        StorageError::Series(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = StorageError::BadVersion(9);
        assert!(e.to_string().contains('9'));
        let e = StorageError::OutOfBounds { index: 7, len: 3 };
        assert!(e.to_string().contains('7'));
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        assert!(StorageError::BadMagic.to_string().contains("magic"));
        let e = StorageError::ChecksumMismatch {
            section: "nodes".into(),
            stored: 1,
            computed: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("checksum") && msg.contains("`nodes`"), "{msg}");
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: StorageError = std::io::Error::other("inner").into();
        assert!(e.source().is_some());
        assert!(StorageError::BadMagic.source().is_none());
        let wrapped = StorageError::BadMagic.in_phase("verify");
        assert!(wrapped.source().is_some());
    }

    #[test]
    fn context_display_names_phase_and_query() {
        let e: StorageError = std::io::Error::other("disk gone").into();
        let e = e.in_phase("verify").for_query(3);
        let msg = e.to_string();
        assert_eq!(msg, "during verify (query 3): I/O error: disk gone");
        assert!(matches!(e.root_cause(), StorageError::Io(_)));
    }

    #[test]
    fn context_display_names_shard_between_phase_and_query() {
        let e: StorageError = std::io::Error::other("read fault").into();
        let e = e.in_phase("verify").for_shard(2).for_query(5);
        assert_eq!(
            e.to_string(),
            "during verify (shard 2, query 5): I/O error: read fault"
        );
        // Shard-only and shard-without-phase renderings.
        let e = StorageError::BadMagic.in_phase("seed").for_shard(1);
        assert_eq!(
            e.to_string(),
            "during seed (shard 1): not a dsidx dataset file (bad magic)"
        );
        let e = StorageError::BadMagic.for_shard(3).for_query(0);
        assert!(e.to_string().starts_with("for shard 3, query 0: "));
        // First annotation wins, like phase and query.
        let e = StorageError::BadMagic.for_shard(4).for_shard(9);
        assert!(e.to_string().contains("shard 4"));
        assert!(!e.to_string().contains('9'));
    }

    #[test]
    fn first_context_annotation_wins() {
        let e = StorageError::BadMagic.in_phase("seed").in_phase("verify");
        assert!(e.to_string().starts_with("during seed:"));
        // A query index still attaches to a phase-only context...
        let e = e.for_query(7);
        assert!(e.to_string().contains("(query 7)"));
        // ...but never overwrites an existing one.
        let e = e.for_query(9);
        assert!(e.to_string().contains("(query 7)"));
        assert!(matches!(e.root_cause(), StorageError::BadMagic));
    }
}
