//! The raw dataset file format.
//!
//! A dataset file is a 32-byte header followed by `count * series_len`
//! little-endian `f32` values (the same "flat binary of floats" layout the
//! paper's C implementations consume):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"DSIDXSE1"
//! 8       4     format version (u32 LE) = 1
//! 12      4     series_len (u32 LE)
//! 16      8     count (u64 LE)
//! 24      8     reserved (zeros)
//! 32      ...   payload: f32 LE, series-major
//! ```

use crate::device::Device;
use crate::error::StorageError;
use crate::raw::RawSource;
use dsidx_series::Dataset;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: [u8; 8] = *b"DSIDXSE1";
const VERSION: u32 = 1;
/// Size of the file header in bytes.
pub const HEADER_LEN: u64 = 32;

fn encode_header(series_len: u32, count: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[0..8].copy_from_slice(&MAGIC);
    h[8..12].copy_from_slice(&VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&series_len.to_le_bytes());
    h[16..24].copy_from_slice(&count.to_le_bytes());
    h
}

fn decode_header(h: &[u8; HEADER_LEN as usize]) -> Result<(u32, u64), StorageError> {
    if h[0..8] != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let version = u32::from_le_bytes(h[8..12].try_into().expect("slice of 4"));
    if version != VERSION {
        return Err(StorageError::BadVersion(version));
    }
    let series_len = u32::from_le_bytes(h[12..16].try_into().expect("slice of 4"));
    let count = u64::from_le_bytes(h[16..24].try_into().expect("slice of 8"));
    if series_len == 0 {
        return Err(StorageError::Corrupt("series_len is zero".into()));
    }
    Ok((series_len, count))
}

/// Streaming dataset writer (use for datasets too large to build in memory).
#[derive(Debug)]
pub struct DatasetWriter {
    out: BufWriter<File>,
    device: Arc<Device>,
    series_len: u32,
    count: u64,
    byte_buf: Vec<u8>,
}

impl DatasetWriter {
    /// Creates/truncates a dataset file with the given series length.
    ///
    /// # Errors
    /// I/O failures; `series_len` must be non-zero.
    pub fn create(
        path: &Path,
        series_len: usize,
        device: Arc<Device>,
    ) -> Result<Self, StorageError> {
        if series_len == 0 || series_len > u32::MAX as usize {
            return Err(StorageError::Corrupt(format!(
                "bad series_len {series_len}"
            )));
        }
        let mut out = BufWriter::new(File::create(path)?);
        // Placeholder header; `finish` writes the real count.
        out.write_all(&encode_header(series_len as u32, 0))?;
        Ok(Self {
            out,
            device,
            series_len: series_len as u32,
            count: 0,
            byte_buf: Vec::with_capacity(series_len * 4),
        })
    }

    /// Appends one series.
    ///
    /// # Errors
    /// Length mismatches and I/O failures.
    pub fn push(&mut self, series: &[f32]) -> Result<(), StorageError> {
        if series.len() != self.series_len as usize {
            return Err(StorageError::Series(
                dsidx_series::SeriesError::LengthMismatch {
                    expected: self.series_len as usize,
                    actual: series.len(),
                },
            ));
        }
        self.byte_buf.clear();
        for v in series {
            self.byte_buf.extend_from_slice(&v.to_le_bytes());
        }
        self.out.write_all(&self.byte_buf)?;
        self.device.charge_append(self.byte_buf.len() as u64);
        self.count += 1;
        Ok(())
    }

    /// Number of series written so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Finalizes the header and flushes.
    ///
    /// # Errors
    /// I/O failures.
    pub fn finish(mut self) -> Result<(), StorageError> {
        self.out.flush()?;
        let file = self.out.get_mut();
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&encode_header(self.series_len, self.count))?;
        file.flush()?;
        Ok(())
    }
}

/// Writes a whole in-memory dataset to `path`.
///
/// # Errors
/// I/O failures.
pub fn write_dataset(
    path: &Path,
    dataset: &Dataset,
    device: Arc<Device>,
) -> Result<(), StorageError> {
    let mut w = DatasetWriter::create(path, dataset.series_len(), device)?;
    for s in dataset.iter() {
        w.push(s)?;
    }
    w.finish()
}

/// Reads a whole dataset file into memory.
///
/// # Errors
/// Format violations and I/O failures.
pub fn read_dataset(path: &Path, device: Arc<Device>) -> Result<Dataset, StorageError> {
    let file = DatasetFile::open(path, device)?;
    let mut flat = vec![0.0f32; file.count() * file.series_len()];
    let series_len = file.series_len();
    for (pos, chunk) in flat.chunks_exact_mut(series_len).enumerate() {
        file.read_into(pos, chunk)?;
    }
    Dataset::from_flat(flat, series_len).map_err(StorageError::from)
}

/// A dataset file opened for positioned (query-time) and block (build-time)
/// reads. All reads are charged to the device. Shareable across threads.
#[derive(Debug)]
pub struct DatasetFile {
    file: File,
    path: PathBuf,
    device: Arc<Device>,
    series_len: usize,
    count: usize,
}

impl DatasetFile {
    /// Opens and validates a dataset file.
    ///
    /// # Errors
    /// [`StorageError::BadMagic`]/[`StorageError::BadVersion`] for foreign
    /// files, [`StorageError::Corrupt`] if the payload length does not match
    /// the header (e.g. truncation).
    pub fn open(path: &Path, device: Arc<Device>) -> Result<Self, StorageError> {
        let mut file = File::open(path)?;
        let mut h = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut h).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StorageError::Corrupt("file shorter than header".into())
            } else {
                StorageError::Io(e)
            }
        })?;
        let (series_len, count) = decode_header(&h)?;
        let expect = HEADER_LEN + count * u64::from(series_len) * 4;
        let actual = file.metadata()?.len();
        if actual != expect {
            return Err(StorageError::Corrupt(format!(
                "payload length mismatch: header implies {expect} bytes, file has {actual}"
            )));
        }
        Ok(Self {
            file,
            path: path.to_path_buf(),
            device,
            series_len: series_len as usize,
            count: count as usize,
        })
    }

    /// The file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The device reads are charged to.
    #[must_use]
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Number of series.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Length of each series.
    #[must_use]
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    fn series_offset(&self, pos: usize) -> u64 {
        HEADER_LEN + (pos as u64) * (self.series_len as u64) * 4
    }

    /// Reads series `pos` into `out` (positioned read; thread-safe).
    ///
    /// # Errors
    /// Out-of-bounds positions and I/O failures.
    ///
    /// # Panics
    /// Panics if `out.len() != self.series_len()`.
    pub fn read_series_into(&self, pos: usize, out: &mut [f32]) -> Result<(), StorageError> {
        assert_eq!(out.len(), self.series_len, "output buffer length mismatch");
        if pos >= self.count {
            return Err(StorageError::OutOfBounds {
                index: pos as u64,
                len: self.count as u64,
            });
        }
        let bytes = self.series_len * 4;
        let mut buf = vec![0u8; bytes];
        let offset = self.series_offset(pos);
        self.device.charge_read(offset, bytes as u64);
        self.file.read_exact_at(&mut buf, offset)?;
        decode_f32s(&buf, out);
        Ok(())
    }

    /// Reads `count` series starting at `start` into `out` (resized), for
    /// the sequential build path.
    ///
    /// # Errors
    /// Out-of-bounds ranges and I/O failures.
    pub fn read_block(
        &self,
        start: usize,
        count: usize,
        out: &mut Vec<f32>,
    ) -> Result<(), StorageError> {
        if start + count > self.count {
            return Err(StorageError::OutOfBounds {
                index: (start + count) as u64,
                len: self.count as u64,
            });
        }
        let floats = count * self.series_len;
        let bytes = floats * 4;
        let mut buf = vec![0u8; bytes];
        let offset = self.series_offset(start);
        self.device.charge_read(offset, bytes as u64);
        self.file.read_exact_at(&mut buf, offset)?;
        out.resize(floats, 0.0);
        decode_f32s(&buf, out);
        Ok(())
    }
}

impl RawSource for DatasetFile {
    fn count(&self) -> usize {
        self.count
    }

    fn series_len(&self) -> usize {
        self.series_len
    }

    fn read_into(&self, pos: usize, out: &mut [f32]) -> Result<(), StorageError> {
        self.read_series_into(pos, out)
    }
}

fn decode_f32s(bytes: &[u8], out: &mut [f32]) {
    debug_assert_eq!(bytes.len(), out.len() * 4);
    for (chunk, v) in bytes.chunks_exact(4).zip(out.iter_mut()) {
        *v = f32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_series::gen::random_walk;

    fn tmpdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dsidx-fmt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn dev() -> Arc<Device> {
        Arc::new(Device::unthrottled())
    }

    #[test]
    fn round_trip_whole_dataset() {
        let dir = tmpdir();
        let path = dir.join("round.dsidx");
        let ds = random_walk(50, 64, 7);
        write_dataset(&path, &ds, dev()).unwrap();
        let back = read_dataset(&path, dev()).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn positioned_reads_match_memory() {
        let dir = tmpdir();
        let path = dir.join("pos.dsidx");
        let ds = random_walk(20, 32, 9);
        write_dataset(&path, &ds, dev()).unwrap();
        let f = DatasetFile::open(&path, dev()).unwrap();
        assert_eq!(f.count(), 20);
        assert_eq!(f.series_len(), 32);
        let mut buf = vec![0.0f32; 32];
        for pos in [0usize, 7, 19] {
            f.read_series_into(pos, &mut buf).unwrap();
            assert_eq!(&buf[..], ds.get(pos));
        }
        assert!(matches!(
            f.read_series_into(20, &mut buf),
            Err(StorageError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn block_reads_match_memory() {
        let dir = tmpdir();
        let path = dir.join("block.dsidx");
        let ds = random_walk(30, 16, 3);
        write_dataset(&path, &ds, dev()).unwrap();
        let f = DatasetFile::open(&path, dev()).unwrap();
        let mut out = Vec::new();
        f.read_block(5, 10, &mut out).unwrap();
        assert_eq!(out.len(), 160);
        for i in 0..10 {
            assert_eq!(&out[i * 16..(i + 1) * 16], ds.get(5 + i));
        }
        assert!(f.read_block(25, 10, &mut out).is_err());
    }

    #[test]
    fn rejects_foreign_and_truncated_files() {
        let dir = tmpdir();
        // Bad magic.
        let path = dir.join("foreign.bin");
        std::fs::write(&path, b"NOTDSIDXAAAAAAAAAAAAAAAAAAAAAAAAAAAA").unwrap();
        assert!(matches!(
            DatasetFile::open(&path, dev()),
            Err(StorageError::BadMagic)
        ));
        // Too short for a header.
        let path = dir.join("short.bin");
        std::fs::write(&path, b"DS").unwrap();
        assert!(matches!(
            DatasetFile::open(&path, dev()),
            Err(StorageError::Corrupt(_))
        ));
        // Truncated payload.
        let path = dir.join("trunc.dsidx");
        let ds = random_walk(10, 8, 1);
        write_dataset(&path, &ds, dev()).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        assert!(matches!(
            DatasetFile::open(&path, dev()),
            Err(StorageError::Corrupt(_))
        ));
        // Bad version.
        let path = dir.join("vers.dsidx");
        let mut bytes = full.clone();
        bytes[8] = 99;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            DatasetFile::open(&path, dev()),
            Err(StorageError::BadVersion(99))
        ));
    }

    #[test]
    fn writer_rejects_wrong_length() {
        let dir = tmpdir();
        let path = dir.join("w.dsidx");
        let mut w = DatasetWriter::create(&path, 8, dev()).unwrap();
        assert!(w.push(&[0.0; 8]).is_ok());
        assert!(w.push(&[0.0; 7]).is_err());
        assert_eq!(w.count(), 1);
        w.finish().unwrap();
        let f = DatasetFile::open(&path, dev()).unwrap();
        assert_eq!(f.count(), 1);
    }

    #[test]
    fn empty_dataset_round_trips() {
        let dir = tmpdir();
        let path = dir.join("empty.dsidx");
        let ds = Dataset::new(16).unwrap();
        write_dataset(&path, &ds, dev()).unwrap();
        let back = read_dataset(&path, dev()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.series_len(), 16);
    }

    #[test]
    fn reads_are_charged_to_device() {
        let dir = tmpdir();
        let path = dir.join("charge.dsidx");
        let ds = random_walk(10, 16, 2);
        write_dataset(&path, &ds, dev()).unwrap();
        let device = dev();
        let f = DatasetFile::open(&path, Arc::clone(&device)).unwrap();
        let mut buf = vec![0.0f32; 16];
        f.read_series_into(3, &mut buf).unwrap();
        assert_eq!(device.stats().bytes_read, 64);
    }
}
