//! The [`RawSource`] abstraction: where engines fetch raw series from at
//! query time.
//!
//! ParIS/ParIS+ read non-pruned candidates from disk ("for which the raw
//! values need to be read from disk", §III); MESSI points into an in-memory
//! array. Engines are generic over this trait so the same query code runs
//! in both modes; `as_memory` exposes the zero-copy fast path.

use crate::error::StorageError;
use dsidx_series::Dataset;

/// A positionally addressable collection of equal-length raw series.
pub trait RawSource: Sync {
    /// Number of series.
    fn count(&self) -> usize;

    /// Length of each series.
    fn series_len(&self) -> usize;

    /// Copies series `pos` into `out` (`out.len() == series_len`).
    ///
    /// # Errors
    /// Out-of-bounds positions and I/O failures.
    fn read_into(&self, pos: usize, out: &mut [f32]) -> Result<(), StorageError>;

    /// Zero-copy access when the source is an in-memory dataset.
    fn as_memory(&self) -> Option<&Dataset> {
        None
    }
}

impl RawSource for Dataset {
    fn count(&self) -> usize {
        self.len()
    }

    fn series_len(&self) -> usize {
        self.series_len()
    }

    fn read_into(&self, pos: usize, out: &mut [f32]) -> Result<(), StorageError> {
        let s = self.try_get(pos)?;
        out.copy_from_slice(s);
        Ok(())
    }

    fn as_memory(&self) -> Option<&Dataset> {
        Some(self)
    }
}

impl<S: RawSource> RawSource for &S {
    fn count(&self) -> usize {
        (**self).count()
    }

    fn series_len(&self) -> usize {
        (**self).series_len()
    }

    fn read_into(&self, pos: usize, out: &mut [f32]) -> Result<(), StorageError> {
        (**self).read_into(pos, out)
    }

    fn as_memory(&self) -> Option<&Dataset> {
        (**self).as_memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_series::gen::sines;

    #[test]
    fn dataset_is_a_raw_source() {
        let ds = sines(4, 16, 1);
        let src: &dyn RawSource = &ds;
        assert_eq!(src.count(), 4);
        assert_eq!(src.series_len(), 16);
        let mut buf = vec![0.0; 16];
        src.read_into(2, &mut buf).unwrap();
        assert_eq!(&buf[..], ds.get(2));
        assert!(src.as_memory().is_some());
        assert!(src.read_into(4, &mut buf).is_err());
    }

    #[test]
    fn reference_forwarding_works() {
        let ds = sines(2, 8, 5);
        fn takes_source<S: RawSource>(s: S) -> usize {
            s.count()
        }
        assert_eq!(takes_source(&ds), 2);
    }
}
